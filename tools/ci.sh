#!/usr/bin/env bash
# Tier-1 verify: offline build + tests + the hive-lint static-analysis
# pass (R1 hermetic-deps, R2 no-panic-paths, R3 deterministic-time,
# R4 no-stray-io, R5 forbid-unsafe, R6 no-raw-threads,
# R7 instrumented-facade). Everything must work with no network access —
# the workspace has zero registry dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo run -p hive-lint --offline
# Bounded crash/recovery soak (fixed seed, seconds): recovery
# equivalence + fault injection + differential oracles must all hold.
./target/release/hive-sim-harness --seed 42 --steps 60 --crashes 2
