#!/usr/bin/env bash
# Tier-1 verify: offline build + tests + the hive-lint static-analysis
# pass (R1 hermetic-deps, R2 no-panic-paths, R3 deterministic-time,
# R4 no-stray-io, R5 forbid-unsafe, R6 no-raw-threads,
# R7 instrumented-facade, R8 delta-log, R9 snapshot-discipline,
# R10 exhaustive-delta, R11 lock-scope, R12 determinism-taint).
# Everything must work with no network access — the workspace has zero
# registry dependencies. The lint pass publishes a machine-readable
# report at target/lint-report.json as a CI artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo run -p hive-lint --offline -- --json target/lint-report.json
# Bounded crash/recovery soak (fixed seed, seconds): recovery
# equivalence + fault injection + differential oracles must all hold,
# plus the N-reader x 1-writer serving soak's snapshot-consistency
# oracle (every concurrent read bit-identical to a serial replay),
# plus the replication soak (2 log-shipped followers under the full
# drop/dup/reorder/truncate fault plan, crash/restart, and failover —
# every caught-up follower bit-identical to the leader).
./target/release/hive-sim-harness --seed 42 --steps 60 --crashes 2 --serve-readers 2 \
  --followers 2 --faults all
# Bench regression gate over the checked-in BENCH_hive.json: no
# *_speedup metric may sit below 1.0 (see tools/bench_allowlist.txt).
cargo run -q --release -p hive-bench --offline --bin bench_gate -- \
  BENCH_hive.json tools/bench_allowlist.txt
