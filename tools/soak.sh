#!/usr/bin/env bash
# Long-running crash/recovery soak: sweeps consecutive seeds through
# the deterministic simulation harness and stops at the first failure,
# printing the failing seed and the exact reproduction command (the
# harness binary already emits it). Usage:
#
#   tools/soak.sh [SWEEP] [STEPS] [CRASHES] [START_SEED]
#
# Defaults: 100 seeds x 200 steps x 5 crash points, starting at seed 1.
#
# Set REPLICA_FOLLOWERS to additionally run the replication soak on
# every seed (leader + N log-shipped followers under the transport
# fault plan in REPLICA_FAULTS, default "all"):
#
#   REPLICA_FOLLOWERS=2 tools/soak.sh 50
#   REPLICA_FOLLOWERS=3 REPLICA_FAULTS=drop tools/soak.sh 20 400
set -euo pipefail
cd "$(dirname "$0")/.."

SWEEP="${1:-100}"
STEPS="${2:-200}"
CRASHES="${3:-5}"
START="${4:-1}"
REPLICA_FOLLOWERS="${REPLICA_FOLLOWERS:-0}"
REPLICA_FAULTS="${REPLICA_FAULTS:-all}"

REPLICA_ARGS=()
if [ "$REPLICA_FOLLOWERS" -gt 0 ]; then
    REPLICA_ARGS=(--followers "$REPLICA_FOLLOWERS" --faults "$REPLICA_FAULTS")
    echo "soak: replication armed (${REPLICA_FOLLOWERS} followers, faults=${REPLICA_FAULTS})"
fi

cargo build --release --offline -p hive-sim-harness
echo "soak: seeds ${START}..$((START + SWEEP - 1)), ${STEPS} steps, ${CRASHES} crash points each"
if ./target/release/hive-sim-harness \
    --seed "$START" --sweep "$SWEEP" --steps "$STEPS" --crashes "$CRASHES" \
    "${REPLICA_ARGS[@]+"${REPLICA_ARGS[@]}"}"; then
    echo "soak: all ${SWEEP} seeds clean"
else
    status=$?
    echo "soak: FAILED (see the failing seed and reproduction command above)" >&2
    exit "$status"
fi
