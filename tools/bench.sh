#!/usr/bin/env bash
# Runs every bench binary in smoke mode (HIVE_BENCH_SMOKE shrinks the
# iteration counts, not the workloads) and merges the per-bench JSON
# fragments into BENCH_hive.json at the repo root. Unset
# HIVE_BENCH_SMOKE=1 below for full-length runs.
set -euo pipefail
cd "$(dirname "$0")/.."

export HIVE_BENCH_SMOKE="${HIVE_BENCH_SMOKE:-1}"
# Absolute: cargo runs bench binaries with the package dir as cwd.
export HIVE_BENCH_JSON_DIR="$(pwd)/${HIVE_BENCH_JSON_DIR:-target/bench-json}"
rm -rf "$HIVE_BENCH_JSON_DIR"
mkdir -p "$HIVE_BENCH_JSON_DIR"

for b in bench_store bench_scent bench_ini bench_text bench_concept bench_platform bench_obs bench_lint bench_index bench_serve bench_replica; do
  cargo bench -q -p hive-bench --offline --bench "$b"
done

cargo run -q --release -p hive-bench --offline --bin bench_merge -- \
  "$HIVE_BENCH_JSON_DIR" BENCH_hive.json

# Regression gate: every *_speedup metric must be >= 1.0 (known-serial
# cases live in the allowlist; t4-vs-t1 ratios are auto-exempt on hosts
# with fewer than 4 threads).
cargo run -q --release -p hive-bench --offline --bin bench_gate -- \
  BENCH_hive.json tools/bench_allowlist.txt
