//! Keyphrase extraction via TextRank over a token co-occurrence graph.
//!
//! Backs Hive's "key concept extraction for automated annotations"
//! (paper §2.3) and seeds concept-map bootstrapping (§2.1, ref \[10\]):
//! tokens co-occurring within a sliding window vote for each other with
//! PageRank; adjacent top-ranked tokens merge into multiword phrases.

use crate::tokenize::tokenize_filtered;
use std::collections::HashMap;

/// An extracted keyphrase with its significance score.
#[derive(Clone, Debug, PartialEq)]
pub struct Keyphrase {
    /// The (stemmed) phrase text, space-joined.
    pub phrase: String,
    /// TextRank significance (sum over member tokens), higher = stronger.
    pub score: f64,
}

/// Extraction parameters.
#[derive(Clone, Copy, Debug)]
pub struct KeyphraseConfig {
    /// Co-occurrence window size in tokens.
    pub window: usize,
    /// Number of keyphrases to return.
    pub top_k: usize,
    /// PageRank damping.
    pub damping: f64,
    /// PageRank iterations.
    pub iters: usize,
}

impl Default for KeyphraseConfig {
    fn default() -> Self {
        KeyphraseConfig { window: 4, top_k: 10, damping: 0.85, iters: 50 }
    }
}

/// Extracts up to `cfg.top_k` keyphrases from `text`.
pub fn extract_keyphrases(text: &str, cfg: KeyphraseConfig) -> Vec<Keyphrase> {
    let tokens = tokenize_filtered(text);
    if tokens.is_empty() {
        return Vec::new();
    }
    // Intern tokens.
    let mut ids: HashMap<&str, usize> = HashMap::new();
    let mut names: Vec<&str> = Vec::new();
    let seq: Vec<usize> = tokens
        .iter()
        .map(|t| {
            *ids.entry(t.as_str()).or_insert_with(|| {
                names.push(t.as_str());
                names.len() - 1
            })
        })
        .collect();
    let n = names.len();
    // Co-occurrence weights within the window.
    let mut edges: HashMap<(usize, usize), f64> = HashMap::new();
    for (i, &a) in seq.iter().enumerate() {
        for &b in seq.iter().skip(i + 1).take(cfg.window.saturating_sub(1)) {
            if a == b {
                continue;
            }
            let key = if a < b { (a, b) } else { (b, a) };
            *edges.entry(key).or_insert(0.0) += 1.0;
        }
    }
    // Symmetric adjacency. Edges are materialized in (a, b) order
    // before the lists are built: adjacency order feeds the f64
    // neighbor sums in the power iteration below, and HashMap storage
    // order would let two identical documents rank phrases apart by
    // an ulp.
    // lint:allow(determinism-taint) -- sorted into (a, b) order on the next line
    let mut edge_list: Vec<((usize, usize), f64)> = edges.into_iter().collect();
    edge_list.sort_by_key(|&(pair, _)| pair);
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for ((a, b), w) in edge_list {
        adj[a].push((b, w));
        adj[b].push((a, w));
    }
    let strength: Vec<f64> = adj.iter().map(|l| l.iter().map(|(_, w)| w).sum()).collect();
    // TextRank power iteration.
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..cfg.iters {
        let mut next = vec![(1.0 - cfg.damping) / n as f64; n];
        for a in 0..n {
            if strength[a] == 0.0 {
                // Isolated token: keep its restart mass only.
                continue;
            }
            let share = cfg.damping * rank[a] / strength[a];
            for &(b, w) in &adj[a] {
                next[b] += share * w;
            }
        }
        rank = next;
    }
    // Merge adjacent top tokens into phrases: a token qualifies if its
    // rank is above the mean.
    let mean = rank.iter().sum::<f64>() / n as f64;
    let qualifies: Vec<bool> = rank.iter().map(|&r| r >= mean).collect();
    let mut phrases: HashMap<String, f64> = HashMap::new();
    let mut i = 0;
    while i < seq.len() {
        if qualifies[seq[i]] {
            let start = i;
            while i + 1 < seq.len() && qualifies[seq[i + 1]] && i - start < 2 {
                i += 1;
            }
            let phrase_tokens: Vec<&str> = seq[start..=i].iter().map(|&t| names[t]).collect();
            let score: f64 = seq[start..=i].iter().map(|&t| rank[t]).sum();
            let phrase = phrase_tokens.join(" ");
            let slot = phrases.entry(phrase).or_insert(0.0);
            if score > *slot {
                *slot = score;
            }
        }
        i += 1;
    }
    let mut out: Vec<Keyphrase> = phrases
        // lint:allow(determinism-taint) -- total order with phrase tiebreak below
        .into_iter()
        .map(|(phrase, score)| Keyphrase { phrase, score })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.phrase.cmp(&b.phrase))
    });
    out.truncate(cfg.top_k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ABSTRACT: &str = "Compressed sensing of tensor streams enables scalable \
        monitoring of evolving social networks. Tensor streams encode multi-relational \
        social media data. Structural change detection in tensor streams is costly; \
        randomized tensor ensembles reduce the cost of change detection while keeping \
        accuracy. Social networks evolve and the monitoring system must keep up.";

    #[test]
    fn dominant_concepts_surface() {
        let kps = extract_keyphrases(ABSTRACT, KeyphraseConfig::default());
        assert!(!kps.is_empty());
        let joined: Vec<&str> = kps.iter().map(|k| k.phrase.as_str()).collect();
        assert!(
            joined.iter().any(|p| p.contains("tensor")),
            "expected 'tensor' among {joined:?}"
        );
        assert!(
            joined.iter().any(|p| p.contains("social") || p.contains("stream")),
            "expected social/stream among {joined:?}"
        );
    }

    #[test]
    fn scores_descending() {
        let kps = extract_keyphrases(ABSTRACT, KeyphraseConfig::default());
        for w in kps.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn top_k_respected() {
        let cfg = KeyphraseConfig { top_k: 3, ..Default::default() };
        assert!(extract_keyphrases(ABSTRACT, cfg).len() <= 3);
    }

    #[test]
    fn empty_and_stopword_only_input() {
        assert!(extract_keyphrases("", KeyphraseConfig::default()).is_empty());
        assert!(extract_keyphrases("the of and to", KeyphraseConfig::default()).is_empty());
    }

    #[test]
    fn multiword_phrases_form() {
        let kps = extract_keyphrases(ABSTRACT, KeyphraseConfig::default());
        assert!(
            kps.iter().any(|k| k.phrase.contains(' ')),
            "expected at least one multiword phrase in {kps:?}"
        );
    }

    #[test]
    fn deterministic() {
        let a = extract_keyphrases(ABSTRACT, KeyphraseConfig::default());
        let b = extract_keyphrases(ABSTRACT, KeyphraseConfig::default());
        assert_eq!(a, b);
    }
}
