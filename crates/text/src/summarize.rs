//! AlphaSum-style size-constrained table summarization (paper ref \[13\]).
//!
//! Hive's scheduled update reports compress activity tables ("who did
//! what, where") into at most `k` rows by generalizing cell values along
//! per-column **value lattices** (e.g. `session -> track -> conference ->
//! *`), "preserving maximal information while minimizing the footprint"
//! (paper §2.3). Three strategies are provided for experiment E3:
//!
//! * `Greedy` — repeatedly merge the pair of row groups with the least
//!   added information loss (the practical algorithm),
//! * `Exact` — exhaustive partition search (small inputs only; the
//!   quality ceiling),
//! * `RandomMerge` — seeded random merges (the floor).

use hive_rng::Rng;
use std::collections::HashMap;

/// A value hierarchy for one column: every value has a parent chain
/// terminating at the lattice root (displayed as `*`).
#[derive(Clone, Debug)]
pub struct ValueLattice {
    root: String,
    parent: HashMap<String, String>,
}

impl ValueLattice {
    /// Creates a lattice with the given root (conventionally `"*"`).
    pub fn new(root: impl Into<String>) -> Self {
        ValueLattice { root: root.into(), parent: HashMap::new() }
    }

    /// The root value.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Declares `child`'s parent. Unknown parents implicitly chain to the
    /// root when walked.
    pub fn add_child(&mut self, parent: impl Into<String>, child: impl Into<String>) {
        self.parent.insert(child.into(), parent.into());
    }

    /// The chain `v, parent(v), ..., root`.
    pub fn ancestors(&self, v: &str) -> Vec<String> {
        let mut chain = vec![v.to_string()];
        let mut cur = v.to_string();
        let mut guard = 0;
        while cur != self.root {
            let next = self
                .parent
                .get(&cur)
                .cloned()
                .unwrap_or_else(|| self.root.clone());
            chain.push(next.clone());
            cur = next;
            guard += 1;
            assert!(guard < 10_000, "cycle in value lattice at {v:?}");
        }
        chain
    }

    /// Depth of `v` below the root (root = 0). Allocation-free: the
    /// summarizer calls this in its innermost loop.
    pub fn depth(&self, v: &str) -> usize {
        let mut d = 0;
        let mut cur = v;
        let mut guard = 0;
        while cur != self.root {
            cur = self.parent.get(cur).map(String::as_str).unwrap_or(&self.root);
            d += 1;
            guard += 1;
            assert!(guard < 10_000, "cycle in value lattice at {v:?}");
        }
        d
    }

    /// Ancestor chain as borrowed slices (no cloning).
    fn ancestor_refs<'a>(&'a self, v: &'a str) -> Vec<&'a str> {
        let mut chain = vec![v];
        let mut cur = v;
        let mut guard = 0;
        while cur != self.root {
            cur = self.parent.get(cur).map(String::as_str).unwrap_or(&self.root);
            chain.push(cur);
            guard += 1;
            assert!(guard < 10_000, "cycle in value lattice at {v:?}");
        }
        chain
    }

    /// Least common ancestor of two values.
    pub fn lca(&self, a: &str, b: &str) -> String {
        let aa = self.ancestor_refs(a);
        let bb = self.ancestor_refs(b);
        for x in &aa {
            if bb.contains(x) {
                return (*x).to_string();
            }
        }
        self.root.clone()
    }

    /// Information cost of generalizing `v` up to its ancestor `g`:
    /// lost depth normalized by `v`'s depth (0 = no change, 1 = to root).
    pub fn generalization_cost(&self, v: &str, g: &str) -> f64 {
        let dv = self.depth(v);
        if dv == 0 {
            return 0.0;
        }
        let dg = self.depth(g);
        (dv.saturating_sub(dg)) as f64 / dv as f64
    }
}

/// A categorical table with one value lattice per column.
#[derive(Clone, Debug)]
pub struct Table {
    /// Column names.
    pub columns: Vec<String>,
    /// Per-column value lattices (same arity as `columns`).
    pub lattices: Vec<ValueLattice>,
    /// Data rows (each with `columns.len()` values).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(columns: Vec<String>, lattices: Vec<ValueLattice>) -> Self {
        assert_eq!(columns.len(), lattices.len(), "one lattice per column");
        Table { columns, lattices, rows: Vec::new() }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }
}

/// Summarization strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Greedy cheapest-pair merging (default).
    Greedy,
    /// Exhaustive partition search; panics if the table has more than 10
    /// distinct rows (quality ceiling for experiments).
    Exact,
    /// Seeded random merging (quality floor for experiments).
    RandomMerge(u64),
}

/// Summarization parameters.
#[derive(Clone, Copy, Debug)]
pub struct SummaryConfig {
    /// Maximum rows in the summary.
    pub max_rows: usize,
    /// Strategy to use.
    pub strategy: Strategy,
}

/// A summarized table.
#[derive(Clone, Debug)]
pub struct TableSummary {
    /// Generalized rows with the number of original rows each covers.
    pub rows: Vec<(Vec<String>, usize)>,
    /// Total information loss (sum of per-cell generalization costs).
    pub loss: f64,
    /// `1 - loss / worst_loss`, in `[0, 1]`; 1 means lossless.
    pub retained: f64,
}

/// A column lattice compiled to integer ids: parent/depth arrays over
/// every value reachable from the table's rows. All hot-path operations
/// (LCA, generalization cost) become small integer walks.
struct CompiledColumn {
    ids: HashMap<String, u32>,
    names: Vec<String>,
    parent: Vec<u32>,
    depth: Vec<u32>,
    root: u32,
}

impl CompiledColumn {
    fn compile(lattice: &ValueLattice, values: impl Iterator<Item = String>) -> Self {
        let mut col = CompiledColumn {
            ids: HashMap::new(),
            names: Vec::new(),
            parent: Vec::new(),
            depth: Vec::new(),
            root: 0,
        };
        // Root first so it always has id 0 / depth 0 / parent self.
        col.intern_chain(lattice, lattice.root());
        for v in values {
            col.intern_chain(lattice, &v);
        }
        col
    }

    /// Interns `v` and its whole ancestor chain; returns `v`'s id.
    fn intern_chain(&mut self, lattice: &ValueLattice, v: &str) -> u32 {
        if let Some(&id) = self.ids.get(v) {
            return id;
        }
        let chain = lattice.ancestors(v); // v .. root
        let mut parent_id = None;
        for name in chain.into_iter().rev() {
            let next_id = match self.ids.get(&name) {
                Some(&id) => id,
                None => {
                    let id = self.names.len() as u32;
                    self.ids.insert(name.clone(), id);
                    self.names.push(name);
                    let p = parent_id.unwrap_or(id); // root points at itself
                    self.parent.push(p);
                    let d = if p == id { 0 } else { self.depth[p as usize] + 1 };
                    self.depth.push(d);
                    id
                }
            };
            parent_id = Some(next_id);
        }
        // `chain` always yields at least the root, so this is Some; fall
        // back to the root id 0 rather than panicking.
        parent_id.unwrap_or(0)
    }

    fn lca(&self, mut a: u32, mut b: u32) -> u32 {
        while self.depth[a as usize] > self.depth[b as usize] {
            a = self.parent[a as usize];
        }
        while self.depth[b as usize] > self.depth[a as usize] {
            b = self.parent[b as usize];
        }
        while a != b {
            a = self.parent[a as usize];
            b = self.parent[b as usize];
        }
        a
    }

    /// Cost of generalizing `v` up to its ancestor `g`.
    fn cost(&self, v: u32, g: u32) -> f64 {
        let dv = self.depth[v as usize];
        if dv == 0 {
            return 0.0;
        }
        let dg = self.depth[g as usize];
        dv.saturating_sub(dg) as f64 / dv as f64
    }
}

/// The whole table compiled to integer tuples.
struct Compiled {
    columns: Vec<CompiledColumn>,
    rows: Vec<Vec<u32>>,
}

impl Compiled {
    fn compile(table: &Table) -> Self {
        let columns: Vec<CompiledColumn> = table
            .lattices
            .iter()
            .enumerate()
            .map(|(c, lat)| {
                CompiledColumn::compile(lat, table.rows.iter().map(|r| r[c].clone()))
            })
            .collect();
        let rows: Vec<Vec<u32>> = table
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(c, v)| columns[c].ids[v])
                    .collect()
            })
            .collect();
        Compiled { columns, rows }
    }

    fn group_loss(&self, g: &Group) -> f64 {
        g.members
            .iter()
            .map(|&ri| {
                self.columns
                    .iter()
                    .enumerate()
                    .map(|(c, col)| col.cost(self.rows[ri][c], g.tuple[c]))
                    .sum::<f64>()
            })
            .sum()
    }

    /// The additive loss statistics for a member set.
    fn stats_for(&self, members: &[usize]) -> GroupStats {
        let mut n_pos = vec![0u32; self.columns.len()];
        let mut s_inv = vec![0f64; self.columns.len()];
        for &ri in members {
            for (c, col) in self.columns.iter().enumerate() {
                let d = col.depth[self.rows[ri][c] as usize];
                if d > 0 {
                    n_pos[c] += 1;
                    s_inv[c] += 1.0 / d as f64;
                }
            }
        }
        GroupStats { n_pos, s_inv }
    }

    /// Group loss from the cached stats — algebraically equal to
    /// [`Compiled::group_loss`] (the member-by-member recompute), but
    /// O(columns). Float association differs, so [`Compiled::finish`]
    /// reports the exact recompute.
    fn cached_loss(&self, g: &Group) -> f64 {
        self.columns
            .iter()
            .enumerate()
            .map(|(c, col)| {
                g.stats.n_pos[c] as f64
                    - col.depth[g.tuple[c] as usize] as f64 * g.stats.s_inv[c]
            })
            .sum()
    }

    /// Loss the merge of `a` and `b` would have, priced from the cached
    /// stats in O(columns) — no merged group is materialized and no
    /// member list is walked.
    fn merged_loss(&self, a: &Group, b: &Group) -> f64 {
        self.columns
            .iter()
            .enumerate()
            .map(|(c, col)| {
                let t = col.lca(a.tuple[c], b.tuple[c]);
                let n_pos = (a.stats.n_pos[c] + b.stats.n_pos[c]) as f64;
                let s_inv = a.stats.s_inv[c] + b.stats.s_inv[c];
                n_pos - col.depth[t as usize] as f64 * s_inv
            })
            .sum()
    }

    fn merge_groups(&self, a: &Group, b: &Group) -> Group {
        let tuple: Vec<u32> = self
            .columns
            .iter()
            .enumerate()
            .map(|(c, col)| col.lca(a.tuple[c], b.tuple[c]))
            .collect();
        let mut members = a.members.clone();
        members.extend_from_slice(&b.members);
        let stats = GroupStats {
            n_pos: a.stats.n_pos.iter().zip(&b.stats.n_pos).map(|(x, y)| x + y).collect(),
            s_inv: a.stats.s_inv.iter().zip(&b.stats.s_inv).map(|(x, y)| x + y).collect(),
        };
        Group { tuple, members, stats }
    }

    fn initial_groups(&self) -> Vec<Group> {
        let mut by_tuple: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            by_tuple.entry(row.clone()).or_default().push(i);
        }
        let mut groups: Vec<Group> = by_tuple
            .into_iter()
            .map(|(tuple, members)| {
                let stats = self.stats_for(&members);
                Group { tuple, members, stats }
            })
            .collect();
        groups.sort_by(|a, b| a.tuple.cmp(&b.tuple));
        groups
    }

    fn worst_loss(&self) -> f64 {
        self.rows
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&self.columns)
                    .map(|(&v, col)| col.cost(v, col.root))
                    .sum::<f64>()
            })
            .sum()
    }

    fn finish(&self, groups: Vec<Group>) -> TableSummary {
        let loss: f64 = groups.iter().map(|g| self.group_loss(g)).sum();
        let worst = self.worst_loss();
        let retained = if worst == 0.0 { 1.0 } else { (1.0 - loss / worst).clamp(0.0, 1.0) };
        let mut rows: Vec<(Vec<String>, usize)> = groups
            .into_iter()
            .map(|g| {
                let tuple: Vec<String> = g
                    .tuple
                    .iter()
                    .zip(&self.columns)
                    .map(|(&id, col)| col.names[id as usize].clone())
                    .collect();
                (tuple, g.members.len())
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        TableSummary { rows, loss, retained }
    }
}

/// One group during merging: generalized (interned) tuple + covered rows
/// + cached loss statistics.
#[derive(Clone, Debug)]
struct Group {
    tuple: Vec<u32>,
    members: Vec<usize>,
    stats: GroupStats,
}

/// Per-column marginal-loss statistics for a group, **additive under
/// merge**: `n_pos[c]` counts members whose column-`c` value has
/// positive depth, `s_inv[c]` sums `1/depth` over them. A group's loss
/// under tuple `t` is then `Σ_c (n_pos[c] − depth(t[c]) · s_inv[c])`
/// (each member cell costs `1 − depth(t)/depth(v)`), so candidate
/// merges are priced per column instead of per member — the fix for
/// greedy's superlinear blowup as groups grow.
#[derive(Clone, Debug)]
struct GroupStats {
    n_pos: Vec<u32>,
    s_inv: Vec<f64>,
}

/// Summarizes `table` down to at most `cfg.max_rows` rows.
pub fn summarize_table(table: &Table, cfg: SummaryConfig) -> TableSummary {
    assert!(cfg.max_rows >= 1, "summary must allow at least one row");
    let compiled = Compiled::compile(table);
    let groups = compiled.initial_groups();
    if groups.len() <= cfg.max_rows {
        return compiled.finish(groups);
    }
    match cfg.strategy {
        Strategy::Greedy => greedy(&compiled, groups, cfg.max_rows),
        Strategy::Exact => exact(&compiled, groups, cfg.max_rows),
        Strategy::RandomMerge(seed) => random_merge(&compiled, groups, cfg.max_rows, seed),
    }
}

/// Heap entry ordered by ascending added loss (min-heap via reversal).
struct MergeCandidate {
    added: f64,
    a: usize,
    b: usize,
}

impl PartialEq for MergeCandidate {
    fn eq(&self, other: &Self) -> bool {
        self.added == other.added && self.a == other.a && self.b == other.b
    }
}
impl Eq for MergeCandidate {}
impl PartialOrd for MergeCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeCandidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the cheapest merge.
        other
            .added
            .total_cmp(&self.added)
            .then_with(|| (other.a, other.b).cmp(&(self.a, self.b)))
    }
}

/// Greedy cheapest-pair merging with a lazy-invalidation heap.
///
/// Groups are immutable once created; a merge retires both inputs and
/// appends a new group, so a heap entry is stale exactly when one of its
/// endpoints is retired — no cost revalidation needed. Candidate merges
/// are priced from each group's cached [`GroupStats`] in O(columns),
/// independent of how many rows the groups have absorbed, so total work
/// is O(G^2 log G · C) regardless of group size — previously each pair
/// walked the (growing) member lists, which went superlinear in the row
/// count.
fn greedy(compiled: &Compiled, groups: Vec<Group>, k: usize) -> TableSummary {
    use std::collections::BinaryHeap;
    let mut slots: Vec<Option<Group>> = groups.into_iter().map(Some).collect();
    let mut losses: Vec<f64> = slots
        .iter()
        .flatten()
        .map(|g| compiled.cached_loss(g))
        .collect();
    let mut alive = slots.len();
    let mut heap = BinaryHeap::new();
    let push_pairs = |heap: &mut BinaryHeap<MergeCandidate>,
                      slots: &[Option<Group>],
                      losses: &[f64],
                      idx: usize| {
        let Some(g) = slots[idx].as_ref() else { return };
        for (j, other) in slots.iter().enumerate() {
            if j == idx {
                continue;
            }
            let Some(o) = other.as_ref() else { continue };
            let added = compiled.merged_loss(g, o) - losses[idx] - losses[j];
            let (a, b) = if idx < j { (idx, j) } else { (j, idx) };
            heap.push(MergeCandidate { added, a, b });
        }
    };
    for i in 0..slots.len() {
        let Some(gi) = slots[i].as_ref() else { continue };
        for j in (i + 1)..slots.len() {
            let Some(gj) = slots[j].as_ref() else { continue };
            let added = compiled.merged_loss(gi, gj) - losses[i] - losses[j];
            heap.push(MergeCandidate { added, a: i, b: j });
        }
    }
    while alive > k {
        let Some(cand) = heap.pop() else {
            break; // no mergeable pair left (can't happen while alive > k)
        };
        if slots[cand.a].is_none() || slots[cand.b].is_none() {
            continue; // stale: an endpoint was already merged away
        }
        let (Some(ga), Some(gb)) = (slots[cand.a].take(), slots[cand.b].take()) else {
            continue; // unreachable given the check above
        };
        let merged = compiled.merge_groups(&ga, &gb);
        let new_loss = compiled.cached_loss(&merged);
        slots.push(Some(merged));
        losses.push(new_loss);
        alive -= 1;
        let new_idx = slots.len() - 1;
        push_pairs(&mut heap, &slots, &losses, new_idx);
    }
    compiled.finish(slots.into_iter().flatten().collect())
}

fn random_merge(compiled: &Compiled, mut groups: Vec<Group>, k: usize, seed: u64) -> TableSummary {
    let mut rng = Rng::seed_from_u64(seed);
    while groups.len() > k {
        let i = rng.gen_range(0..groups.len());
        let mut j = rng.gen_range(0..groups.len() - 1);
        if j >= i {
            j += 1;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let merged = compiled.merge_groups(&groups[lo], &groups[hi]);
        groups.remove(hi);
        groups.remove(lo);
        groups.push(merged);
    }
    compiled.finish(groups)
}

fn exact(compiled: &Compiled, groups: Vec<Group>, k: usize) -> TableSummary {
    assert!(
        groups.len() <= 10,
        "Exact strategy is exponential; {} distinct rows exceeds the cap of 10",
        groups.len()
    );
    // Enumerate all partitions of `groups` into at most k blocks
    // (restricted growth strings) and keep the cheapest.
    let n = groups.len();
    let mut assignment = vec![0usize; n];
    let mut best: Option<(f64, Vec<usize>)> = None;
    fn partition_loss(
        compiled: &Compiled,
        groups: &[Group],
        assignment: &[usize],
    ) -> (f64, Vec<Group>) {
        let mut merged: HashMap<usize, Group> = HashMap::new();
        for (g, &b) in groups.iter().zip(assignment.iter()) {
            match merged.remove(&b) {
                Some(existing) => {
                    merged.insert(b, compiled.merge_groups(&existing, g));
                }
                None => {
                    merged.insert(b, g.clone());
                }
            }
        }
        // lint:allow(determinism-taint) -- sorted by tuple on the next line
        let mut out: Vec<Group> = merged.into_values().collect();
        out.sort_by(|a, b| a.tuple.cmp(&b.tuple));
        // Loss is summed over the *sorted* groups: f64 addition is
        // order-sensitive, and HashMap value order would make equal
        // partitions disagree in the last ulp.
        let loss = out.iter().map(|g| compiled.group_loss(g)).sum();
        (loss, out)
    }
    #[allow(clippy::too_many_arguments)]
    fn rec(
        idx: usize,
        blocks: usize,
        k: usize,
        n: usize,
        assignment: &mut Vec<usize>,
        best: &mut Option<(f64, Vec<usize>)>,
        compiled: &Compiled,
        groups: &[Group],
    ) {
        if idx == n {
            let (loss, _) = partition_loss(compiled, groups, assignment);
            if best.as_ref().is_none_or(|(b, _)| loss < *b) {
                *best = Some((loss, assignment.clone()));
            }
            return;
        }
        for b in 0..blocks.min(k) {
            assignment[idx] = b;
            rec(idx + 1, blocks, k, n, assignment, best, compiled, groups);
        }
        if blocks < k {
            assignment[idx] = blocks;
            rec(idx + 1, blocks + 1, k, n, assignment, best, compiled, groups);
        }
    }
    rec(0, 0, k, n, &mut assignment, &mut best, compiled, &groups);
    let Some((_, assignment)) = best else {
        // n >= 1 guarantees at least one partition; empty input returns
        // an empty summary.
        return compiled.finish(Vec::new());
    };
    let (_, out) = partition_loss(compiled, &groups, &assignment);
    compiled.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// session -> track -> *; action flat under *.
    fn activity_table() -> Table {
        let mut loc = ValueLattice::new("*");
        loc.add_child("*", "graphs-track");
        loc.add_child("*", "ml-track");
        loc.add_child("graphs-track", "session-g1");
        loc.add_child("graphs-track", "session-g2");
        loc.add_child("ml-track", "session-m1");
        let mut act = ValueLattice::new("*");
        for a in ["checkin", "question", "answer"] {
            act.add_child("*", a);
        }
        let mut t = Table::new(
            vec!["where".into(), "what".into()],
            vec![loc, act],
        );
        t.push_row(vec!["session-g1".into(), "checkin".into()]);
        t.push_row(vec!["session-g2".into(), "checkin".into()]);
        t.push_row(vec!["session-g1".into(), "question".into()]);
        t.push_row(vec!["session-m1".into(), "checkin".into()]);
        t.push_row(vec!["session-m1".into(), "answer".into()]);
        t
    }

    #[test]
    fn lattice_basics() {
        let mut l = ValueLattice::new("*");
        l.add_child("*", "track");
        l.add_child("track", "session");
        assert_eq!(l.ancestors("session"), vec!["session", "track", "*"]);
        assert_eq!(l.depth("session"), 2);
        assert_eq!(l.depth("*"), 0);
        assert_eq!(l.lca("session", "track"), "track");
        assert_eq!(l.lca("session", "session"), "session");
        assert!((l.generalization_cost("session", "track") - 0.5).abs() < 1e-12);
        assert!((l.generalization_cost("session", "*") - 1.0).abs() < 1e-12);
        assert_eq!(l.generalization_cost("*", "*"), 0.0);
    }

    #[test]
    fn unknown_values_chain_to_root() {
        let l = ValueLattice::new("*");
        assert_eq!(l.ancestors("mystery"), vec!["mystery", "*"]);
        assert_eq!(l.depth("mystery"), 1);
    }

    #[test]
    fn no_summary_needed_is_lossless() {
        let t = activity_table();
        let s = summarize_table(
            &t,
            SummaryConfig { max_rows: 10, strategy: Strategy::Greedy },
        );
        assert_eq!(s.rows.len(), 5);
        assert_eq!(s.loss, 0.0);
        assert_eq!(s.retained, 1.0);
    }

    #[test]
    fn greedy_respects_budget_and_generalizes_sensibly() {
        let t = activity_table();
        let s = summarize_table(
            &t,
            SummaryConfig { max_rows: 3, strategy: Strategy::Greedy },
        );
        assert!(s.rows.len() <= 3);
        let total: usize = s.rows.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5, "every original row is covered exactly once");
        assert!(s.retained > 0.0 && s.retained < 1.0);
        // The two graphs-track check-ins should merge to track level.
        assert!(
            s.rows.iter().any(|(tuple, _)| tuple[0] == "graphs-track"),
            "expected a graphs-track generalization in {:?}",
            s.rows
        );
    }

    #[test]
    fn exact_is_at_least_as_good_as_greedy_and_better_than_random() {
        let t = activity_table();
        let k = 2;
        let exact = summarize_table(&t, SummaryConfig { max_rows: k, strategy: Strategy::Exact });
        let greedy = summarize_table(&t, SummaryConfig { max_rows: k, strategy: Strategy::Greedy });
        assert!(exact.loss <= greedy.loss + 1e-9);
        // Random is a floor on average; check over several seeds.
        let mut worse = 0;
        for seed in 0..10 {
            let rnd = summarize_table(
                &t,
                SummaryConfig { max_rows: k, strategy: Strategy::RandomMerge(seed) },
            );
            if rnd.loss >= exact.loss - 1e-9 {
                worse += 1;
            }
        }
        assert!(worse >= 8, "random should rarely beat exact, worse={worse}");
    }

    #[test]
    fn single_row_budget_generalizes_everything() {
        let t = activity_table();
        let s = summarize_table(
            &t,
            SummaryConfig { max_rows: 1, strategy: Strategy::Greedy },
        );
        assert_eq!(s.rows.len(), 1);
        assert_eq!(s.rows[0].1, 5);
    }

    #[test]
    fn cached_loss_matches_member_recompute_across_merges() {
        let mut t = activity_table();
        // Extra rows so merged groups accumulate members at mixed depths.
        t.push_row(vec!["session-g2".into(), "question".into()]);
        t.push_row(vec!["graphs-track".into(), "answer".into()]);
        t.push_row(vec!["*".into(), "checkin".into()]);
        let compiled = Compiled::compile(&t);
        let mut groups = compiled.initial_groups();
        while groups.len() > 1 {
            for g in &groups {
                let cached = compiled.cached_loss(g);
                let exact = compiled.group_loss(g);
                assert!(
                    (cached - exact).abs() < 1e-9,
                    "cached {cached} != recomputed {exact} for {:?}",
                    g.tuple
                );
            }
            let (a, b) = (groups.remove(0), groups.remove(0));
            let predicted = compiled.merged_loss(&a, &b);
            let merged = compiled.merge_groups(&a, &b);
            assert!((predicted - compiled.group_loss(&merged)).abs() < 1e-9);
            groups.push(merged);
        }
    }

    #[test]
    fn duplicate_rows_group_without_loss() {
        let mut t = activity_table();
        t.push_row(vec!["session-g1".into(), "checkin".into()]);
        let s = summarize_table(
            &t,
            SummaryConfig { max_rows: 5, strategy: Strategy::Greedy },
        );
        assert_eq!(s.rows.len(), 5);
        assert_eq!(s.loss, 0.0);
        assert!(s.rows.iter().any(|(_, c)| *c == 2));
    }
}
