//! TF-IDF corpus model and sparse-vector cosine similarity.
//!
//! "User-provided content (publication, presentation, other supporting
//! material) similarity" is one of Hive's nine relationship evidences;
//! this module provides the vector-space machinery behind it and behind
//! the activity-context vectors of §2.1.

use std::collections::HashMap;

use crate::tokenize::tokenize_filtered;

/// A sparse term-weight vector keyed by corpus term ids.
///
/// Entries are kept sorted by term id with no explicit zeros — a
/// *canonical* form, so equal vectors are structurally equal and every
/// reduction (norm, dot, accumulate) sums in term-id order. That makes
/// all derived scores bit-reproducible across instances and thread
/// counts, which the platform's determinism contract (and the
/// simulation harness's recovery/differential oracles) depend on; a
/// hash-keyed representation would sum in per-instance iteration order
/// and drift by an ulp between otherwise identical runs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseVector {
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    /// Empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from raw entries, dropping zeros (later duplicates win,
    /// matching map-insert semantics).
    pub fn from_entries(entries: impl IntoIterator<Item = (u32, f64)>) -> Self {
        let mut out = SparseVector::new();
        for (t, v) in entries {
            out.set(t, v);
        }
        out
    }

    /// Weight of term `t` (0 if absent).
    pub fn get(&self, t: u32) -> f64 {
        match self.entries.binary_search_by_key(&t, |e| e.0) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Sets term `t`'s weight (removing it when zero).
    pub fn set(&mut self, t: u32, v: f64) {
        match self.entries.binary_search_by_key(&t, |e| e.0) {
            Ok(i) => {
                if v == 0.0 {
                    self.entries.remove(i);
                } else {
                    self.entries[i].1 = v;
                }
            }
            Err(i) => {
                if v != 0.0 {
                    self.entries.insert(i, (t, v));
                }
            }
        }
    }

    /// Adds `v` to term `t`'s weight.
    pub fn add(&mut self, t: u32, v: f64) {
        let next = self.get(t) + v;
        self.set(t, next);
    }

    /// Number of non-zero terms.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(term, weight)` in ascending term order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Euclidean norm (summed in term order).
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|(_, v)| v * v).sum::<f64>().sqrt()
    }

    /// Dot product with another vector: a merge join over the two
    /// sorted entry lists, accumulated in term order.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j, mut acc) = (0, 0, 0.0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Cosine similarity in `[0, 1]` for non-negative vectors.
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// In-place scaled accumulation: `self += scale * other`.
    pub fn accumulate(&mut self, other: &SparseVector, scale: f64) {
        for (t, v) in other.iter() {
            self.add(t, v * scale);
        }
    }

    /// Scales all weights in place.
    pub fn scale(&mut self, s: f64) {
        if s == 0.0 {
            self.entries.clear();
        } else {
            for (_, v) in self.entries.iter_mut() {
                *v *= s;
            }
        }
    }

    /// Normalizes to unit length (no-op on the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            self.scale(1.0 / n);
        }
    }

    /// The `k` highest-weighted terms, descending.
    pub fn top_k(&self, k: usize) -> Vec<(u32, f64)> {
        let mut all: Vec<(u32, f64)> = self.iter().collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

/// A TF-IDF corpus: term dictionary, document frequencies, and document
/// vectors, built incrementally.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    terms: HashMap<String, u32>,
    term_names: Vec<String>,
    doc_freq: Vec<u32>,
    docs: usize,
}

impl Corpus {
    /// Empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.docs
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.term_names.len()
    }

    /// Id for `term`, interning it if new.
    pub fn term_id(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.terms.get(term) {
            return id;
        }
        // Capacity invariant: term ids are u32 (same rationale as
        // TermDict::intern).
        let id = u32::try_from(self.term_names.len()).expect("term overflow"); // lint:allow(no-panic-paths)
        self.terms.insert(term.to_string(), id);
        self.term_names.push(term.to_string());
        self.doc_freq.push(0);
        id
    }

    /// Id for `term` without interning.
    pub fn lookup(&self, term: &str) -> Option<u32> {
        self.terms.get(term).copied()
    }

    /// Display name for a term id.
    pub fn term_name(&self, id: u32) -> Option<&str> {
        self.term_names.get(id as usize).map(String::as_str)
    }

    /// Indexes a document (tokenized+filtered internally), updating
    /// document frequencies, and returns its raw term-frequency vector.
    pub fn index_document(&mut self, text: &str) -> SparseVector {
        let tokens = tokenize_filtered(text);
        let mut tf = SparseVector::new();
        for tok in &tokens {
            let id = self.term_id(tok);
            tf.add(id, 1.0);
        }
        for (id, _) in tf.iter().collect::<Vec<_>>() {
            self.doc_freq[id as usize] += 1;
        }
        self.docs += 1;
        tf
    }

    /// Smoothed IDF of a term: `ln(1 + N / (1 + df))`.
    pub fn idf(&self, id: u32) -> f64 {
        let df = self.doc_freq.get(id as usize).copied().unwrap_or(0) as f64;
        (1.0 + self.docs as f64 / (1.0 + df)).ln()
    }

    /// Converts a raw TF vector to a unit-length TF-IDF vector using
    /// log-scaled term frequency.
    pub fn tfidf(&self, tf: &SparseVector) -> SparseVector {
        let mut out = SparseVector::new();
        for (id, f) in tf.iter() {
            out.set(id, (1.0 + f).ln() * self.idf(id));
        }
        out.normalize();
        out
    }

    /// One-shot: tokenize `text` against the *existing* vocabulary
    /// (unknown words are interned but have max IDF) and return its
    /// normalized TF-IDF vector. Does not update document frequencies.
    pub fn vectorize(&mut self, text: &str) -> SparseVector {
        let tokens = tokenize_filtered(text);
        let mut tf = SparseVector::new();
        for tok in &tokens {
            let id = self.term_id(tok);
            tf.add(id, 1.0);
        }
        self.tfidf(&tf)
    }

    /// TF-IDF-weights a whole batch of raw TF vectors in parallel
    /// (fixed-chunk, per-element — output is identical for any
    /// `HIVE_THREADS`). Results come back in input order. This is the
    /// corpus-vectorization hot path of the knowledge-network build.
    pub fn tfidf_batch(&self, tfs: &[SparseVector]) -> Vec<SparseVector> {
        hive_par::par_map(tfs, |tf| self.tfidf(tf))
    }

    /// Like [`Self::vectorize`] but read-only: tokens outside the current
    /// vocabulary are silently dropped. Used by query-time services that
    /// hold the corpus immutably.
    pub fn vectorize_known(&self, text: &str) -> SparseVector {
        let tokens = tokenize_filtered(text);
        let mut tf = SparseVector::new();
        for tok in &tokens {
            if let Some(id) = self.lookup(tok) {
                tf.add(id, 1.0);
            }
        }
        self.tfidf(&tf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_vector_ops() {
        let mut v = SparseVector::new();
        v.set(1, 3.0);
        v.set(2, 4.0);
        assert_eq!(v.nnz(), 2);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        v.add(1, -3.0);
        assert_eq!(v.nnz(), 1, "zeroed entries are removed");
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_bounds_and_identity() {
        let a = SparseVector::from_entries([(0, 1.0), (1, 2.0)]);
        let b = SparseVector::from_entries([(1, 2.0), (2, 5.0)]);
        let zero = SparseVector::new();
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        let c = a.cosine(&b);
        assert!(c > 0.0 && c < 1.0);
        assert_eq!(a.cosine(&zero), 0.0);
    }

    #[test]
    fn dot_is_symmetric() {
        let a = SparseVector::from_entries([(0, 1.0), (1, 2.0), (5, 3.0)]);
        let b = SparseVector::from_entries([(1, 4.0)]);
        assert_eq!(a.dot(&b), b.dot(&a));
        assert_eq!(a.dot(&b), 8.0);
    }

    #[test]
    fn idf_downweights_common_terms() {
        let mut c = Corpus::new();
        c.index_document("graph tensor");
        c.index_document("graph community");
        c.index_document("graph stream");
        let graph = c.lookup("graph").unwrap();
        let tensor = c.lookup("tensor").unwrap();
        assert!(c.idf(graph) < c.idf(tensor));
    }

    #[test]
    fn similar_documents_rank_higher() {
        let mut c = Corpus::new();
        let d1 = c.index_document("spectral analysis of tensor streams for social networks");
        let d2 = c.index_document("tensor stream analysis detects social network change");
        let d3 = c.index_document("relational database query optimization and indexing");
        let v1 = c.tfidf(&d1);
        let v2 = c.tfidf(&d2);
        let v3 = c.tfidf(&d3);
        assert!(v1.cosine(&v2) > v1.cosine(&v3));
    }

    #[test]
    fn vectorize_does_not_count_as_document() {
        let mut c = Corpus::new();
        c.index_document("graph processing");
        let before = c.doc_count();
        let v = c.vectorize("graph query");
        assert_eq!(c.doc_count(), before);
        assert!(v.nnz() > 0);
        assert!((v.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_k_ordering() {
        let v = SparseVector::from_entries([(0, 0.1), (1, 0.9), (2, 0.5)]);
        let top = v.top_k(2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
    }

    #[test]
    fn accumulate_scales() {
        let mut a = SparseVector::from_entries([(0, 1.0)]);
        let b = SparseVector::from_entries([(0, 1.0), (1, 2.0)]);
        a.accumulate(&b, 0.5);
        assert!((a.get(0) - 1.5).abs() < 1e-12);
        assert!((a.get(1) - 1.0).abs() < 1e-12);
    }
}
