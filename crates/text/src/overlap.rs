//! Content-reuse / overlap detection via w-shingling (paper ref \[9\],
//! "Efficient Overlap and Content Reuse Detection in Blogs and Online
//! News Articles"). Hive uses it to link near-duplicate material
//! (a presentation re-using an earlier paper's text, cross-posted
//! announcements) in the content layer.

use crate::tokenize::tokenize_filtered;
use std::collections::HashSet;

/// The set of `w`-token shingles of `text` (after normalization).
///
/// If the document has fewer than `w` tokens, the whole token sequence is
/// a single shingle (so short texts still compare).
pub fn shingle_set(text: &str, w: usize) -> HashSet<Vec<String>> {
    let tokens = tokenize_filtered(text);
    let w = w.max(1);
    let mut out = HashSet::new();
    if tokens.is_empty() {
        return out;
    }
    if tokens.len() < w {
        out.insert(tokens);
        return out;
    }
    for win in tokens.windows(w) {
        out.insert(win.to_vec());
    }
    out
}

/// Jaccard similarity of the two documents' `w`-shingle sets, in `[0,1]`.
pub fn shingle_similarity(a: &str, b: &str, w: usize) -> f64 {
    let sa = shingle_set(a, w);
    let sb = shingle_set(b, w);
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Containment of `a` in `b`: fraction of `a`'s shingles present in `b`.
/// Detects quotation / partial reuse even when `b` is much longer.
pub fn containment(a: &str, b: &str, w: usize) -> f64 {
    let sa = shingle_set(a, w);
    if sa.is_empty() {
        return 0.0;
    }
    let sb = shingle_set(b, w);
    let inter = sa.intersection(&sb).count();
    inter as f64 / sa.len() as f64
}

/// A MinHash signature: a fixed-size sketch of a shingle set whose
/// matching-coordinate rate estimates Jaccard similarity — the scalable
/// path of ref \[9\] for detecting reuse across a whole content collection
/// without pairwise shingle-set intersection.
#[derive(Clone, Debug, PartialEq)]
pub struct MinHashSignature {
    values: Vec<u64>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn shingle_hash(shingle: &[String]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for tok in shingle {
        for b in tok.as_bytes() {
            h = splitmix64(h ^ *b as u64);
        }
        h = splitmix64(h ^ 0x1f);
    }
    h
}

impl MinHashSignature {
    /// Computes a `k`-coordinate signature of `text`'s `w`-shingles.
    /// Empty documents get an all-MAX signature (similar only to other
    /// empty documents).
    pub fn compute(text: &str, w: usize, k: usize) -> Self {
        assert!(k > 0, "need at least one hash");
        let shingles = shingle_set(text, w);
        let mut values = vec![u64::MAX; k];
        for sh in &shingles {
            let base = shingle_hash(sh);
            for (i, slot) in values.iter_mut().enumerate() {
                let h = splitmix64(base ^ (i as u64).wrapping_mul(0x9e37_79b9));
                if h < *slot {
                    *slot = h;
                }
            }
        }
        MinHashSignature { values }
    }

    /// Number of hash coordinates.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the signature has no coordinates (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Estimated Jaccard similarity: the fraction of matching coordinates.
    pub fn similarity(&self, other: &MinHashSignature) -> f64 {
        assert_eq!(self.values.len(), other.values.len(), "signature sizes differ");
        let matches = self
            .values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| a == b)
            .count();
        matches as f64 / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_are_maximal() {
        let t = "compressed sensing of tensor streams for social networks";
        assert!((shingle_similarity(t, t, 3) - 1.0).abs() < 1e-12);
        assert!((containment(t, t, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unrelated_texts_are_near_zero() {
        let a = "compressed sensing of tensor streams";
        let b = "medieval history of european castles";
        assert_eq!(shingle_similarity(a, b, 2), 0.0);
    }

    #[test]
    fn partial_reuse_detected_by_containment() {
        let quote = "randomized tensor ensembles encode observed streams compactly";
        let article = format!(
            "Recent systems show impressive scale. {quote}. They also detect \
             structural changes quickly, as several studies confirm at length."
        );
        let c = containment(quote, &article, 2);
        assert!(c > 0.8, "quotation should be contained, got {c}");
        // Plain Jaccard is diluted by the longer article.
        assert!(shingle_similarity(quote, &article, 2) < c);
    }

    #[test]
    fn short_texts_compare() {
        assert!(shingle_similarity("tensor streams", "tensor streams", 5) > 0.99);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(shingle_similarity("", "", 3), 0.0);
        assert_eq!(containment("", "anything here", 3), 0.0);
        assert!(shingle_set("", 3).is_empty());
    }

    #[test]
    fn normalization_makes_matching_robust() {
        let a = "Detecting Structural Changes!";
        let b = "detecting structural change";
        assert!(shingle_similarity(a, b, 2) > 0.5, "stemming/case should align");
    }

    #[test]
    fn minhash_identical_and_disjoint() {
        let t = "compressed sensing of tensor streams for social networks";
        let sig = MinHashSignature::compute(t, 3, 64);
        assert_eq!(sig.similarity(&sig), 1.0);
        let other = MinHashSignature::compute("medieval castles of old europe kingdoms", 3, 64);
        assert!(sig.similarity(&other) < 0.1, "disjoint docs near zero");
    }

    #[test]
    fn minhash_estimates_jaccard() {
        let a = "tensor streams encode social networks; randomized ensembles \
                 monitor tensor streams cheaply; change detection stays accurate";
        let b = "tensor streams encode social networks; randomized ensembles \
                 monitor tensor streams cheaply; decomposition methods cost more";
        let exact = shingle_similarity(a, b, 2);
        let sa = MinHashSignature::compute(a, 2, 512);
        let sb = MinHashSignature::compute(b, 2, 512);
        let est = sa.similarity(&sb);
        assert!(
            (est - exact).abs() < 0.15,
            "minhash estimate {est} vs exact jaccard {exact}"
        );
    }

    #[test]
    fn minhash_empty_documents_match_each_other() {
        let e1 = MinHashSignature::compute("", 3, 16);
        let e2 = MinHashSignature::compute("   ", 3, 16);
        assert_eq!(e1.similarity(&e2), 1.0);
        let full = MinHashSignature::compute("tensor streams here", 3, 16);
        assert!(e1.similarity(&full) < 1.0);
    }

    #[test]
    #[should_panic(expected = "signature sizes differ")]
    fn minhash_size_mismatch_rejected() {
        let a = MinHashSignature::compute("x y z", 2, 8);
        let b = MinHashSignature::compute("x y z", 2, 16);
        a.similarity(&b);
    }
}
