//! Extractive document summarization (paper §2.3 item (c): "content
//! summarization documents and update reports").
//!
//! LexRank-style: sentences become nodes of a similarity graph (TF
//! cosine over normalized tokens), PageRank scores their centrality,
//! and the top-k sentences are returned *in document order* so the
//! summary reads coherently. An optional context vector biases the
//! restart distribution, yielding context-aware summaries — the same
//! contextualization rule every other Hive service follows.

use crate::tfidf::SparseVector;
use crate::tokenize::{sentences, tokenize_filtered};
use std::collections::HashMap;

/// Summarization parameters.
#[derive(Clone, Copy, Debug)]
pub struct DocSumConfig {
    /// Sentences in the summary.
    pub sentences: usize,
    /// Minimum cosine for a similarity edge.
    pub similarity_threshold: f64,
    /// PageRank damping.
    pub damping: f64,
    /// PageRank iterations.
    pub iters: usize,
}

impl Default for DocSumConfig {
    fn default() -> Self {
        DocSumConfig {
            sentences: 3,
            similarity_threshold: 0.1,
            damping: 0.85,
            iters: 50,
        }
    }
}

/// An extractive summary.
#[derive(Clone, Debug, PartialEq)]
pub struct DocumentSummary {
    /// Selected sentences, in document order.
    pub sentences: Vec<String>,
    /// Original indexes of the selected sentences.
    pub indexes: Vec<usize>,
    /// Centrality score per selected sentence (same order).
    pub scores: Vec<f64>,
}

impl DocumentSummary {
    /// The summary as one string.
    pub fn text(&self) -> String {
        self.sentences.join(" ")
    }
}

/// Sentence TF vector over a local vocabulary.
fn sentence_vector(tokens: &[String], vocab: &mut HashMap<String, u32>) -> SparseVector {
    let mut v = SparseVector::new();
    for t in tokens {
        let next = vocab.len() as u32;
        let id = *vocab.entry(t.clone()).or_insert(next);
        v.add(id, 1.0);
    }
    v.normalize();
    v
}

/// Summarizes `document` to at most `cfg.sentences` sentences. With
/// `context`, restart mass is proportional to each sentence's similarity
/// to the context terms, biasing the summary toward the reader's current
/// interest. Returns `None` for an empty document.
pub fn summarize_document(
    document: &str,
    context_terms: &[&str],
    cfg: DocSumConfig,
) -> Option<DocumentSummary> {
    let sents = sentences(document);
    if sents.is_empty() {
        return None;
    }
    let mut vocab: HashMap<String, u32> = HashMap::new();
    let vectors: Vec<SparseVector> = sents
        .iter()
        .map(|s| sentence_vector(&tokenize_filtered(s), &mut vocab))
        .collect();
    let n = sents.len();
    // Similarity graph (dense loop is fine at document scale).
    let mut weights: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            let sim = vectors[i].cosine(&vectors[j]);
            if sim >= cfg.similarity_threshold {
                weights[i].push((j, sim));
                weights[j].push((i, sim));
            }
        }
    }
    // Restart distribution: uniform, or context-biased.
    let context_tokens: Vec<String> = context_terms
        .iter()
        .flat_map(|t| tokenize_filtered(t))
        .collect();
    let restart: Vec<f64> = if context_tokens.is_empty() {
        vec![1.0 / n as f64; n]
    } else {
        let cv = sentence_vector(&context_tokens, &mut vocab);
        let raw: Vec<f64> = vectors.iter().map(|v| 0.05 + v.cosine(&cv)).collect();
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|r| r / total).collect()
    };
    // PageRank.
    let strength: Vec<f64> = weights
        .iter()
        .map(|l| l.iter().map(|(_, w)| w).sum())
        .collect();
    let mut rank = restart.clone();
    for _ in 0..cfg.iters {
        let mut next: Vec<f64> = restart.iter().map(|r| (1.0 - cfg.damping) * r).collect();
        let mut dangling = 0.0;
        for i in 0..n {
            if strength[i] == 0.0 {
                dangling += rank[i];
                continue;
            }
            let share = cfg.damping * rank[i] / strength[i];
            for &(j, w) in &weights[i] {
                next[j] += share * w;
            }
        }
        for (i, r) in restart.iter().enumerate() {
            next[i] += cfg.damping * dangling * r;
        }
        rank = next;
    }
    // Top-k by rank, then restore document order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| rank[b].total_cmp(&rank[a]).then(a.cmp(&b)));
    let mut picked: Vec<usize> = order.into_iter().take(cfg.sentences.max(1)).collect();
    picked.sort_unstable();
    Some(DocumentSummary {
        sentences: picked.iter().map(|&i| sents[i].to_string()).collect(),
        scores: picked.iter().map(|&i| rank[i]).collect(),
        indexes: picked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "Tensor streams model evolving social networks. \
        Compressed sensing sketches encode tensor streams compactly. \
        Sketches of tensor streams detect structural change quickly. \
        The weather in Genoa is mild in March. \
        Transactions need isolation levels. \
        Our experiments show tensor stream sketches scale to large social networks.";

    #[test]
    fn summary_prefers_central_sentences() {
        let s = summarize_document(DOC, &[], DocSumConfig::default()).unwrap();
        assert_eq!(s.sentences.len(), 3);
        // The tensor-stream sentences form the central cluster; the
        // weather aside should not make the cut.
        assert!(
            !s.text().contains("weather"),
            "off-topic sentence excluded: {}",
            s.text()
        );
        assert!(s.text().to_lowercase().contains("tensor"));
    }

    #[test]
    fn summary_preserves_document_order() {
        let s = summarize_document(DOC, &[], DocSumConfig::default()).unwrap();
        let mut sorted = s.indexes.clone();
        sorted.sort_unstable();
        assert_eq!(s.indexes, sorted);
    }

    #[test]
    fn context_biases_selection() {
        let cfg = DocSumConfig { sentences: 1, ..Default::default() };
        let neutral = summarize_document(DOC, &[], cfg).unwrap();
        let biased = summarize_document(DOC, &["transaction isolation"], cfg).unwrap();
        assert!(
            biased.text().contains("isolation"),
            "context pulls in the transactions sentence: {}",
            biased.text()
        );
        assert_ne!(neutral.text(), biased.text());
    }

    #[test]
    fn short_documents_pass_through() {
        let s = summarize_document("One sentence only.", &[], DocSumConfig::default()).unwrap();
        assert_eq!(s.sentences, vec!["One sentence only.".to_string()]);
        assert!(summarize_document("", &[], DocSumConfig::default()).is_none());
    }

    #[test]
    fn k_bounds_respected() {
        let cfg = DocSumConfig { sentences: 2, ..Default::default() };
        let s = summarize_document(DOC, &[], cfg).unwrap();
        assert_eq!(s.sentences.len(), 2);
        assert_eq!(s.scores.len(), 2);
    }

    #[test]
    fn deterministic() {
        let a = summarize_document(DOC, &["tensor"], DocSumConfig::default()).unwrap();
        let b = summarize_document(DOC, &["tensor"], DocSumConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
