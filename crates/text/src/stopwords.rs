//! English stopword list tuned for scientific abstracts.

use std::collections::HashSet;
use std::sync::OnceLock;

/// Stopwords: common English function words plus boilerplate that is
/// uninformative in paper titles/abstracts ("paper", "approach", ...).
static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "also", "am", "an", "and",
    "any", "are", "as", "at", "be", "because", "been", "before", "being", "below", "between",
    "both", "but", "by", "can", "cannot", "could", "did", "do", "does", "doing", "down",
    "during", "each", "et", "few", "for", "from", "further", "had", "has", "have", "having",
    "he", "her", "here", "hers", "him", "his", "how", "however", "i", "if", "in", "into",
    "is", "it", "its", "itself", "just", "may", "me", "might", "more", "most", "must", "my",
    "new", "no", "nor", "not", "now", "of", "off", "on", "once", "only", "or", "other",
    "our", "ours", "out", "over", "own", "same", "she", "should", "so", "some", "such",
    "than", "that", "the", "their", "theirs", "them", "then", "there", "these", "they",
    "this", "those", "through", "to", "too", "under", "until", "up", "upon", "us", "use",
    "used", "using", "very", "via", "was", "we", "well", "were", "what", "when", "where",
    "which", "while", "who", "whom", "why", "will", "with", "within", "without", "would",
    "you", "your", "yours",
    // Scientific boilerplate.
    "abstract", "al", "approach", "based", "demonstrate", "introduction", "method",
    "novel", "paper", "present", "propose", "proposed", "results", "show", "study", "work",
];

fn set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// True if `word` (already lowercase) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    set().contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_words_detected() {
        for w in ["the", "and", "paper", "we", "using"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_kept() {
        for w in ["graph", "tensor", "recommendation", "conference"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn case_sensitive_by_contract() {
        // Callers normalize to lowercase first (tokenize does this).
        assert!(!is_stopword("The"));
    }
}
