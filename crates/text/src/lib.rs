//! # hive-text — content analysis substrate
//!
//! Text services behind Hive's "understanding the personal activity
//! context through ... analysis of user supplied content" (paper §2.1) and
//! the context-aware ranking/preview services of §2.3:
//!
//! * tokenization with stopword filtering and a Porter-style stemmer,
//! * TF-IDF corpora, sparse vectors, and cosine similarity (content
//!   similarity is one of the nine relationship evidence types),
//! * **keyphrase extraction** via TextRank over co-occurrence windows —
//!   the "key concept extraction for automated annotations" service,
//! * **context-aware snippet extraction** (paper ref \[14\]),
//! * **AlphaSum-style size-constrained table summarization** over value
//!   lattices (paper ref \[13\]) for the scheduled update reports,
//! * w-shingling overlap/content-reuse detection (paper ref \[9\]).
//!
//! ```
//! use hive_text::tokenize::tokenize_filtered;
//! let toks = tokenize_filtered("Scalable graph processing for the Web");
//! assert!(toks.contains(&"graph".to_string())); // stemmed, stopwords gone
//! assert!(!toks.contains(&"the".to_string()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod docsum;
pub mod keyphrase;
pub mod overlap;
pub mod snippet;
pub mod stem;
pub mod stopwords;
pub mod summarize;
pub mod tfidf;
pub mod tokenize;

pub use docsum::{summarize_document, DocSumConfig, DocumentSummary};
pub use keyphrase::{extract_keyphrases, Keyphrase, KeyphraseConfig};
pub use overlap::{containment, shingle_set, shingle_similarity, MinHashSignature};
pub use snippet::{extract_snippet, Snippet, SnippetConfig};
pub use summarize::{summarize_table, SummaryConfig, Table, TableSummary, ValueLattice};
pub use tfidf::{Corpus, SparseVector};
pub use tokenize::{tokenize, tokenize_filtered};
