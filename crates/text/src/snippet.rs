//! Context-aware snippet extraction (paper §2.3 item (a), ref \[14\]).
//!
//! Given a document and a *context* (query terms from the active workpad
//! or the user's activity vector), returns the contiguous sentence window
//! that best covers the context: coverage of distinct context terms,
//! term density, and an early-position prior, traded off per \[14\]'s
//! "relevant snippets for web navigation" formulation.

use crate::tokenize::{sentences, tokenize_filtered};
use std::collections::HashSet;

/// An extracted snippet.
#[derive(Clone, Debug, PartialEq)]
pub struct Snippet {
    /// The snippet text (whole sentences, original casing).
    pub text: String,
    /// Index of the first sentence in the document.
    pub start_sentence: usize,
    /// Number of sentences included.
    pub sentence_count: usize,
    /// Relevance score; 0 when no context term occurs in the document.
    pub score: f64,
}

/// Extraction parameters.
#[derive(Clone, Copy, Debug)]
pub struct SnippetConfig {
    /// Maximum sentences per snippet window.
    pub max_sentences: usize,
    /// Weight of distinct-term coverage vs. density.
    pub coverage_weight: f64,
    /// Strength of the early-position prior in `[0, 1)`.
    pub position_weight: f64,
}

impl Default for SnippetConfig {
    fn default() -> Self {
        SnippetConfig { max_sentences: 2, coverage_weight: 0.6, position_weight: 0.1 }
    }
}

/// Extracts the best snippet of up to `cfg.max_sentences` consecutive
/// sentences for the given context terms (raw words; normalized
/// internally). Returns `None` for an empty document.
pub fn extract_snippet(document: &str, context_terms: &[&str], cfg: SnippetConfig) -> Option<Snippet> {
    let sents = sentences(document);
    if sents.is_empty() {
        return None;
    }
    let context: HashSet<String> = context_terms
        .iter()
        .flat_map(|t| tokenize_filtered(t))
        .collect();
    let sent_tokens: Vec<Vec<String>> = sents.iter().map(|s| tokenize_filtered(s)).collect();
    let n = sents.len();
    let win = cfg.max_sentences.max(1);
    let mut best: Option<(f64, usize, usize)> = None;
    for start in 0..n {
        for len in 1..=win.min(n - start) {
            let window_tokens: Vec<&String> =
                sent_tokens[start..start + len].iter().flatten().collect();
            if window_tokens.is_empty() {
                continue;
            }
            let covered: HashSet<&String> = window_tokens
                .iter()
                .copied()
                .filter(|t| context.contains(*t))
                .collect();
            let coverage = if context.is_empty() {
                0.0
            } else {
                covered.len() as f64 / context.len() as f64
            };
            let hits = window_tokens.iter().filter(|t| context.contains(**t)).count();
            let density = hits as f64 / window_tokens.len() as f64;
            let position = 1.0 - cfg.position_weight * (start as f64 / n as f64);
            let score =
                (cfg.coverage_weight * coverage + (1.0 - cfg.coverage_weight) * density) * position;
            let better = match best {
                None => true,
                Some((bs, _, blen)) => {
                    score > bs + 1e-12 || ((score - bs).abs() <= 1e-12 && len < blen)
                }
            };
            if better {
                best = Some((score, start, len));
            }
        }
    }
    let (score, start, len) = best?;
    Some(Snippet {
        text: sents[start..start + len].join(" "),
        start_sentence: start,
        sentence_count: len,
        score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "This paper studies query optimization. \
        Tensor streams model evolving social networks efficiently. \
        Our compressed sensing sketch detects structural changes in tensor streams. \
        Experiments use three datasets. \
        Finally we discuss limitations.";

    #[test]
    fn finds_context_bearing_sentences() {
        let s = extract_snippet(DOC, &["tensor streams", "change detection"], SnippetConfig::default())
            .unwrap();
        assert!(s.text.contains("tensor streams") || s.text.contains("Tensor streams"));
        assert!(s.score > 0.0);
    }

    #[test]
    fn respects_window_limit() {
        let cfg = SnippetConfig { max_sentences: 1, ..Default::default() };
        let s = extract_snippet(DOC, &["tensor"], cfg).unwrap();
        assert_eq!(s.sentence_count, 1);
    }

    #[test]
    fn no_context_terms_prefers_early_short() {
        let s = extract_snippet(DOC, &[], SnippetConfig::default()).unwrap();
        assert_eq!(s.score, 0.0);
        assert_eq!(s.start_sentence, 0);
        assert_eq!(s.sentence_count, 1);
    }

    #[test]
    fn empty_document() {
        assert!(extract_snippet("", &["x"], SnippetConfig::default()).is_none());
    }

    #[test]
    fn coverage_beats_single_term_density() {
        // One sentence repeats a single context term; another pair covers both.
        let doc = "Graphs graphs graphs graphs. Community detection in graphs works well.";
        let s = extract_snippet(doc, &["graphs", "community"], SnippetConfig::default()).unwrap();
        assert!(
            s.text.contains("Community"),
            "coverage should dominate: {}",
            s.text
        );
    }

    #[test]
    fn position_prior_breaks_ties() {
        let doc = "Tensor analysis is hard. Filler sentence here. Tensor analysis is hard.";
        let s = extract_snippet(
            doc,
            &["tensor"],
            SnippetConfig { max_sentences: 1, ..Default::default() },
        )
        .unwrap();
        assert_eq!(s.start_sentence, 0, "earlier of two equal sentences wins");
    }
}
