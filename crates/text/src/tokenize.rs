//! Tokenization: lowercase alphanumeric word splitting, optional stopword
//! removal and stemming.

use crate::stem::stem;
use crate::stopwords::is_stopword;

/// Splits `text` into lowercase word tokens. A token is a maximal run of
/// alphanumeric characters; everything else separates. Tokens shorter
/// than 2 characters are dropped (they are noise in scientific text).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            if cur.chars().count() >= 2 {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if cur.chars().count() >= 2 {
        out.push(cur);
    }
    out
}

/// Tokenizes, removes stopwords, and stems. This is the normalization
/// every indexing/similarity service applies.
pub fn tokenize_filtered(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .map(|t| stem(&t))
        .collect()
}

/// Splits text into sentences on `.`, `!`, `?` boundaries, trimming
/// whitespace and dropping empties. Used by the snippet extractor.
pub fn sentences(text: &str) -> Vec<&str> {
    text.split_inclusive(['.', '!', '?'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(
            tokenize("Hello, World! x2"),
            vec!["hello", "world", "x2"]
        );
    }

    #[test]
    fn short_tokens_dropped() {
        assert_eq!(tokenize("a b cd"), vec!["cd"]);
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Türkçe ÖRNEK"), vec!["türkçe", "örnek"]);
    }

    #[test]
    fn filtered_removes_stopwords_and_stems() {
        let toks = tokenize_filtered("The processing of the graphs");
        assert!(!toks.iter().any(|t| t == "the" || t == "of"));
        assert!(toks.iter().any(|t| t.starts_with("process")));
        assert!(toks.iter().any(|t| t == "graph"));
    }

    #[test]
    fn sentences_split() {
        let s = sentences("First one. Second! Third? ");
        assert_eq!(s, vec!["First one.", "Second!", "Third?"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize_filtered("  .,; ").is_empty());
        assert!(sentences("").is_empty());
    }
}
