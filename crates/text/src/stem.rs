//! A Porter-style suffix stemmer (steps 1a/1b plus common derivational
//! suffixes). Not a full Porter implementation, but consistent: equal
//! inputs always map to equal stems, which is all the similarity and
//! indexing layers require.

/// Returns true if `ch` is an English vowel.
fn is_vowel(ch: char) -> bool {
    matches!(ch, 'a' | 'e' | 'i' | 'o' | 'u')
}

/// True if the word contains a vowel before position `end`.
fn has_vowel(word: &str, end: usize) -> bool {
    word[..end].chars().any(is_vowel)
}

/// Stems a lowercase word.
pub fn stem(word: &str) -> String {
    let mut w = word.to_string();

    // Step 1a: plurals.
    if w.ends_with("sses") {
        w.truncate(w.len() - 2); // sses -> ss
    } else if w.ends_with("ies") {
        w.truncate(w.len() - 2); // ies -> i
    } else if w.ends_with('s') && !w.ends_with("ss") && w.len() > 3 {
        w.truncate(w.len() - 1);
    }

    // Step 1b: -ed / -ing.
    if w.ends_with("eed") {
        if w.len() > 4 {
            w.truncate(w.len() - 1); // agreed -> agree
        }
    } else if w.ends_with("ed") && w.len() > 4 && has_vowel(&w, w.len() - 2) {
        w.truncate(w.len() - 2);
        fixup_after_strip(&mut w);
    } else if w.ends_with("ing") && w.len() > 5 && has_vowel(&w, w.len() - 3) {
        w.truncate(w.len() - 3);
        fixup_after_strip(&mut w);
    }

    // Derivational suffixes (longest first).
    for (suffix, min_len) in [
        ("ization", 9),
        ("ational", 9),
        ("fulness", 9),
        ("iveness", 9),
        ("ousness", 9),
        ("ization", 9),
        ("ibility", 9),
        ("ability", 9),
        ("ically", 8),
        ("ation", 7),
        ("ment", 7),
        ("ness", 7),
        ("tion", 7),
        ("ance", 7),
        ("ence", 7),
        ("able", 7),
        ("ible", 7),
        ("ally", 7),
        ("ity", 6),
        ("ive", 6),
        ("ous", 6),
        ("ful", 6),
        ("al", 5),
        ("er", 5),
        ("ly", 5),
    ] {
        if w.len() >= min_len && w.ends_with(suffix) {
            w.truncate(w.len() - suffix.len());
            break;
        }
    }

    // Final -e and doubled consonants left by stripping.
    if w.len() > 4 && w.ends_with('e') {
        w.truncate(w.len() - 1);
    }
    w
}

/// After stripping -ed/-ing: undouble trailing consonants (stopped ->
/// stop) and restore a final 'e' for short c-v-c stems (caching -> cache
/// is not recoverable in general; we approximate with "at/bl/iz" rules).
fn fixup_after_strip(w: &mut String) {
    let bytes = w.as_bytes();
    let n = bytes.len();
    if n >= 2 && bytes[n - 1] == bytes[n - 2] {
        let c = bytes[n - 1] as char;
        if !is_vowel(c) && !matches!(c, 'l' | 's' | 'z') {
            w.truncate(n - 1);
            return;
        }
    }
    if w.ends_with("at") || w.ends_with("bl") || w.ends_with("iz") {
        w.push('e');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plurals() {
        assert_eq!(stem("graphs"), stem("graph"));
        assert_eq!(stem("queries"), stem("queri"));
        assert_eq!(stem("classes"), "class");
        // Short words keep their s.
        assert_eq!(stem("gas"), "gas");
    }

    #[test]
    fn ed_ing_forms_conflate() {
        assert_eq!(stem("processing"), stem("processed"));
        assert_eq!(stem("stopped"), "stop");
        assert_eq!(stem("agreed"), stem("agree"));
    }

    #[test]
    fn derivational_suffixes() {
        assert_eq!(stem("recommendation"), stem("recommend"));
        assert_eq!(stem("scalability"), stem("scalable"));
    }

    #[test]
    fn stemming_is_deterministic() {
        for w in ["tensor", "communities", "summarization", "following"] {
            assert_eq!(stem(w), stem(w));
        }
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("web"), "web");
        assert_eq!(stem("db"), "db");
    }
}
