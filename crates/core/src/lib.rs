//! # hive-core — the Hive Open Research Network platform
//!
//! A full re-implementation of the platform demonstrated in *"Hive Open
//! Research Network Platform"* (Kim, Chen, Candan, Sapino — EDBT 2013):
//! a conference-centric, cross-conference social platform where
//! researchers seed and expand research networks, track sessions, ask and
//! answer questions, follow peers, and curate **workpads** that double as
//! the active context for every search and recommendation.
//!
//! The paper's web stack (Joomla/JomSocial) is replaced by a typed,
//! in-memory, multi-indexed platform database ([`db::HiveDb`]) and a
//! service facade ([`api::Hive`]) exposing every service of the paper's
//! Table 1:
//!
//! | Table 1 group | Module |
//! |---|---|
//! | Concept map & personalization | [`knowledge`], [`context`] |
//! | Peer network services | [`peers`], [`evidence`], [`feed`] |
//! | Discovery / recommendation / preview | [`discover`], [`collab`], [`communities`], [`reports`] |
//! | Personal activity history | [`history`] |
//!
//! The knowledge substrates live in sibling crates: `hive-store`
//! (weighted RDF), `hive-graph` (graph analytics, INI), `hive-text`
//! (TF-IDF, snippets, AlphaSum), `hive-concept` (concept maps, layer
//! alignment), `hive-scent` (tensor-stream change detection).
//!
//! ```
//! use hive_core::sim::{SimConfig, WorldBuilder};
//! use hive_core::api::Hive;
//!
//! let world = WorldBuilder::new(SimConfig::small()).build();
//! let hive = Hive::new(world.db);
//! assert!(!hive.db().user_ids().is_empty());
//! let zach = hive.db().user_ids()[0];
//! let peers = hive.recommend_peers(zach, hive_core::peers::PeerRecConfig::default());
//! assert!(!peers.is_empty());
//! ```
//!
//! See `examples/` for end-to-end tours (quickstart, the paper's "Zach"
//! scenario, workpad contexts, knowledge queries).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod clock;
pub mod collab;
pub mod communities;
pub mod config;
pub mod context;
pub mod db;
pub mod discover;
pub mod error;
pub mod evidence;
pub mod feed;
pub mod history;
pub mod ids;
pub mod knowledge;
pub mod model;
pub mod peers;
pub mod persist;
pub mod ppr;
pub mod reports;
pub mod serve;
pub mod sim;
pub mod trends;

pub use api::Hive;
pub use db::index::{ActivityQuery, DbIndexes, ResourceQuery, TickRange};
pub use db::{DbDelta, HiveDb, DB_DELTA_LOG_CAP};
pub use error::HiveError;
pub use model::ActivityCategory;
pub use ppr::PprCache;
pub use serve::{Epoch, HiveServer, ReadHandle};
