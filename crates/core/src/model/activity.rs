//! The append-only activity log.
//!
//! Every user-visible action lands here; §2.1's "understanding the
//! personal activity context through access patterns" and the
//! activity-similarity evidence both read this log, and the history
//! service (Table 1, last row) searches it.

use crate::clock::Timestamp;
use crate::ids::{
    AnswerId, CommentId, ConferenceId, PaperId, PresentationId, QuestionId, SessionId, UserId,
    WorkpadId,
};

/// One kind of platform activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ActivityEvent {
    /// Registered for / marked attendance at a conference.
    AttendConference(ConferenceId),
    /// Checked into a session.
    CheckIn(SessionId),
    /// Uploaded a presentation.
    UploadPresentation(PresentationId),
    /// Revised presentation slides.
    ReviseSlides(PresentationId),
    /// Viewed a presentation's slides.
    ViewPresentation(PresentationId),
    /// Viewed a paper.
    ViewPaper(PaperId),
    /// Asked a question.
    AskQuestion(QuestionId),
    /// Answered a question.
    AnswerQuestion(AnswerId),
    /// Commented.
    Comment(CommentId),
    /// Started following another user.
    Follow(UserId),
    /// Sent a connection request.
    ConnectRequest(UserId),
    /// Accepted a connection request from the given user.
    ConnectAccept(UserId),
    /// Created or switched the active workpad.
    ActivateWorkpad(WorkpadId),
    /// Dropped an item onto a workpad.
    WorkpadAdd(WorkpadId),
}

hive_json::impl_json_enum_payload!(ActivityEvent {
    AttendConference,
    CheckIn,
    UploadPresentation,
    ReviseSlides,
    ViewPresentation,
    ViewPaper,
    AskQuestion,
    AnswerQuestion,
    Comment,
    Follow,
    ConnectRequest,
    ConnectAccept,
    ActivateWorkpad,
    WorkpadAdd,
});

impl ActivityEvent {
    /// Coarse category label used by report tables and the history
    /// service's value lattice.
    pub fn category(&self) -> &'static str {
        match self {
            ActivityEvent::AttendConference(_) => "attend",
            ActivityEvent::CheckIn(_) => "checkin",
            ActivityEvent::UploadPresentation(_) | ActivityEvent::ReviseSlides(_) => "content",
            ActivityEvent::ViewPresentation(_) | ActivityEvent::ViewPaper(_) => "browse",
            ActivityEvent::AskQuestion(_)
            | ActivityEvent::AnswerQuestion(_)
            | ActivityEvent::Comment(_) => "discuss",
            ActivityEvent::Follow(_)
            | ActivityEvent::ConnectRequest(_)
            | ActivityEvent::ConnectAccept(_) => "network",
            ActivityEvent::ActivateWorkpad(_) | ActivityEvent::WorkpadAdd(_) => "workpad",
        }
    }
}

/// A timestamped log record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActivityRecord {
    /// The acting user.
    pub user: UserId,
    /// What happened.
    pub event: ActivityEvent,
    /// When.
    pub at: Timestamp,
}

hive_json::impl_json_struct!(ActivityRecord { user, event, at });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        assert_eq!(ActivityEvent::CheckIn(SessionId(0)).category(), "checkin");
        assert_eq!(ActivityEvent::ViewPaper(PaperId(0)).category(), "browse");
        assert_eq!(ActivityEvent::AskQuestion(QuestionId(0)).category(), "discuss");
        assert_eq!(ActivityEvent::Follow(UserId(0)).category(), "network");
        assert_eq!(
            ActivityEvent::ActivateWorkpad(WorkpadId(0)).category(),
            "workpad"
        );
        assert_eq!(
            ActivityEvent::UploadPresentation(PresentationId(0)).category(),
            "content"
        );
        assert_eq!(
            ActivityEvent::AttendConference(ConferenceId(0)).category(),
            "attend"
        );
    }
}
