//! The append-only activity log.
//!
//! Every user-visible action lands here; §2.1's "understanding the
//! personal activity context through access patterns" and the
//! activity-similarity evidence both read this log, and the history
//! service (Table 1, last row) searches it.

use crate::clock::Timestamp;
use crate::ids::{
    AnswerId, CommentId, ConferenceId, PaperId, PresentationId, QuestionId, SessionId, UserId,
    WorkpadId,
};

/// One kind of platform activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ActivityEvent {
    /// Registered for / marked attendance at a conference.
    AttendConference(ConferenceId),
    /// Checked into a session.
    CheckIn(SessionId),
    /// Uploaded a presentation.
    UploadPresentation(PresentationId),
    /// Revised presentation slides.
    ReviseSlides(PresentationId),
    /// Viewed a presentation's slides.
    ViewPresentation(PresentationId),
    /// Viewed a paper.
    ViewPaper(PaperId),
    /// Asked a question.
    AskQuestion(QuestionId),
    /// Answered a question.
    AnswerQuestion(AnswerId),
    /// Commented.
    Comment(CommentId),
    /// Started following another user.
    Follow(UserId),
    /// Sent a connection request.
    ConnectRequest(UserId),
    /// Accepted a connection request from the given user.
    ConnectAccept(UserId),
    /// Created or switched the active workpad.
    ActivateWorkpad(WorkpadId),
    /// Dropped an item onto a workpad.
    WorkpadAdd(WorkpadId),
}

hive_json::impl_json_enum_payload!(ActivityEvent {
    AttendConference,
    CheckIn,
    UploadPresentation,
    ReviseSlides,
    ViewPresentation,
    ViewPaper,
    AskQuestion,
    AnswerQuestion,
    Comment,
    Follow,
    ConnectRequest,
    ConnectAccept,
    ActivateWorkpad,
    WorkpadAdd,
});

impl ActivityEvent {
    /// Coarse category label used by report tables and the history
    /// service's value lattice. Shorthand for
    /// `ActivityCategory::of(self).label()`.
    pub fn category(&self) -> &'static str {
        ActivityCategory::of(self).label()
    }
}

/// Typed coarse activity category — one per [`ActivityEvent`] group.
///
/// The query surface (`ActivityQuery`, `HistoryQuery`) takes these
/// instead of the legacy `&'static str` labels, so a typo'd category
/// fails to compile instead of silently matching nothing. The string
/// form survives as [`ActivityCategory::label`] for display, report
/// lattices, and follow-filter persistence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ActivityCategory {
    /// Conference attendance registrations.
    Attend,
    /// Session check-ins.
    CheckIn,
    /// Presentation uploads and slide revisions.
    Content,
    /// Paper and presentation views.
    Browse,
    /// Questions, answers, and comments.
    Discuss,
    /// Follows, connection requests, and accepts.
    Network,
    /// Workpad activations and additions.
    Workpad,
}

impl ActivityCategory {
    /// Every category, in stable posting-slot order.
    pub const ALL: [ActivityCategory; 7] = [
        ActivityCategory::Attend,
        ActivityCategory::CheckIn,
        ActivityCategory::Content,
        ActivityCategory::Browse,
        ActivityCategory::Discuss,
        ActivityCategory::Network,
        ActivityCategory::Workpad,
    ];

    /// Stable display label (the legacy string form).
    pub fn label(self) -> &'static str {
        match self {
            ActivityCategory::Attend => "attend",
            ActivityCategory::CheckIn => "checkin",
            ActivityCategory::Content => "content",
            ActivityCategory::Browse => "browse",
            ActivityCategory::Discuss => "discuss",
            ActivityCategory::Network => "network",
            ActivityCategory::Workpad => "workpad",
        }
    }

    /// The category of an event.
    pub fn of(event: &ActivityEvent) -> Self {
        match event {
            ActivityEvent::AttendConference(_) => ActivityCategory::Attend,
            ActivityEvent::CheckIn(_) => ActivityCategory::CheckIn,
            ActivityEvent::UploadPresentation(_) | ActivityEvent::ReviseSlides(_) => {
                ActivityCategory::Content
            }
            ActivityEvent::ViewPresentation(_) | ActivityEvent::ViewPaper(_) => {
                ActivityCategory::Browse
            }
            ActivityEvent::AskQuestion(_)
            | ActivityEvent::AnswerQuestion(_)
            | ActivityEvent::Comment(_) => ActivityCategory::Discuss,
            ActivityEvent::Follow(_)
            | ActivityEvent::ConnectRequest(_)
            | ActivityEvent::ConnectAccept(_) => ActivityCategory::Network,
            ActivityEvent::ActivateWorkpad(_) | ActivityEvent::WorkpadAdd(_) => {
                ActivityCategory::Workpad
            }
        }
    }

    /// Parses a legacy label back into the typed form.
    pub fn parse(label: &str) -> Option<Self> {
        ActivityCategory::ALL.into_iter().find(|c| c.label() == label)
    }

    /// Dense posting-array slot of this category.
    pub(crate) fn slot(self) -> usize {
        self as usize
    }
}

/// A timestamped log record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActivityRecord {
    /// The acting user.
    pub user: UserId,
    /// What happened.
    pub event: ActivityEvent,
    /// When.
    pub at: Timestamp,
}

hive_json::impl_json_struct!(ActivityRecord { user, event, at });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        assert_eq!(ActivityEvent::CheckIn(SessionId(0)).category(), "checkin");
        assert_eq!(ActivityEvent::ViewPaper(PaperId(0)).category(), "browse");
        assert_eq!(ActivityEvent::AskQuestion(QuestionId(0)).category(), "discuss");
        assert_eq!(ActivityEvent::Follow(UserId(0)).category(), "network");
        assert_eq!(
            ActivityEvent::ActivateWorkpad(WorkpadId(0)).category(),
            "workpad"
        );
        assert_eq!(
            ActivityEvent::UploadPresentation(PresentationId(0)).category(),
            "content"
        );
        assert_eq!(
            ActivityEvent::AttendConference(ConferenceId(0)).category(),
            "attend"
        );
    }

    #[test]
    fn typed_categories_round_trip_their_labels() {
        for c in ActivityCategory::ALL {
            assert_eq!(ActivityCategory::parse(c.label()), Some(c));
        }
        assert_eq!(ActivityCategory::parse("no-such-category"), None);
        // Slots are dense and unique: they address the posting arrays.
        let slots: Vec<usize> = ActivityCategory::ALL.iter().map(|c| c.slot()).collect();
        assert_eq!(slots, (0..ActivityCategory::ALL.len()).collect::<Vec<_>>());
    }
}
