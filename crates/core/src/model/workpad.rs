//! Workpads and exported collections (paper §2, Figure 4).
//!
//! "The workpad interface is a tool to help the user keep record of the
//! things that attract his or her interest ... The content of the
//! currently active workpad defines the user's activity context and all
//! the searches and recommendations are contextualized according to this
//! active workpad. The user can export workpads as collections accessible
//! to others or import a collection as active workpad."

use crate::ids::{
    CollectionId, PaperId, PresentationId, QuestionId, SessionId, UserId,
};

/// Anything that can be dragged onto a workpad.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkpadItem {
    /// A researcher's avatar.
    UserAvatar(UserId),
    /// A paper link.
    Paper(PaperId),
    /// A presentation.
    Presentation(PresentationId),
    /// A session.
    Session(SessionId),
    /// A question thread.
    Question(QuestionId),
    /// A previously exported collection.
    Collection(CollectionId),
    /// A free-form concept note ("things that tickle the mind").
    Note(u32),
}

hive_json::impl_json_enum_payload!(WorkpadItem {
    UserAvatar,
    Paper,
    Presentation,
    Session,
    Question,
    Collection,
    Note,
});

/// A named workpad owned by one user.
#[derive(Clone, Debug, PartialEq)]
pub struct Workpad {
    /// Owner.
    pub owner: UserId,
    /// Display name, e.g. `"session"` or `"to investigate later"`.
    pub name: String,
    /// Items in drop order (duplicates are rejected by the DB layer).
    pub items: Vec<WorkpadItem>,
    /// Free-form note texts referenced by `WorkpadItem::Note` ids.
    pub notes: Vec<String>,
}

hive_json::impl_json_struct!(Workpad { owner, name, items, notes });

impl Workpad {
    /// Creates an empty workpad.
    pub fn new(owner: UserId, name: impl Into<String>) -> Self {
        Workpad { owner, name: name.into(), items: Vec::new(), notes: Vec::new() }
    }

    /// True if the item is already on the pad.
    pub fn contains(&self, item: &WorkpadItem) -> bool {
        self.items.contains(item)
    }

    /// Adds an item if absent; returns whether it was added.
    pub fn add(&mut self, item: WorkpadItem) -> bool {
        if self.contains(&item) {
            false
        } else {
            self.items.push(item);
            true
        }
    }

    /// Removes an item; returns whether it was present.
    pub fn remove(&mut self, item: &WorkpadItem) -> bool {
        let before = self.items.len();
        self.items.retain(|i| i != item);
        self.items.len() != before
    }

    /// Adds a free-form note and returns its item.
    pub fn add_note(&mut self, text: impl Into<String>) -> WorkpadItem {
        self.notes.push(text.into());
        let item = WorkpadItem::Note(self.notes.len() as u32 - 1);
        self.items.push(item);
        item
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the pad is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// An exported (shareable, immutable) snapshot of a workpad.
#[derive(Clone, Debug, PartialEq)]
pub struct Collection {
    /// Who exported it.
    pub owner: UserId,
    /// Name carried over from the source workpad.
    pub name: String,
    /// Frozen items.
    pub items: Vec<WorkpadItem>,
    /// Frozen note texts.
    pub notes: Vec<String>,
}

hive_json::impl_json_struct!(Collection { owner, name, items, notes });

impl Collection {
    /// Freezes a workpad into a collection.
    pub fn from_workpad(pad: &Workpad) -> Self {
        Collection {
            owner: pad.owner,
            name: pad.name.clone(),
            items: pad.items.clone(),
            notes: pad.notes.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_dedup() {
        let mut pad = Workpad::new(UserId(0), "session");
        let item = WorkpadItem::UserAvatar(UserId(5));
        assert!(pad.add(item));
        assert!(!pad.add(item), "duplicates rejected");
        assert_eq!(pad.len(), 1);
        assert!(pad.remove(&item));
        assert!(!pad.remove(&item));
        assert!(pad.is_empty());
    }

    #[test]
    fn notes_get_sequential_ids() {
        let mut pad = Workpad::new(UserId(0), "ideas");
        let n1 = pad.add_note("ask about the decay parameter");
        let n2 = pad.add_note("compare with CP baselines");
        assert_eq!(n1, WorkpadItem::Note(0));
        assert_eq!(n2, WorkpadItem::Note(1));
        assert_eq!(pad.notes.len(), 2);
    }

    #[test]
    fn collection_freezes_contents() {
        let mut pad = Workpad::new(UserId(1), "to investigate later");
        pad.add(WorkpadItem::Paper(PaperId(3)));
        pad.add_note("nice idea");
        let col = Collection::from_workpad(&pad);
        pad.add(WorkpadItem::Session(SessionId(9)));
        assert_eq!(col.items.len(), 2, "collection unaffected by later edits");
        assert_eq!(col.name, "to investigate later");
        assert_eq!(col.notes, vec!["nice idea".to_string()]);
    }
}
