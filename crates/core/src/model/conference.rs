//! Conference editions and technical sessions.

use crate::clock::Timestamp;
use crate::ids::UserId;

/// A conference edition. Hive is "conference-centric, yet
/// cross-conference": the `series` name links editions across years
/// (one of the nine relationship evidences is "same conference,
/// different years").
#[derive(Clone, Debug, PartialEq)]
pub struct Conference {
    /// Series name, e.g. `"EDBT"`.
    pub series: String,
    /// Edition year, e.g. `2013`.
    pub year: u32,
    /// Host city (display only).
    pub location: String,
    /// Start of the edition on the logical clock.
    pub starts_at: Timestamp,
    /// Duration in ticks.
    pub duration: u64,
}

hive_json::impl_json_struct!(Conference { series, year, location, starts_at, duration });

impl Conference {
    /// Creates an edition.
    pub fn new(series: impl Into<String>, year: u32, location: impl Into<String>) -> Self {
        Conference {
            series: series.into(),
            year,
            location: location.into(),
            starts_at: Timestamp(0),
            duration: 3 * 24 * 60, // three conference days in minutes
        }
    }

    /// Display name, e.g. `"EDBT 2013"`.
    pub fn display_name(&self) -> String {
        format!("{} {}", self.series, self.year)
    }

    /// True if `t` falls within the edition.
    pub fn is_running_at(&self, t: Timestamp) -> bool {
        t >= self.starts_at && t.ticks() < self.starts_at.ticks() + self.duration
    }
}

/// A technical session inside a conference edition.
#[derive(Clone, Debug, PartialEq)]
pub struct Session {
    /// Owning conference (arena id lives in the DB; stored here as raw
    /// index for serialization friendliness).
    pub conference: crate::ids::ConferenceId,
    /// Session title, e.g. `"Large Scale Graph Processing"`.
    pub title: String,
    /// Track name, e.g. `"Research 4"`.
    pub track: String,
    /// Topic phrases describing the session (drives content evidence).
    pub topics: Vec<String>,
    /// Session chair.
    pub chair: Option<UserId>,
    /// Scheduled start.
    pub starts_at: Timestamp,
    /// Length in ticks.
    pub duration: u64,
}

hive_json::impl_json_struct!(Session { conference, title, track, topics, chair, starts_at, duration });

impl Session {
    /// Creates a session.
    pub fn new(
        conference: crate::ids::ConferenceId,
        title: impl Into<String>,
        track: impl Into<String>,
    ) -> Self {
        Session {
            conference,
            title: title.into(),
            track: track.into(),
            topics: Vec::new(),
            chair: None,
            starts_at: Timestamp(0),
            duration: 90,
        }
    }

    /// Builder: topic phrases.
    pub fn with_topics(mut self, topics: Vec<String>) -> Self {
        self.topics = topics;
        self
    }

    /// Builder: schedule.
    pub fn scheduled(mut self, starts_at: Timestamp, duration: u64) -> Self {
        self.starts_at = starts_at;
        self.duration = duration;
        self
    }

    /// True if `t` falls within the session slot.
    pub fn is_running_at(&self, t: Timestamp) -> bool {
        t >= self.starts_at && t.ticks() < self.starts_at.ticks() + self.duration
    }

    /// Two sessions overlap in time (can't attend both).
    pub fn overlaps(&self, other: &Session) -> bool {
        self.starts_at.ticks() < other.starts_at.ticks() + other.duration
            && other.starts_at.ticks() < self.starts_at.ticks() + self.duration
    }

    /// The session rendered as text (title + topics) for indexing.
    pub fn text(&self) -> String {
        let mut s = self.title.clone();
        s.push(' ');
        s.push_str(&self.topics.join(" "));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ConferenceId;

    #[test]
    fn conference_window() {
        let mut c = Conference::new("EDBT", 2013, "Genoa");
        c.starts_at = Timestamp(100);
        c.duration = 50;
        assert_eq!(c.display_name(), "EDBT 2013");
        assert!(!c.is_running_at(Timestamp(99)));
        assert!(c.is_running_at(Timestamp(100)));
        assert!(c.is_running_at(Timestamp(149)));
        assert!(!c.is_running_at(Timestamp(150)));
    }

    #[test]
    fn session_overlap() {
        let base = Session::new(ConferenceId(0), "A", "R1").scheduled(Timestamp(0), 90);
        let same_slot = Session::new(ConferenceId(0), "B", "R2").scheduled(Timestamp(30), 90);
        let later = Session::new(ConferenceId(0), "C", "R1").scheduled(Timestamp(90), 90);
        assert!(base.overlaps(&same_slot));
        assert!(same_slot.overlaps(&base));
        assert!(!base.overlaps(&later));
    }

    #[test]
    fn session_text_includes_topics() {
        let s = Session::new(ConferenceId(0), "Graph Processing", "R1")
            .with_topics(vec!["community detection".into()]);
        assert!(s.text().contains("Graph Processing"));
        assert!(s.text().contains("community detection"));
    }
}
