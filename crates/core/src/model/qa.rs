//! Questions, answers, and comments — the in-session exchange machinery
//! of the use scenario ("he finds himself posting a few questions about
//! the details not clarified in the presentation").

use crate::clock::Timestamp;
use crate::ids::{PresentationId, QuestionId, SessionId, UserId};

/// What a question or comment is attached to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QaTarget {
    /// A specific presentation.
    Presentation(PresentationId),
    /// A whole session (e.g. keynote discussion traffic).
    Session(SessionId),
}

hive_json::impl_json_enum_payload!(QaTarget { Presentation, Session });

/// A posted question.
#[derive(Clone, Debug, PartialEq)]
pub struct Question {
    /// Who asked.
    pub author: UserId,
    /// Where it was asked.
    pub target: QaTarget,
    /// Question text.
    pub text: String,
    /// When it was asked.
    pub asked_at: Timestamp,
    /// If true, the question is also broadcast to the session hashtag on
    /// the (simulated) Twitter bridge.
    pub broadcast: bool,
}

hive_json::impl_json_struct!(Question { author, target, text, asked_at, broadcast });

/// An answer to a question.
#[derive(Clone, Debug, PartialEq)]
pub struct Answer {
    /// The question being answered.
    pub question: QuestionId,
    /// Who answered.
    pub author: UserId,
    /// Answer text.
    pub text: String,
    /// When.
    pub answered_at: Timestamp,
}

hive_json::impl_json_struct!(Answer { question, author, text, answered_at });

/// A comment on a presentation or session.
#[derive(Clone, Debug, PartialEq)]
pub struct Comment {
    /// Who commented.
    pub author: UserId,
    /// Where.
    pub target: QaTarget,
    /// Comment text.
    pub text: String,
    /// When.
    pub commented_at: Timestamp,
}

hive_json::impl_json_struct!(Comment { author, target, text, commented_at });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qa_construction() {
        let q = Question {
            author: UserId(1),
            target: QaTarget::Presentation(PresentationId(2)),
            text: "Does the sketch size grow with tensor order?".into(),
            asked_at: Timestamp(5),
            broadcast: true,
        };
        assert_eq!(q.target, QaTarget::Presentation(PresentationId(2)));
        let a = Answer {
            question: QuestionId(0),
            author: UserId(2),
            text: "No, only with the ensemble size.".into(),
            answered_at: Timestamp(9),
        };
        assert!(a.answered_at > q.asked_at);
        let c = Comment {
            author: UserId(3),
            target: QaTarget::Session(SessionId(4)),
            text: "Great keynote".into(),
            commented_at: Timestamp(10),
        };
        assert_eq!(c.target, QaTarget::Session(SessionId(4)));
    }
}
