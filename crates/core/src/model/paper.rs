//! Papers and uploaded presentations.

use crate::ids::{ConferenceId, PaperId, SessionId, UserId};

/// A published paper: the backbone of the co-authorship and citation
/// layers of the knowledge network (Figure 3).
#[derive(Clone, Debug, PartialEq)]
pub struct Paper {
    /// Paper title.
    pub title: String,
    /// Abstract text (drives content similarity and concept extraction).
    pub abstract_text: String,
    /// Author list in order.
    pub authors: Vec<UserId>,
    /// Venue edition it appeared at (None = external/unmodeled venue).
    pub venue: Option<ConferenceId>,
    /// Outgoing citations (papers this one cites).
    pub citations: Vec<PaperId>,
}

hive_json::impl_json_struct!(Paper { title, abstract_text, authors, venue, citations });

impl Paper {
    /// Creates a paper.
    pub fn new(title: impl Into<String>, authors: Vec<UserId>) -> Self {
        Paper {
            title: title.into(),
            abstract_text: String::new(),
            authors,
            venue: None,
            citations: Vec::new(),
        }
    }

    /// Builder: abstract text.
    pub fn with_abstract(mut self, text: impl Into<String>) -> Self {
        self.abstract_text = text.into();
        self
    }

    /// Builder: venue.
    pub fn at_venue(mut self, venue: ConferenceId) -> Self {
        self.venue = Some(venue);
        self
    }

    /// Builder: citations.
    pub fn citing(mut self, cited: Vec<PaperId>) -> Self {
        self.citations = cited;
        self
    }

    /// True if `u` is an author.
    pub fn has_author(&self, u: UserId) -> bool {
        self.authors.contains(&u)
    }

    /// Full text for indexing: title + abstract.
    pub fn text(&self) -> String {
        format!("{} {}", self.title, self.abstract_text)
    }
}

/// Uploaded slides for a paper, bound to a session ("Zach logs in to Hive
/// and uploads his presentation slides").
#[derive(Clone, Debug, PartialEq)]
pub struct Presentation {
    /// The paper being presented.
    pub paper: PaperId,
    /// Who presents.
    pub presenter: UserId,
    /// Session the talk is scheduled in.
    pub session: SessionId,
    /// Slide text (concatenated slide bodies). Mutable: "he notices that
    /// there was a typo and he corrects the slide".
    pub slides_text: String,
    /// Revision counter, bumped on every slide correction.
    pub revision: u32,
}

hive_json::impl_json_struct!(Presentation { paper, presenter, session, slides_text, revision });

impl Presentation {
    /// Creates a presentation upload.
    pub fn new(paper: PaperId, presenter: UserId, session: SessionId) -> Self {
        Presentation { paper, presenter, session, slides_text: String::new(), revision: 0 }
    }

    /// Builder: slide text.
    pub fn with_slides(mut self, text: impl Into<String>) -> Self {
        self.slides_text = text.into();
        self
    }

    /// Replaces the slide text, bumping the revision.
    pub fn revise(&mut self, text: impl Into<String>) {
        self.slides_text = text.into();
        self.revision += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_builder() {
        let p = Paper::new("SCENT", vec![UserId(0), UserId(1)])
            .with_abstract("tensor streams")
            .at_venue(ConferenceId(2))
            .citing(vec![PaperId(5)]);
        assert!(p.has_author(UserId(1)));
        assert!(!p.has_author(UserId(9)));
        assert!(p.text().contains("SCENT"));
        assert!(p.text().contains("tensor"));
        assert_eq!(p.venue, Some(ConferenceId(2)));
    }

    #[test]
    fn presentation_revision() {
        let mut pres = Presentation::new(PaperId(0), UserId(0), SessionId(0))
            .with_slides("v1 with a tyop");
        assert_eq!(pres.revision, 0);
        pres.revise("v1 with a typo fixed");
        assert_eq!(pres.revision, 1);
        assert!(pres.slides_text.contains("fixed"));
    }
}
