//! The platform data model: every entity a Hive deployment stores.

pub mod activity;
pub mod conference;
pub mod paper;
pub mod qa;
pub mod social;
pub mod tweet;
pub mod user;
pub mod workpad;

pub use activity::{ActivityCategory, ActivityEvent, ActivityRecord};
pub use conference::{Conference, Session};
pub use paper::{Paper, Presentation};
pub use qa::{Answer, Comment, QaTarget, Question};
pub use social::{CheckIn, Connection, ConnectionState, Follow};
pub use tweet::Tweet;
pub use user::User;
pub use workpad::{Collection, Workpad, WorkpadItem};
