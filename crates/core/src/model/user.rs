//! Researcher profiles.


/// A registered researcher.
///
/// "Profile and declared interest" and "current and past affiliation,
/// group membership" are the first two relationship evidences of §2, so
/// the profile carries all three.
#[derive(Clone, Debug, PartialEq)]
pub struct User {
    /// Display name.
    pub name: String,
    /// Current affiliation (institution).
    pub affiliation: String,
    /// Past affiliations, most recent first.
    pub past_affiliations: Vec<String>,
    /// Declared research interests (free-form topic phrases).
    pub interests: Vec<String>,
    /// Group memberships (labs, working groups, PCs).
    pub groups: Vec<String>,
}

hive_json::impl_json_struct!(User { name, affiliation, past_affiliations, interests, groups });

impl User {
    /// Creates a minimal profile.
    pub fn new(name: impl Into<String>, affiliation: impl Into<String>) -> Self {
        User {
            name: name.into(),
            affiliation: affiliation.into(),
            past_affiliations: Vec::new(),
            interests: Vec::new(),
            groups: Vec::new(),
        }
    }

    /// Builder: adds declared interests.
    pub fn with_interests(mut self, interests: Vec<String>) -> Self {
        self.interests = interests;
        self
    }

    /// Builder: adds group memberships.
    pub fn with_groups(mut self, groups: Vec<String>) -> Self {
        self.groups = groups;
        self
    }

    /// Builder: adds past affiliations.
    pub fn with_past_affiliations(mut self, past: Vec<String>) -> Self {
        self.past_affiliations = past;
        self
    }

    /// All affiliations, current first.
    pub fn all_affiliations(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.affiliation.as_str())
            .chain(self.past_affiliations.iter().map(String::as_str))
    }

    /// The profile rendered as text (for content-similarity evidence).
    pub fn profile_text(&self) -> String {
        let mut s = self.name.clone();
        s.push(' ');
        s.push_str(&self.interests.join(" "));
        s.push(' ');
        s.push_str(&self.groups.join(" "));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_affiliations() {
        let u = User::new("Ann", "ASU")
            .with_interests(vec!["tensor streams".into()])
            .with_groups(vec!["MiNC".into()])
            .with_past_affiliations(vec!["UniTo".into()]);
        let affs: Vec<&str> = u.all_affiliations().collect();
        assert_eq!(affs, vec!["ASU", "UniTo"]);
        let text = u.profile_text();
        assert!(text.contains("tensor streams"));
        assert!(text.contains("MiNC"));
    }
}
