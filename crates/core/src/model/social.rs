//! Social primitives: follows, connections, and session check-ins.

use crate::clock::Timestamp;
use crate::ids::{SessionId, UserId};

/// A directed follow: `follower` receives real-time updates about
/// `followee`'s "(session check-in, question, comment, answer)
/// activities" (use scenario, bullet 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Follow {
    /// Who follows.
    pub follower: UserId,
    /// Who is followed.
    pub followee: UserId,
    /// When the follow started.
    pub since: Timestamp,
}

hive_json::impl_json_struct!(Follow { follower, followee, since });

/// Lifecycle of a (mutual) connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConnectionState {
    /// Request sent, awaiting acknowledgement ("Zach sends a connection
    /// request to Aaron and receives an acknowledgement a few minutes
    /// later").
    Pending,
    /// Both sides connected.
    Accepted,
    /// Declined by the recipient.
    Declined,
}

hive_json::impl_json_enum_unit!(ConnectionState { Pending, Accepted, Declined });

/// A connection between two researchers (undirected once accepted;
/// `from` initiated it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Connection {
    /// Who sent the request.
    pub from: UserId,
    /// Who received it.
    pub to: UserId,
    /// Current state.
    pub state: ConnectionState,
    /// Request time.
    pub requested_at: Timestamp,
    /// Accept/decline time, if resolved.
    pub resolved_at: Option<Timestamp>,
}

hive_json::impl_json_struct!(Connection { from, to, state, requested_at, resolved_at });

impl Connection {
    /// True if the connection involves `u`.
    pub fn involves(&self, u: UserId) -> bool {
        self.from == u || self.to == u
    }

    /// The other endpoint relative to `u` (None if `u` not involved).
    pub fn other(&self, u: UserId) -> Option<UserId> {
        if self.from == u {
            Some(self.to)
        } else if self.to == u {
            Some(self.from)
        } else {
            None
        }
    }
}

/// A session check-in ("keep track of the technical research sessions
/// they are attending"). Check-ins are the session-participation
/// relationship evidence and the raw signal for attendance prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CheckIn {
    /// Who checked in.
    pub user: UserId,
    /// Into which session.
    pub session: SessionId,
    /// When.
    pub at: Timestamp,
}

hive_json::impl_json_struct!(CheckIn { user, session, at });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_endpoints() {
        let c = Connection {
            from: UserId(1),
            to: UserId(2),
            state: ConnectionState::Pending,
            requested_at: Timestamp(0),
            resolved_at: None,
        };
        assert!(c.involves(UserId(1)));
        assert!(c.involves(UserId(2)));
        assert!(!c.involves(UserId(3)));
        assert_eq!(c.other(UserId(1)), Some(UserId(2)));
        assert_eq!(c.other(UserId(2)), Some(UserId(1)));
        assert_eq!(c.other(UserId(3)), None);
    }
}
