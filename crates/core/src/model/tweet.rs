//! The simulated Twitter bridge.
//!
//! "While this exchange occurs in Hive, the exchange is also broadcasted
//! in twitter with the session's hashtag." The external service is
//! simulated: broadcasts become [`Tweet`] records on a per-session
//! hashtag timeline, and the feed service can replay them as incoming
//! traffic.

use crate::clock::Timestamp;
use crate::ids::{SessionId, UserId};

/// A tweet mirrored to/from a session hashtag.
#[derive(Clone, Debug, PartialEq)]
pub struct Tweet {
    /// The platform user it maps to (None = external-only account).
    pub author: Option<UserId>,
    /// Display handle, e.g. `"@zach_db"`.
    pub handle: String,
    /// Tweet text.
    pub text: String,
    /// The session hashtag timeline it belongs to.
    pub session: SessionId,
    /// When it was posted.
    pub at: Timestamp,
}

hive_json::impl_json_struct!(Tweet { author, handle, text, session, at });

impl Tweet {
    /// The canonical hashtag for a session.
    pub fn hashtag(session: SessionId) -> String {
        format!("#hive_s{}", session.0)
    }

    /// Renders the tweet as it would appear on the timeline.
    pub fn render(&self) -> String {
        format!("{} {} {}", self.handle, self.text, Tweet::hashtag(self.session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashtag_and_render() {
        let t = Tweet {
            author: Some(UserId(1)),
            handle: "@zach_db".into(),
            text: "great keynote".into(),
            session: SessionId(7),
            at: Timestamp(3),
        };
        assert_eq!(Tweet::hashtag(SessionId(7)), "#hive_s7");
        let r = t.render();
        assert!(r.contains("@zach_db"));
        assert!(r.contains("#hive_s7"));
    }
}
