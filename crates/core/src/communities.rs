//! Community discovery and tracking (Table 1: "Community discovery and
//! tracking"; §2.4's SCENT integration).
//!
//! Discovery runs modularity/label-propagation clustering over the merged
//! social + co-authorship user graph. Tracking observes a *sequence* of
//! interaction graphs (one per epoch), matches communities across epochs
//! by member overlap, and uses SCENT tensor-stream sketches to flag the
//! epochs where the underlying structure shifted.

use crate::ids::UserId;
use crate::knowledge::KnowledgeNetwork;
use hive_graph::{core_numbers, label_propagation, louvain, modularity, CommunityAssignment, Graph};
use hive_scent::{detect_changes, ChangeDetector, DetectorBackend, SparseTensor, TensorStream};
use std::collections::HashSet;

/// Clustering method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Greedy modularity (Louvain-style).
    Louvain,
    /// Weighted label propagation with a seed.
    LabelPropagation(u64),
}

/// A discovered community structure over users.
#[derive(Clone, Debug)]
pub struct Communities {
    /// Member lists, one per community (communities with >= 1 member).
    pub members: Vec<Vec<UserId>>,
    /// The raw node-level assignment (graph-node indexed).
    pub labels: CommunityAssignment,
    /// Modularity of the assignment on the source graph.
    pub modularity: f64,
}

impl Communities {
    /// Number of communities.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// The community index containing `u`, if any.
    pub fn community_of(&self, u: UserId) -> Option<usize> {
        self.members.iter().position(|m| m.contains(&u))
    }

    /// The *active core* of each community: members whose k-core number
    /// within `g` reaches the community's own maximum — the researchers
    /// who keep the exchanges going, as opposed to peripheral attendees.
    pub fn active_cores(&self, g: &Graph) -> Vec<Vec<UserId>> {
        let core = core_numbers(g);
        self.members
            .iter()
            .map(|members| {
                let node_of = |u: &UserId| g.node(&u.iri());
                let max_core = members
                    .iter()
                    .filter_map(|u| node_of(u).map(|n| core[n.index()]))
                    .max()
                    .unwrap_or(0);
                members
                    .iter()
                    .copied()
                    .filter(|u| {
                        node_of(u)
                            .map(|n| core[n.index()] == max_core && max_core > 0)
                            .unwrap_or(false)
                    })
                    .collect()
            })
            .collect()
    }
}

fn parse_user(key: &str) -> Option<UserId> {
    key.strip_prefix("user:").and_then(|s| s.parse().ok().map(UserId))
}

/// The merged social + co-authorship user graph.
pub fn user_graph(kn: &KnowledgeNetwork) -> Graph {
    let mut g = Graph::new();
    for src in [&kn.social, &kn.coauthor] {
        for n in src.nodes() {
            g.add_node(src.key(n).to_string());
        }
        for (u, v, w) in src.edges() {
            let (a, b) = (
                g.add_node(src.key(u).to_string()),
                g.add_node(src.key(v).to_string()),
            );
            g.add_edge(a, b, w);
        }
    }
    g
}

/// Clusters an arbitrary user graph (node keys must be `user:<id>` IRIs).
pub fn discover_from_graph(g: &Graph, method: Method) -> Communities {
    let labels = match method {
        Method::Louvain => louvain(g),
        Method::LabelPropagation(seed) => label_propagation(g, seed, 100),
    };
    let q = modularity(g, &labels);
    let mut members = vec![Vec::new(); labels.community_count()];
    for n in g.nodes() {
        if let Some(u) = parse_user(g.key(n)) {
            members[labels.label(n)].push(u);
        }
    }
    members.retain(|m| !m.is_empty());
    for m in &mut members {
        m.sort();
    }
    // Stable order: biggest first.
    members.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    Communities { members, labels, modularity: q }
}

/// One-shot discovery over the knowledge network's user layers.
pub fn discover(kn: &KnowledgeNetwork, method: Method) -> Communities {
    discover_from_graph(&user_graph(kn), method)
}

/// Tracks community structure across epochs.
pub struct CommunityTracker {
    n_users: usize,
    method: Method,
    epochs: Vec<Communities>,
    stream: TensorStream,
    detector: ChangeDetector,
}

impl CommunityTracker {
    /// Creates a tracker for `n_users` users with a SCENT backend for the
    /// structural-change signal.
    pub fn new(n_users: usize, method: Method, backend: DetectorBackend) -> Self {
        assert!(n_users > 0);
        CommunityTracker {
            n_users,
            method,
            epochs: Vec::new(),
            stream: TensorStream::new(vec![n_users, n_users, 1]),
            detector: ChangeDetector::new(backend),
        }
    }

    /// Observes one epoch's interaction graph: clusters it and appends
    /// its adjacency tensor to the monitored stream.
    pub fn observe(&mut self, g: &Graph) -> &Communities {
        let mut t = SparseTensor::new(vec![self.n_users, self.n_users, 1]);
        for (u, v, w) in g.edges() {
            let (Some(a), Some(b)) = (parse_user(g.key(u)), parse_user(g.key(v))) else {
                continue;
            };
            if a.index() < self.n_users && b.index() < self.n_users {
                t.add(&[a.index(), b.index(), 0], w);
            }
        }
        self.stream.push(t);
        let epoch = discover_from_graph(g, self.method);
        self.epochs.push(epoch);
        // Hand back the epoch just stored (self.epochs is never empty
        // after the push above; fall back to index 0 to stay panic-free).
        let last = self.epochs.len().saturating_sub(1);
        &self.epochs[last]
    }

    /// Number of observed epochs.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// The communities at epoch `e`.
    pub fn communities_at(&self, e: usize) -> &Communities {
        &self.epochs[e]
    }

    /// Epochs flagged by the SCENT change detector.
    pub fn change_epochs(&self, threshold: f64, warmup: usize) -> Vec<usize> {
        let scores = self.detector.score_stream(&self.stream);
        detect_changes(&scores, threshold, warmup)
    }

    /// Matches each community of epoch `e1` to its best-overlap community
    /// in epoch `e2`. Returns `(index_in_e1, Some(index_in_e2), jaccard)`
    /// or `None` when nothing overlaps (community died/was born).
    pub fn match_communities(&self, e1: usize, e2: usize) -> Vec<(usize, Option<usize>, f64)> {
        let a = &self.epochs[e1];
        let b = &self.epochs[e2];
        a.members
            .iter()
            .enumerate()
            .map(|(i, ma)| {
                let sa: HashSet<UserId> = ma.iter().copied().collect();
                let best = b
                    .members
                    .iter()
                    .enumerate()
                    .map(|(j, mb)| {
                        let sb: HashSet<UserId> = mb.iter().copied().collect();
                        let inter = sa.intersection(&sb).count();
                        let union = sa.union(&sb).count();
                        (j, if union == 0 { 0.0 } else { inter as f64 / union as f64 })
                    })
                    .max_by(|x, y| x.1.total_cmp(&y.1));
                match best {
                    Some((j, jac)) if jac > 0.0 => (i, Some(j), jac),
                    _ => (i, None, 0.0),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_scent::SketchConfig;

    /// Builds a user graph with two cliques; `bridge` adds a strong
    /// inter-clique coupling (the "merge" event).
    fn clique_graph(n_per: usize, bridge: bool) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..2 * n_per)
            .map(|i| g.add_node(format!("user:{i}")))
            .collect();
        for group in [&ids[..n_per], &ids[n_per..]] {
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    g.add_undirected_edge(group[i], group[j], 1.0);
                }
            }
        }
        if bridge {
            for i in 0..n_per {
                g.add_undirected_edge(ids[i], ids[n_per + i], 2.0);
            }
        }
        g
    }

    #[test]
    fn discovery_finds_cliques() {
        let g = clique_graph(5, false);
        let c = discover_from_graph(&g, Method::Louvain);
        assert_eq!(c.count(), 2);
        assert_eq!(c.members[0].len(), 5);
        assert!(c.modularity > 0.3);
        assert_eq!(c.community_of(UserId(0)), c.community_of(UserId(1)));
        assert_ne!(c.community_of(UserId(0)), c.community_of(UserId(9)));
    }

    #[test]
    fn label_propagation_variant_works() {
        let g = clique_graph(5, false);
        let c = discover_from_graph(&g, Method::LabelPropagation(7));
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn tracker_flags_structural_shift() {
        let mut tracker = CommunityTracker::new(
            10,
            Method::Louvain,
            DetectorBackend::Sketch(SketchConfig { measurements: 256, seed: 1 }),
        );
        // 8 quiet epochs, then the cliques merge.
        for _ in 0..8 {
            tracker.observe(&clique_graph(5, false));
        }
        tracker.observe(&clique_graph(5, true));
        tracker.observe(&clique_graph(5, true));
        assert_eq!(tracker.epoch_count(), 10);
        let changes = tracker.change_epochs(4.0, 4);
        assert!(changes.contains(&8), "merge epoch flagged, got {changes:?}");
    }

    #[test]
    fn active_cores_strip_the_periphery() {
        // A 4-clique with a peripheral member attached by two edges: the
        // peripheral user joins the community but not its active core.
        let mut g = Graph::new();
        let ids: Vec<_> = (0..5).map(|i| g.add_node(format!("user:{i}"))).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_undirected_edge(ids[i], ids[j], 1.0);
            }
        }
        g.add_undirected_edge(ids[2], ids[4], 1.0); // peripheral user:4
        g.add_undirected_edge(ids[3], ids[4], 1.0);
        let comms = discover_from_graph(&g, Method::Louvain);
        assert_eq!(comms.count(), 1, "{:?}", comms.members);
        assert_eq!(comms.members[0].len(), 5);
        let cores = comms.active_cores(&g);
        assert_eq!(cores.len(), 1);
        assert_eq!(cores[0].len(), 4, "pendant excluded: {cores:?}");
        assert!(!cores[0].contains(&UserId(4)));
    }

    #[test]
    fn community_matching_across_epochs() {
        let mut tracker = CommunityTracker::new(
            10,
            Method::Louvain,
            DetectorBackend::FullDiff,
        );
        tracker.observe(&clique_graph(5, false));
        tracker.observe(&clique_graph(5, false));
        let matches = tracker.match_communities(0, 1);
        assert_eq!(matches.len(), 2);
        for (_, target, jac) in matches {
            assert!(target.is_some());
            assert!((jac - 1.0).abs() < 1e-12, "identical epochs match perfectly");
        }
    }

    /// A single 10-clique: the fully merged community.
    fn merged_graph() -> Graph {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..10).map(|i| g.add_node(format!("user:{i}"))).collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                g.add_undirected_edge(ids[i], ids[j], 1.0);
            }
        }
        g
    }

    #[test]
    fn merge_event_visible_in_matching() {
        let mut tracker = CommunityTracker::new(
            10,
            Method::Louvain,
            DetectorBackend::FullDiff,
        );
        tracker.observe(&clique_graph(5, false));
        tracker.observe(&merged_graph());
        let before = tracker.communities_at(0).count();
        let after = tracker.communities_at(1).count();
        assert!(after < before, "bridge should merge the communities");
        let matches = tracker.match_communities(0, 1);
        // Both old communities map into the one merged community.
        let targets: HashSet<usize> =
            matches.iter().filter_map(|(_, t, _)| *t).collect();
        assert_eq!(targets.len(), 1);
    }
}
