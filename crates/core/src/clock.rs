//! Logical platform time.
//!
//! The simulator and the activity log share a logical clock measured in
//! abstract *ticks* (one tick ≈ one minute of conference time). Using
//! logical time keeps every experiment deterministic.

use std::fmt;

/// A logical timestamp (monotonic ticks since platform start).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Timestamp(pub u64);

hive_json::impl_json_newtype!(Timestamp);

impl Timestamp {
    /// Tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// The timestamp `dt` ticks later.
    pub fn plus(self, dt: u64) -> Timestamp {
        Timestamp(self.0 + dt)
    }

    /// Absolute difference in ticks.
    pub fn delta(self, other: Timestamp) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A monotonic clock handing out timestamps.
#[derive(Clone, Debug, Default)]
pub struct Clock {
    now: u64,
}

impl Clock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time without advancing.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.now)
    }

    /// Advances by `dt` ticks and returns the new time.
    pub fn advance(&mut self, dt: u64) -> Timestamp {
        self.now += dt;
        Timestamp(self.now)
    }

    /// Advances by one tick and returns the new time (the common
    /// "something happened" call).
    pub fn tick(&mut self) -> Timestamp {
        self.advance(1)
    }

    /// Jumps to `t` if it is in the future (no-op otherwise — the clock
    /// never goes backwards).
    pub fn advance_to(&mut self, t: Timestamp) {
        if t.0 > self.now {
            self.now = t.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let mut c = Clock::new();
        assert_eq!(c.now(), Timestamp(0));
        let t1 = c.tick();
        let t2 = c.advance(5);
        assert!(t1 < t2);
        assert_eq!(t2, Timestamp(6));
        c.advance_to(Timestamp(3)); // backwards jump ignored
        assert_eq!(c.now(), Timestamp(6));
        c.advance_to(Timestamp(10));
        assert_eq!(c.now(), Timestamp(10));
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp(10);
        assert_eq!(t.plus(5), Timestamp(15));
        assert_eq!(t.delta(Timestamp(4)), 6);
        assert_eq!(Timestamp(4).delta(t), 6);
        assert_eq!(t.to_string(), "t10");
    }
}
