//! Peer discovery and recommendation (paper §2.4, Table 1 "Peer network
//! services").
//!
//! "Hive proposes five other researchers that Zach may want to connect
//! during the event and for each provides a list of sessions that the
//! researcher may most likely attend."
//!
//! Recommendation blends two signals:
//!
//! * **structural proximity** — personalized PageRank over the unified
//!   knowledge network, seeded by the user's activity context (so the
//!   active workpad steers who gets recommended), and
//! * **evidence strength** — the noisy-or combination of the §2
//!   relationship evidences, which also supplies the *explanations*.
//!
//! Each recommended peer comes with the sessions they are most likely to
//! attend, predicted from their content profile and their own network's
//! check-ins.

use crate::context::ActivityContext;
use crate::db::HiveDb;
use crate::evidence::{batch_relationship_evidence, combined_score, EvidenceItem};
use crate::ids::{SessionId, UserId};
use crate::knowledge::KnowledgeNetwork;
use crate::ppr::PprCache;
use hive_graph::{NodeId, PprConfig};
use hive_par::par_map;
use std::collections::HashMap;

/// How the two signals are blended (ablation axis for experiment E4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerStrategy {
    /// Convex blend of PPR and evidence (the full system).
    Blend,
    /// Structure only.
    PprOnly,
    /// Evidence only.
    EvidenceOnly,
}

/// Peer recommendation parameters. Build with [`PeerRecConfig::defaults`]
/// and the chainable `with_*` setters:
///
/// ```
/// use hive_core::peers::{PeerRecConfig, PeerStrategy};
/// let cfg = PeerRecConfig::defaults().with_top_k(3).with_strategy(PeerStrategy::PprOnly);
/// assert_eq!(cfg.common.top_k, 3);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PeerRecConfig {
    /// Shared result-count / context fields (`common.top_k` = peers to
    /// return, paper default 5: "Hive proposes five other researchers").
    pub common: crate::config::CommonConfig,
    /// Weight of the PPR signal in the blend (evidence gets `1 - w`).
    pub ppr_weight: f64,
    /// Candidate pool size taken from the PPR ranking before evidence
    /// scoring (bounds the expensive evidence pass).
    pub candidate_pool: usize,
    /// Blending strategy.
    pub strategy: PeerStrategy,
    /// Sessions predicted per recommended peer.
    pub sessions_per_peer: usize,
    /// PPR damping.
    pub damping: f64,
}

impl PeerRecConfig {
    /// The documented baseline: 5 peers, 0.6 PPR weight over a
    /// 25-candidate pool, blended strategy, 3 sessions per peer,
    /// damping 0.85.
    pub fn defaults() -> Self {
        PeerRecConfig {
            common: crate::config::CommonConfig::defaults(5),
            ppr_weight: 0.6,
            candidate_pool: 25,
            strategy: PeerStrategy::Blend,
            sessions_per_peer: 3,
            damping: 0.85,
        }
    }

    /// Sets the number of peers to return.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.common.top_k = k;
        self
    }

    /// Sets the activity-context construction parameters.
    pub fn with_context(mut self, cfg: crate::context::ContextConfig) -> Self {
        self.common.context = cfg;
        self
    }

    /// Sets the PPR weight in the blend.
    pub fn with_ppr_weight(mut self, w: f64) -> Self {
        self.ppr_weight = w;
        self
    }

    /// Sets the PPR candidate pool size.
    pub fn with_candidate_pool(mut self, n: usize) -> Self {
        self.candidate_pool = n;
        self
    }

    /// Sets the blending strategy.
    pub fn with_strategy(mut self, s: PeerStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Sets how many sessions are predicted per recommended peer.
    pub fn with_sessions_per_peer(mut self, n: usize) -> Self {
        self.sessions_per_peer = n;
        self
    }

    /// Sets the PPR damping factor.
    pub fn with_damping(mut self, d: f64) -> Self {
        self.damping = d;
        self
    }
}

impl Default for PeerRecConfig {
    fn default() -> Self {
        Self::defaults()
    }
}

/// One recommended peer.
#[derive(Clone, Debug)]
pub struct PeerRecommendation {
    /// The recommended researcher.
    pub user: UserId,
    /// Final blended score.
    pub score: f64,
    /// Supporting evidence (explanations), strongest first.
    pub reasons: Vec<EvidenceItem>,
    /// Sessions this peer will most likely attend, with scores.
    pub likely_sessions: Vec<(SessionId, f64)>,
}

fn parse_user_iri(key: &str) -> Option<UserId> {
    key.strip_prefix("user:").and_then(|s| s.parse().ok().map(UserId))
}

/// Recommends peers for `user` under their current activity context.
///
/// Users already connected to `user` (and `user` themself) are excluded —
/// the service proposes *new* colleagues.
pub fn recommend_peers(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    ppr_cache: &PprCache,
    user: UserId,
    ctx: &ActivityContext,
    cfg: PeerRecConfig,
) -> Vec<PeerRecommendation> {
    let g = &kn.unified;
    // Seed PPR from the context (fall back to the user node alone).
    let mut seeds: HashMap<NodeId, f64> = HashMap::new();
    // lint:allow(determinism-taint) -- distinct keys hit distinct nodes; PPR sorts seeds
    for (key, &mass) in &ctx.seeds {
        if let Some(n) = g.node(key) {
            *seeds.entry(n).or_insert(0.0) += mass;
        }
    }
    if seeds.is_empty() {
        if let Some(n) = g.node(&user.iri()) {
            seeds.insert(n, 1.0);
        }
    }
    // Memoized exact solve: repeated recommendations against one graph
    // generation (same workpad context) skip the power iteration.
    let ppr = ppr_cache.scores(
        &kn.unified_csr,
        &seeds,
        PprConfig { damping: cfg.damping, ..Default::default() },
    );
    let connected: std::collections::HashSet<UserId> =
        db.connections_of(user).into_iter().collect();
    // Candidate users ranked by PPR.
    let mut candidates: Vec<(UserId, f64)> = g
        .nodes()
        .filter_map(|n| parse_user_iri(g.key(n)).map(|u| (u, ppr[n.index()])))
        .filter(|(u, _)| *u != user && !connected.contains(u))
        .collect();
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    candidates.truncate(cfg.candidate_pool.max(cfg.common.top_k));
    let max_ppr = candidates
        .first()
        .map(|(_, s)| *s)
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0);
    // Blend with evidence — the expensive pass. Each candidate's
    // evidence scan is independent, so fan it out over the pool.
    let peer_ids: Vec<UserId> = candidates.iter().map(|&(u, _)| u).collect();
    let evidence = batch_relationship_evidence(db, kn, user, &peer_ids);
    let mut scored: Vec<PeerRecommendation> = candidates
        .into_iter()
        .zip(evidence)
        .map(|((peer, ppr_score), reasons)| {
            let ev = combined_score(&reasons);
            let ppr_norm = ppr_score / max_ppr;
            let score = match cfg.strategy {
                PeerStrategy::Blend => cfg.ppr_weight * ppr_norm + (1.0 - cfg.ppr_weight) * ev,
                PeerStrategy::PprOnly => ppr_norm,
                PeerStrategy::EvidenceOnly => ev,
            };
            PeerRecommendation { user: peer, score, reasons, likely_sessions: Vec::new() }
        })
        .collect();
    scored.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.user.cmp(&b.user))
    });
    scored.truncate(cfg.common.top_k);
    let predicted = par_map(&scored, |rec| {
        predict_sessions(db, kn, rec.user, cfg.sessions_per_peer)
    });
    for (rec, sessions) in scored.iter_mut().zip(predicted) {
        rec.likely_sessions = sessions;
    }
    scored
}

/// Predicts which sessions `user` will most likely attend.
///
/// Score = content affinity (user vector vs session vector) + social
/// pull (how many of the user's connections/followees checked in),
/// skipping sessions the user already checked into.
pub fn predict_sessions(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    user: UserId,
    k: usize,
) -> Vec<(SessionId, f64)> {
    let already: std::collections::HashSet<SessionId> =
        db.checkins_of(user).iter().map(|c| c.session).collect();
    let friends: Vec<UserId> = {
        let mut f = db.connections_of(user);
        f.extend(db.following(user));
        f
    };
    let mut out: Vec<(SessionId, f64)> = db
        .session_ids()
        .into_iter()
        .filter(|s| !already.contains(s))
        .map(|s| {
            let content = match (kn.user_vectors.get(&user), kn.session_vectors.get(&s)) {
                (Some(uv), Some(sv)) => uv.cosine(sv),
                _ => 0.0,
            };
            let attending_friends = db
                .checkins_in(s)
                .iter()
                .filter(|c| friends.contains(&c.user))
                .count();
            let social = 1.0 - (0.7f64).powi(attending_friends as i32);
            (s, 0.6 * content + 0.4 * social)
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out.truncate(k);
    out.retain(|(_, s)| *s > 0.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{build_context, ContextConfig};
    use crate::model::*;

    /// Zach works on tensors with Ann (not yet connected); Bob is an
    /// unrelated databases person; Carol is already connected to Zach.
    fn world() -> (HiveDb, Vec<UserId>, Vec<SessionId>) {
        let mut db = HiveDb::new();
        let users = vec![
            db.add_user(User::new("Zach", "ASU").with_interests(vec!["tensor streams".into()])),
            db.add_user(User::new("Ann", "UniTo").with_interests(vec!["tensor streams".into()])),
            db.add_user(User::new("Bob", "MIT").with_interests(vec!["transaction processing".into()])),
            db.add_user(User::new("Carol", "ASU").with_interests(vec!["tensor streams".into()])),
        ];
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        let sessions = vec![
            db.add_session(
                Session::new(conf, "Tensor Streams", "R1")
                    .with_topics(vec!["tensor streams monitoring".into()]),
            )
            .unwrap(),
            db.add_session(
                Session::new(conf, "Transactions", "R2")
                    .with_topics(vec!["transaction processing concurrency".into()]),
            )
            .unwrap(),
        ];
        let p_zach = db
            .add_paper(
                Paper::new("Sketching tensors", vec![users[0]])
                    .with_abstract("tensor streams compressed sensing monitoring"),
            )
            .unwrap();
        db.add_paper(
            Paper::new("Tensor change detection", vec![users[1]])
                .with_abstract("structural change detection in tensor streams")
                .citing(vec![p_zach]),
        )
        .unwrap();
        db.add_paper(
            Paper::new("Serializable snapshots", vec![users[2]])
                .with_abstract("transaction processing snapshot isolation"),
        )
        .unwrap();
        for &u in &users {
            db.attend(u, conf).unwrap();
        }
        db.check_in(users[1], sessions[0]).unwrap();
        db.check_in(users[2], sessions[1]).unwrap();
        db.request_connection(users[0], users[3]).unwrap();
        db.respond_connection(users[3], users[0], true).unwrap();
        (db, users, sessions)
    }

    #[test]
    fn related_researcher_ranks_first() {
        let (db, users, _) = world();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        let recs = recommend_peers(&db, &kn, &PprCache::new(), users[0], &ctx, PeerRecConfig::default());
        assert!(!recs.is_empty());
        assert_eq!(recs[0].user, users[1], "Ann (cites Zach, same topic) first");
        // Bob should rank below Ann.
        let bob_pos = recs.iter().position(|r| r.user == users[2]);
        if let Some(pos) = bob_pos {
            assert!(pos > 0);
        }
    }

    #[test]
    fn excludes_self_and_existing_connections() {
        let (db, users, _) = world();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        let recs = recommend_peers(&db, &kn, &PprCache::new(), users[0], &ctx, PeerRecConfig::default());
        assert!(recs.iter().all(|r| r.user != users[0]), "no self-recommendation");
        assert!(recs.iter().all(|r| r.user != users[3]), "Carol already connected");
    }

    #[test]
    fn recommendations_carry_reasons_and_sessions() {
        let (db, users, sessions) = world();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        let recs = recommend_peers(&db, &kn, &PprCache::new(), users[0], &ctx, PeerRecConfig::default());
        let ann = recs.iter().find(|r| r.user == users[1]).expect("Ann recommended");
        assert!(!ann.reasons.is_empty(), "evidence attached");
        // Ann already checked into the tensor session, so her *likely*
        // sessions must not repeat it; prediction lists other sessions.
        assert!(ann.likely_sessions.iter().all(|(s, _)| *s != sessions[0]));
    }

    #[test]
    fn strategies_differ() {
        let (db, users, _) = world();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        for strat in [PeerStrategy::Blend, PeerStrategy::PprOnly, PeerStrategy::EvidenceOnly] {
            let recs = recommend_peers(
                &db,
                &kn,
                &PprCache::new(),
                users[0],
                &ctx,
                PeerRecConfig::defaults().with_strategy(strat),
            );
            assert!(!recs.is_empty(), "{strat:?} returns results");
            for w in recs.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
    }

    #[test]
    fn session_prediction_prefers_topic_match() {
        let (db, users, sessions) = world();
        let kn = KnowledgeNetwork::build(&db);
        // Bob (transactions) should be predicted into the transactions
        // session rather than tensors... but he already checked in there;
        // test with Zach instead: tensors session tops his list.
        let pred = predict_sessions(&db, &kn, users[0], 2);
        assert!(!pred.is_empty());
        assert_eq!(pred[0].0, sessions[0], "tensor session tops Zach's prediction");
    }

    #[test]
    fn top_k_respected() {
        let (db, users, _) = world();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        let recs = recommend_peers(
            &db,
            &kn,
            &PprCache::new(),
            users[0],
            &ctx,
            PeerRecConfig::defaults().with_top_k(1),
        );
        assert_eq!(recs.len(), 1);
    }
}
