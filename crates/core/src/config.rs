//! Shared service-configuration plumbing.
//!
//! Every ranked Table-1 service takes "how many results" and "how is
//! the caller's activity context built" — [`CommonConfig`] carries
//! those two fields once, and the per-service configs
//! ([`crate::peers::PeerRecConfig`], [`crate::discover::DiscoverConfig`])
//! embed it. The configs share the builder idiom: `::defaults()` for
//! the documented baseline, then chainable `with_*` setters.

use crate::context::ContextConfig;

/// The fields shared by every ranked service: result count and the
/// activity-context construction parameters. The facade builds the
/// caller's context from `context`, so tuning (say) the history window
/// flows into search, recommendation, and peer discovery uniformly.
#[derive(Clone, Copy, Debug)]
pub struct CommonConfig {
    /// Results to return.
    pub top_k: usize,
    /// How the caller's activity context is built.
    pub context: ContextConfig,
}

impl CommonConfig {
    /// The shared baseline: `top_k` results over a default-built context.
    pub fn defaults(top_k: usize) -> Self {
        CommonConfig { top_k, context: ContextConfig::default() }
    }

    /// Sets the result count.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Sets the context-construction parameters.
    pub fn with_context(mut self, cfg: ContextConfig) -> Self {
        self.context = cfg;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = CommonConfig::defaults(7)
            .with_top_k(3)
            .with_context(ContextConfig { top_terms: 4, ..Default::default() });
        assert_eq!(c.top_k, 3);
        assert_eq!(c.context.top_terms, 4);
    }
}
