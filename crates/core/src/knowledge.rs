//! Builds the multi-layer dynamic knowledge network (paper Figure 3)
//! from the platform database.
//!
//! "In its core, Hive leverages dynamically evolving knowledge
//! structures, including user connections, concept maps, co-authorship
//! networks, content from papers and presentations, and contextual
//! knowledge to create and to promote networks of peers."
//!
//! [`KnowledgeNetwork::build`] derives, from a [`HiveDb`]:
//!
//! * the **social layer** (accepted connections + follows),
//! * the **co-authorship layer**,
//! * the **citation layer** (paper-level),
//! * the **activity layer** (user ↔ resource bipartite edges),
//! * the **content layer** — a TF-IDF corpus over papers, presentations
//!   and sessions, with per-entity vectors,
//! * **concept-map layers** bootstrapped from paper abstracts and session
//!   topics, aligned and integrated via `hive-concept`,
//! * a **unified weighted graph** over entity IRIs for PPR-style
//!   propagation, and
//! * a weighted-RDF export ([`KnowledgeNetwork::to_store`]) for ranked
//!   path queries (relationship explanation, Figure 2).

use crate::db::{DbDelta, HiveDb};
use crate::ids::{PaperId, PresentationId, SessionId, UserId};
use hive_concept::{bootstrap_concept_map, AlignConfig, BootstrapConfig, ContextNetwork};
use hive_graph::{CsrView, Graph};
use hive_store::{Term, TripleStore};
use hive_text::tfidf::{Corpus, SparseVector};
use std::collections::HashMap;

/// Edge weights used when fusing layers into the unified graph. Exposed
/// so the ablation benches can sweep them.
#[derive(Clone, Copy, Debug)]
pub struct FusionWeights {
    /// Accepted connection (user-user).
    pub connection: f64,
    /// Follow (user-user, weaker than a mutual connection).
    pub follow: f64,
    /// Co-authorship per shared paper (user-user).
    pub coauthor: f64,
    /// Authorship (user-paper).
    pub authorship: f64,
    /// Citation (paper-paper).
    pub citation: f64,
    /// A presentation links its paper to its session.
    pub presentation: f64,
    /// Check-in (user-session).
    pub checkin: f64,
    /// Q/A/comment participation (user-session or user-presentation).
    pub discussion: f64,
    /// Paper/presentation view (user-paper).
    pub view: f64,
    /// Conference attendance (user-conference) and session containment.
    pub attendance: f64,
}

impl Default for FusionWeights {
    fn default() -> Self {
        FusionWeights {
            connection: 1.0,
            follow: 0.5,
            coauthor: 0.8,
            authorship: 1.0,
            citation: 0.7,
            presentation: 0.9,
            checkin: 0.9,
            discussion: 0.8,
            view: 0.3,
            attendance: 0.3,
        }
    }
}

/// The derived knowledge network.
#[derive(Clone, Debug)]
pub struct KnowledgeNetwork {
    /// Social layer: connections (undirected, weight 1) and follows
    /// (directed, weight 0.5) between user IRIs.
    pub social: Graph,
    /// Co-authorship layer: user IRIs, weight = number of shared papers.
    pub coauthor: Graph,
    /// Citation layer: paper IRIs, directed citing -> cited.
    pub citation: Graph,
    /// Unified multi-layer graph over all entity IRIs (undirected).
    pub unified: Graph,
    /// CSR snapshot of [`Self::unified`], built once so every PPR run
    /// (peer recommendation, contextual search, session prediction)
    /// skips the per-call adjacency flattening.
    pub unified_csr: CsrView,
    /// Content corpus over papers, presentations, sessions, and profiles.
    pub corpus: Corpus,
    /// TF-IDF vectors per paper.
    pub paper_vectors: HashMap<PaperId, SparseVector>,
    /// TF-IDF vectors per presentation (slide text).
    pub presentation_vectors: HashMap<PresentationId, SparseVector>,
    /// TF-IDF vectors per session (title + topics).
    pub session_vectors: HashMap<SessionId, SparseVector>,
    /// Per-user content vectors (interests + authored papers).
    pub user_vectors: HashMap<UserId, SparseVector>,
    /// Concept-map layers (papers, sessions) aligned and integrated.
    pub concepts: ContextNetwork,
}

impl KnowledgeNetwork {
    /// Derives the full network from the database with default fusion
    /// weights.
    pub fn build(db: &HiveDb) -> Self {
        Self::build_with(db, FusionWeights::default())
    }

    /// Derives the network with explicit fusion weights.
    pub fn build_with(db: &HiveDb, w: FusionWeights) -> Self {
        let social = build_social(db, &w);
        let coauthor = build_coauthor(db, &w);
        let citation = build_citation(db, &w);
        let unified = build_unified(db, &w);
        let unified_csr = CsrView::build(&unified);
        let (corpus, paper_vectors, presentation_vectors, session_vectors, user_vectors) =
            build_content(db);
        let concepts = build_concepts(db);
        KnowledgeNetwork {
            social,
            coauthor,
            citation,
            unified,
            unified_csr,
            corpus,
            paper_vectors,
            presentation_vectors,
            session_vectors,
            user_vectors,
            concepts,
        }
    }

    /// Content similarity between two users in `[0, 1]`.
    pub fn user_similarity(&self, a: UserId, b: UserId) -> f64 {
        match (self.user_vectors.get(&a), self.user_vectors.get(&b)) {
            (Some(va), Some(vb)) => va.cosine(vb),
            _ => 0.0,
        }
    }

    /// Exports relationship triples for ranked path queries.
    ///
    /// Predicates: `rel:connected`, `rel:follows`, `rel:coauthor`,
    /// `rel:cites`, `rel:authored`, `rel:presented_in`, `rel:checked_in`,
    /// `rel:discussed_in`, `rel:attended`, `rel:session_of`.
    ///
    /// The export is **static entities first, then a chronological
    /// replay of the activity log** ([`HiveDb::replay_deltas`]). That
    /// exact insertion sequence is what [`apply_rel_delta`] continues,
    /// so a cached store patched with [`HiveDb::deltas_since`] ends up
    /// byte-identical (term-id assignment included) to a fresh export.
    pub fn to_store(&self, db: &HiveDb) -> TripleStore {
        let mut st = TripleStore::new();
        // Co-authorship with shared-paper counts.
        let mut coauth: HashMap<(UserId, UserId), f64> = HashMap::new();
        for p in db.paper_ids() {
            let Ok(paper) = db.get_paper(p) else { continue; };
            let authors = &paper.authors;
            for (i, &a) in authors.iter().enumerate() {
                for &b in &authors[i + 1..] {
                    let key = if a < b { (a, b) } else { (b, a) };
                    *coauth.entry(key).or_insert(0.0) += 1.0;
                }
            }
        }
        // Sort by author pair: HashMap iteration order varies between
        // instances, and store insertion order fixes term-id assignment,
        // which downstream path ranking must not depend on. Keeping the
        // export order canonical makes two equal databases produce
        // byte-identical stores (the recovery-equivalence oracle relies
        // on this).
        // lint:allow(determinism-taint) -- sorted by author pair on the next line
        let mut coauth: Vec<_> = coauth.into_iter().collect();
        coauth.sort_by_key(|&(pair, _)| pair);
        for ((a, b), n) in coauth {
            ins(&mut st, a.iri(), "rel:coauthor", b.iri(), (0.5 + 0.1 * n).min(1.0));
        }
        for p in db.paper_ids() {
            let Ok(paper) = db.get_paper(p) else { continue; };
            for &a in &paper.authors {
                ins(&mut st, a.iri(), "rel:authored", p.iri(), 1.0);
            }
            for &c in &paper.citations {
                ins(&mut st, p.iri(), "rel:cites", c.iri(), 0.7);
            }
        }
        for pres_id in db.presentation_ids() {
            let Ok(pres) = db.get_presentation(pres_id) else { continue; };
            ins(&mut st, pres.paper.iri(), "rel:presented_in", pres.session.iri(), 0.9);
        }
        for s in db.session_ids() {
            let Ok(sess) = db.get_session(s) else { continue; };
            ins(&mut st, s.iri(), "rel:session_of", sess.conference.iri(), 0.8);
        }
        for d in db.replay_deltas() {
            apply_rel_delta(&mut st, &d);
        }
        st
    }

    /// Applies one patchable database delta to the dynamic layers in
    /// place, with the same edge semantics (and insertion order) as a
    /// fresh [`KnowledgeNetwork::build_with`] replay. Returns `false`
    /// for [`DbDelta::Structural`] — the caller must rebuild. The static
    /// layers (co-authorship, citation, content, concepts) never change
    /// under patchable deltas.
    ///
    /// After a batch of applications, call
    /// [`KnowledgeNetwork::refresh_unified_csr`] once to re-derive the
    /// CSR snapshot.
    pub fn apply_delta(&mut self, d: &DbDelta, w: &FusionWeights) -> bool {
        match d {
            DbDelta::Structural => false,
            DbDelta::Neutral => true,
            DbDelta::Follow { .. }
            | DbDelta::Connect { .. }
            | DbDelta::CheckIn { .. }
            | DbDelta::Attend { .. }
            | DbDelta::Discuss { .. }
            | DbDelta::ViewPaper { .. } => {
                apply_social_delta(&mut self.social, w, d);
                apply_unified_delta(&mut self.unified, w, d);
                true
            }
        }
    }

    /// Re-derives [`Self::unified_csr`] from [`Self::unified`]; call once
    /// after a batch of [`Self::apply_delta`].
    pub fn refresh_unified_csr(&mut self) {
        self.unified_csr = CsrView::build(&self.unified);
    }
}

// lint:mutator(TripleStore)
fn ins(st: &mut TripleStore, s: String, p: &str, o: String, w: f64) {
    let w = w.clamp(f64::MIN_POSITIVE, 1.0);
    // Weight is clamped into (0, 1] above and both positions are
    // IRIs, so this cannot fail; ignore rather than panic.
    let _ = st.insert(Term::iri(s), Term::iri(p), Term::iri(o), w);
}

/// Applies one patchable delta to a `rel:*` triple export, continuing
/// the insertion sequence of [`KnowledgeNetwork::to_store`]. Neutral and
/// structural deltas are no-ops (the latter must trigger a rebuild —
/// see [`KnowledgeNetwork::apply_delta`]).
// lint:mutator(TripleStore)
pub fn apply_rel_delta(st: &mut TripleStore, d: &DbDelta) {
    match *d {
        DbDelta::Connect { a, b } => ins(st, a.iri(), "rel:connected", b.iri(), 1.0),
        DbDelta::Follow { follower, followee } => {
            ins(st, follower.iri(), "rel:follows", followee.iri(), 0.5)
        }
        DbDelta::CheckIn { user, session } => {
            ins(st, user.iri(), "rel:checked_in", session.iri(), 0.9)
        }
        DbDelta::Discuss { author, session, .. } => {
            ins(st, author.iri(), "rel:discussed_in", session.iri(), 0.8)
        }
        DbDelta::Attend { user, conf } => ins(st, user.iri(), "rel:attended", conf.iri(), 0.6),
        DbDelta::ViewPaper { .. } | DbDelta::Neutral | DbDelta::Structural => {}
    }
}

// The dynamic layers are built as *static entities + chronological
// activity-log replay* rather than per-category sweeps: the replay
// sequence is exactly what `apply_*_delta` continues when a cached
// network is patched forward, so patched and fresh builds share node
// interning order, adjacency order, and float accumulation order —
// making them bit-identical (the delta-vs-rebuild oracles rely on it).

fn build_social(db: &HiveDb, w: &FusionWeights) -> Graph {
    let mut g = Graph::new();
    for u in db.user_ids() {
        g.add_node(u.iri());
    }
    for d in db.replay_deltas() {
        apply_social_delta(&mut g, w, &d);
    }
    g
}

fn apply_social_delta(g: &mut Graph, w: &FusionWeights, d: &DbDelta) {
    match *d {
        DbDelta::Connect { a, b } => {
            let (na, nb) = (g.add_node(a.iri()), g.add_node(b.iri()));
            g.add_undirected_edge(na, nb, w.connection);
        }
        DbDelta::Follow { follower, followee } => {
            let (na, nb) = (g.add_node(follower.iri()), g.add_node(followee.iri()));
            g.add_edge(na, nb, w.follow);
        }
        // The social layer carries explicit peer relations only; the
        // remaining activity kinds contribute to the unified layer.
        DbDelta::CheckIn { .. }
        | DbDelta::Attend { .. }
        | DbDelta::Discuss { .. }
        | DbDelta::ViewPaper { .. }
        | DbDelta::Neutral
        | DbDelta::Structural => {}
    }
}

fn build_coauthor(db: &HiveDb, w: &FusionWeights) -> Graph {
    let mut g = Graph::new();
    for u in db.user_ids() {
        g.add_node(u.iri());
    }
    for p in db.paper_ids() {
        let Ok(paper) = db.get_paper(p) else { continue; };
            let authors = paper.authors.clone();
        for (i, &a) in authors.iter().enumerate() {
            for &b in &authors[i + 1..] {
                let (na, nb) = (g.add_node(a.iri()), g.add_node(b.iri()));
                g.add_undirected_edge(na, nb, w.coauthor);
            }
        }
    }
    g
}

fn build_citation(db: &HiveDb, _w: &FusionWeights) -> Graph {
    let mut g = Graph::new();
    for p in db.paper_ids() {
        g.add_node(p.iri());
    }
    for p in db.paper_ids() {
        let Ok(paper) = db.get_paper(p) else { continue; };
            let citations = paper.citations.clone();
        for c in citations {
            let (np, nc) = (g.add_node(p.iri()), g.add_node(c.iri()));
            g.add_edge(np, nc, 1.0);
        }
    }
    g
}

fn und(g: &mut Graph, a: String, b: String, wt: f64) {
    let (na, nb) = (g.add_node(a), g.add_node(b));
    g.add_undirected_edge(na, nb, wt);
}

fn build_unified(db: &HiveDb, w: &FusionWeights) -> Graph {
    let mut g = Graph::new();
    for u in db.user_ids() {
        g.add_node(u.iri());
    }
    for s in db.session_ids() {
        g.add_node(s.iri());
    }
    for p in db.paper_ids() {
        g.add_node(p.iri());
    }
    for c in db.conference_ids() {
        g.add_node(c.iri());
    }
    for p in db.paper_ids() {
        let Ok(paper) = db.get_paper(p).cloned() else { continue; };
        for (i, &a) in paper.authors.iter().enumerate() {
            und(&mut g, a.iri(), p.iri(), w.authorship);
            for &b in &paper.authors[i + 1..] {
                und(&mut g, a.iri(), b.iri(), w.coauthor);
            }
        }
        for &c in &paper.citations {
            und(&mut g, p.iri(), c.iri(), w.citation);
        }
    }
    for pres_id in db.presentation_ids() {
        let Ok(pres) = db.get_presentation(pres_id) else { continue; };
        und(&mut g, pres.paper.iri(), pres.session.iri(), w.presentation);
    }
    for s in db.session_ids() {
        let Ok(session) = db.get_session(s) else { continue; };
            let conf = session.conference;
        und(&mut g, s.iri(), conf.iri(), w.attendance);
    }
    // Dynamic edges (connections, follows, check-ins, attendance,
    // discussions, browsing views) replay from the activity log.
    for d in db.replay_deltas() {
        apply_unified_delta(&mut g, w, &d);
    }
    g
}

fn apply_unified_delta(g: &mut Graph, w: &FusionWeights, d: &DbDelta) {
    match *d {
        DbDelta::Connect { a, b } => und(g, a.iri(), b.iri(), w.connection),
        DbDelta::Follow { follower, followee } => {
            und(g, follower.iri(), followee.iri(), w.follow)
        }
        DbDelta::CheckIn { user, session } => und(g, user.iri(), session.iri(), w.checkin),
        DbDelta::Attend { user, conf } => und(g, user.iri(), conf.iri(), w.attendance),
        DbDelta::Discuss { author, session, paper } => {
            und(g, author.iri(), session.iri(), w.discussion);
            if let Some(p) = paper {
                und(g, author.iri(), p.iri(), w.view);
            }
        }
        DbDelta::ViewPaper { user, paper } => und(g, user.iri(), paper.iri(), w.view),
        DbDelta::Neutral | DbDelta::Structural => {}
    }
}

type ContentIndexes = (
    Corpus,
    HashMap<PaperId, SparseVector>,
    HashMap<PresentationId, SparseVector>,
    HashMap<SessionId, SparseVector>,
    HashMap<UserId, SparseVector>,
);

fn build_content(db: &HiveDb) -> ContentIndexes {
    let mut corpus = Corpus::new();
    // Index first so IDF reflects the whole collection...
    let mut paper_tf = HashMap::new();
    for p in db.paper_ids() {
        let Ok(paper) = db.get_paper(p) else { continue; };
        paper_tf.insert(p, corpus.index_document(&paper.text()));
    }
    let mut pres_tf = HashMap::new();
    for pr in db.presentation_ids() {
        let Ok(pres) = db.get_presentation(pr) else { continue; };
        pres_tf.insert(pr, corpus.index_document(&pres.slides_text));
    }
    let mut sess_tf = HashMap::new();
    for s in db.session_ids() {
        let Ok(session) = db.get_session(s) else { continue; };
        sess_tf.insert(s, corpus.index_document(&session.text()));
    }
    // ...then weight, batching each arena through the parallel
    // vectorizer (per-document TF-IDF is independent work).
    fn weighted<K: Copy + std::hash::Hash + Eq>(
        corpus: &Corpus,
        tf: &HashMap<K, SparseVector>,
    ) -> HashMap<K, SparseVector> {
        let (keys, tfs): (Vec<K>, Vec<SparseVector>) =
            tf.iter().map(|(&k, v)| (k, v.clone())).unzip();
        keys.into_iter().zip(corpus.tfidf_batch(&tfs)).collect()
    }
    let paper_vectors = weighted(&corpus, &paper_tf);
    let presentation_vectors = weighted(&corpus, &pres_tf);
    let session_vectors = weighted(&corpus, &sess_tf);
    // User vectors: declared interests + authored papers, renormalized.
    let mut user_vectors = HashMap::new();
    for u in db.user_ids() {
        let Ok(user) = db.get_user(u) else { continue; };
        let profile = user.profile_text();
        let mut v = corpus.vectorize(&profile);
        for &p in db.papers_of(u).to_vec().iter() {
            if let Some(pv) = paper_vectors.get(&p) {
                v.accumulate(pv, 1.0);
            }
        }
        v.normalize();
        if !v.is_empty() {
            user_vectors.insert(u, v);
        }
    }
    (corpus, paper_vectors, presentation_vectors, session_vectors, user_vectors)
}

fn build_concepts(db: &HiveDb) -> ContextNetwork {
    let paper_texts: Vec<String> = db
        .paper_ids()
        .iter()
        .filter_map(|&p| db.get_paper(p).ok().map(|paper| paper.text()))
        .collect();
    let paper_refs: Vec<&str> = paper_texts.iter().map(String::as_str).collect();
    let session_texts: Vec<String> = db
        .session_ids()
        .iter()
        .filter_map(|&s| db.get_session(s).ok().map(|session| session.text()))
        .collect();
    let session_refs: Vec<&str> = session_texts.iter().map(String::as_str).collect();
    let papers_map = bootstrap_concept_map("papers", &paper_refs, BootstrapConfig::default());
    let sessions_map =
        bootstrap_concept_map("sessions", &session_refs, BootstrapConfig::default());
    let mut net = ContextNetwork::new();
    net.add_layer(papers_map, 1.0);
    net.add_layer(sessions_map, 0.8);
    net.align_all(AlignConfig::default());
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::*;

    fn world() -> (HiveDb, Vec<UserId>, Vec<SessionId>, Vec<PaperId>) {
        let mut db = HiveDb::new();
        let users: Vec<UserId> = vec![
            db.add_user(User::new("Zach", "ASU").with_interests(vec!["tensor streams".into()])),
            db.add_user(User::new("Ann", "UniTo").with_interests(vec!["communities".into()])),
            db.add_user(User::new("Aaron", "NEC").with_interests(vec!["graphs".into()])),
        ];
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        let sessions = vec![
            db.add_session(
                Session::new(conf, "Tensor Streams", "R1")
                    .with_topics(vec!["tensor streams monitoring".into()]),
            )
            .unwrap(),
            db.add_session(
                Session::new(conf, "Graph Processing", "R2")
                    .with_topics(vec!["large scale graph processing".into()]),
            )
            .unwrap(),
        ];
        let p0 = db
            .add_paper(
                Paper::new("Tensor stream monitoring", vec![users[0], users[1]])
                    .with_abstract("compressed sensing of tensor streams in social networks")
                    .at_venue(conf),
            )
            .unwrap();
        let p1 = db
            .add_paper(
                Paper::new("Graph communities", vec![users[1], users[2]])
                    .with_abstract("community detection in large scale graphs")
                    .at_venue(conf)
                    .citing(vec![p0]),
            )
            .unwrap();
        db.add_presentation(Presentation::new(p0, users[0], sessions[0]).with_slides(
            "tensor streams compressed sensing sketch ensembles",
        ))
        .unwrap();
        for &u in &users {
            db.attend(u, conf).unwrap();
        }
        db.check_in(users[0], sessions[0]).unwrap();
        db.check_in(users[1], sessions[0]).unwrap();
        db.check_in(users[2], sessions[1]).unwrap();
        db.follow(users[0], users[1]).unwrap();
        db.request_connection(users[1], users[2]).unwrap();
        db.respond_connection(users[2], users[1], true).unwrap();
        (db, users, sessions, vec![p0, p1])
    }

    #[test]
    fn layers_have_expected_edges() {
        let (db, users, _, papers) = world();
        let kn = KnowledgeNetwork::build(&db);
        // Social: one connection (undirected = 2 directed) + one follow.
        assert_eq!(kn.social.edge_count(), 3);
        // Coauthor: p0 links u0-u1; p1 links u1-u2.
        let a = kn.coauthor.node(&users[0].iri()).unwrap();
        let b = kn.coauthor.node(&users[1].iri()).unwrap();
        assert!(kn.coauthor.edge_weight(a, b).is_some());
        // Citation: p1 -> p0.
        let c1 = kn.citation.node(&papers[1].iri()).unwrap();
        let c0 = kn.citation.node(&papers[0].iri()).unwrap();
        assert!(kn.citation.edge_weight(c1, c0).is_some());
        assert!(kn.citation.edge_weight(c0, c1).is_none(), "citations are directed");
    }

    #[test]
    fn unified_graph_spans_all_entity_kinds() {
        let (db, users, sessions, papers) = world();
        let kn = KnowledgeNetwork::build(&db);
        for key in [users[0].iri(), sessions[0].iri(), papers[0].iri()] {
            assert!(kn.unified.node(&key).is_some(), "missing {key}");
        }
        // Check-in edge present.
        let u = kn.unified.node(&users[0].iri()).unwrap();
        let s = kn.unified.node(&sessions[0].iri()).unwrap();
        assert!(kn.unified.edge_weight(u, s).is_some());
    }

    #[test]
    fn content_vectors_capture_similarity() {
        let (db, users, ..) = world();
        let kn = KnowledgeNetwork::build(&db);
        // u0 and u1 share a tensor-stream paper; u2 does graphs.
        let sim_01 = kn.user_similarity(users[0], users[1]);
        let sim_02 = kn.user_similarity(users[0], users[2]);
        assert!(sim_01 > sim_02, "{sim_01} > {sim_02}");
    }

    #[test]
    fn concept_layers_built_and_aligned() {
        let (db, ..) = world();
        let kn = KnowledgeNetwork::build(&db);
        assert_eq!(kn.concepts.layer_count(), 2);
        let inv = kn.concepts.inventory();
        assert!(inv[0].1 > 0, "paper concepts extracted");
        assert!(inv[1].1 > 0, "session concepts extracted");
    }

    #[test]
    fn store_export_supports_path_queries() {
        let (db, users, ..) = world();
        let kn = KnowledgeNetwork::build(&db);
        let st = kn.to_store(&db);
        assert!(st.len() > 10);
        // u0 -> u2 path exists (e.g. follow/coauthor via u1).
        let paths = hive_store::PathQuery::new(
            Term::iri(users[0].iri()),
            Term::iri(users[2].iri()),
        )
        .top_k(3)
        .run(&st)
        .unwrap();
        assert!(!paths.is_empty());
    }

    #[test]
    fn fusion_weights_respected() {
        let (db, users, sessions, _) = world();
        let heavy = FusionWeights { checkin: 1.0, ..Default::default() };
        let light = FusionWeights { checkin: 0.1, ..Default::default() };
        let kh = KnowledgeNetwork::build_with(&db, heavy);
        let kl = KnowledgeNetwork::build_with(&db, light);
        let (u, s) = (users[0].iri(), sessions[0].iri());
        let wh = kh
            .unified
            .edge_weight(kh.unified.node(&u).unwrap(), kh.unified.node(&s).unwrap())
            .unwrap();
        let wl = kl
            .unified
            .edge_weight(kl.unified.node(&u).unwrap(), kl.unified.node(&s).unwrap())
            .unwrap();
        assert!(wh > wl);
    }
}
