//! The personal activity context (paper §2.1 and Figure 4).
//!
//! "The content of the currently active workpad defines the user's
//! activity context and all the searches and recommendations are
//! contextualized according to this active workpad." The context also
//! folds in the recent access history ("understanding the personal
//! activity context through access patterns").
//!
//! An [`ActivityContext`] carries three synchronized views of the same
//! context:
//!
//! * a TF-IDF **content vector** for similarity-based ranking,
//! * **graph seeds** (entity IRIs with restart mass) for PPR-style
//!   propagation over the unified knowledge network,
//! * the top context **terms** for snippet extraction and previews.

use crate::db::HiveDb;
use crate::ids::UserId;
use crate::knowledge::KnowledgeNetwork;
use crate::model::{ActivityEvent, QaTarget, WorkpadItem};
use hive_text::tfidf::SparseVector;
use std::collections::HashMap;

/// Context construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ContextConfig {
    /// Mass given to each workpad item.
    pub workpad_weight: f64,
    /// Mass given to each recent history record (before decay).
    pub history_weight: f64,
    /// How many trailing activity records to fold in.
    pub history_window: usize,
    /// Per-record geometric decay (most recent = 1, previous = decay, ...).
    pub history_decay: f64,
    /// Number of representative terms to expose.
    pub top_terms: usize,
}

impl Default for ContextConfig {
    fn default() -> Self {
        ContextConfig {
            workpad_weight: 1.0,
            history_weight: 0.3,
            history_window: 30,
            history_decay: 0.9,
            top_terms: 12,
        }
    }
}

/// A user's current activity context.
#[derive(Clone, Debug, Default)]
pub struct ActivityContext {
    /// Unit-length content vector over the corpus vocabulary.
    pub vector: SparseVector,
    /// Graph restart distribution: entity IRI -> mass.
    pub seeds: HashMap<String, f64>,
    /// Top context terms (display form), strongest first.
    pub terms: Vec<String>,
}

impl ActivityContext {
    /// True if the context carries no signal at all.
    pub fn is_empty(&self) -> bool {
        self.vector.is_empty() && self.seeds.is_empty()
    }

    /// Content similarity of a resource vector to this context.
    pub fn similarity(&self, v: &SparseVector) -> f64 {
        self.vector.cosine(v)
    }
}

/// Builds the activity context of `user` from their active workpad and
/// recent history.
pub fn build_context(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    user: UserId,
    cfg: ContextConfig,
) -> ActivityContext {
    let mut vector = SparseVector::new();
    let mut seeds: HashMap<String, f64> = HashMap::new();
    let seed = |seeds: &mut HashMap<String, f64>, iri: String, mass: f64| {
        *seeds.entry(iri).or_insert(0.0) += mass;
    };
    // The user themself is always a (light) seed: recommendations start
    // from who you are even with an empty pad.
    seed(&mut seeds, user.iri(), 0.25 * cfg.workpad_weight);
    if let Some(uv) = kn.user_vectors.get(&user) {
        vector.accumulate(uv, 0.25 * cfg.workpad_weight);
    }
    // Active workpad items.
    if let Some(pad_id) = db.active_workpad_of(user) {
        if let Ok(pad) = db.get_workpad(pad_id) {
            let mut stack: Vec<(WorkpadItem, &crate::model::Workpad)> =
                pad.items.iter().map(|&i| (i, pad)).collect();
            while let Some((item, owner_pad)) = stack.pop() {
                let w = cfg.workpad_weight;
                match item {
                    WorkpadItem::UserAvatar(u) => {
                        seed(&mut seeds, u.iri(), w);
                        if let Some(v) = kn.user_vectors.get(&u) {
                            vector.accumulate(v, w);
                        }
                    }
                    WorkpadItem::Paper(p) => {
                        seed(&mut seeds, p.iri(), w);
                        if let Some(v) = kn.paper_vectors.get(&p) {
                            vector.accumulate(v, w);
                        }
                    }
                    WorkpadItem::Presentation(p) => {
                        if let Ok(pres) = db.get_presentation(p) {
                            seed(&mut seeds, pres.paper.iri(), w);
                            seed(&mut seeds, pres.session.iri(), 0.5 * w);
                        }
                        if let Some(v) = kn.presentation_vectors.get(&p) {
                            vector.accumulate(v, w);
                        }
                    }
                    WorkpadItem::Session(s) => {
                        seed(&mut seeds, s.iri(), w);
                        if let Some(v) = kn.session_vectors.get(&s) {
                            vector.accumulate(v, w);
                        }
                    }
                    WorkpadItem::Question(q) => {
                        if let Ok(question) = db.get_question(q) {
                            vector.accumulate(&kn.corpus.vectorize_known(&question.text), w);
                            let session = match question.target {
                                QaTarget::Presentation(p) => {
                                    db.get_presentation(p).map(|pr| pr.session).ok()
                                }
                                QaTarget::Session(s) => Some(s),
                            };
                            if let Some(s) = session {
                                seed(&mut seeds, s.iri(), 0.5 * w);
                            }
                        }
                    }
                    WorkpadItem::Collection(c) => {
                        // One level of collection expansion.
                        if let Ok(col) = db.get_collection(c) {
                            for &inner in &col.items {
                                if !matches!(inner, WorkpadItem::Collection(_)) {
                                    stack.push((inner, owner_pad));
                                }
                            }
                        }
                    }
                    WorkpadItem::Note(n) => {
                        if let Some(text) = owner_pad.notes.get(n as usize) {
                            vector.accumulate(&kn.corpus.vectorize_known(text), w);
                        }
                    }
                }
            }
        }
    }
    // Recent history with geometric decay.
    let history = db.activities_of(user);
    let recent = history.iter().rev().take(cfg.history_window);
    let mut decay = 1.0;
    for rec in recent {
        let w = cfg.history_weight * decay;
        decay *= cfg.history_decay;
        match rec.event {
            ActivityEvent::CheckIn(s) => {
                seed(&mut seeds, s.iri(), w);
                if let Some(v) = kn.session_vectors.get(&s) {
                    vector.accumulate(v, w);
                }
            }
            ActivityEvent::ViewPaper(p) => {
                seed(&mut seeds, p.iri(), w);
                if let Some(v) = kn.paper_vectors.get(&p) {
                    vector.accumulate(v, w);
                }
            }
            ActivityEvent::ViewPresentation(p) => {
                if let Some(v) = kn.presentation_vectors.get(&p) {
                    vector.accumulate(v, w);
                }
            }
            ActivityEvent::Follow(u) => seed(&mut seeds, u.iri(), 0.5 * w),
            _ => {}
        }
    }
    vector.normalize();
    let terms = vector
        .top_k(cfg.top_terms)
        .into_iter()
        .filter_map(|(id, _)| kn.corpus.term_name(id).map(str::to_string))
        .collect();
    ActivityContext { vector, seeds, terms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::KnowledgeNetwork;
    use crate::model::*;

    fn world() -> (HiveDb, Vec<UserId>, Vec<crate::ids::SessionId>, Vec<crate::ids::PaperId>) {
        let mut db = HiveDb::new();
        let users = vec![
            db.add_user(User::new("Zach", "ASU").with_interests(vec!["tensor streams".into()])),
            db.add_user(User::new("Ann", "UniTo").with_interests(vec!["graph communities".into()])),
        ];
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        let s0 = db
            .add_session(
                Session::new(conf, "Tensor Streams", "R1")
                    .with_topics(vec!["tensor stream monitoring".into()]),
            )
            .unwrap();
        let s1 = db
            .add_session(
                Session::new(conf, "Graph Processing", "R2")
                    .with_topics(vec!["large graph processing".into()]),
            )
            .unwrap();
        let p0 = db
            .add_paper(
                Paper::new("Tensor sketches", vec![users[0]])
                    .with_abstract("compressed sensing tensor streams"),
            )
            .unwrap();
        let p1 = db
            .add_paper(
                Paper::new("Graph communities", vec![users[1]])
                    .with_abstract("community detection graph processing"),
            )
            .unwrap();
        (db, users, vec![s0, s1], vec![p0, p1])
    }

    #[test]
    fn empty_user_gets_self_seed_only() {
        let (db, users, ..) = world();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        assert!(ctx.seeds.contains_key(&users[0].iri()));
        // Interests still give a content vector.
        assert!(!ctx.vector.is_empty());
    }

    #[test]
    fn workpad_items_dominate_the_context() {
        let (mut db, users, sessions, papers) = world();
        let pad = db.create_workpad(users[0], "graphs").unwrap();
        db.workpad_add(users[0], pad, WorkpadItem::Paper(papers[1])).unwrap();
        db.workpad_add(users[0], pad, WorkpadItem::Session(sessions[1])).unwrap();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        assert!(ctx.seeds.contains_key(&papers[1].iri()));
        assert!(ctx.seeds.contains_key(&sessions[1].iri()));
        // The graph-pad context is closer to the graph paper than the
        // tensor paper despite Zach's tensor interests.
        let sim_graph = ctx.similarity(&kn.paper_vectors[&papers[1]]);
        let sim_tensor = ctx.similarity(&kn.paper_vectors[&papers[0]]);
        assert!(sim_graph > sim_tensor, "{sim_graph} > {sim_tensor}");
    }

    #[test]
    fn switching_workpads_switches_context() {
        let (mut db, users, sessions, papers) = world();
        let pad_t = db.create_workpad(users[0], "tensors").unwrap();
        db.workpad_add(users[0], pad_t, WorkpadItem::Paper(papers[0])).unwrap();
        let pad_g = db.create_workpad(users[0], "graphs").unwrap();
        db.workpad_add(users[0], pad_g, WorkpadItem::Session(sessions[1])).unwrap();
        let kn = KnowledgeNetwork::build(&db);
        db.activate_workpad(users[0], pad_t).unwrap();
        let ctx_t = build_context(&db, &kn, users[0], ContextConfig::default());
        db.activate_workpad(users[0], pad_g).unwrap();
        let ctx_g = build_context(&db, &kn, users[0], ContextConfig::default());
        assert!(ctx_t.seeds.contains_key(&papers[0].iri()));
        assert!(!ctx_g.seeds.contains_key(&papers[0].iri()));
        assert!(ctx_g.seeds.contains_key(&sessions[1].iri()));
    }

    #[test]
    fn history_contributes_with_decay() {
        let (mut db, users, sessions, _) = world();
        db.check_in(users[0], sessions[1]).unwrap();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        let m = ctx.seeds.get(&sessions[1].iri()).copied().unwrap_or(0.0);
        assert!(m > 0.0, "recent check-in should seed the context");
        // History weight < workpad weight by default.
        assert!(m <= ContextConfig::default().workpad_weight);
    }

    #[test]
    fn notes_and_collections_feed_the_vector() {
        let (mut db, users, _, papers) = world();
        // Ann exports a pad containing the tensor paper; Zach imports it.
        let ann_pad = db.create_workpad(users[1], "shared").unwrap();
        db.workpad_add(users[1], ann_pad, WorkpadItem::Paper(papers[0])).unwrap();
        let col = db.export_workpad(users[1], ann_pad).unwrap();
        let zach_pad = db.create_workpad(users[0], "mine").unwrap();
        db.workpad_add(users[0], zach_pad, WorkpadItem::Collection(col)).unwrap();
        db.workpad_note(users[0], zach_pad, "compressed sensing question").unwrap();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        assert!(
            ctx.seeds.contains_key(&papers[0].iri()),
            "collection expansion should seed the inner paper"
        );
        assert!(!ctx.terms.is_empty());
    }

    #[test]
    fn terms_reflect_strongest_concepts() {
        let (mut db, users, _, papers) = world();
        let pad = db.create_workpad(users[0], "t").unwrap();
        db.workpad_add(users[0], pad, WorkpadItem::Paper(papers[0])).unwrap();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        assert!(
            ctx.terms.iter().any(|t| t.starts_with("tensor")),
            "expected a tensor term in {:?}",
            ctx.terms
        );
    }
}
