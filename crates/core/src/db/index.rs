//! Typed secondary indexes and the declarative query planner.
//!
//! Services used to answer "papers about X in venue Y since tick T" by
//! iterating a full arena or the whole activity log and filtering
//! inline. [`DbIndexes`] replaces that with declarative typed indexes —
//! by **activity category**, **actor**, **time range**, **topic**,
//! **venue**, and **author** — and [`ActivityQuery`] / [`ResourceQuery`]
//! plan against them, falling back to a scan only when no index
//! applies.
//!
//! # Maintenance is O(delta)
//!
//! Every arena in [`HiveDb`] is append-only and the activity log is
//! clock-ordered, so forward maintenance is a *suffix scan from
//! recorded watermarks*: [`DbIndexes::patch`] ingests exactly the rows
//! appended since the index's stamped generation. The patch is gated on
//! the same [`HiveDb::deltas_since`] journal window the PR-5 cache
//! tiers use — a restored or checkpoint-adopted database resets its
//! journal, the window check fails, and the caller falls back to
//! [`DbIndexes::build`]. The `idx.patch` / `idx.rebuild` counters prove
//! which maintenance path ran; `idx.hit` / `idx.scan_fallback` prove
//! which query path did.
//!
//! # Equivalence by construction
//!
//! Index postings only ever *prune candidates*; the final say on every
//! candidate is the same `matches` predicate the scan fallback uses,
//! and candidates are emitted in the scan's order (log order for
//! activities; papers → presentations → sessions → users, each
//! ascending, for resources). A query therefore returns bit-identical
//! results through either path — `tests/index_equivalence.rs` pins
//! this across randomized query mixes and delta interleavings. Postings
//! live in `BTreeMap`s so digesting the index for the fingerprint
//! oracle needs no sorting pass.

use super::HiveDb;
use crate::clock::Timestamp;
use crate::discover::Resource;
use crate::ids::{ConferenceId, PaperId, SessionId, UserId};
use crate::model::{ActivityCategory, ActivityRecord};
use hive_text::tokenize;
use std::collections::BTreeMap;

/// Half-open logical-time window `[start, end)` in clock ticks.
///
/// Replaces the bare `Option<Timestamp>` from/to pair of the legacy
/// query shape: the bounds travel together and the half-open convention
/// is stated once, here, instead of at every filter site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TickRange {
    start: u64,
    end: u64,
}

impl TickRange {
    /// The unbounded window (every record matches).
    pub fn all() -> Self {
        TickRange { start: 0, end: u64::MAX }
    }

    /// Everything at or after `from`.
    pub fn since(from: Timestamp) -> Self {
        TickRange { start: from.ticks(), end: u64::MAX }
    }

    /// Everything strictly before `to`.
    pub fn until(to: Timestamp) -> Self {
        TickRange { start: 0, end: to.ticks() }
    }

    /// The half-open window `[from, to)`.
    pub fn between(from: Timestamp, to: Timestamp) -> Self {
        TickRange { start: from.ticks(), end: to.ticks() }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: Timestamp) -> bool {
        let k = t.ticks();
        self.start <= k && k < self.end
    }

    /// Whether this is the unbounded window.
    pub fn is_all(&self) -> bool {
        self.start == 0 && self.end == u64::MAX
    }

    /// Inclusive lower bound.
    pub fn start(&self) -> Timestamp {
        Timestamp(self.start)
    }

    /// Exclusive upper bound.
    pub fn end(&self) -> Timestamp {
        Timestamp(self.end)
    }
}

impl Default for TickRange {
    fn default() -> Self {
        Self::all()
    }
}

/// Tokens of a content text, deduplicated — the normal form both the
/// index build and the topic predicate use, so they cannot disagree.
/// Public so callers can turn free text into index-shaped topic keys.
pub fn topic_tokens(text: &str) -> Vec<String> {
    let mut toks = tokenize(text);
    toks.sort_unstable();
    toks.dedup();
    toks
}

/// Incremental FNV-1a over the canonical rendering of index contents.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn eat_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn eat_u64(&mut self, v: u64) {
        self.eat_bytes(&v.to_le_bytes());
    }
}

/// The typed secondary-index set over one [`HiveDb`], stamped with the
/// generation it reflects.
///
/// Cloning is what the facade's `Arc::make_mut` tier relies on; equality
/// is structural (the property tests compare a delta-patched index to a
/// cold [`DbIndexes::build`] with `==`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbIndexes {
    /// Database generation these contents reflect.
    generation: u64,
    /// Activity-log watermark: positions `< log_len` are indexed.
    log_len: usize,
    /// Arena watermarks: rows `< *_len` have topic postings.
    users_len: usize,
    sessions_len: usize,
    papers_len: usize,
    /// Log positions per actor, ascending.
    by_actor: BTreeMap<UserId, Vec<u32>>,
    /// Log positions per activity category, ascending (slot order of
    /// [`ActivityCategory::ALL`]).
    by_category: [Vec<u32>; 7],
    /// Token → papers whose text contains it, ascending.
    topic_papers: BTreeMap<String, Vec<PaperId>>,
    /// Token → sessions whose text contains it, ascending.
    topic_sessions: BTreeMap<String, Vec<SessionId>>,
    /// Token → users whose profile contains it, ascending.
    topic_users: BTreeMap<String, Vec<UserId>>,
}

impl DbIndexes {
    /// Builds the full index set from scratch (the cold path, counted
    /// as `idx.rebuild`).
    pub fn build(db: &HiveDb) -> Self {
        hive_obs::count("idx.rebuild", 1);
        let mut idx = DbIndexes {
            generation: db.generation(),
            log_len: 0,
            users_len: 0,
            sessions_len: 0,
            papers_len: 0,
            by_actor: BTreeMap::new(),
            by_category: Default::default(),
            topic_papers: BTreeMap::new(),
            topic_sessions: BTreeMap::new(),
            topic_users: BTreeMap::new(),
        };
        idx.ingest_suffixes(db);
        idx
    }

    /// The generation this index reflects.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Ingests everything appended past the watermarks. Arenas are
    /// append-only and rows are immutable once created (slide revisions
    /// touch only the un-indexed `slides_text`), so a suffix scan
    /// brings every posting exactly up to date.
    fn ingest_suffixes(&mut self, db: &HiveDb) {
        let log = db.activity_log();
        for pos in self.log_len..log.len() {
            let rec = &log[pos];
            self.by_actor.entry(rec.user).or_default().push(pos as u32);
            self.by_category[ActivityCategory::of(&rec.event).slot()].push(pos as u32);
        }
        self.log_len = log.len();

        let users = db.user_ids();
        for &u in &users[self.users_len..] {
            if let Ok(user) = db.get_user(u) {
                for tok in topic_tokens(&user.profile_text()) {
                    self.topic_users.entry(tok).or_default().push(u);
                }
            }
        }
        self.users_len = users.len();

        let sessions = db.session_ids();
        for &s in &sessions[self.sessions_len..] {
            if let Ok(session) = db.get_session(s) {
                for tok in topic_tokens(&session.text()) {
                    self.topic_sessions.entry(tok).or_default().push(s);
                }
            }
        }
        self.sessions_len = sessions.len();

        let papers = db.paper_ids();
        for &p in &papers[self.papers_len..] {
            if let Ok(paper) = db.get_paper(p) {
                for tok in topic_tokens(&paper.text()) {
                    self.topic_papers.entry(tok).or_default().push(p);
                }
            }
        }
        self.papers_len = papers.len();
    }

    /// O(delta) forward maintenance: ingests the suffix appended since
    /// this index's stamped generation (counted as `idx.patch`).
    ///
    /// Returns `false` — without touching `self` — when `db`'s delta
    /// journal no longer covers the stamp (the ring compacted past it,
    /// or `db` is a restored/checkpoint-adopted instance whose journal
    /// restarted); the caller must fall back to [`DbIndexes::build`].
    /// The journal window is the proof the watermarks still describe a
    /// prefix of *this* database.
    pub fn patch(&mut self, db: &HiveDb) -> bool {
        if db.deltas_since(self.generation).is_none() {
            return false;
        }
        // Watermarks must describe a prefix; a shrunken arena means the
        // generations matched across different database lineages.
        if self.log_len > db.activity_log().len()
            || self.users_len > db.user_ids().len()
            || self.sessions_len > db.session_ids().len()
            || self.papers_len > db.paper_ids().len()
        {
            return false;
        }
        if self.generation != db.generation() {
            self.ingest_suffixes(db);
            self.generation = db.generation();
            hive_obs::count("idx.patch", 1);
        }
        true
    }

    /// Ascending log positions of `actor`'s records.
    pub fn actor_postings(&self, actor: UserId) -> &[u32] {
        self.by_actor.get(&actor).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ascending log positions of records in `category`.
    pub fn category_postings(&self, category: ActivityCategory) -> &[u32] {
        &self.by_category[category.slot()]
    }

    /// Ascending papers whose text contains `token` (normalized form).
    pub fn papers_on_topic(&self, token: &str) -> &[PaperId] {
        self.topic_papers.get(token).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ascending sessions whose text contains `token`.
    pub fn sessions_on_topic(&self, token: &str) -> &[SessionId] {
        self.topic_sessions.get(token).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ascending users whose profile contains `token`.
    pub fn users_on_topic(&self, token: &str) -> &[UserId] {
        self.topic_users.get(token).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Deterministic digest of the full index contents (FNV-1a over a
    /// canonical rendering; postings iterate in `BTreeMap` key order,
    /// so no sort pass is needed). The sim-harness fingerprint oracle
    /// uses this to prove a delta-patched index, a cold rebuild, and a
    /// replication follower's replayed index are bit-identical. The
    /// generation stamp is deliberately excluded: a checkpoint-restored
    /// follower renumbers generations but must index the same contents.
    pub fn digest(&self) -> String {
        let mut h = Fnv::new();
        h.eat_u64(self.log_len as u64);
        for (u, posting) in &self.by_actor {
            h.eat_u64(u.0 as u64);
            for &p in posting {
                h.eat_u64(p as u64);
            }
        }
        for posting in &self.by_category {
            h.eat_u64(posting.len() as u64);
            for &p in posting {
                h.eat_u64(p as u64);
            }
        }
        let mut entries = 0usize;
        for (tok, posting) in &self.topic_papers {
            h.eat_bytes(tok.as_bytes());
            for &p in posting {
                h.eat_u64(p.0 as u64);
            }
            entries += posting.len();
        }
        for (tok, posting) in &self.topic_sessions {
            h.eat_bytes(tok.as_bytes());
            for &s in posting {
                h.eat_u64(s.0 as u64);
            }
            entries += posting.len();
        }
        for (tok, posting) in &self.topic_users {
            h.eat_bytes(tok.as_bytes());
            for &u in posting {
                h.eat_u64(u.0 as u64);
            }
            entries += posting.len();
        }
        format!(
            "fnv={:016x} log={} actors={} topic_entries={}",
            h.0,
            self.log_len,
            self.by_actor.len(),
            entries
        )
    }
}

/// Clips an ascending posting list to positions `< prefix` whose record
/// falls inside `range`. Positions ascend and the log is clock-ordered,
/// so both clips are binary searches over the posting itself.
fn clip_posting<'a>(
    posting: &'a [u32],
    log: &[ActivityRecord],
    range: &TickRange,
    prefix: usize,
) -> &'a [u32] {
    let end = posting.partition_point(|&p| (p as usize) < prefix);
    let posting = &posting[..end];
    if range.is_all() {
        return posting;
    }
    let lo = posting.partition_point(|&p| log[p as usize].at < range.start());
    let hi = posting.partition_point(|&p| log[p as usize].at < range.end());
    &posting[lo..hi]
}

/// A declarative activity-log query: actor set, category set, and a
/// time window, all optional. Build with [`ActivityQuery::new`] and the
/// chainable setters, then [`ActivityQuery::run`] plans it against the
/// indexes (or [`ActivityQuery::scan`] forces the reference scan).
///
/// ```
/// use hive_core::db::index::{ActivityQuery, TickRange};
/// use hive_core::model::ActivityCategory;
/// let q = ActivityQuery::new()
///     .with_categories(vec![ActivityCategory::CheckIn])
///     .within(TickRange::all());
/// assert!(q.actors().is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct ActivityQuery {
    actors: Vec<UserId>,
    categories: Vec<ActivityCategory>,
    range: TickRange,
}

impl ActivityQuery {
    /// An unconstrained query (matches every record).
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts to records by these actors (empty = everyone).
    pub fn with_actors(mut self, actors: Vec<UserId>) -> Self {
        self.actors = actors;
        self
    }

    /// Restricts to these categories (empty = all).
    pub fn with_categories(mut self, categories: Vec<ActivityCategory>) -> Self {
        self.categories = categories;
        self
    }

    /// Restricts to the half-open time window.
    pub fn within(mut self, range: TickRange) -> Self {
        self.range = range;
        self
    }

    /// The actor restriction.
    pub fn actors(&self) -> &[UserId] {
        &self.actors
    }

    /// The category restriction.
    pub fn categories(&self) -> &[ActivityCategory] {
        &self.categories
    }

    /// The time window.
    pub fn range(&self) -> TickRange {
        self.range
    }

    /// The predicate both paths share: the scan applies it to every
    /// record, the planner applies it to every index candidate, so the
    /// two paths agree by construction.
    pub fn matches(&self, rec: &ActivityRecord) -> bool {
        (self.actors.is_empty() || self.actors.contains(&rec.user))
            && (self.categories.is_empty()
                || self.categories.contains(&ActivityCategory::of(&rec.event)))
            && self.range.contains(rec.at)
    }

    /// Reference full-log scan — the planner's fallback, and the oracle
    /// the equivalence property tests compare the indexed path against.
    pub fn scan<'a>(&self, db: &'a HiveDb) -> Vec<&'a ActivityRecord> {
        db.activity_log().iter().filter(|r| self.matches(r)).collect()
    }

    /// Plans the query against the indexes and runs it. Candidate
    /// sources, in priority order: actor postings, category postings, a
    /// binary search on the clock-ordered log for a bounded window
    /// (each counted as `idx.hit`), else the full scan (counted as
    /// `idx.scan_fallback`). Records come back in log order either way,
    /// so downstream stable sorts are bit-identical across paths.
    ///
    /// `idx` may trail `db` (an epoch-pinned snapshot while the writer
    /// moves on): positions past the index watermark are covered by a
    /// scan of just that suffix, keeping the result exact.
    pub fn run<'a>(&self, db: &'a HiveDb, idx: &DbIndexes) -> Vec<&'a ActivityRecord> {
        let log = db.activity_log();
        let prefix = idx.log_len.min(log.len());
        let mut positions: Vec<u32>;
        if !self.actors.is_empty() {
            hive_obs::count("idx.hit", 1);
            positions = Vec::new();
            let mut actors = self.actors.clone();
            actors.sort_unstable();
            actors.dedup();
            for a in actors {
                positions.extend_from_slice(clip_posting(
                    idx.actor_postings(a),
                    log,
                    &self.range,
                    prefix,
                ));
            }
            // Distinct actors own distinct records: merge is a sort.
            positions.sort_unstable();
        } else if !self.categories.is_empty() {
            hive_obs::count("idx.hit", 1);
            positions = Vec::new();
            let mut cats = self.categories.clone();
            cats.sort_unstable();
            cats.dedup();
            for c in cats {
                positions.extend_from_slice(clip_posting(
                    idx.category_postings(c),
                    log,
                    &self.range,
                    prefix,
                ));
            }
            positions.sort_unstable();
        } else if !self.range.is_all() {
            hive_obs::count("idx.hit", 1);
            let indexed = &log[..prefix];
            let lo = indexed.partition_point(|r| r.at < self.range.start());
            let hi = indexed.partition_point(|r| r.at < self.range.end());
            positions = (lo..hi).map(|p| p as u32).collect();
        } else {
            hive_obs::count("idx.scan_fallback", 1);
            return self.scan(db);
        }
        let mut out: Vec<&ActivityRecord> = positions
            .into_iter()
            .map(|p| &log[p as usize])
            .filter(|r| self.matches(r))
            .collect();
        // Un-indexed tail, if the index snapshot trails the database.
        out.extend(log[prefix..].iter().filter(|r| self.matches(r)));
        out
    }
}

/// A declarative resource query over the content arenas: which resource
/// kinds to return, optionally scoped by venue, author, and topic.
/// Build with [`ResourceQuery::new`] and the chainable setters.
///
/// Scoping semantics (shared verbatim by the scan predicate and the
/// planner's residual filter):
///
/// * **venue** — papers published at the edition, presentations in its
///   sessions, its sessions, and its attendees;
/// * **author** — papers the user authored and their presentations;
///   sessions match only when the user chairs them; user profiles never
///   match an author scope (it selects *content*);
/// * **topic** — every token of the phrase appears in the resource's
///   indexed text (paper text, for a presentation: its paper's text —
///   slide text is mutable and deliberately un-indexed; session text;
///   user profile).
#[derive(Clone, Debug)]
pub struct ResourceQuery {
    papers: bool,
    presentations: bool,
    sessions: bool,
    users: bool,
    venue: Option<ConferenceId>,
    author: Option<UserId>,
    topic: Option<String>,
}

impl Default for ResourceQuery {
    fn default() -> Self {
        ResourceQuery {
            papers: true,
            presentations: true,
            sessions: true,
            users: true,
            venue: None,
            author: None,
            topic: None,
        }
    }
}

impl ResourceQuery {
    /// All resource kinds, unscoped.
    pub fn new() -> Self {
        Self::default()
    }

    /// Includes or excludes papers.
    pub fn with_papers(mut self, yes: bool) -> Self {
        self.papers = yes;
        self
    }

    /// Includes or excludes presentations.
    pub fn with_presentations(mut self, yes: bool) -> Self {
        self.presentations = yes;
        self
    }

    /// Includes or excludes sessions.
    pub fn with_sessions(mut self, yes: bool) -> Self {
        self.sessions = yes;
        self
    }

    /// Includes or excludes user profiles.
    pub fn with_users(mut self, yes: bool) -> Self {
        self.users = yes;
        self
    }

    /// Scopes to one conference edition.
    pub fn at_venue(mut self, venue: ConferenceId) -> Self {
        self.venue = Some(venue);
        self
    }

    /// Scopes to content authored (or chaired) by one user.
    pub fn by_author(mut self, author: UserId) -> Self {
        self.author = Some(author);
        self
    }

    /// Scopes to resources whose text contains every token of `topic`.
    pub fn on_topic(mut self, topic: impl Into<String>) -> Self {
        self.topic = Some(topic.into());
        self
    }

    /// The topic phrase in token normal form (empty = no topic scope).
    fn topic_needles(&self) -> Vec<String> {
        self.topic.as_deref().map(topic_tokens).unwrap_or_default()
    }

    fn text_on_topic(text: &str, needles: &[String]) -> bool {
        let toks = topic_tokens(text);
        needles.iter().all(|n| toks.binary_search(n).is_ok())
    }

    /// The shared predicate (see the type docs for scoping semantics).
    pub fn matches(&self, db: &HiveDb, r: Resource) -> bool {
        let needles = self.topic_needles();
        self.matches_with(db, r, &needles)
    }

    fn matches_with(&self, db: &HiveDb, r: Resource, needles: &[String]) -> bool {
        match r {
            Resource::Paper(p) => {
                self.papers
                    && db
                        .get_paper(p)
                        .map(|x| {
                            self.venue.is_none_or(|v| x.venue == Some(v))
                                && self.author.is_none_or(|a| x.authors.contains(&a))
                                && (needles.is_empty()
                                    || Self::text_on_topic(&x.text(), needles))
                        })
                        .unwrap_or(false)
            }
            Resource::Presentation(p) => {
                self.presentations
                    && db
                        .get_presentation(p)
                        .map(|x| {
                            let venue_ok = self.venue.is_none_or(|v| {
                                db.get_session(x.session)
                                    .map(|s| s.conference == v)
                                    .unwrap_or(false)
                            });
                            let paper = db.get_paper(x.paper).ok();
                            let author_ok = self.author.is_none_or(|a| {
                                paper.map(|pp| pp.authors.contains(&a)).unwrap_or(false)
                            });
                            let topic_ok = needles.is_empty()
                                || paper
                                    .map(|pp| Self::text_on_topic(&pp.text(), needles))
                                    .unwrap_or(false);
                            venue_ok && author_ok && topic_ok
                        })
                        .unwrap_or(false)
            }
            Resource::Session(s) => {
                self.sessions
                    && db
                        .get_session(s)
                        .map(|x| {
                            self.venue.is_none_or(|v| x.conference == v)
                                && self.author.is_none_or(|a| x.chair == Some(a))
                                && (needles.is_empty()
                                    || Self::text_on_topic(&x.text(), needles))
                        })
                        .unwrap_or(false)
            }
            Resource::User(u) => {
                self.users
                    && self.author.is_none()
                    && db
                        .get_user(u)
                        .map(|x| {
                            self.venue.is_none_or(|v| db.attends(u, v))
                                && (needles.is_empty()
                                    || Self::text_on_topic(&x.profile_text(), needles))
                        })
                        .unwrap_or(false)
            }
        }
    }

    /// Reference full-arena scan (the planner's fallback and the
    /// equivalence oracle): papers, presentations, sessions, users,
    /// each ascending — the kind order the legacy discover sweep used.
    pub fn scan(&self, db: &HiveDb) -> Vec<Resource> {
        let needles = self.topic_needles();
        let mut out = Vec::new();
        if self.papers {
            out.extend(
                db.paper_ids()
                    .into_iter()
                    .map(Resource::Paper)
                    .filter(|&r| self.matches_with(db, r, &needles)),
            );
        }
        if self.presentations {
            out.extend(
                db.presentation_ids()
                    .into_iter()
                    .map(Resource::Presentation)
                    .filter(|&r| self.matches_with(db, r, &needles)),
            );
        }
        if self.sessions {
            out.extend(
                db.session_ids()
                    .into_iter()
                    .map(Resource::Session)
                    .filter(|&r| self.matches_with(db, r, &needles)),
            );
        }
        if self.users {
            out.extend(
                db.user_ids()
                    .into_iter()
                    .map(Resource::User)
                    .filter(|&r| self.matches_with(db, r, &needles)),
            );
        }
        out
    }

    /// Plans the query: with any scope present, candidates come from
    /// the most selective applicable index per kind (topic postings,
    /// then the db-side venue/author indexes) and the shared predicate
    /// residual-filters them (counted as `idx.hit`); unscoped queries
    /// are the full enumeration (counted as `idx.scan_fallback`).
    /// Results are bit-identical to [`ResourceQuery::scan`].
    pub fn run(&self, db: &HiveDb, idx: &DbIndexes) -> Vec<Resource> {
        let needles = self.topic_needles();
        if self.venue.is_none() && self.author.is_none() && needles.is_empty() {
            hive_obs::count("idx.scan_fallback", 1);
            return self.scan(db);
        }
        hive_obs::count("idx.hit", 1);
        let mut out = Vec::new();

        let paper_candidates = |sink: &mut Vec<PaperId>| {
            if !needles.is_empty() {
                intersect_postings(
                    needles.iter().map(|n| idx.papers_on_topic(n)),
                    sink,
                );
                // Arena tail past the index watermark: scan it.
                sink.extend(db.paper_ids().into_iter().skip(idx.papers_len));
            } else if let Some(v) = self.venue {
                sink.extend_from_slice(db.papers_at(v));
            } else if let Some(a) = self.author {
                sink.extend_from_slice(db.papers_of(a));
            }
        };

        if self.papers {
            let mut cands: Vec<PaperId> = Vec::new();
            paper_candidates(&mut cands);
            out.extend(
                cands
                    .into_iter()
                    .map(Resource::Paper)
                    .filter(|&r| self.matches_with(db, r, &needles)),
            );
        }
        if self.presentations {
            let mut cands: Vec<crate::ids::PresentationId> = Vec::new();
            if !needles.is_empty() || self.author.is_some() {
                // Presentations inherit topic and authorship from their
                // paper: candidate presentations of candidate papers.
                let mut papers: Vec<PaperId> = Vec::new();
                paper_candidates(&mut papers);
                if needles.is_empty() {
                    if let Some(a) = self.author {
                        papers.clear();
                        papers.extend_from_slice(db.papers_of(a));
                    }
                }
                for p in papers {
                    cands.extend_from_slice(db.presentations_of_paper(p));
                }
            } else if let Some(v) = self.venue {
                for &s in db.sessions_of(v) {
                    cands.extend_from_slice(db.presentations_in(s));
                }
            }
            cands.sort_unstable();
            cands.dedup();
            out.extend(
                cands
                    .into_iter()
                    .map(Resource::Presentation)
                    .filter(|&r| self.matches_with(db, r, &needles)),
            );
        }
        if self.sessions {
            let mut cands: Vec<SessionId> = Vec::new();
            if !needles.is_empty() {
                intersect_postings(
                    needles.iter().map(|n| idx.sessions_on_topic(n)),
                    &mut cands,
                );
                cands.extend(db.session_ids().into_iter().skip(idx.sessions_len));
            } else if let Some(v) = self.venue {
                cands.extend_from_slice(db.sessions_of(v));
            } else {
                // Author-only: no chair index — the arena is small, the
                // predicate decides.
                cands.extend(db.session_ids());
            }
            out.extend(
                cands
                    .into_iter()
                    .map(Resource::Session)
                    .filter(|&r| self.matches_with(db, r, &needles)),
            );
        }
        if self.users && self.author.is_none() {
            let mut cands: Vec<UserId> = Vec::new();
            if !needles.is_empty() {
                intersect_postings(
                    needles.iter().map(|n| idx.users_on_topic(n)),
                    &mut cands,
                );
                cands.extend(db.user_ids().into_iter().skip(idx.users_len));
            } else if let Some(v) = self.venue {
                cands.extend(db.attendees(v));
            }
            out.extend(
                cands
                    .into_iter()
                    .map(Resource::User)
                    .filter(|&r| self.matches_with(db, r, &needles)),
            );
        }
        out
    }
}

/// Intersects ascending postings lists into `sink` (ascending). With a
/// single list this is a copy; an empty iterator yields nothing.
fn intersect_postings<'a, T, I>(mut lists: I, sink: &mut Vec<T>)
where
    T: Copy + Ord + 'a,
    I: Iterator<Item = &'a [T]>,
{
    let Some(first) = lists.next() else { return };
    let mut acc: Vec<T> = first.to_vec();
    for list in lists {
        let mut next = Vec::with_capacity(acc.len().min(list.len()));
        let (mut i, mut j) = (0, 0);
        while i < acc.len() && j < list.len() {
            match acc[i].cmp(&list[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    next.push(acc[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        acc = next;
        if acc.is_empty() {
            break;
        }
    }
    sink.extend(acc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::tests::tiny_world;
    use crate::model::ActivityCategory as Cat;

    #[test]
    fn tick_range_half_open_semantics() {
        let r = TickRange::between(Timestamp(10), Timestamp(20));
        assert!(!r.contains(Timestamp(9)));
        assert!(r.contains(Timestamp(10)));
        assert!(r.contains(Timestamp(19)));
        assert!(!r.contains(Timestamp(20)));
        assert!(TickRange::all().is_all());
        assert!(TickRange::since(Timestamp(5)).contains(Timestamp(u64::MAX - 1)));
        assert!(!TickRange::until(Timestamp(5)).contains(Timestamp(5)));
    }

    #[test]
    fn build_then_patch_equals_rebuild() {
        let (mut db, users, _, sessions, papers, _) = tiny_world();
        let mut idx = DbIndexes::build(&db);
        db.advance_clock(3);
        db.check_in(users[1], sessions[0]).unwrap();
        db.view_paper(users[2], papers[0]).unwrap();
        assert!(idx.patch(&db), "journal covers the suffix");
        assert_eq!(idx, DbIndexes::build(&db), "patched == cold rebuild");
        assert_eq!(idx.digest(), DbIndexes::build(&db).digest());
    }

    #[test]
    fn patch_refuses_foreign_or_restored_databases() {
        let (db, ..) = tiny_world();
        let mut idx = DbIndexes::build(&db);
        // A restored platform restarts its journal at generation 1; an
        // index stamped with the old (higher) generation must refuse.
        let restored = HiveDb::from_snapshot(&db.snapshot()).unwrap();
        assert!(idx.generation() > restored.generation());
        assert!(!idx.patch(&restored));
    }

    #[test]
    fn indexed_activity_query_matches_scan() {
        let (mut db, users, _, sessions, papers, _) = tiny_world();
        db.advance_clock(7);
        db.check_in(users[0], sessions[1]).unwrap();
        db.view_paper(users[1], papers[1]).unwrap();
        let idx = DbIndexes::build(&db);
        let queries = vec![
            ActivityQuery::new(),
            ActivityQuery::new().with_actors(vec![users[0]]),
            ActivityQuery::new().with_actors(vec![users[0], users[1], users[0]]),
            ActivityQuery::new().with_categories(vec![Cat::CheckIn, Cat::Browse]),
            ActivityQuery::new().within(TickRange::since(Timestamp(5))),
            ActivityQuery::new()
                .with_actors(vec![users[1]])
                .with_categories(vec![Cat::Browse])
                .within(TickRange::between(Timestamp(1), Timestamp(100))),
        ];
        for q in queries {
            let fast: Vec<ActivityRecord> = q.run(&db, &idx).into_iter().copied().collect();
            let slow: Vec<ActivityRecord> = q.scan(&db).into_iter().copied().collect();
            assert_eq!(fast, slow, "query {q:?}");
        }
    }

    #[test]
    fn stale_index_tail_is_served_exactly() {
        let (mut db, users, _, sessions, _, _) = tiny_world();
        let idx = DbIndexes::build(&db);
        db.advance_clock(2);
        db.check_in(users[2], sessions[0]).unwrap();
        // idx not patched: the new record sits past the watermark.
        let q = ActivityQuery::new().with_actors(vec![users[2]]);
        let fast: Vec<ActivityRecord> = q.run(&db, &idx).into_iter().copied().collect();
        let slow: Vec<ActivityRecord> = q.scan(&db).into_iter().copied().collect();
        assert_eq!(fast, slow);
        assert!(fast.iter().any(|r| r.at == db.now()), "tail record found");
    }

    #[test]
    fn resource_query_matches_scan_and_prunes() {
        let (db, users, conf, ..) = tiny_world();
        let idx = DbIndexes::build(&db);
        let queries = vec![
            ResourceQuery::new(),
            ResourceQuery::new().at_venue(conf),
            ResourceQuery::new().by_author(users[0]),
            ResourceQuery::new().on_topic("tensor"),
            ResourceQuery::new().on_topic("tensor streams").with_users(false),
            ResourceQuery::new().at_venue(conf).on_topic("no such phrase anywhere"),
        ];
        for q in queries {
            assert_eq!(q.run(&db, &idx), q.scan(&db), "query {q:?}");
        }
    }

    #[test]
    fn planner_counts_hits_and_fallbacks() {
        let (db, users, ..) = tiny_world();
        let idx = DbIndexes::build(&db);
        hive_obs::reset();
        hive_obs::with_level(hive_obs::Level::Counts, || {
            let _ = ActivityQuery::new().with_actors(vec![users[0]]).run(&db, &idx);
            let _ = ActivityQuery::new().run(&db, &idx);
            let _ = ResourceQuery::new().on_topic("tensor").run(&db, &idx);
            let _ = ResourceQuery::new().run(&db, &idx);
        });
        let snap = hive_obs::snapshot();
        assert_eq!(snap.counter("idx.hit"), 2);
        assert_eq!(snap.counter("idx.scan_fallback"), 2);
        hive_obs::reset();
    }
}
