//! Personal activity-history services (Table 1, last row: "Search and
//! visualize personal, group, or community activity history based on
//! current context").
//!
//! The history service filters the activity log by actor set, category,
//! time window, and free-text match against the touched resource, and
//! can bucket the result into a timeline for visualization. When an
//! [`ActivityContext`] is supplied, hits are re-ranked by contextual
//! relevance instead of pure recency.
//!
//! Log filtering is expressed as a [`ActivityQuery`] and planned
//! against the [`DbIndexes`] — actor/category postings or the
//! clock-ordered binary search — instead of sweeping the full log.

use crate::clock::Timestamp;
use crate::context::ActivityContext;
use crate::db::index::{ActivityQuery, DbIndexes, TickRange};
use crate::db::HiveDb;
use crate::ids::UserId;
use crate::knowledge::KnowledgeNetwork;
use crate::model::{ActivityCategory, ActivityEvent, ActivityRecord};
use std::collections::HashMap;

/// A history query, built with the chainable `with_*` setters.
///
/// ```
/// use hive_core::history::HistoryQuery;
/// use hive_core::model::ActivityCategory;
/// let q = HistoryQuery::new()
///     .with_categories(vec![ActivityCategory::CheckIn])
///     .matching("tensor")
///     .limit(10);
/// ```
#[derive(Clone, Debug, Default)]
pub struct HistoryQuery {
    pub(crate) activity: ActivityQuery,
    pub(crate) text: Option<String>,
    pub(crate) limit: usize,
}

impl HistoryQuery {
    /// An unconstrained query (every record, no limit).
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts to these actors (empty = everyone).
    pub fn with_actors(mut self, actors: Vec<UserId>) -> Self {
        self.activity = self.activity.with_actors(actors);
        self
    }

    /// Restricts to these typed categories (empty = all).
    pub fn with_categories(mut self, categories: Vec<ActivityCategory>) -> Self {
        self.activity = self.activity.with_categories(categories);
        self
    }

    /// Restricts to the half-open time window.
    pub fn within(mut self, range: TickRange) -> Self {
        self.activity = self.activity.within(range);
        self
    }

    /// Keeps only records whose touched resource's text contains the
    /// needle (case-insensitive).
    pub fn matching(mut self, needle: impl Into<String>) -> Self {
        self.text = Some(needle.into());
        self
    }

    /// Caps the number of hits (0 = unlimited).
    pub fn limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// Legacy bridge from the retired mutable-struct shape (stringly
    /// categories, bare from/to pair). Unknown category labels are
    /// dropped; a list made up entirely of unknown labels collapses to
    /// an empty window, matching the old behavior of labels that never
    /// compare equal. Migrate to the builder; this goes away next
    /// release.
    #[doc(hidden)]
    #[deprecated(note = "build with HistoryQuery::new() and the with_* setters")]
    pub fn from_parts(
        actors: Vec<UserId>,
        categories: Vec<&'static str>,
        from: Option<Timestamp>,
        to: Option<Timestamp>,
        text: Option<String>,
        limit: usize,
    ) -> Self {
        let mut range = match (from, to) {
            (None, None) => TickRange::all(),
            (Some(f), None) => TickRange::since(f),
            (None, Some(t)) => TickRange::until(t),
            (Some(f), Some(t)) => TickRange::between(f, t),
        };
        let typed: Vec<ActivityCategory> =
            categories.iter().filter_map(|c| ActivityCategory::parse(c)).collect();
        if !categories.is_empty() && typed.is_empty() {
            range = TickRange::between(Timestamp(0), Timestamp(0));
        }
        let mut q = HistoryQuery::new()
            .with_actors(actors)
            .with_categories(typed)
            .within(range)
            .limit(limit);
        q.text = text;
        q
    }
}

/// One history hit with relevance.
#[derive(Clone, Debug)]
pub struct HistoryHit {
    /// The matched record.
    pub record: ActivityRecord,
    /// Contextual relevance (recency-based when no context given).
    pub relevance: f64,
    /// Rendered description.
    pub text: String,
}

fn resource_text(db: &HiveDb, event: &ActivityEvent) -> String {
    match event {
        ActivityEvent::CheckIn(s) => db.get_session(*s).map(|x| x.text()).unwrap_or_default(),
        ActivityEvent::ViewPaper(p) => db.get_paper(*p).map(|x| x.text()).unwrap_or_default(),
        ActivityEvent::ViewPresentation(p) | ActivityEvent::UploadPresentation(p)
        | ActivityEvent::ReviseSlides(p) => db
            .get_presentation(*p)
            .map(|x| x.slides_text.clone())
            .unwrap_or_default(),
        ActivityEvent::AskQuestion(q) => {
            db.get_question(*q).map(|x| x.text.clone()).unwrap_or_default()
        }
        ActivityEvent::AnswerQuestion(a) => {
            db.get_answer(*a).map(|x| x.text.clone()).unwrap_or_default()
        }
        ActivityEvent::Comment(c) => {
            db.get_comment(*c).map(|x| x.text.clone()).unwrap_or_default()
        }
        _ => String::new(),
    }
}

/// Runs a history search. With a context, hits are ranked by the cosine
/// between the context vector and the touched resource's text; without
/// one, by recency. Candidate records come from the index planner
/// (`idx.hit`) when the query names actors, categories, or a window.
pub fn search_history(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    idx: &DbIndexes,
    query: &HistoryQuery,
    ctx: Option<&ActivityContext>,
) -> Vec<HistoryHit> {
    let latest = db.now().ticks().max(1) as f64;
    let needle = query.text.as_ref().map(|t| t.to_lowercase());
    let mut hits: Vec<HistoryHit> = query
        .activity
        .run(db, idx)
        .into_iter()
        .filter_map(|r| {
            let rtext = resource_text(db, &r.event);
            if let Some(needle) = &needle {
                if !rtext.to_lowercase().contains(needle) {
                    return None;
                }
            }
            let relevance = match ctx {
                Some(c) if !rtext.is_empty() => {
                    c.similarity(&kn.corpus.vectorize_known(&rtext))
                }
                Some(_) => 0.0,
                None => r.at.ticks() as f64 / latest, // recency
            };
            let name = db
                .get_user(r.user)
                .map(|u| u.name.clone())
                .unwrap_or_else(|_| r.user.to_string());
            Some(HistoryHit {
                record: *r,
                relevance,
                text: format!("[{}] {} — {}", r.at, name, r.event.category()),
            })
        })
        .collect();
    hits.sort_by(|a, b| {
        b.relevance
            .total_cmp(&a.relevance)
            .then_with(|| b.record.at.cmp(&a.record.at))
    });
    if query.limit > 0 {
        hits.truncate(query.limit);
    }
    hits
}

/// Buckets a user set's activity into fixed-width time bins per category
/// (the data behind a history visualization).
pub fn timeline(
    db: &HiveDb,
    idx: &DbIndexes,
    actors: &[UserId],
    bucket_width: u64,
) -> Vec<(Timestamp, HashMap<&'static str, usize>)> {
    assert!(bucket_width > 0, "bucket width must be positive");
    let records = ActivityQuery::new().with_actors(actors.to_vec()).run(db, idx);
    let mut buckets: HashMap<u64, HashMap<&'static str, usize>> = HashMap::new();
    for r in records {
        let b = r.at.ticks() / bucket_width;
        *buckets.entry(b).or_default().entry(r.event.category()).or_insert(0) += 1;
    }
    let mut out: Vec<(Timestamp, HashMap<&'static str, usize>)> = buckets
        // lint:allow(determinism-taint) -- sorted by timestamp below
        .into_iter()
        .map(|(b, counts)| (Timestamp(b * bucket_width), counts))
        .collect();
    out.sort_by_key(|(t, _)| *t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{build_context, ContextConfig};
    use crate::ids::SessionId;
    use crate::model::*;

    fn world() -> (HiveDb, Vec<UserId>, Vec<SessionId>) {
        let mut db = HiveDb::new();
        let users = vec![
            db.add_user(User::new("Zach", "ASU").with_interests(vec!["tensor streams".into()])),
            db.add_user(User::new("Ann", "UniTo")),
        ];
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        let s0 = db
            .add_session(
                Session::new(conf, "Tensor Streams", "R1")
                    .with_topics(vec!["tensor stream sketches".into()]),
            )
            .unwrap();
        let s1 = db
            .add_session(
                Session::new(conf, "Transactions", "R2")
                    .with_topics(vec!["concurrency control".into()]),
            )
            .unwrap();
        db.advance_clock(10);
        db.check_in(users[0], s0).unwrap();
        db.advance_clock(10);
        db.check_in(users[0], s1).unwrap();
        db.advance_clock(10);
        db.check_in(users[1], s0).unwrap();
        (db, users, vec![s0, s1])
    }

    #[test]
    fn actor_and_category_filters() {
        let (db, users, _) = world();
        let kn = KnowledgeNetwork::build(&db);
        let idx = DbIndexes::build(&db);
        let q = HistoryQuery::new()
            .with_actors(vec![users[0]])
            .with_categories(vec![ActivityCategory::CheckIn]);
        let hits = search_history(&db, &kn, &idx, &q, None);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.record.user == users[0]));
        // Recency ordering: later check-in first.
        assert!(hits[0].record.at > hits[1].record.at);
    }

    #[test]
    fn window_filter() {
        let (db, ..) = world();
        let kn = KnowledgeNetwork::build(&db);
        let idx = DbIndexes::build(&db);
        let q = HistoryQuery::new().within(TickRange::between(Timestamp(15), Timestamp(25)));
        let hits = search_history(&db, &kn, &idx, &q, None);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].record.at, Timestamp(20));
    }

    #[test]
    fn text_filter_matches_resource() {
        let (db, ..) = world();
        let kn = KnowledgeNetwork::build(&db);
        let idx = DbIndexes::build(&db);
        let q = HistoryQuery::new().matching("tensor");
        let hits = search_history(&db, &kn, &idx, &q, None);
        assert_eq!(hits.len(), 2, "both tensor-session check-ins match");
    }

    #[test]
    fn context_reranks_over_recency() {
        let (db, users, _) = world();
        let kn = KnowledgeNetwork::build(&db);
        let idx = DbIndexes::build(&db);
        // Zach's profile context is tensor-flavored; his *older* tensor
        // check-in should outrank the newer transactions one.
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        let q = HistoryQuery::new().with_actors(vec![users[0]]);
        let hits = search_history(&db, &kn, &idx, &q, Some(&ctx));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].record.at, Timestamp(10), "tensor check-in first");
    }

    #[test]
    fn limit_respected() {
        let (db, ..) = world();
        let kn = KnowledgeNetwork::build(&db);
        let idx = DbIndexes::build(&db);
        let q = HistoryQuery::new().limit(1);
        assert_eq!(search_history(&db, &kn, &idx, &q, None).len(), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_from_parts_bridge_matches_builder() {
        let (db, users, _) = world();
        let kn = KnowledgeNetwork::build(&db);
        let idx = DbIndexes::build(&db);
        let legacy = HistoryQuery::from_parts(
            vec![users[0]],
            vec!["checkin", "no-such-category"],
            Some(Timestamp(5)),
            Some(Timestamp(25)),
            None,
            3,
        );
        let built = HistoryQuery::new()
            .with_actors(vec![users[0]])
            .with_categories(vec![ActivityCategory::CheckIn])
            .within(TickRange::between(Timestamp(5), Timestamp(25)))
            .limit(3);
        let a = search_history(&db, &kn, &idx, &legacy, None);
        let b = search_history(&db, &kn, &idx, &built, None);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.record == y.record));
    }

    #[test]
    fn timeline_buckets() {
        let (db, users, _) = world();
        let idx = DbIndexes::build(&db);
        let tl = timeline(&db, &idx, &[users[0]], 15);
        // Events at t=10 (bucket 0) and t=20 (bucket 1).
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].0, Timestamp(0));
        assert_eq!(tl[0].1["checkin"], 1);
        assert_eq!(tl[1].0, Timestamp(15));
        // Group timeline covers both users.
        let tl_all = timeline(&db, &idx, &[], 100);
        let total: usize = tl_all.iter().map(|(_, c)| c.values().sum::<usize>()).sum();
        assert_eq!(total, 3);
    }
}
