//! Personal activity-history services (Table 1, last row: "Search and
//! visualize personal, group, or community activity history based on
//! current context").
//!
//! The history service filters the activity log by actor set, category,
//! time window, and free-text match against the touched resource, and
//! can bucket the result into a timeline for visualization. When an
//! [`ActivityContext`] is supplied, hits are re-ranked by contextual
//! relevance instead of pure recency.

use crate::clock::Timestamp;
use crate::context::ActivityContext;
use crate::db::HiveDb;
use crate::ids::UserId;
use crate::knowledge::KnowledgeNetwork;
use crate::model::{ActivityEvent, ActivityRecord};
use std::collections::HashMap;

/// A history query.
#[derive(Clone, Debug, Default)]
pub struct HistoryQuery {
    /// Restrict to these actors (empty = everyone).
    pub actors: Vec<UserId>,
    /// Restrict to these categories (empty = all).
    pub categories: Vec<&'static str>,
    /// Window start (inclusive).
    pub from: Option<Timestamp>,
    /// Window end (exclusive).
    pub to: Option<Timestamp>,
    /// Free-text filter matched against the touched resource's text.
    pub text: Option<String>,
    /// Maximum hits.
    pub limit: usize,
}

/// One history hit with relevance.
#[derive(Clone, Debug)]
pub struct HistoryHit {
    /// The matched record.
    pub record: ActivityRecord,
    /// Contextual relevance (recency-based when no context given).
    pub relevance: f64,
    /// Rendered description.
    pub text: String,
}

fn resource_text(db: &HiveDb, event: &ActivityEvent) -> String {
    match event {
        ActivityEvent::CheckIn(s) => db.get_session(*s).map(|x| x.text()).unwrap_or_default(),
        ActivityEvent::ViewPaper(p) => db.get_paper(*p).map(|x| x.text()).unwrap_or_default(),
        ActivityEvent::ViewPresentation(p) | ActivityEvent::UploadPresentation(p)
        | ActivityEvent::ReviseSlides(p) => db
            .get_presentation(*p)
            .map(|x| x.slides_text.clone())
            .unwrap_or_default(),
        ActivityEvent::AskQuestion(q) => {
            db.get_question(*q).map(|x| x.text.clone()).unwrap_or_default()
        }
        ActivityEvent::AnswerQuestion(a) => {
            db.get_answer(*a).map(|x| x.text.clone()).unwrap_or_default()
        }
        ActivityEvent::Comment(c) => {
            db.get_comment(*c).map(|x| x.text.clone()).unwrap_or_default()
        }
        _ => String::new(),
    }
}

/// Runs a history search. With a context, hits are ranked by the cosine
/// between the context vector and the touched resource's text; without
/// one, by recency.
pub fn search_history(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    query: &HistoryQuery,
    ctx: Option<&ActivityContext>,
) -> Vec<HistoryHit> {
    let latest = db.now().ticks().max(1) as f64;
    let mut hits: Vec<HistoryHit> = db
        .activity_log()
        .iter()
        .filter(|r| query.actors.is_empty() || query.actors.contains(&r.user))
        .filter(|r| {
            query.categories.is_empty() || query.categories.contains(&r.event.category())
        })
        .filter(|r| query.from.is_none_or(|f| r.at >= f))
        .filter(|r| query.to.is_none_or(|t| r.at < t))
        .filter_map(|r| {
            let rtext = resource_text(db, &r.event);
            if let Some(needle) = &query.text {
                if !rtext.to_lowercase().contains(&needle.to_lowercase()) {
                    return None;
                }
            }
            let relevance = match ctx {
                Some(c) if !rtext.is_empty() => {
                    c.similarity(&kn.corpus.vectorize_known(&rtext))
                }
                Some(_) => 0.0,
                None => r.at.ticks() as f64 / latest, // recency
            };
            let name = db
                .get_user(r.user)
                .map(|u| u.name.clone())
                .unwrap_or_else(|_| r.user.to_string());
            Some(HistoryHit {
                record: *r,
                relevance,
                text: format!("[{}] {} — {}", r.at, name, r.event.category()),
            })
        })
        .collect();
    hits.sort_by(|a, b| {
        b.relevance
            .total_cmp(&a.relevance)
            .then_with(|| b.record.at.cmp(&a.record.at))
    });
    if query.limit > 0 {
        hits.truncate(query.limit);
    }
    hits
}

/// Buckets a user set's activity into fixed-width time bins per category
/// (the data behind a history visualization).
pub fn timeline(
    db: &HiveDb,
    actors: &[UserId],
    bucket_width: u64,
) -> Vec<(Timestamp, HashMap<&'static str, usize>)> {
    assert!(bucket_width > 0, "bucket width must be positive");
    let mut buckets: HashMap<u64, HashMap<&'static str, usize>> = HashMap::new();
    for r in db.activity_log() {
        if !actors.is_empty() && !actors.contains(&r.user) {
            continue;
        }
        let b = r.at.ticks() / bucket_width;
        *buckets.entry(b).or_default().entry(r.event.category()).or_insert(0) += 1;
    }
    let mut out: Vec<(Timestamp, HashMap<&'static str, usize>)> = buckets
        // lint:allow(determinism-taint) -- sorted by timestamp below
        .into_iter()
        .map(|(b, counts)| (Timestamp(b * bucket_width), counts))
        .collect();
    out.sort_by_key(|(t, _)| *t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{build_context, ContextConfig};
    use crate::ids::SessionId;
    use crate::model::*;

    fn world() -> (HiveDb, Vec<UserId>, Vec<SessionId>) {
        let mut db = HiveDb::new();
        let users = vec![
            db.add_user(User::new("Zach", "ASU").with_interests(vec!["tensor streams".into()])),
            db.add_user(User::new("Ann", "UniTo")),
        ];
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        let s0 = db
            .add_session(
                Session::new(conf, "Tensor Streams", "R1")
                    .with_topics(vec!["tensor stream sketches".into()]),
            )
            .unwrap();
        let s1 = db
            .add_session(
                Session::new(conf, "Transactions", "R2")
                    .with_topics(vec!["concurrency control".into()]),
            )
            .unwrap();
        db.advance_clock(10);
        db.check_in(users[0], s0).unwrap();
        db.advance_clock(10);
        db.check_in(users[0], s1).unwrap();
        db.advance_clock(10);
        db.check_in(users[1], s0).unwrap();
        (db, users, vec![s0, s1])
    }

    #[test]
    fn actor_and_category_filters() {
        let (db, users, _) = world();
        let kn = KnowledgeNetwork::build(&db);
        let q = HistoryQuery {
            actors: vec![users[0]],
            categories: vec!["checkin"],
            ..Default::default()
        };
        let hits = search_history(&db, &kn, &q, None);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.record.user == users[0]));
        // Recency ordering: later check-in first.
        assert!(hits[0].record.at > hits[1].record.at);
    }

    #[test]
    fn window_filter() {
        let (db, ..) = world();
        let kn = KnowledgeNetwork::build(&db);
        let q = HistoryQuery {
            from: Some(Timestamp(15)),
            to: Some(Timestamp(25)),
            ..Default::default()
        };
        let hits = search_history(&db, &kn, &q, None);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].record.at, Timestamp(20));
    }

    #[test]
    fn text_filter_matches_resource() {
        let (db, ..) = world();
        let kn = KnowledgeNetwork::build(&db);
        let q = HistoryQuery { text: Some("tensor".into()), ..Default::default() };
        let hits = search_history(&db, &kn, &q, None);
        assert_eq!(hits.len(), 2, "both tensor-session check-ins match");
    }

    #[test]
    fn context_reranks_over_recency() {
        let (db, users, _) = world();
        let kn = KnowledgeNetwork::build(&db);
        // Zach's profile context is tensor-flavored; his *older* tensor
        // check-in should outrank the newer transactions one.
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        let q = HistoryQuery { actors: vec![users[0]], ..Default::default() };
        let hits = search_history(&db, &kn, &q, Some(&ctx));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].record.at, Timestamp(10), "tensor check-in first");
    }

    #[test]
    fn limit_respected() {
        let (db, ..) = world();
        let kn = KnowledgeNetwork::build(&db);
        let q = HistoryQuery { limit: 1, ..Default::default() };
        assert_eq!(search_history(&db, &kn, &q, None).len(), 1);
    }

    #[test]
    fn timeline_buckets() {
        let (db, users, _) = world();
        let tl = timeline(&db, &[users[0]], 15);
        // Events at t=10 (bucket 0) and t=20 (bucket 1).
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].0, Timestamp(0));
        assert_eq!(tl[0].1["checkin"], 1);
        assert_eq!(tl[1].0, Timestamp(15));
        // Group timeline covers both users.
        let tl_all = timeline(&db, &[], 100);
        let total: usize = tl_all.iter().map(|(_, c)| c.values().sum::<usize>()).sum();
        assert_eq!(total, 3);
    }
}
