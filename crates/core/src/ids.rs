//! Typed entity identifiers.
//!
//! Every platform entity gets its own index newtype so the borrow of a
//! `SessionId` can never be confused with a `UserId` at a call site.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        hive_json::impl_json_newtype!($name);

        impl $name {
            /// The raw arena index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Stable IRI form used in the knowledge network, e.g.
            /// `user:42`.
            pub fn iri(self) -> String {
                format!(concat!($prefix, ":{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, ":{}"), self.0)
            }
        }
    };
}

define_id!(
    /// A registered researcher.
    UserId, "user"
);
define_id!(
    /// A conference edition (e.g. EDBT 2013).
    ConferenceId, "conf"
);
define_id!(
    /// A technical session within a conference.
    SessionId, "session"
);
define_id!(
    /// A published paper.
    PaperId, "paper"
);
define_id!(
    /// An uploaded presentation (slides) of a paper.
    PresentationId, "pres"
);
define_id!(
    /// A question posted on a presentation or session.
    QuestionId, "question"
);
define_id!(
    /// An answer to a question.
    AnswerId, "answer"
);
define_id!(
    /// A comment on a presentation or question.
    CommentId, "comment"
);
define_id!(
    /// A user workpad.
    WorkpadId, "workpad"
);
define_id!(
    /// An exported workpad collection.
    CollectionId, "collection"
);
define_id!(
    /// A simulated tweet mirrored from the session hashtag bridge.
    TweetId, "tweet"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_and_display() {
        assert_eq!(UserId(3).iri(), "user:3");
        assert_eq!(SessionId(7).to_string(), "session:7");
        assert_eq!(PaperId(0).index(), 0);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(UserId(1));
        s.insert(UserId(1));
        assert_eq!(s.len(), 1);
        assert!(UserId(1) < UserId(2));
    }
}
