//! Platform persistence: full-fidelity JSON snapshots of a [`HiveDb`].
//!
//! Hive is cross-conference ("same conference, different years" is a
//! relationship evidence), so a deployment's state must survive between
//! editions. The snapshot stores only primary data — entities, social
//! state, the activity log, the clock — and every secondary index is
//! rebuilt on load by replaying the same insertion paths the live system
//! uses, so an index bug can't be frozen into a snapshot.

use crate::clock::Timestamp;
use crate::db::{DbDelta, HiveDb};
use crate::error::{HiveError, Result};
use crate::ids::*;
use crate::model::*;
use hive_json::{FromJson, Json, JsonError, ToJson};

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Serializable form of the whole platform.
#[derive(Clone, Debug)]
pub struct PlatformSnapshot {
    /// Format version.
    pub version: u32,
    /// Logical clock value at capture time.
    pub now: Timestamp,
    /// Users in id order.
    pub users: Vec<User>,
    /// Conferences in id order.
    pub conferences: Vec<Conference>,
    /// Sessions in id order.
    pub sessions: Vec<Session>,
    /// Papers in id order.
    pub papers: Vec<Paper>,
    /// Presentations in id order.
    pub presentations: Vec<Presentation>,
    /// Questions in id order.
    pub questions: Vec<Question>,
    /// Answers in id order.
    pub answers: Vec<Answer>,
    /// Comments in id order.
    pub comments: Vec<Comment>,
    /// Workpads in id order.
    pub workpads: Vec<Workpad>,
    /// Collections in id order.
    pub collections: Vec<Collection>,
    /// Tweets in id order.
    pub tweets: Vec<Tweet>,
    /// Follow edges with timestamps.
    pub follows: Vec<Follow>,
    /// Per-follow category filters.
    pub follow_filters: Vec<(UserId, UserId, Vec<String>)>,
    /// Connections (any state).
    pub connections: Vec<Connection>,
    /// Session check-ins.
    pub checkins: Vec<CheckIn>,
    /// Conference attendance pairs.
    pub attendance: Vec<(UserId, ConferenceId)>,
    /// Active workpad per user.
    pub active_workpads: Vec<(UserId, WorkpadId)>,
    /// The append-only activity log.
    pub log: Vec<ActivityRecord>,
}

hive_json::impl_json_struct!(PlatformSnapshot {
    version,
    now,
    users,
    conferences,
    sessions,
    papers,
    presentations,
    questions,
    answers,
    comments,
    workpads,
    collections,
    tweets,
    follows,
    follow_filters,
    connections,
    checkins,
    attendance,
    active_workpads,
    log,
});

/// A replication checkpoint: a full platform snapshot plus the
/// mutation generation it was captured at.
///
/// Unlike a plain [`PlatformSnapshot`] restore (which starts a fresh
/// delta journal at generation 1), installing a checkpoint re-stamps
/// the restored platform at the captured generation, so a follower
/// bootstrapped from it can apply subsequent log frames at the exact
/// generations the leader journaled them.
#[derive(Clone, Debug)]
pub struct ReplicaCheckpoint {
    /// Snapshot format version (same lineage as [`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The mutation generation at capture time.
    pub generation: u64,
    /// The full primary-data snapshot.
    pub snapshot: PlatformSnapshot,
}

hive_json::impl_json_struct!(ReplicaCheckpoint { version, generation, snapshot });

// `DbDelta` crosses the replication wire inside log frames (the
// classified delta stream a follower cross-checks its own journal
// against), so it needs a stable JSON form: unit variants render as
// their name, payload variants as a single-key object. Both matches
// stay exhaustive on purpose (lint R10): a new variant must pick its
// wire form here.
impl ToJson for DbDelta {
    fn to_json(&self) -> Json {
        fn obj(tag: &str, fields: Vec<(String, Json)>) -> Json {
            Json::Obj(vec![(tag.to_string(), Json::Obj(fields))])
        }
        match self {
            DbDelta::Neutral => Json::Str("Neutral".into()),
            DbDelta::Structural => Json::Str("Structural".into()),
            DbDelta::Follow { follower, followee } => obj(
                "Follow",
                vec![
                    ("follower".into(), follower.to_json()),
                    ("followee".into(), followee.to_json()),
                ],
            ),
            DbDelta::Connect { a, b } => {
                obj("Connect", vec![("a".into(), a.to_json()), ("b".into(), b.to_json())])
            }
            DbDelta::CheckIn { user, session } => obj(
                "CheckIn",
                vec![("user".into(), user.to_json()), ("session".into(), session.to_json())],
            ),
            DbDelta::Attend { user, conf } => obj(
                "Attend",
                vec![("user".into(), user.to_json()), ("conf".into(), conf.to_json())],
            ),
            DbDelta::Discuss { author, session, paper } => obj(
                "Discuss",
                vec![
                    ("author".into(), author.to_json()),
                    ("session".into(), session.to_json()),
                    ("paper".into(), paper.to_json()),
                ],
            ),
            DbDelta::ViewPaper { user, paper } => obj(
                "ViewPaper",
                vec![("user".into(), user.to_json()), ("paper".into(), paper.to_json())],
            ),
        }
    }
}

impl FromJson for DbDelta {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        fn field<'a>(
            pairs: &'a [(String, Json)],
            name: &str,
        ) -> std::result::Result<&'a Json, JsonError> {
            pairs
                .iter()
                .find_map(|(k, v)| (k == name).then_some(v))
                .ok_or_else(|| JsonError::new(format!("DbDelta missing field `{name}`")))
        }
        match v {
            Json::Str(tag) => match tag.as_str() {
                "Neutral" => Ok(DbDelta::Neutral),
                "Structural" => Ok(DbDelta::Structural),
                other => Err(JsonError::new(format!("unknown DbDelta variant `{other}`"))),
            },
            Json::Obj(pairs) if pairs.len() == 1 => {
                let (tag, inner) = &pairs[0];
                let Json::Obj(fields) = inner else {
                    return Err(JsonError::new(format!(
                        "DbDelta::{tag} payload must be an object, got {}",
                        inner.kind()
                    )));
                };
                match tag.as_str() {
                    "Follow" => Ok(DbDelta::Follow {
                        follower: FromJson::from_json(field(fields, "follower")?)?,
                        followee: FromJson::from_json(field(fields, "followee")?)?,
                    }),
                    "Connect" => Ok(DbDelta::Connect {
                        a: FromJson::from_json(field(fields, "a")?)?,
                        b: FromJson::from_json(field(fields, "b")?)?,
                    }),
                    "CheckIn" => Ok(DbDelta::CheckIn {
                        user: FromJson::from_json(field(fields, "user")?)?,
                        session: FromJson::from_json(field(fields, "session")?)?,
                    }),
                    "Attend" => Ok(DbDelta::Attend {
                        user: FromJson::from_json(field(fields, "user")?)?,
                        conf: FromJson::from_json(field(fields, "conf")?)?,
                    }),
                    "Discuss" => Ok(DbDelta::Discuss {
                        author: FromJson::from_json(field(fields, "author")?)?,
                        session: FromJson::from_json(field(fields, "session")?)?,
                        paper: FromJson::from_json(field(fields, "paper")?)?,
                    }),
                    "ViewPaper" => Ok(DbDelta::ViewPaper {
                        user: FromJson::from_json(field(fields, "user")?)?,
                        paper: FromJson::from_json(field(fields, "paper")?)?,
                    }),
                    other => Err(JsonError::new(format!("unknown DbDelta variant `{other}`"))),
                }
            }
            other => Err(JsonError::new(format!(
                "expected string or single-key object for DbDelta, got {}",
                other.kind()
            ))),
        }
    }
}

impl HiveDb {
    /// Captures the full platform state.
    pub fn snapshot(&self) -> PlatformSnapshot {
        self.capture_snapshot()
    }

    /// Captures a replication checkpoint: the full snapshot stamped
    /// with the current mutation generation.
    pub fn checkpoint(&self) -> ReplicaCheckpoint {
        ReplicaCheckpoint {
            version: SNAPSHOT_VERSION,
            generation: self.generation(),
            snapshot: self.capture_snapshot(),
        }
    }

    /// Restores a platform from a replication checkpoint, adopting the
    /// captured generation (empty delta journal based there) so the
    /// restored instance lines up with the leader's log.
    pub fn from_checkpoint(cp: &ReplicaCheckpoint) -> Result<Self> {
        if cp.version != SNAPSHOT_VERSION {
            return Err(HiveError::SnapshotVersion {
                found: cp.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let mut db = Self::from_snapshot(&cp.snapshot)?;
        db.adopt_generation(cp.generation);
        Ok(db)
    }

    /// Serializes the platform to JSON.
    pub fn to_json(&self) -> Result<String> {
        Ok(hive_json::to_string(&self.snapshot()))
    }

    /// Restores a platform from a snapshot, rebuilding every secondary
    /// index through the live insertion paths.
    pub fn from_snapshot(snap: &PlatformSnapshot) -> Result<Self> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(HiveError::SnapshotVersion {
                found: snap.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        Self::restore_snapshot(snap)
    }

    /// Restores a platform from JSON produced by [`HiveDb::to_json`].
    pub fn from_json(json: &str) -> Result<Self> {
        let snap: PlatformSnapshot = hive_json::from_str(json)
            .map_err(|e| HiveError::Invalid(format!("parse platform snapshot: {e}")))?;
        Self::from_snapshot(&snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, WorldBuilder};

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let world = WorldBuilder::new(SimConfig::small()).build();
        let db = world.db;
        let json = db.to_json().expect("serializes");
        let restored = HiveDb::from_json(&json).expect("restores");
        // Entities.
        assert_eq!(restored.user_ids(), db.user_ids());
        assert_eq!(restored.paper_ids(), db.paper_ids());
        assert_eq!(restored.session_ids(), db.session_ids());
        assert_eq!(restored.presentation_ids(), db.presentation_ids());
        assert_eq!(restored.question_ids(), db.question_ids());
        // Clock and log.
        assert_eq!(restored.now(), db.now());
        assert_eq!(restored.activity_log().len(), db.activity_log().len());
        assert_eq!(restored.activity_log(), db.activity_log());
        // Secondary indexes answer identically.
        for u in db.user_ids() {
            assert_eq!(restored.papers_of(u), db.papers_of(u));
            assert_eq!(restored.following(u), db.following(u));
            assert_eq!(restored.connections_of(u), db.connections_of(u));
            assert_eq!(restored.conferences_of(u), db.conferences_of(u));
            assert_eq!(
                restored.checkins_of(u).len(),
                db.checkins_of(u).len()
            );
            assert_eq!(restored.active_workpad_of(u), db.active_workpad_of(u));
        }
        for p in db.paper_ids() {
            assert_eq!(restored.citing(p), db.citing(p));
        }
        for s in db.session_ids() {
            assert_eq!(restored.presentations_in(s), db.presentations_in(s));
            assert_eq!(restored.checkins_in(s).len(), db.checkins_in(s).len());
            assert_eq!(restored.tweets_in(s), db.tweets_in(s));
        }
    }

    #[test]
    fn restored_platform_keeps_working() {
        let world = WorldBuilder::new(SimConfig::small()).build();
        let json = world.db.to_json().unwrap();
        let mut restored = HiveDb::from_json(&json).unwrap();
        let users = restored.user_ids();
        let session = restored.session_ids()[0];
        // New activity lands on top of the restored state.
        restored.advance_clock(1);
        restored.check_in(users[0], session).expect("valid");
        let q = restored
            .ask_question(users[1], QaTarget::Session(session), "still alive?", true)
            .expect("valid");
        restored
            .answer_question(users[0], q, "fully restored")
            .expect("valid");
        assert!(!restored.tweets_in(session).is_empty());
    }

    #[test]
    fn follow_filters_survive() {
        let world = WorldBuilder::new(SimConfig::small()).build();
        let mut db = world.db;
        let users = db.user_ids();
        // Ensure a follow exists, then filter it.
        let followee = db.following(users[0]).first().copied().unwrap_or_else(|| {
            db.follow(users[0], users[5]).unwrap();
            users[5]
        });
        db.set_follow_filter(users[0], followee, vec!["discuss".into()])
            .unwrap();
        let restored = HiveDb::from_json(&db.to_json().unwrap()).unwrap();
        assert_eq!(
            restored.follow_filter(users[0], followee),
            Some(&["discuss".to_string()][..])
        );
    }

    #[test]
    fn index_corruption_cannot_be_frozen_into_a_snapshot() {
        let world = WorldBuilder::new(SimConfig::small()).build();
        let pristine_json = world.db.to_json().expect("serializes");
        let clean = HiveDb::from_json(&pristine_json).expect("restores");

        // Corrupt the secondary indexes of a loaded instance. The
        // corruption must be observable live (so the hook is not a
        // no-op) ...
        let mut corrupted = HiveDb::from_json(&pristine_json).expect("restores");
        corrupted.debug_scramble_indexes();
        let users = corrupted.user_ids();
        assert!(
            corrupted.is_following(users[0], users[1])
                || users.iter().any(|&u| corrupted.papers_of(u) != clean.papers_of(u))
                || users.iter().any(|&u| corrupted.following(u) != clean.following(u)),
            "scrambling must visibly corrupt index-backed queries"
        );

        // ... but snapshots store only primary data, so the corrupted
        // instance serializes byte-identically to the pristine one ...
        let corrupted_json = corrupted.to_json().expect("serializes");
        assert_eq!(corrupted_json, pristine_json, "indexes must not leak into snapshots");

        // ... and a fresh reload rebuilds every index identically.
        let reloaded = HiveDb::from_json(&corrupted_json).expect("restores");
        for &u in &clean.user_ids() {
            assert_eq!(reloaded.papers_of(u), clean.papers_of(u));
            assert_eq!(reloaded.following(u), clean.following(u));
            assert_eq!(reloaded.connections_of(u), clean.connections_of(u));
            assert_eq!(reloaded.checkins_of(u).len(), clean.checkins_of(u).len());
            assert_eq!(reloaded.workpads_of(u), clean.workpads_of(u));
            assert_eq!(reloaded.activities_of(u).len(), clean.activities_of(u).len());
        }
        for p in clean.paper_ids() {
            assert_eq!(reloaded.citing(p), clean.citing(p));
        }
        for s in clean.session_ids() {
            assert_eq!(reloaded.presentations_in(s), clean.presentations_in(s));
            assert_eq!(reloaded.checkins_in(s).len(), clean.checkins_in(s).len());
            assert_eq!(reloaded.tweets_in(s), clean.tweets_in(s));
        }
        for q in clean.question_ids() {
            assert_eq!(reloaded.answers_to(q), clean.answers_to(q));
        }
    }

    #[test]
    fn bad_version_and_bad_json_rejected() {
        let world = WorldBuilder::new(SimConfig::small()).build();
        let mut snap = world.db.snapshot();
        snap.version = 99;
        assert_eq!(
            HiveDb::from_snapshot(&snap).err(),
            Some(HiveError::SnapshotVersion { found: 99, expected: SNAPSHOT_VERSION })
        );
        // The same typed error surfaces through the JSON load path.
        let json = world.db.to_json().unwrap().replace(
            &format!("\"version\":{SNAPSHOT_VERSION}"),
            &format!("\"version\":{}", SNAPSHOT_VERSION + 3),
        );
        assert_eq!(
            HiveDb::from_json(&json).err(),
            Some(HiveError::SnapshotVersion {
                found: SNAPSHOT_VERSION + 3,
                expected: SNAPSHOT_VERSION
            })
        );
        assert!(HiveDb::from_json("{").is_err());
    }

    #[test]
    fn checkpoint_roundtrip_adopts_generation_and_patchable_journal() {
        let world = WorldBuilder::new(SimConfig::small()).build();
        let mut db = world.db;
        let users = db.user_ids();
        db.follow(users[0], users[3]).ok();
        db.follow(users[1], users[4]).ok();
        let gen = db.generation();
        assert!(gen > 1, "mutations must have advanced the generation");

        let cp = db.checkpoint();
        assert_eq!(cp.generation, gen);
        // The checkpoint survives its own JSON wire format.
        let wire = cp.to_json().to_string();
        let parsed = hive_json::Json::parse(&wire).expect("checkpoint JSON parses");
        let back = ReplicaCheckpoint::from_json(&parsed).expect("checkpoint JSON loads");
        let restored = HiveDb::from_checkpoint(&back).expect("installs");
        // The installed replica sits at the source generation with an
        // empty-but-patchable delta window, so follower caches and the
        // next ops frame line up exactly.
        assert_eq!(restored.generation(), gen);
        assert_eq!(restored.deltas_since(gen).map(<[DbDelta]>::len), Some(0));
        assert_eq!(restored.user_ids(), db.user_ids());
        assert_eq!(restored.following(users[0]), db.following(users[0]));
        // Version skew refuses typed-ly, like every snapshot path.
        let mut skewed = db.checkpoint();
        skewed.version = 99;
        assert_eq!(
            HiveDb::from_checkpoint(&skewed).err(),
            Some(HiveError::SnapshotVersion { found: 99, expected: SNAPSHOT_VERSION })
        );
    }

    #[test]
    fn db_delta_json_roundtrips_every_variant() {
        let world = WorldBuilder::new(SimConfig::small()).build();
        let u = world.db.user_ids();
        let s = world.db.session_ids()[0];
        let c = world.db.conference_ids()[0];
        let p = world.db.paper_ids()[0];
        let variants = [
            DbDelta::Neutral,
            DbDelta::Structural,
            DbDelta::Follow { follower: u[0], followee: u[1] },
            DbDelta::Connect { a: u[2], b: u[3] },
            DbDelta::CheckIn { user: u[0], session: s },
            DbDelta::Attend { user: u[1], conf: c },
            DbDelta::Discuss { author: u[2], session: s, paper: Some(p) },
            DbDelta::Discuss { author: u[2], session: s, paper: None },
            DbDelta::ViewPaper { user: u[3], paper: p },
        ];
        for d in variants {
            let wire = d.to_json().to_string();
            let parsed = hive_json::Json::parse(&wire).expect("delta JSON parses");
            assert_eq!(DbDelta::from_json(&parsed).expect("delta JSON loads"), d, "{wire}");
        }
    }
}
