//! Generation-scoped PPR result cache and the delta hook feeding the
//! incremental engine.
//!
//! Serving-path PPR must be a *pure function of (graph, seeds, config)*:
//! the sim-harness oracles compare facade-vs-cold, patched-vs-rebuilt,
//! and leader-vs-follower fingerprints bit-for-bit (`f64::to_bits`), so
//! a served score vector may never drift from what a cold
//! [`personalized_pagerank_csr`] run would produce. [`PprCache`] is
//! therefore an *exact memo tier*: it answers repeated queries for the
//! same canonicalized seed distribution with the identical
//! power-iteration output, solved once per (generation, seed-set) —
//! peer recommendation, contextual search, and the fingerprint battery
//! all re-ask the same seed distributions against one graph generation,
//! which is where the serving win lives. The forward-push engine
//! ([`DynamicPpr`]) rides the same journal through [`apply_ppr_delta`]
//! and answers *approximate* queries within its certified push
//! tolerance; its budgeted fallback re-solves bit-identical to cold.

use crate::db::DbDelta;
use crate::knowledge::FusionWeights;
use hive_graph::{personalized_pagerank_csr, CsrView, DynamicPpr, NodeId, PprConfig};
use crate::api::unpoison;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Canonical cache key: sorted `(node index, raw mass bits)` plus the
/// iteration config bits — everything the power iteration's output
/// depends on besides the graph itself.
type PprKey = (Vec<(u32, u64)>, (u64, u64, u32));

fn key_of(seeds: &HashMap<NodeId, f64>, cfg: &PprConfig) -> PprKey {
    // lint:allow(determinism-taint) -- sorted into node order on the next line
    let mut s: Vec<(u32, u64)> = seeds.iter().map(|(&n, &m)| (n.0, m.to_bits())).collect();
    s.sort_unstable();
    (s, (cfg.damping.to_bits(), cfg.tolerance.to_bits(), cfg.max_iters as u32))
}

/// Exact memoized PPR results for one graph snapshot.
///
/// One instance is pinned per knowledge-network generation (the facade
/// patches it forward through the journal; served [`Epoch`]s pin it
/// like the kn/rel/idx tiers), so entries never outlive the graph they
/// were solved against.
///
/// [`Epoch`]: crate::serve::Epoch
pub struct PprCache {
    entries: Mutex<BTreeMap<PprKey, Arc<Vec<f64>>>>,
}

impl PprCache {
    /// Empty cache for a fresh graph snapshot.
    pub fn new() -> Self {
        PprCache { entries: Mutex::new(BTreeMap::new()) }
    }

    /// Memoized exact PPR: bit-identical to calling
    /// [`personalized_pagerank_csr`] directly, solved at most once per
    /// canonical `(seeds, cfg)` against this snapshot's CSR.
    pub fn scores(&self, csr: &CsrView, seeds: &HashMap<NodeId, f64>, cfg: PprConfig) -> Arc<Vec<f64>> {
        let key = key_of(seeds, &cfg);
        {
            let guard = unpoison(self.entries.lock());
            if let Some(hit) = guard.get(&key) {
                hive_obs::count("core.ppr.memo_hit", 1);
                return Arc::clone(hit);
            }
        }
        // Solve outside the lock (R11 discipline: never build under a
        // cache lock); concurrent solvers race benignly — the first
        // insert wins and both results are bitwise identical anyway.
        let solved = Arc::new(personalized_pagerank_csr(csr, seeds, cfg));
        hive_obs::count("core.ppr.solve", 1);
        let mut guard = unpoison(self.entries.lock());
        Arc::clone(guard.entry(key).or_insert(solved))
    }

    /// Number of memoized seed distributions (test introspection).
    pub fn len(&self) -> usize {
        unpoison(self.entries.lock()).len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized result — called when a journal-covered
    /// graph-touching delta advances the snapshot this cache is keyed
    /// to (O(delta) invalidation instead of a rebuild: the allocation
    /// and the tier slot survive).
    pub fn clear(&self) {
        unpoison(self.entries.lock()).clear();
    }
}

impl Default for PprCache {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for PprCache {
    fn clone(&self) -> Self {
        let entries = unpoison(self.entries.lock()).clone();
        PprCache { entries: Mutex::new(entries) }
    }
}

/// Routes one journaled [`DbDelta`] into a [`DynamicPpr`] engine — the
/// same edge sequence `apply_unified_delta` replays into the unified
/// graph, so an engine fed every delta tracks the served graph exactly.
pub fn apply_ppr_delta(engine: &mut DynamicPpr, w: &FusionWeights, d: &DbDelta) {
    fn und(engine: &mut DynamicPpr, a: String, b: String, wt: f64) {
        let (na, nb) = (engine.add_node(a), engine.add_node(b));
        engine.apply_undirected_edge(na, nb, wt);
    }
    match *d {
        DbDelta::Connect { a, b } => und(engine, a.iri(), b.iri(), w.connection),
        DbDelta::Follow { follower, followee } => {
            und(engine, follower.iri(), followee.iri(), w.follow)
        }
        DbDelta::CheckIn { user, session } => und(engine, user.iri(), session.iri(), w.checkin),
        DbDelta::Attend { user, conf } => und(engine, user.iri(), conf.iri(), w.attendance),
        DbDelta::Discuss { author, session, paper } => {
            und(engine, author.iri(), session.iri(), w.discussion);
            if let Some(p) = paper {
                und(engine, author.iri(), p.iri(), w.view);
            }
        }
        DbDelta::ViewPaper { user, paper } => und(engine, user.iri(), paper.iri(), w.view),
        DbDelta::Neutral | DbDelta::Structural => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_graph::Graph;

    fn toy() -> (Graph, HashMap<NodeId, f64>) {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..5).map(|i| g.add_node(format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_undirected_edge(w[0], w[1], 0.8);
        }
        let mut seeds = HashMap::new();
        seeds.insert(ids[0], 1.0);
        (g, seeds)
    }

    #[test]
    fn memo_is_bit_identical_to_direct_solve() {
        let (g, seeds) = toy();
        let csr = CsrView::build(&g);
        let cache = PprCache::new();
        let cfg = PprConfig::default();
        let direct = personalized_pagerank_csr(&csr, &seeds, cfg);
        let first = cache.scores(&csr, &seeds, cfg);
        let second = cache.scores(&csr, &seeds, cfg);
        assert_eq!(cache.len(), 1, "one memo entry for one seed set");
        for ((a, b), c) in direct.iter().zip(first.iter()).zip(second.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn distinct_configs_memoize_separately() {
        let (g, seeds) = toy();
        let csr = CsrView::build(&g);
        let cache = PprCache::new();
        let _ = cache.scores(&csr, &seeds, PprConfig::default());
        let _ = cache.scores(&csr, &seeds, PprConfig { damping: 0.6, ..Default::default() });
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }
}
