//! Scheduled update reports (paper §2.3): "Summarization of the scheduled
//! update reports are performed relying on hierarchical table
//! summarization techniques, which preserve maximal information while
//! minimizing the footprint of the reported information \[AlphaSum\]."
//!
//! An update report turns a window of the activity log into a
//! (who, where, what) table with per-column value lattices —
//! `session -> track -> conference -> *`, `user -> affiliation -> *`,
//! `event -> category -> *` — and compresses it to at most `k` rows with
//! `hive-text`'s AlphaSum implementation.

use crate::clock::Timestamp;
use crate::db::index::{ActivityQuery, DbIndexes, TickRange};
use crate::db::HiveDb;
use crate::ids::UserId;
use crate::model::{ActivityEvent, QaTarget};
use hive_text::summarize::{summarize_table, Strategy, SummaryConfig, Table, TableSummary, ValueLattice};

/// Scope of a report.
#[derive(Clone, Debug)]
pub enum ReportScope {
    /// Everything on the platform.
    Platform,
    /// Activities of one user's followees and connections.
    Network(UserId),
    /// An explicit user group (e.g. one community).
    Group(Vec<UserId>),
}

/// A generated update report.
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// Size-constrained summary rows `(who, where, what) x count`.
    pub summary: TableSummary,
    /// The time window covered.
    pub window: (Timestamp, Timestamp),
    /// Raw events before summarization.
    pub total_events: usize,
}

impl UpdateReport {
    /// Renders the report as aligned text lines.
    pub fn render(&self) -> String {
        let mut out = format!(
            "update report [{} .. {}] — {} events\n",
            self.window.0, self.window.1, self.total_events
        );
        out.push_str(&format!(
            "{:<24} {:<28} {:<12} {:>5}\n",
            "who", "where", "what", "count"
        ));
        for (row, count) in &self.summary.rows {
            out.push_str(&format!(
                "{:<24} {:<28} {:<12} {:>5}\n",
                row[0], row[1], row[2], count
            ));
        }
        out.push_str(&format!(
            "information retained: {:.0}%\n",
            self.summary.retained * 100.0
        ));
        out
    }
}

/// Where an event "happened", for the location column.
fn event_location(db: &HiveDb, event: &ActivityEvent) -> String {
    let session = match event {
        ActivityEvent::CheckIn(s) => Some(*s),
        ActivityEvent::AskQuestion(q) => db.get_question(*q).ok().and_then(|q| match q.target {
            QaTarget::Presentation(p) => db.get_presentation(p).ok().map(|x| x.session),
            QaTarget::Session(s) => Some(s),
        }),
        ActivityEvent::AnswerQuestion(a) => db
            .get_answer(*a)
            .ok()
            .and_then(|ans| db.get_question(ans.question).ok())
            .and_then(|q| match q.target {
                QaTarget::Presentation(p) => db.get_presentation(p).ok().map(|x| x.session),
                QaTarget::Session(s) => Some(s),
            }),
        ActivityEvent::UploadPresentation(p) | ActivityEvent::ReviseSlides(p)
        | ActivityEvent::ViewPresentation(p) => {
            db.get_presentation(*p).ok().map(|x| x.session)
        }
        ActivityEvent::AttendConference(c) => {
            return db
                .get_conference(*c)
                .map(|x| format!("conf {}", x.display_name()))
                .unwrap_or_else(|_| "platform".into());
        }
        _ => None,
    };
    match session {
        Some(s) => format!("session {}", db.get_session(s).map(|x| x.title.clone()).unwrap_or_default()),
        None => "platform".to_string(),
    }
}

/// Builds the (who, where, what) table and its lattices for a window.
/// The event window comes from the index planner: a scoped report pulls
/// the actor postings, a platform report binary-searches the
/// clock-ordered log for the window.
pub fn activity_table(
    db: &HiveDb,
    idx: &DbIndexes,
    scope: &ReportScope,
    from: Timestamp,
    to: Timestamp,
) -> Table {
    // who: name -> affiliation -> *
    let mut who = ValueLattice::new("*");
    for u in db.user_ids() {
        let Ok(user) = db.get_user(u) else { continue; };
        who.add_child("*", user.affiliation.clone());
        who.add_child(user.affiliation.clone(), user.name.clone());
    }
    // where: "session <title>" -> "track <track>" -> "conf <name>" -> *
    let mut place = ValueLattice::new("*");
    for c in db.conference_ids() {
        let Ok(conf) = db.get_conference(c) else { continue; };
        place.add_child("*", format!("conf {}", conf.display_name()));
    }
    for s in db.session_ids() {
        let Ok(sess) = db.get_session(s) else { continue; };
        let conf = db
            .get_conference(sess.conference)
            .map(|x| format!("conf {}", x.display_name()))
            .unwrap_or_else(|_| "*".into());
        let track = format!("track {}", sess.track);
        place.add_child(conf, track.clone());
        place.add_child(track, format!("session {}", sess.title));
    }
    place.add_child("*", "platform");
    // what: leaf event label -> category -> *
    let mut what = ValueLattice::new("*");
    for cat in ["attend", "checkin", "content", "browse", "discuss", "network", "workpad"] {
        what.add_child("*", cat);
    }
    let mut table = Table::new(
        vec!["who".into(), "where".into(), "what".into()],
        vec![who, place, what],
    );
    // Scope → actor restriction. `None` means everyone (platform
    // scope); an explicit empty set means nobody and short-circuits,
    // because an empty actor list on the query side means "everyone".
    let actors: Option<Vec<UserId>> = match scope {
        ReportScope::Platform => None,
        ReportScope::Network(u) => {
            let mut set = db.following(*u);
            set.extend(db.connections_of(*u));
            set.sort_unstable();
            set.dedup();
            Some(set)
        }
        ReportScope::Group(users) => {
            let mut set = users.clone();
            set.sort_unstable();
            set.dedup();
            Some(set)
        }
    };
    if matches!(&actors, Some(set) if set.is_empty()) {
        return table;
    }
    let query = ActivityQuery::new()
        .with_actors(actors.unwrap_or_default())
        .within(TickRange::between(from, to));
    for rec in query.run(db, idx) {
        let name = db
            .get_user(rec.user)
            .map(|u| u.name.clone())
            .unwrap_or_else(|_| rec.user.to_string());
        table.push_row(vec![
            name,
            event_location(db, &rec.event),
            rec.event.category().to_string(),
        ]);
    }
    table
}

/// Generates a size-constrained update report.
pub fn update_report(
    db: &HiveDb,
    idx: &DbIndexes,
    scope: &ReportScope,
    from: Timestamp,
    to: Timestamp,
    max_rows: usize,
) -> UpdateReport {
    let table = activity_table(db, idx, scope, from, to);
    let total_events = table.rows.len();
    let summary = summarize_table(
        &table,
        SummaryConfig { max_rows, strategy: Strategy::Greedy },
    );
    UpdateReport { summary, window: (from, to), total_events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionId;
    use crate::model::*;

    fn busy_world() -> (HiveDb, Vec<UserId>, Vec<SessionId>) {
        let mut db = HiveDb::new();
        let users = vec![
            db.add_user(User::new("Zach", "ASU")),
            db.add_user(User::new("Ann", "ASU")),
            db.add_user(User::new("Bob", "MIT")),
        ];
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        let sessions = vec![
            db.add_session(Session::new(conf, "Tensors", "R1")).unwrap(),
            db.add_session(Session::new(conf, "Graphs", "R1")).unwrap(),
            db.add_session(Session::new(conf, "Transactions", "R2")).unwrap(),
        ];
        for &u in &users {
            db.attend(u, conf).unwrap();
            for &s in &sessions {
                db.advance_clock(1);
                db.check_in(u, s).unwrap();
            }
        }
        db.ask_question(users[0], QaTarget::Session(sessions[0]), "why?", false)
            .unwrap();
        (db, users, sessions)
    }

    #[test]
    fn report_respects_budget_and_covers_all_events() {
        let (db, ..) = busy_world();
        let report = update_report(
            &db,
            &DbIndexes::build(&db),
            &ReportScope::Platform,
            Timestamp(0),
            Timestamp(u64::MAX),
            4,
        );
        assert!(report.summary.rows.len() <= 4);
        let covered: usize = report.summary.rows.iter().map(|(_, c)| c).sum();
        assert_eq!(covered, report.total_events);
        assert!(report.total_events >= 13); // 3 attends + 9 checkins + question
    }

    #[test]
    fn generalization_uses_the_lattices() {
        let (db, ..) = busy_world();
        let report = update_report(
            &db,
            &DbIndexes::build(&db),
            &ReportScope::Platform,
            Timestamp(0),
            Timestamp(u64::MAX),
            3,
        );
        // With 3 users × several sessions squeezed into 3 rows, at least
        // one cell must have been generalized above leaf level.
        let has_generalized = report.summary.rows.iter().any(|(row, _)| {
            row[0] == "*"
                || row[0] == "ASU"
                || row[0] == "MIT"
                || row[1].starts_with("track")
                || row[1].starts_with("conf")
                || row[1] == "*"
        });
        assert!(has_generalized, "{:?}", report.summary.rows);
        assert!(report.summary.retained > 0.0);
    }

    #[test]
    fn network_scope_filters_actors() {
        let (mut db, users, sessions) = busy_world();
        db.follow(users[0], users[1]).unwrap();
        db.advance_clock(1);
        db.check_in(users[1], sessions[0]).unwrap();
        db.check_in(users[2], sessions[0]).unwrap();
        let report = update_report(
            &db,
            &DbIndexes::build(&db),
            &ReportScope::Network(users[0]),
            Timestamp(0),
            Timestamp(u64::MAX),
            10,
        );
        // Only Ann's rows (Zach follows Ann, not Bob).
        for (row, _) in &report.summary.rows {
            assert_ne!(row[0], "Bob");
        }
        assert!(report.total_events > 0);
    }

    #[test]
    fn group_scope_and_render() {
        let (db, users, _) = busy_world();
        let report = update_report(
            &db,
            &DbIndexes::build(&db),
            &ReportScope::Group(vec![users[2]]),
            Timestamp(0),
            Timestamp(u64::MAX),
            2,
        );
        let text = report.render();
        assert!(text.contains("update report"));
        assert!(text.contains("count"));
        assert!(text.contains("information retained"));
    }

    #[test]
    fn empty_window_is_fine() {
        let (db, ..) = busy_world();
        let report = update_report(
            &db,
            &DbIndexes::build(&db),
            &ReportScope::Platform,
            Timestamp(u64::MAX - 1),
            Timestamp(u64::MAX),
            5,
        );
        assert_eq!(report.total_events, 0);
        assert!(report.summary.rows.is_empty());
    }
}
