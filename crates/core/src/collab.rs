//! Collaborative filtering (paper §2, "peer networks support each other
//! ... indirectly through collaborative filtering").
//!
//! Implicit ratings are derived from the activity log (check-ins, views,
//! Q&A participation, workpad drops); both user-based kNN and item-based
//! neighborhood models are provided, plus a *peer-network weighted*
//! variant where the neighborhood is the user's explicit peer network —
//! Hive's "peer-network based resource recommendation" (§2.4).

use crate::db::HiveDb;
use crate::discover::Resource;
use crate::ids::UserId;
use crate::model::{ActivityEvent, QaTarget};
use hive_text::tfidf::SparseVector;
use std::collections::HashMap;

/// Implicit rating strengths per signal.
#[derive(Clone, Copy, Debug)]
pub struct RatingWeights {
    /// Session check-in.
    pub checkin: f64,
    /// Paper/presentation view.
    pub view: f64,
    /// Question/answer/comment on a resource.
    pub discuss: f64,
    /// Item dropped onto a workpad.
    pub workpad: f64,
}

impl Default for RatingWeights {
    fn default() -> Self {
        RatingWeights { checkin: 1.0, view: 0.5, discuss: 0.8, workpad: 0.9 }
    }
}

/// A user×resource implicit-rating model.
#[derive(Clone, Debug)]
pub struct CfModel {
    resources: Vec<Resource>,
    index: HashMap<Resource, u32>,
    /// Per-user rating vectors over resource indexes.
    ratings: HashMap<UserId, SparseVector>,
    /// Per-resource rating vectors over user indexes (for item-item).
    item_vectors: HashMap<u32, SparseVector>,
}

impl CfModel {
    /// Builds the model from the platform's activity traces.
    pub fn build(db: &HiveDb) -> Self {
        Self::build_with(db, RatingWeights::default())
    }

    /// Builds with explicit rating weights.
    pub fn build_with(db: &HiveDb, w: RatingWeights) -> Self {
        let mut model = CfModel {
            resources: Vec::new(),
            index: HashMap::new(),
            ratings: HashMap::new(),
            item_vectors: HashMap::new(),
        };
        fn rate(model: &mut CfModel, user: UserId, r: Resource, v: f64) {
            let id = match model.index.get(&r) {
                Some(&id) => id,
                None => {
                    let id = model.resources.len() as u32;
                    model.resources.push(r);
                    model.index.insert(r, id);
                    id
                }
            };
            model.ratings.entry(user).or_default().add(id, v);
        }
        // lint:allow(no-full-scan) -- model build folds the whole log once
        for rec in db.activity_log() {
            match rec.event {
                ActivityEvent::CheckIn(s) => rate(&mut model, rec.user, Resource::Session(s), w.checkin),
                ActivityEvent::ViewPaper(p) => rate(&mut model, rec.user, Resource::Paper(p), w.view),
                ActivityEvent::ViewPresentation(p) => {
                    rate(&mut model, rec.user, Resource::Presentation(p), w.view)
                }
                ActivityEvent::AskQuestion(q) => {
                    if let Ok(question) = db.get_question(q) {
                        let r = match question.target {
                            QaTarget::Presentation(p) => Resource::Presentation(p),
                            QaTarget::Session(s) => Resource::Session(s),
                        };
                        rate(&mut model, rec.user, r, w.discuss);
                    }
                }
                ActivityEvent::AnswerQuestion(a) => {
                    if let Ok(answer) = db.get_answer(a) {
                        if let Ok(question) = db.get_question(answer.question) {
                            let r = match question.target {
                                QaTarget::Presentation(p) => Resource::Presentation(p),
                                QaTarget::Session(s) => Resource::Session(s),
                            };
                            rate(&mut model, rec.user, r, w.discuss);
                        }
                    }
                }
                _ => {}
            }
        }
        // Workpad drops.
        for u in db.user_ids() {
            for &pad in db.workpads_of(u) {
                if let Ok(p) = db.get_workpad(pad) {
                    for item in &p.items {
                        let r = match *item {
                            crate::model::WorkpadItem::Paper(p) => Some(Resource::Paper(p)),
                            crate::model::WorkpadItem::Presentation(p) => {
                                Some(Resource::Presentation(p))
                            }
                            crate::model::WorkpadItem::Session(s) => Some(Resource::Session(s)),
                            _ => None,
                        };
                        if let Some(r) = r {
                            rate(&mut model, u, r, w.workpad);
                        }
                    }
                }
            }
        }
        // Item vectors (resource -> users who rated it).
        for (&user, vec) in &model.ratings {
            for (item, v) in vec.iter() {
                model
                    .item_vectors
                    .entry(item)
                    .or_default()
                    .add(user.0, v);
            }
        }
        model
    }

    /// Number of distinct rated resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of users with at least one rating.
    pub fn user_count(&self) -> usize {
        self.ratings.len()
    }

    /// A user's implicit rating of a resource.
    pub fn rating(&self, user: UserId, r: Resource) -> f64 {
        match (self.ratings.get(&user), self.index.get(&r)) {
            (Some(v), Some(&id)) => v.get(id),
            _ => 0.0,
        }
    }

    /// The `k` most similar users by rating-vector cosine.
    pub fn similar_users(&self, user: UserId, k: usize) -> Vec<(UserId, f64)> {
        let Some(uv) = self.ratings.get(&user) else {
            return Vec::new();
        };
        let mut out: Vec<(UserId, f64)> = self
            .ratings
            .iter()
            .filter(|(&other, _)| other != user)
            .map(|(&other, ov)| (other, uv.cosine(ov)))
            .filter(|(_, s)| *s > 0.0)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    fn rank_unseen(&self, user: UserId, scores: HashMap<u32, f64>, top_k: usize) -> Vec<(Resource, f64)> {
        let seen = self.ratings.get(&user);
        let mut out: Vec<(Resource, f64)> = scores
            .into_iter()
            .filter(|(item, s)| {
                *s > 0.0 && seen.is_none_or(|v| v.get(*item) == 0.0)
            })
            .map(|(item, s)| (self.resources[item as usize], s))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(top_k);
        out
    }

    /// User-based kNN recommendation: neighbors' ratings, similarity
    /// weighted, over resources the user hasn't touched.
    pub fn recommend_user_based(
        &self,
        user: UserId,
        k_neighbors: usize,
        top_k: usize,
    ) -> Vec<(Resource, f64)> {
        let neighbors = self.similar_users(user, k_neighbors);
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for (peer, sim) in neighbors {
            if let Some(pv) = self.ratings.get(&peer) {
                for (item, v) in pv.iter() {
                    *scores.entry(item).or_insert(0.0) += sim * v;
                }
            }
        }
        self.rank_unseen(user, scores, top_k)
    }

    /// Item-based recommendation: for each candidate, sum its
    /// co-consumption similarity to the user's rated items.
    pub fn recommend_item_based(&self, user: UserId, top_k: usize) -> Vec<(Resource, f64)> {
        let Some(uv) = self.ratings.get(&user) else {
            return Vec::new();
        };
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for (&candidate, cvec) in &self.item_vectors {
            if uv.get(candidate) > 0.0 {
                continue;
            }
            let mut s = 0.0;
            for (rated, rating) in uv.iter() {
                if let Some(rvec) = self.item_vectors.get(&rated) {
                    s += rating * cvec.cosine(rvec);
                }
            }
            if s > 0.0 {
                scores.insert(candidate, s);
            }
        }
        self.rank_unseen(user, scores, top_k)
    }

    /// Peer-network weighted recommendation: like user-based CF, but the
    /// "neighborhood" is an explicit peer list (e.g. connections or the
    /// peers Hive just recommended), each with a trust weight.
    pub fn recommend_from_peers(
        &self,
        user: UserId,
        peers: &[(UserId, f64)],
        top_k: usize,
    ) -> Vec<(Resource, f64)> {
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for &(peer, trust) in peers {
            if let Some(pv) = self.ratings.get(&peer) {
                for (item, v) in pv.iter() {
                    *scores.entry(item).or_insert(0.0) += trust * v;
                }
            }
        }
        self.rank_unseen(user, scores, top_k)
    }

    /// Popularity baseline: total rating mass per resource.
    pub fn recommend_popular(&self, user: UserId, top_k: usize) -> Vec<(Resource, f64)> {
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for vec in self.ratings.values() {
            for (item, v) in vec.iter() {
                *scores.entry(item).or_insert(0.0) += v;
            }
        }
        self.rank_unseen(user, scores, top_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionId;
    use crate::model::*;

    /// Two "tensor people" sharing sessions, one outsider.
    fn world() -> (HiveDb, Vec<UserId>, Vec<SessionId>) {
        let mut db = HiveDb::new();
        let users = vec![
            db.add_user(User::new("A", "X")),
            db.add_user(User::new("B", "X")),
            db.add_user(User::new("C", "Y")),
        ];
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        let sessions: Vec<SessionId> = (0..4)
            .map(|i| {
                db.add_session(Session::new(conf, format!("S{i}"), "R")).unwrap()
            })
            .collect();
        // A and B co-attend s0, s1; B also attends s2 (candidate for A).
        db.check_in(users[0], sessions[0]).unwrap();
        db.check_in(users[0], sessions[1]).unwrap();
        db.check_in(users[1], sessions[0]).unwrap();
        db.check_in(users[1], sessions[1]).unwrap();
        db.check_in(users[1], sessions[2]).unwrap();
        // C attends only s3.
        db.check_in(users[2], sessions[3]).unwrap();
        (db, users, sessions)
    }

    #[test]
    fn similar_users_found() {
        let (db, users, _) = world();
        let cf = CfModel::build(&db);
        let sims = cf.similar_users(users[0], 5);
        assert_eq!(sims[0].0, users[1], "B most similar to A");
        assert!(sims.iter().all(|(u, _)| *u != users[2]), "C shares nothing");
    }

    #[test]
    fn user_based_recommends_unseen_coattended() {
        let (db, users, sessions) = world();
        let cf = CfModel::build(&db);
        let recs = cf.recommend_user_based(users[0], 3, 5);
        assert!(!recs.is_empty());
        assert_eq!(recs[0].0, Resource::Session(sessions[2]), "B's extra session for A");
        // Never recommend already-seen items.
        assert!(recs.iter().all(|(r, _)| *r != Resource::Session(sessions[0])));
    }

    #[test]
    fn item_based_agrees_on_this_world() {
        let (db, users, sessions) = world();
        let cf = CfModel::build(&db);
        let recs = cf.recommend_item_based(users[0], 5);
        assert!(
            recs.iter().any(|(r, _)| *r == Resource::Session(sessions[2])),
            "{recs:?}"
        );
    }

    #[test]
    fn peer_weighted_uses_trust() {
        let (db, users, sessions) = world();
        let cf = CfModel::build(&db);
        // Trusting only C pushes C's session.
        let recs = cf.recommend_from_peers(users[0], &[(users[2], 1.0)], 5);
        assert_eq!(recs[0].0, Resource::Session(sessions[3]));
        // Empty trust list = nothing.
        assert!(cf.recommend_from_peers(users[0], &[], 5).is_empty());
    }

    #[test]
    fn popularity_baseline() {
        let (db, users, sessions) = world();
        let cf = CfModel::build(&db);
        let recs = cf.recommend_popular(users[2], 5);
        // Most-attended sessions first (s0/s1 have 2 check-ins each).
        assert!(
            recs[0].0 == Resource::Session(sessions[0])
                || recs[0].0 == Resource::Session(sessions[1])
        );
    }

    #[test]
    fn cold_start_user_gets_nothing_personal() {
        let (mut db, _, _) = world();
        let newbie = db.add_user(User::new("N", "Z"));
        let cf = CfModel::build(&db);
        assert!(cf.similar_users(newbie, 3).is_empty());
        assert!(cf.recommend_user_based(newbie, 3, 5).is_empty());
        assert!(cf.recommend_item_based(newbie, 5).is_empty());
        // Popularity still works for cold starts.
        assert!(!cf.recommend_popular(newbie, 5).is_empty());
    }

    #[test]
    fn counts() {
        let (db, _, _) = world();
        let cf = CfModel::build(&db);
        assert_eq!(cf.user_count(), 3);
        assert_eq!(cf.resource_count(), 4);
    }
}
