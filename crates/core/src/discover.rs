//! Context-aware resource discovery, search, ranking, and preview
//! (paper §2.3, Table 1 "Discovery, context- and
//! collaborative-recommendation and preview services").
//!
//! "Hive relies on the underlying integrated context network to filter,
//! summarize, and rank alternatives ... Context-aware ranking and preview
//! services include (a) relevant snippet extraction from documents,
//! (b) key concept extraction for automated annotations, and (c) content
//! summarization."
//!
//! A search blends three signals: query-text match, similarity to the
//! active context vector, and graph activation propagated from the
//! context seeds over the unified knowledge network.

use crate::context::ActivityContext;
use crate::db::index::{DbIndexes, ResourceQuery};
use crate::db::HiveDb;
use crate::ids::{ConferenceId, PaperId, PresentationId, SessionId, UserId};
use crate::knowledge::KnowledgeNetwork;
use crate::ppr::PprCache;
use hive_graph::{NodeId, PprConfig};
use hive_text::keyphrase::{extract_keyphrases, KeyphraseConfig};
use hive_text::snippet::{extract_snippet, SnippetConfig};
use hive_text::tfidf::SparseVector;
use std::collections::HashMap;

/// A searchable resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// A paper.
    Paper(PaperId),
    /// A presentation.
    Presentation(PresentationId),
    /// A session.
    Session(SessionId),
    /// A researcher.
    User(UserId),
}

impl Resource {
    /// Knowledge-network IRI of the resource.
    pub fn iri(&self) -> String {
        match self {
            Resource::Paper(p) => p.iri(),
            Resource::Presentation(p) => p.iri(),
            Resource::Session(s) => s.iri(),
            Resource::User(u) => u.iri(),
        }
    }

    /// Kind label for display.
    pub fn kind(&self) -> &'static str {
        match self {
            Resource::Paper(_) => "paper",
            Resource::Presentation(_) => "presentation",
            Resource::Session(_) => "session",
            Resource::User(_) => "user",
        }
    }
}

/// One ranked search hit with its preview.
#[derive(Clone, Debug)]
pub struct SearchHit {
    /// What was found.
    pub resource: Resource,
    /// Blended relevance score.
    pub score: f64,
    /// Display title.
    pub title: String,
    /// Context-aware snippet, if the resource has body text.
    pub preview: Option<String>,
    /// Key concepts extracted from the resource text.
    pub key_concepts: Vec<String>,
}

/// Search parameters. Build with [`DiscoverConfig::defaults`] and the
/// chainable `with_*` setters:
///
/// ```
/// use hive_core::discover::DiscoverConfig;
/// let cfg = DiscoverConfig::defaults().with_top_k(15).with_include_users(false);
/// assert_eq!(cfg.common.top_k, 15);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DiscoverConfig {
    /// Shared result-count / context fields (`common.top_k` = hits to
    /// return).
    pub common: crate::config::CommonConfig,
    /// Weight of the query-match signal.
    pub query_weight: f64,
    /// Weight of the context-similarity signal.
    pub context_weight: f64,
    /// Weight of the graph-activation signal.
    pub graph_weight: f64,
    /// Include user profiles among results.
    pub include_users: bool,
    /// Key concepts per preview.
    pub concepts_per_hit: usize,
    /// Restrict hits to one conference edition.
    pub venue: Option<ConferenceId>,
    /// Restrict hits to content authored (or chaired) by one user.
    pub author: Option<UserId>,
}

impl DiscoverConfig {
    /// The documented baseline: 10 hits, signal weights 0.5 query /
    /// 0.3 context / 0.2 graph, user profiles included, 3 key concepts
    /// per preview.
    pub fn defaults() -> Self {
        DiscoverConfig {
            common: crate::config::CommonConfig::defaults(10),
            query_weight: 0.5,
            context_weight: 0.3,
            graph_weight: 0.2,
            include_users: true,
            concepts_per_hit: 3,
            venue: None,
            author: None,
        }
    }

    /// Sets the number of hits to return.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.common.top_k = k;
        self
    }

    /// Sets the activity-context construction parameters.
    pub fn with_context(mut self, cfg: crate::context::ContextConfig) -> Self {
        self.common.context = cfg;
        self
    }

    /// Sets the query-match signal weight.
    pub fn with_query_weight(mut self, w: f64) -> Self {
        self.query_weight = w;
        self
    }

    /// Sets the context-similarity signal weight.
    pub fn with_context_weight(mut self, w: f64) -> Self {
        self.context_weight = w;
        self
    }

    /// Sets the graph-activation signal weight.
    pub fn with_graph_weight(mut self, w: f64) -> Self {
        self.graph_weight = w;
        self
    }

    /// Includes or excludes user profiles among results.
    pub fn with_include_users(mut self, yes: bool) -> Self {
        self.include_users = yes;
        self
    }

    /// Sets the number of key concepts extracted per preview.
    pub fn with_concepts_per_hit(mut self, n: usize) -> Self {
        self.concepts_per_hit = n;
        self
    }

    /// Restricts hits to one conference edition (papers published
    /// there, its sessions and their presentations, its attendees).
    pub fn with_venue(mut self, venue: ConferenceId) -> Self {
        self.venue = Some(venue);
        self
    }

    /// Restricts hits to content authored (or chaired) by one user.
    pub fn with_author(mut self, author: UserId) -> Self {
        self.author = Some(author);
        self
    }
}

impl Default for DiscoverConfig {
    fn default() -> Self {
        Self::defaults()
    }
}

fn resource_text(db: &HiveDb, r: Resource) -> String {
    match r {
        Resource::Paper(p) => db.get_paper(p).map(|x| x.text()).unwrap_or_default(),
        Resource::Presentation(p) => db
            .get_presentation(p)
            .map(|x| x.slides_text.clone())
            .unwrap_or_default(),
        Resource::Session(s) => db.get_session(s).map(|x| x.text()).unwrap_or_default(),
        Resource::User(u) => db.get_user(u).map(|x| x.profile_text()).unwrap_or_default(),
    }
}

fn resource_title(db: &HiveDb, r: Resource) -> String {
    match r {
        Resource::Paper(p) => db.get_paper(p).map(|x| x.title.clone()).unwrap_or_default(),
        Resource::Presentation(p) => db
            .get_presentation(p)
            .ok()
            .and_then(|x| db.get_paper(x.paper).ok())
            .map(|x| format!("slides: {}", x.title))
            .unwrap_or_default(),
        Resource::Session(s) => db.get_session(s).map(|x| x.title.clone()).unwrap_or_default(),
        Resource::User(u) => db.get_user(u).map(|x| x.name.clone()).unwrap_or_default(),
    }
}

fn resource_vector(kn: &KnowledgeNetwork, r: Resource) -> Option<&SparseVector> {
    match r {
        Resource::Paper(p) => kn.paper_vectors.get(&p),
        Resource::Presentation(p) => kn.presentation_vectors.get(&p),
        Resource::Session(s) => kn.session_vectors.get(&s),
        Resource::User(u) => kn.user_vectors.get(&u),
    }
}

/// Graph activation per IRI from the context seeds (normalized to max 1).
fn graph_activation(
    kn: &KnowledgeNetwork,
    ppr_cache: &PprCache,
    ctx: &ActivityContext,
) -> HashMap<String, f64> {
    let g = &kn.unified;
    let mut seeds: HashMap<NodeId, f64> = HashMap::new();
    // lint:allow(determinism-taint) -- distinct keys hit distinct nodes; PPR sorts seeds
    for (key, &mass) in &ctx.seeds {
        if let Some(n) = g.node(key) {
            *seeds.entry(n).or_insert(0.0) += mass;
        }
    }
    if seeds.is_empty() {
        return HashMap::new();
    }
    let ppr = ppr_cache.scores(&kn.unified_csr, &seeds, PprConfig::default());
    let max = ppr.iter().cloned().fold(0.0f64, f64::max).max(f64::MIN_POSITIVE);
    g.nodes()
        .filter(|n| ppr[n.index()] > 0.0)
        .map(|n| (g.key(n).to_string(), ppr[n.index()] / max))
        .collect()
}

/// Context-aware search. `query` may be empty, in which case ranking is
/// purely contextual (the recommendation mode of Table 1: "request
/// resource recommendations based on context").
///
/// Candidate resources come from the [`ResourceQuery`] planner: a
/// venue- or author-scoped config walks index postings (`idx.hit`), an
/// unscoped one enumerates the arenas (`idx.scan_fallback`), so
/// unscoped results are unchanged from the retired inline sweep.
pub fn search(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    idx: &DbIndexes,
    ppr_cache: &PprCache,
    ctx: &ActivityContext,
    query: &str,
    cfg: DiscoverConfig,
) -> Vec<SearchHit> {
    let qvec = kn.corpus.vectorize_known(query);
    let activation = graph_activation(kn, ppr_cache, ctx);
    let mut candidates = ResourceQuery::new().with_users(cfg.include_users);
    if let Some(v) = cfg.venue {
        candidates = candidates.at_venue(v);
    }
    if let Some(a) = cfg.author {
        candidates = candidates.by_author(a);
    }
    let mut hits: Vec<SearchHit> = candidates
        .run(db, idx)
        .into_iter()
        .filter_map(|r| {
            let rv = resource_vector(kn, r);
            let q = rv.map(|v| qvec.cosine(v)).unwrap_or(0.0);
            let c = rv.map(|v| ctx.similarity(v)).unwrap_or(0.0);
            let a = activation.get(&r.iri()).copied().unwrap_or(0.0);
            let score = cfg.query_weight * q + cfg.context_weight * c + cfg.graph_weight * a;
            if score <= 0.0 {
                return None;
            }
            Some(SearchHit {
                resource: r,
                score,
                title: resource_title(db, r),
                preview: None,
                key_concepts: Vec::new(),
            })
        })
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.resource.cmp(&b.resource))
    });
    hits.truncate(cfg.common.top_k);
    // Generate previews only for returned hits (lazy, per the perf guide).
    let context_terms: Vec<&str> = ctx.terms.iter().map(String::as_str).collect();
    let query_terms: Vec<&str> = query.split_whitespace().collect();
    for hit in &mut hits {
        let text = resource_text(db, hit.resource);
        if text.is_empty() {
            continue;
        }
        let mut terms = query_terms.clone();
        terms.extend(context_terms.iter());
        hit.preview = extract_snippet(&text, &terms, SnippetConfig::default())
            .filter(|s| s.score > 0.0)
            .map(|s| s.text);
        hit.key_concepts = extract_keyphrases(
            &text,
            KeyphraseConfig { top_k: cfg.concepts_per_hit, ..Default::default() },
        )
        .into_iter()
        .map(|k| k.phrase)
        .collect();
    }
    hits
}

/// Pure contextual recommendation (empty query).
pub fn recommend_resources(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    idx: &DbIndexes,
    ppr_cache: &PprCache,
    ctx: &ActivityContext,
    cfg: DiscoverConfig,
) -> Vec<SearchHit> {
    // With no query, fold its weight into the context signal.
    let cfg = DiscoverConfig {
        query_weight: 0.0,
        context_weight: cfg.context_weight + cfg.query_weight,
        ..cfg
    };
    search(db, kn, idx, ppr_cache, ctx, "", cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{build_context, ContextConfig};
    use crate::model::*;

    fn world() -> (HiveDb, Vec<UserId>, Vec<SessionId>, Vec<PaperId>) {
        let mut db = HiveDb::new();
        let users = vec![
            db.add_user(User::new("Zach", "ASU").with_interests(vec!["tensor streams".into()])),
            db.add_user(User::new("Bob", "MIT").with_interests(vec!["transactions".into()])),
        ];
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        let sessions = vec![
            db.add_session(
                Session::new(conf, "Tensor Streams", "R1")
                    .with_topics(vec!["tensor stream monitoring sketches".into()]),
            )
            .unwrap(),
            db.add_session(
                Session::new(conf, "Transactions", "R2")
                    .with_topics(vec!["transaction concurrency control".into()]),
            )
            .unwrap(),
        ];
        let papers = vec![
            db.add_paper(
                Paper::new("Compressed tensor monitoring", vec![users[0]])
                    .with_abstract(
                        "Compressed sensing sketches monitor tensor streams. \
                         Randomized ensembles detect structural changes quickly.",
                    )
                    .at_venue(conf),
            )
            .unwrap(),
            db.add_paper(
                Paper::new("Snapshot isolation revisited", vec![users[1]])
                    .with_abstract(
                        "Transaction processing with snapshot isolation. \
                         Concurrency control for modern hardware.",
                    )
                    .at_venue(conf),
            )
            .unwrap(),
        ];
        (db, users, sessions, papers)
    }

    #[test]
    fn query_match_ranks_topical_resources_first() {
        let (db, users, _, papers) = world();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        let idx = DbIndexes::build(&db);
        let hits = search(&db, &kn, &idx, &PprCache::new(), &ctx, "tensor stream sketches", DiscoverConfig::default());
        assert!(!hits.is_empty());
        let tensor_pos = hits
            .iter()
            .position(|h| h.resource == Resource::Paper(papers[0]))
            .expect("tensor paper found");
        let txn_pos = hits.iter().position(|h| h.resource == Resource::Paper(papers[1]));
        if let Some(tp) = txn_pos {
            assert!(tensor_pos < tp, "tensor paper before transaction paper");
        }
    }

    #[test]
    fn previews_and_concepts_attached() {
        let (db, users, ..) = world();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        let idx = DbIndexes::build(&db);
        let hits = search(&db, &kn, &idx, &PprCache::new(), &ctx, "compressed sensing", DiscoverConfig::default());
        let paper_hit = hits
            .iter()
            .find(|h| matches!(h.resource, Resource::Paper(_)))
            .expect("paper hit");
        assert!(paper_hit.preview.is_some(), "snippet preview generated");
        assert!(
            paper_hit
                .preview
                .as_deref()
                .map(|p| p.to_lowercase().contains("compressed"))
                .unwrap_or(false),
            "snippet covers the query: {:?}",
            paper_hit.preview
        );
        assert!(!paper_hit.key_concepts.is_empty(), "key concepts extracted");
        assert!(!paper_hit.title.is_empty());
    }

    #[test]
    fn context_steers_empty_query_recommendations() {
        let (mut db, users, sessions, papers) = world();
        // Zach's active pad holds the transactions session: context flips.
        let pad = db.create_workpad(users[0], "txn").unwrap();
        db.workpad_add(users[0], pad, WorkpadItem::Session(sessions[1])).unwrap();
        db.workpad_add(users[0], pad, WorkpadItem::Paper(papers[1])).unwrap();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        let idx = DbIndexes::build(&db);
        let hits = recommend_resources(&db, &kn, &idx, &PprCache::new(), &ctx, DiscoverConfig::default());
        let txn = hits
            .iter()
            .position(|h| h.resource == Resource::Session(sessions[1]))
            .expect("txn session recommended");
        let tensor = hits.iter().position(|h| h.resource == Resource::Session(sessions[0]));
        if let Some(tp) = tensor {
            assert!(txn < tp, "workpad context must dominate profile interests");
        }
    }

    #[test]
    fn user_inclusion_toggle() {
        let (db, users, ..) = world();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        let idx = DbIndexes::build(&db);
        let with = search(&db, &kn, &idx, &PprCache::new(), &ctx, "tensor", DiscoverConfig::default());
        let without = search(
            &db,
            &kn,
            &idx,
            &PprCache::new(),
            &ctx,
            "tensor",
            DiscoverConfig::defaults().with_include_users(false),
        );
        assert!(without.iter().all(|h| !matches!(h.resource, Resource::User(_))));
        assert!(with.len() >= without.len());
    }

    #[test]
    fn top_k_and_ordering() {
        let (db, users, ..) = world();
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, users[0], ContextConfig::default());
        let idx = DbIndexes::build(&db);
        let hits = search(
            &db,
            &kn,
            &idx,
            &PprCache::new(),
            &ctx,
            "tensor",
            DiscoverConfig::defaults().with_top_k(2),
        );
        assert!(hits.len() <= 2);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
