//! Trending analysis over live conference activity.
//!
//! The use scenario's social cue — "Zach notices that a few of the
//! researchers he is following are checking into a session on large
//! scale graph processing" — generalizes to platform-wide signals: which
//! sessions are *hot* right now, and which topics are *rising* compared
//! to the previous window. Both feed the discovery services and the
//! Figure 1 platform view.

use crate::clock::Timestamp;
use crate::db::HiveDb;
use crate::ids::SessionId;
use crate::model::QaTarget;
use hive_text::tokenize::tokenize_filtered;
use std::collections::HashMap;

/// Activity weights for the session heat score.
#[derive(Clone, Copy, Debug)]
pub struct HeatWeights {
    /// A check-in.
    pub checkin: f64,
    /// A question (strongest engagement signal).
    pub question: f64,
    /// An answer.
    pub answer: f64,
    /// A comment.
    pub comment: f64,
    /// A bridge tweet.
    pub tweet: f64,
}

impl Default for HeatWeights {
    fn default() -> Self {
        HeatWeights { checkin: 1.0, question: 2.0, answer: 1.5, comment: 1.0, tweet: 0.5 }
    }
}

/// Sessions ranked by weighted activity inside `[from, to)`.
pub fn trending_sessions(
    db: &HiveDb,
    from: Timestamp,
    to: Timestamp,
    k: usize,
    w: HeatWeights,
) -> Vec<(SessionId, f64)> {
    let mut heat: HashMap<SessionId, f64> = HashMap::new();
    let in_window = |t: Timestamp| t >= from && t < to;
    for s in db.session_ids() {
        for ci in db.checkins_in(s) {
            if in_window(ci.at) {
                *heat.entry(s).or_insert(0.0) += w.checkin;
            }
        }
        for &tid in db.tweets_in(s) {
            if db.get_tweet(tid).map(|t| in_window(t.at)).unwrap_or(false) {
                *heat.entry(s).or_insert(0.0) += w.tweet;
            }
        }
    }
    for q in db.question_ids() {
        let Ok(question) = db.get_question(q) else { continue; };
        let session = match question.target {
            QaTarget::Presentation(p) => match db.get_presentation(p) {
                Ok(pres) => pres.session,
                Err(_) => continue,
            },
            QaTarget::Session(s) => s,
        };
        if in_window(question.asked_at) {
            *heat.entry(session).or_insert(0.0) += w.question;
        }
        for &aid in db.answers_to(q) {
            let Ok(answer) = db.get_answer(aid) else { continue; };
            if in_window(answer.answered_at) {
                *heat.entry(session).or_insert(0.0) += w.answer;
            }
        }
    }
    // lint:allow(determinism-taint) -- total order with id tiebreak on the next line
    let mut out: Vec<(SessionId, f64)> = heat.into_iter().filter(|(_, h)| *h > 0.0).collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out.truncate(k);
    out
}

/// Term frequencies over all discussion text (questions, answers,
/// comments, tweets) inside a window.
fn discussion_terms(db: &HiveDb, from: Timestamp, to: Timestamp) -> HashMap<String, usize> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    let in_window = |t: Timestamp| t >= from && t < to;
    let bump = |counts: &mut HashMap<String, usize>, text: &str| {
        for tok in tokenize_filtered(text) {
            *counts.entry(tok).or_insert(0) += 1;
        }
    };
    for q in db.question_ids() {
        let Ok(question) = db.get_question(q) else { continue; };
        if in_window(question.asked_at) {
            bump(&mut counts, &question.text);
        }
        for &aid in db.answers_to(q) {
            let Ok(answer) = db.get_answer(aid) else { continue; };
            if in_window(answer.answered_at) {
                bump(&mut counts, &answer.text);
            }
        }
    }
    for s in db.session_ids() {
        for &tid in db.tweets_in(s) {
            let Ok(tweet) = db.get_tweet(tid) else { continue; };
            if in_window(tweet.at) {
                bump(&mut counts, &tweet.text);
            }
        }
    }
    counts
}

/// Topics whose discussion frequency rose the most from the previous
/// window to the current one. Score = smoothed lift `(cur + 1) / (prev +
/// 1)` weighted by the current count (so one-off terms don't dominate);
/// only terms with `cur >= min_count` are reported.
pub fn rising_topics(
    db: &HiveDb,
    prev: (Timestamp, Timestamp),
    cur: (Timestamp, Timestamp),
    k: usize,
    min_count: usize,
) -> Vec<(String, f64)> {
    let before = discussion_terms(db, prev.0, prev.1);
    let now = discussion_terms(db, cur.0, cur.1);
    let mut out: Vec<(String, f64)> = now
        .into_iter()
        .filter(|(_, c)| *c >= min_count.max(1))
        .map(|(term, c)| {
            let p = before.get(&term).copied().unwrap_or(0);
            let lift = (c as f64 + 1.0) / (p as f64 + 1.0);
            (term, lift * (c as f64).sqrt())
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::*;

    fn world() -> (HiveDb, Vec<crate::ids::UserId>, Vec<SessionId>) {
        let mut db = HiveDb::new();
        let users = vec![
            db.add_user(User::new("A", "X")),
            db.add_user(User::new("B", "X")),
            db.add_user(User::new("C", "Y")),
        ];
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        let sessions = vec![
            db.add_session(Session::new(conf, "Hot", "R1")).unwrap(),
            db.add_session(Session::new(conf, "Quiet", "R2")).unwrap(),
        ];
        (db, users, sessions)
    }

    #[test]
    fn busy_session_tops_the_ranking() {
        let (mut db, users, sessions) = world();
        db.advance_clock(5);
        for &u in &users {
            db.check_in(u, sessions[0]).unwrap();
        }
        db.check_in(users[0], sessions[1]).unwrap();
        let q = db
            .ask_question(users[1], QaTarget::Session(sessions[0]), "why so hot?", true)
            .unwrap();
        db.answer_question(users[2], q, "because questions").unwrap();
        let top = trending_sessions(&db, Timestamp(0), Timestamp(u64::MAX), 5, HeatWeights::default());
        assert_eq!(top[0].0, sessions[0]);
        assert!(top[0].1 > top[1].1);
        // Heat: 3 checkins + question(2) + answer(1.5) + tweet(0.5) = 7.
        assert!((top[0].1 - 7.0).abs() < 1e-9, "got {}", top[0].1);
    }

    #[test]
    fn window_filters_heat() {
        let (mut db, users, sessions) = world();
        db.advance_clock(5);
        db.check_in(users[0], sessions[0]).unwrap();
        db.advance_clock(100);
        db.check_in(users[1], sessions[1]).unwrap();
        let early = trending_sessions(&db, Timestamp(0), Timestamp(50), 5, HeatWeights::default());
        assert_eq!(early.len(), 1);
        assert_eq!(early[0].0, sessions[0]);
        let late = trending_sessions(&db, Timestamp(50), Timestamp(u64::MAX), 5, HeatWeights::default());
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].0, sessions[1]);
    }

    #[test]
    fn rising_topics_detect_the_shift() {
        let (mut db, users, sessions) = world();
        // Window 1: transactions chatter.
        db.advance_clock(5);
        for _ in 0..3 {
            db.ask_question(
                users[0],
                QaTarget::Session(sessions[0]),
                "transaction isolation concurrency question",
                false,
            )
            .unwrap();
        }
        // Window 2: tensors take over.
        db.advance_clock(100);
        for _ in 0..4 {
            db.ask_question(
                users[1],
                QaTarget::Session(sessions[0]),
                "tensor sketch ensembles question",
                false,
            )
            .unwrap();
        }
        let rising = rising_topics(
            &db,
            (Timestamp(0), Timestamp(50)),
            (Timestamp(50), Timestamp(u64::MAX)),
            5,
            2,
        );
        assert!(!rising.is_empty());
        let terms: Vec<&str> = rising.iter().map(|(t, _)| t.as_str()).collect();
        assert!(
            terms.contains(&"tensor") || terms.contains(&"sketch"),
            "tensor terms should rise: {terms:?}"
        );
        assert!(
            !terms.contains(&"transact"),
            "old-window terms are not rising: {terms:?}"
        );
    }

    #[test]
    fn empty_windows_are_quiet() {
        let (db, ..) = world();
        assert!(trending_sessions(&db, Timestamp(0), Timestamp(u64::MAX), 5, HeatWeights::default()).is_empty());
        assert!(rising_topics(&db, (Timestamp(0), Timestamp(1)), (Timestamp(1), Timestamp(2)), 5, 1).is_empty());
    }
}
