//! The `Hive` service facade — every service of the paper's Table 1
//! behind one typed API.
//!
//! | Table 1 row | Methods |
//! |---|---|
//! | Concept map & personalization | [`Hive::bootstrap_concepts`], [`Hive::activity_context`] |
//! | Peer network services | [`Hive::recommend_peers`], [`Hive::similar_peers`], [`Hive::request_connection`], [`Hive::respond_connection`], [`Hive::follow`] |
//! | Discovery / recommendation / preview | [`Hive::search`], [`Hive::recommend_resources`], [`Hive::explain_relationship`], [`Hive::discover_communities`], [`Hive::collaborative_recommendations`], [`Hive::update_report`] |
//! | Personal activity history | [`Hive::search_history`], [`Hive::timeline`] |
//!
//! The facade owns the [`HiveDb`] and lazily maintains the derived
//! [`KnowledgeNetwork`]: any mutation invalidates the cache; the next
//! knowledge-backed call rebuilds it. (A production deployment would
//! update incrementally; rebuild-on-dirty keeps the semantics obvious
//! and is plenty fast at demo scale.)
//!
//! Every public service entry point routes through the instrumented
//! [`Hive::service`] / [`Hive::service_mut`] choke point (enforced by
//! lint rule R7): one place opens the `hive-obs` span, stamps logical
//! enter/exit ticks, and bumps the per-[`ServiceKind`] counters — and
//! the one place where admission control would later live. Observability
//! is recording-only: with `HIVE_OBS=off` (the default) the choke point
//! is a plain closure call and results are bit-identical to `full`.

use crate::clock::Timestamp;
use crate::collab::CfModel;
use crate::communities::{self, Communities, Method};
use crate::context::{build_context, ActivityContext, ContextConfig};
use crate::db::index::DbIndexes;
use crate::db::HiveDb;
use crate::discover::{DiscoverConfig, Resource, SearchHit};
use crate::error::Result;
use crate::evidence::RelationshipExplanation;
use crate::feed::{self, FeedDigest, Update};
use crate::history::{self, HistoryHit, HistoryQuery};
use crate::ids::*;
use crate::knowledge::KnowledgeNetwork;
use crate::model::{Paper, Presentation, QaTarget, User, WorkpadItem};
use crate::peers::{self, PeerRecConfig, PeerRecommendation};
use crate::ppr::PprCache;
use crate::reports::{self, ReportScope, UpdateReport};
use hive_concept::{bootstrap_concept_map, BootstrapConfig, ConceptMap};
use hive_obs::ServiceKind;
use std::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Generation-stamped relationship-graph snapshot: the `rel:*` triple
/// export of the knowledge network plus its [`hive_store::GraphView`]
/// CSR adjacency, built once per database generation so repeated
/// explanation queries skip both the export and the store scan. When
/// the generation moves by patchable mutations only, the snapshot is
/// delta-patched in place instead of rebuilt (see
/// [`Hive::relationship_graph`]).
#[derive(Clone)]
pub(crate) struct RelSnapshot {
    pub(crate) generation: u64,
    pub(crate) store: hive_store::TripleStore,
    pub(crate) view: hive_store::GraphView,
}

/// The journaled mutation suffix since `since`, provided the whole
/// window is patchable: the journal still covers it and no structural
/// mutation (entity creation, content revision) occurred. Copied out so
/// callers can patch cached structures while the borrow on the journal
/// is released.
pub(crate) fn patchable_deltas(db: &HiveDb, since: u64) -> Option<Vec<crate::db::DbDelta>> {
    let deltas = db.deltas_since(since)?;
    if deltas.iter().any(|d| d.is_structural()) {
        return None;
    }
    Some(deltas.to_vec())
}

/// Recovers the guard from a possibly poisoned `lock()` result. The
/// caches hold derived, generation-stamped values: a panic mid-update
/// leaves at worst a stale entry, which the generation check rejects —
/// so poisoning is recoverable by construction, in one place instead
/// of four copy-pasted `match` blocks.
pub(crate) fn unpoison<T>(res: std::sync::LockResult<std::sync::MutexGuard<'_, T>>) -> std::sync::MutexGuard<'_, T> {
    match res {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The Hive platform facade.
pub struct Hive {
    db: HiveDb,
    kn_cache: Mutex<Option<(u64, Arc<KnowledgeNetwork>)>>,
    rel_cache: Mutex<Option<Arc<RelSnapshot>>>,
    idx_cache: Mutex<Option<Arc<DbIndexes>>>,
    ppr_cache: Mutex<Option<(u64, Arc<PprCache>)>>,
}

impl Hive {
    /// Wraps a (possibly pre-populated) platform database.
    pub fn new(db: HiveDb) -> Self {
        Hive {
            db,
            kn_cache: Mutex::new(None),
            rel_cache: Mutex::new(None),
            idx_cache: Mutex::new(None),
            ppr_cache: Mutex::new(None),
        }
    }

    /// Read access to the platform database.
    pub fn db(&self) -> &HiveDb {
        &self.db
    }

    /// Write access to the database. The derived caches (knowledge
    /// network, relationship-graph snapshot) are generation-stamped and
    /// delta-maintained, so mutations need no explicit invalidation:
    /// the next knowledge-backed call consumes
    /// [`HiveDb::deltas_since`] and patches the cached structures in
    /// place (or rebuilds on structural change).
    ///
    /// Internal plumbing: external callers should use the typed
    /// mutation methods ([`Hive::add_user`], [`Hive::workpad_note`],
    /// [`Hive::advance_clock`], ...), which route through the
    /// instrumented choke point.
    // lint:mutator(HiveDb)
    #[doc(hidden)]
    pub fn db_mut(&mut self) -> &mut HiveDb {
        &mut self.db
    }

    /// Runs a read-only Table-1 service through the instrumented choke
    /// point: opens the service span at the current logical tick, bumps
    /// the per-service call counter, runs `f`, and closes the span.
    /// Durations are *logical* ticks from the injectable clock (lint R3),
    /// so recorded values are deterministic for a given workload.
    pub fn service<T>(&self, kind: ServiceKind, f: impl FnOnce(&Self) -> T) -> T {
        let token = hive_obs::service_enter(kind, self.db.now().ticks());
        let out = f(self);
        hive_obs::service_exit(kind, token, self.db.now().ticks());
        out
    }

    /// Mutating variant of [`Hive::service`]: same span/counter
    /// protocol, `f` gets `&mut Hive` (and typically goes through
    /// [`Hive::db_mut`], which invalidates the derived caches).
    pub fn service_mut<T>(&mut self, kind: ServiceKind, f: impl FnOnce(&mut Self) -> T) -> T {
        let token = hive_obs::service_enter(kind, self.db.now().ticks());
        let out = f(self);
        hive_obs::service_exit(kind, token, self.db.now().ticks());
        out
    }

    /// The current knowledge network.
    ///
    /// Three-tier maintenance, cheapest wins: a generation match is a
    /// pure cache hit (`core.kn.hit`); a generation lag whose
    /// [`HiveDb::deltas_since`] window is free of structural mutations
    /// is patched in place in O(|delta|) (`core.kn.delta`) — bit-
    /// identical to a cold rebuild because fresh builds replay the same
    /// event sequence; anything else rebuilds (`core.kn.miss`).
    pub fn knowledge(&self) -> Arc<KnowledgeNetwork> {
        let generation = self.db.generation();
        // Only the cache probe runs under the lock. A stale value is
        // *taken out* and patched/rebuilt with the guard released, so
        // the critical section never spans a snapshot rebuild (lint
        // R11); the refreshed value is published by re-locking below.
        let stale = {
            let mut guard = unpoison(self.kn_cache.lock());
            if let Some((cached_gen, kn)) = guard.as_ref() {
                if *cached_gen == generation {
                    hive_obs::count("core.kn.hit", 1);
                    return Arc::clone(kn);
                }
            }
            guard.take()
        };
        let patched = stale.and_then(|(cached_gen, mut kn)| {
            let patch = patchable_deltas(&self.db, cached_gen)?;
            let span = hive_obs::span_enter("kn-delta", self.db.now().ticks());
            let net = Arc::make_mut(&mut kn);
            let w = crate::knowledge::FusionWeights::default();
            let mut touched = false;
            for d in &patch {
                touched |= d.touches_graph();
                net.apply_delta(d, &w);
            }
            if touched {
                net.refresh_unified_csr();
            }
            hive_obs::span_exit(span, self.db.now().ticks());
            hive_obs::count("core.kn.delta", 1);
            Some(kn)
        });
        let kn = match patched {
            Some(kn) => kn,
            None => {
                hive_obs::count("core.kn.miss", 1);
                let span = hive_obs::span_enter("kn-build", self.db.now().ticks());
                let kn = Arc::new(KnowledgeNetwork::build(&self.db));
                hive_obs::span_exit(span, self.db.now().ticks());
                kn
            }
        };
        let mut guard = unpoison(self.kn_cache.lock());
        *guard = Some((generation, Arc::clone(&kn)));
        kn
    }

    /// The current relationship-graph snapshot: generation hit, delta
    /// patch (`core.rel.delta` — the triple export is extended with the
    /// missed events, then the CSR view consumes the store's own delta
    /// log), or full rebuild, in that order of preference.
    pub(crate) fn relationship_graph(&self, kn: &KnowledgeNetwork) -> Arc<RelSnapshot> {
        let generation = self.db.generation();
        // Same take-patch-republish protocol as [`Hive::knowledge`]:
        // the guard only ever covers the cache probe and the final
        // publish, never the export or the CSR build (lint R11).
        let stale = {
            let mut guard = unpoison(self.rel_cache.lock());
            if let Some(snap) = guard.as_ref() {
                if snap.generation == generation {
                    hive_obs::count("core.rel.hit", 1);
                    return Arc::clone(snap);
                }
            }
            guard.take()
        };
        let patched = stale.and_then(|mut snap| {
            let patch = patchable_deltas(&self.db, snap.generation)?;
            let span = hive_obs::span_enter("rel-delta", self.db.now().ticks());
            let s = Arc::make_mut(&mut snap);
            for d in &patch {
                crate::knowledge::apply_rel_delta(&mut s.store, d);
            }
            if !s.view.apply_delta(&s.store) {
                s.view = hive_store::GraphView::build(&s.store);
            }
            s.generation = generation;
            hive_obs::span_exit(span, self.db.now().ticks());
            hive_obs::count("core.rel.delta", 1);
            Some(snap)
        });
        let snap = match patched {
            Some(snap) => snap,
            None => {
                hive_obs::count("core.rel.miss", 1);
                let span = hive_obs::span_enter("rel-snapshot-build", self.db.now().ticks());
                let store = kn.to_store(&self.db);
                let view = hive_store::GraphView::build(&store);
                hive_obs::span_exit(span, self.db.now().ticks());
                Arc::new(RelSnapshot { generation, store, view })
            }
        };
        let mut guard = unpoison(self.rel_cache.lock());
        *guard = Some(Arc::clone(&snap));
        snap
    }

    /// The current secondary-index set, under the same three-tier
    /// maintenance as [`Hive::knowledge`]: generation hit
    /// (`core.idx.hit`), in-place suffix patch via `Arc::make_mut`
    /// (`core.idx.delta` — arenas are append-only, so *every*
    /// journal-covered lag is patchable, structural or not), else a
    /// cold [`DbIndexes::build`] (`core.idx.miss`). The build runs with
    /// the guard released (lint R11) and is republished by re-locking.
    pub fn indexes(&self) -> Arc<DbIndexes> {
        let generation = self.db.generation();
        let stale = {
            let mut guard = unpoison(self.idx_cache.lock());
            if let Some(idx) = guard.as_ref() {
                if idx.generation() == generation {
                    hive_obs::count("core.idx.hit", 1);
                    return Arc::clone(idx);
                }
            }
            guard.take()
        };
        let patched = stale.and_then(|mut idx| {
            let span = hive_obs::span_enter("idx-delta", self.db.now().ticks());
            let ok = Arc::make_mut(&mut idx).patch(&self.db);
            hive_obs::span_exit(span, self.db.now().ticks());
            if !ok {
                return None;
            }
            hive_obs::count("core.idx.delta", 1);
            Some(idx)
        });
        let idx = match patched {
            Some(idx) => idx,
            None => {
                hive_obs::count("core.idx.miss", 1);
                let span = hive_obs::span_enter("idx-build", self.db.now().ticks());
                let idx = Arc::new(DbIndexes::build(&self.db));
                hive_obs::span_exit(span, self.db.now().ticks());
                idx
            }
        };
        let mut guard = unpoison(self.idx_cache.lock());
        *guard = Some(Arc::clone(&idx));
        idx
    }

    /// The current PPR memo tier — the fourth generation-keyed snapshot
    /// cache, maintained like [`Hive::knowledge`]: a generation match
    /// reuses the memo as-is (`core.ppr.hit`); a journal-covered lag is
    /// patched forward under `Arc::make_mut` (`core.ppr.delta`) —
    /// graph-touching deltas clear the memoized score vectors in
    /// O(delta) while neutral ones keep them, since memo entries are
    /// exact solves against one graph snapshot; anything else starts a
    /// fresh tier (`core.ppr.miss`). Every PPR-backed service (peer
    /// recommendation, contextual search, resource recommendation)
    /// resolves its canonicalized seed distribution through this cache,
    /// so repeated queries per generation solve the power iteration
    /// once and stay bit-identical to a cold run.
    pub fn ppr(&self) -> Arc<PprCache> {
        let generation = self.db.generation();
        let stale = {
            let mut guard = unpoison(self.ppr_cache.lock());
            if let Some((cached_gen, cache)) = guard.as_ref() {
                if *cached_gen == generation {
                    hive_obs::count("core.ppr.hit", 1);
                    return Arc::clone(cache);
                }
            }
            guard.take()
        };
        let patched = stale.and_then(|(cached_gen, mut cache)| {
            let patch = patchable_deltas(&self.db, cached_gen)?;
            let span = hive_obs::span_enter("ppr-delta", self.db.now().ticks());
            if patch.iter().any(|d| d.touches_graph()) {
                Arc::make_mut(&mut cache).clear();
            }
            hive_obs::span_exit(span, self.db.now().ticks());
            hive_obs::count("core.ppr.delta", 1);
            Some(cache)
        });
        let cache = match patched {
            Some(cache) => cache,
            None => {
                hive_obs::count("core.ppr.miss", 1);
                Arc::new(PprCache::new())
            }
        };
        let mut guard = unpoison(self.ppr_cache.lock());
        *guard = Some((generation, Arc::clone(&cache)));
        cache
    }

    // ---- concept map & personalization services ---------------------------

    /// Bootstraps a concept map from user-supplied documents (§2.1).
    pub fn bootstrap_concepts(&self, name: &str, documents: &[&str]) -> ConceptMap {
        self.service(ServiceKind::ConceptBootstrap, |_| {
            bootstrap_concept_map(name, documents, BootstrapConfig::default())
        })
    }

    /// The user's current activity context (active workpad + history).
    pub fn activity_context(&self, user: UserId) -> ActivityContext {
        self.service(ServiceKind::ActivityContext, |h| {
            build_context(&h.db, &h.knowledge(), user, ContextConfig::default())
        })
    }

    // ---- peer network services ---------------------------------------------

    /// Recommends new peers, contextualized by the active workpad.
    pub fn recommend_peers(&self, user: UserId, cfg: PeerRecConfig) -> Vec<PeerRecommendation> {
        self.service(ServiceKind::PeerRecommendation, |h| {
            crate::serve::read_recommend_peers(&h.db, &h.knowledge(), &h.ppr(), user, cfg)
        })
    }

    /// Locates peers with the most similar content profile.
    pub fn similar_peers(&self, user: UserId, k: usize) -> Vec<(UserId, f64)> {
        self.service(ServiceKind::SimilarPeers, |h| {
            crate::serve::read_similar_peers(&h.db, &h.knowledge(), user, k)
        })
    }

    /// Predicts the sessions a researcher will likely attend.
    pub fn predict_sessions(&self, user: UserId, k: usize) -> Vec<(SessionId, f64)> {
        self.service(ServiceKind::SessionPrediction, |h| {
            peers::predict_sessions(&h.db, &h.knowledge(), user, k)
        })
    }

    /// Sends a connection request.
    pub fn request_connection(&mut self, from: UserId, to: UserId) -> Result<()> {
        self.service_mut(ServiceKind::ConnectionManagement, |h| {
            h.db_mut().request_connection(from, to)
        })
    }

    /// Accepts or declines a pending connection request.
    pub fn respond_connection(&mut self, to: UserId, from: UserId, accept: bool) -> Result<()> {
        self.service_mut(ServiceKind::ConnectionManagement, |h| {
            h.db_mut().respond_connection(to, from, accept)
        })
    }

    /// Starts following another researcher.
    pub fn follow(&mut self, follower: UserId, followee: UserId) -> Result<()> {
        self.service_mut(ServiceKind::FollowManagement, |h| h.db_mut().follow(follower, followee))
    }

    /// Restricts which of a followee's activity categories reach this
    /// follower ("the set of ... activities he would like to follow").
    pub fn set_follow_filter(
        &mut self,
        follower: UserId,
        followee: UserId,
        categories: Vec<String>,
    ) -> Result<()> {
        self.service_mut(ServiceKind::FollowManagement, |h| {
            h.db_mut().set_follow_filter(follower, followee, categories)
        })
    }

    // ---- discovery, recommendation, preview ---------------------------------

    /// Context-aware search over papers, presentations, sessions, users.
    pub fn search(&self, user: UserId, query: &str, cfg: DiscoverConfig) -> Vec<SearchHit> {
        self.service(ServiceKind::Search, |h| {
            crate::serve::read_search(&h.db, &h.knowledge(), &h.indexes(), &h.ppr(), user, query, cfg)
        })
    }

    /// Pure contextual resource recommendation (empty query).
    pub fn recommend_resources(&self, user: UserId, cfg: DiscoverConfig) -> Vec<SearchHit> {
        self.service(ServiceKind::ResourceRecommendation, |h| {
            crate::serve::read_recommend_resources(&h.db, &h.knowledge(), &h.indexes(), &h.ppr(), user, cfg)
        })
    }

    /// Collaborative-filtering recommendations from the activity matrix.
    pub fn collaborative_recommendations(&self, user: UserId, k: usize) -> Vec<(Resource, f64)> {
        self.service(ServiceKind::CollaborativeFiltering, |h| {
            let cf = CfModel::build(&h.db);
            cf.recommend_user_based(user, 10, k)
        })
    }

    /// Figure 2: relationship discovery and explanation between peers.
    /// The underlying `rel:*` store and its CSR view are cached per
    /// database generation, so repeated explanations only pay for the
    /// path search itself.
    pub fn explain_relationship(&self, a: UserId, b: UserId) -> RelationshipExplanation {
        self.service(ServiceKind::RelationshipExplanation, |h| {
            let kn = h.knowledge();
            let rel = h.relationship_graph(&kn);
            crate::serve::read_explain(&h.db, &kn, &rel, a, b)
        })
    }

    /// Community discovery over the social + co-authorship layers.
    pub fn discover_communities(&self) -> Communities {
        self.service(ServiceKind::CommunityDiscovery, |h| {
            communities::discover(&h.knowledge(), Method::Louvain)
        })
    }

    /// Context-aware extractive summary of a resource's text (the §2.3
    /// "content summarization" service): the summary is biased toward the
    /// user's current activity context.
    pub fn summarize_resource(
        &self,
        user: UserId,
        resource: Resource,
        sentences: usize,
    ) -> Option<hive_text::DocumentSummary> {
        self.service(ServiceKind::Summarization, |h| {
            crate::serve::read_summarize(&h.db, &h.knowledge(), user, resource, sentences)
        })
    }

    /// Scheduled, size-constrained update report (AlphaSum-backed).
    pub fn update_report(
        &self,
        scope: &ReportScope,
        from: Timestamp,
        to: Timestamp,
        max_rows: usize,
    ) -> UpdateReport {
        self.service(ServiceKind::UpdateReport, |h| {
            reports::update_report(&h.db, &h.indexes(), scope, from, to, max_rows)
        })
    }

    /// Sessions ranked by live activity in a window.
    pub fn trending_sessions(
        &self,
        from: Timestamp,
        to: Timestamp,
        k: usize,
    ) -> Vec<(SessionId, f64)> {
        self.service(ServiceKind::Trends, |h| {
            crate::trends::trending_sessions(
                &h.db,
                from,
                to,
                k,
                crate::trends::HeatWeights::default(),
            )
        })
    }

    /// Topics whose discussion rose the most between two windows.
    pub fn rising_topics(
        &self,
        prev: (Timestamp, Timestamp),
        cur: (Timestamp, Timestamp),
        k: usize,
    ) -> Vec<(String, f64)> {
        self.service(ServiceKind::Trends, |h| crate::trends::rising_topics(&h.db, prev, cur, k, 2))
    }

    // ---- feeds ---------------------------------------------------------------

    /// Real-time updates for a user since a timestamp.
    pub fn updates_for(&self, user: UserId, since: Timestamp) -> Vec<Update> {
        self.service(ServiceKind::Feed, |h| feed::updates_for(&h.db, &h.indexes(), user, since))
    }

    /// Context-ranked highlights over the update stream.
    pub fn highlights(&self, user: UserId, since: Timestamp, k: usize) -> Vec<(Update, f64)> {
        self.service(ServiceKind::Feed, |h| {
            crate::serve::read_highlights(&h.db, &h.knowledge(), &h.indexes(), user, since, k)
        })
    }

    /// Digest (updates + per-category counts).
    pub fn digest(&self, user: UserId, since: Timestamp) -> FeedDigest {
        self.service(ServiceKind::Feed, |h| feed::digest(&h.db, &h.indexes(), user, since))
    }

    /// The merged Hive/Twitter timeline of a session.
    pub fn session_ticker(&self, session: SessionId, since: Timestamp) -> Vec<String> {
        self.service(ServiceKind::Feed, |h| feed::session_ticker(&h.db, session, since))
    }

    // ---- activity history ------------------------------------------------------

    /// Searches the activity history, optionally context-ranked.
    pub fn search_history(&self, query: &HistoryQuery, contextual_for: Option<UserId>) -> Vec<HistoryHit> {
        self.service(ServiceKind::HistorySearch, |h| {
            crate::serve::read_search_history(&h.db, &h.knowledge(), &h.indexes(), query, contextual_for)
        })
    }

    /// Bucketed activity timeline for visualization.
    pub fn timeline(
        &self,
        actors: &[UserId],
        bucket_width: u64,
    ) -> Vec<(Timestamp, HashMap<&'static str, usize>)> {
        self.service(ServiceKind::Timeline, |h| history::timeline(&h.db, &h.indexes(), actors, bucket_width))
    }

    // ---- content & workpad conveniences ------------------------------------------

    /// Uploads/revises, asks, answers — thin delegations that keep the
    /// cache coherent.
    pub fn ask_question(
        &mut self,
        author: UserId,
        target: QaTarget,
        text: &str,
        broadcast: bool,
    ) -> Result<QuestionId> {
        self.service_mut(ServiceKind::QuestionAnswering, |h| {
            h.db_mut().ask_question(author, target, text, broadcast)
        })
    }

    /// Answers a question.
    pub fn answer_question(&mut self, author: UserId, q: QuestionId, text: &str) -> Result<AnswerId> {
        self.service_mut(ServiceKind::QuestionAnswering, |h| {
            h.db_mut().answer_question(author, q, text)
        })
    }

    /// Checks into a session.
    pub fn check_in(&mut self, user: UserId, session: SessionId) -> Result<()> {
        self.service_mut(ServiceKind::CheckIn, |h| h.db_mut().check_in(user, session))
    }

    /// Creates a workpad.
    pub fn create_workpad(&mut self, owner: UserId, name: &str) -> Result<WorkpadId> {
        self.service_mut(ServiceKind::Workpad, |h| h.db_mut().create_workpad(owner, name))
    }

    /// Drops an item onto a workpad.
    pub fn workpad_add(&mut self, user: UserId, pad: WorkpadId, item: WorkpadItem) -> Result<()> {
        self.service_mut(ServiceKind::Workpad, |h| h.db_mut().workpad_add(user, pad, item))
    }

    /// Attaches a free-text note to a workpad.
    pub fn workpad_note(
        &mut self,
        user: UserId,
        pad: WorkpadId,
        text: impl Into<String>,
    ) -> Result<WorkpadItem> {
        self.service_mut(ServiceKind::Workpad, |h| h.db_mut().workpad_note(user, pad, text))
    }

    /// Removes an item from a workpad.
    pub fn workpad_remove(
        &mut self,
        user: UserId,
        pad: WorkpadId,
        item: &WorkpadItem,
    ) -> Result<()> {
        self.service_mut(ServiceKind::Workpad, |h| h.db_mut().workpad_remove(user, pad, item))
    }

    /// Switches the active workpad (and therefore the context).
    pub fn activate_workpad(&mut self, user: UserId, pad: WorkpadId) -> Result<()> {
        self.service_mut(ServiceKind::Workpad, |h| h.db_mut().activate_workpad(user, pad))
    }

    /// Exports a workpad as a shared collection.
    pub fn export_workpad(&mut self, user: UserId, pad: WorkpadId) -> Result<CollectionId> {
        self.service_mut(ServiceKind::Workpad, |h| h.db_mut().export_workpad(user, pad))
    }

    /// Imports a shared collection as the active workpad.
    pub fn import_collection(&mut self, user: UserId, col: CollectionId) -> Result<WorkpadId> {
        self.service_mut(ServiceKind::Workpad, |h| h.db_mut().import_collection(user, col))
    }

    /// Serializes a shared collection to JSON — the paper's "export
    /// workpads as collections accessible to others" across deployments.
    pub fn export_collection_json(&self, col: CollectionId) -> Result<String> {
        self.service(ServiceKind::Workpad, |h| {
            let c = h.db.get_collection(col)?;
            Ok(hive_json::to_string(c))
        })
    }

    /// Imports a JSON collection export for `user`: validates every item
    /// against this platform, registers the collection, and activates it
    /// as a fresh workpad.
    pub fn import_collection_json(&mut self, user: UserId, json: &str) -> Result<WorkpadId> {
        self.service_mut(ServiceKind::Workpad, |h| {
            let mut col: crate::model::Collection = hive_json::from_str(json)
                .map_err(|e| crate::error::HiveError::Invalid(format!("parse: {e}")))?;
            // The importing user owns their copy.
            col.owner = user;
            let db = h.db_mut();
            let id = db.add_collection(col)?;
            db.import_collection(user, id)
        })
    }

    // ---- ingest, engagement & platform administration -------------------------

    /// Advances the logical platform clock by `dt` ticks.
    pub fn advance_clock(&mut self, dt: u64) -> Timestamp {
        self.service_mut(ServiceKind::Admin, |h| h.db_mut().advance_clock(dt))
    }

    /// Registers a researcher profile.
    pub fn add_user(&mut self, user: User) -> UserId {
        self.service_mut(ServiceKind::Ingest, |h| h.db_mut().add_user(user))
    }

    /// Uploads a paper.
    pub fn add_paper(&mut self, paper: Paper) -> Result<PaperId> {
        self.service_mut(ServiceKind::Ingest, |h| h.db_mut().add_paper(paper))
    }

    /// Uploads a presentation (slides attached to a paper + session).
    pub fn add_presentation(&mut self, pres: Presentation) -> Result<PresentationId> {
        self.service_mut(ServiceKind::Ingest, |h| h.db_mut().add_presentation(pres))
    }

    /// Revises the slides of an existing presentation.
    pub fn revise_slides(
        &mut self,
        user: UserId,
        pres: PresentationId,
        text: impl Into<String>,
    ) -> Result<()> {
        self.service_mut(ServiceKind::Ingest, |h| h.db_mut().revise_slides(user, pres, text))
    }

    /// Comments on a paper, presentation, session, or question.
    pub fn comment(
        &mut self,
        author: UserId,
        target: QaTarget,
        text: impl Into<String>,
    ) -> Result<CommentId> {
        self.service_mut(ServiceKind::Engagement, |h| h.db_mut().comment(author, target, text))
    }

    /// Posts a (possibly external) tweet into a session's stream.
    pub fn post_tweet(
        &mut self,
        author: Option<UserId>,
        handle: impl Into<String>,
        text: impl Into<String>,
        session: SessionId,
    ) -> Result<TweetId> {
        self.service_mut(ServiceKind::Engagement, |h| {
            h.db_mut().post_tweet(author, handle, text, session)
        })
    }

    /// Records that `user` viewed a paper.
    pub fn view_paper(&mut self, user: UserId, paper: PaperId) -> Result<()> {
        self.service_mut(ServiceKind::Engagement, |h| h.db_mut().view_paper(user, paper))
    }

    /// Registers conference attendance.
    pub fn attend(&mut self, user: UserId, conf: ConferenceId) -> Result<()> {
        self.service_mut(ServiceKind::Engagement, |h| h.db_mut().attend(user, conf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, WorldBuilder};

    fn hive() -> Hive {
        Hive::new(WorldBuilder::new(SimConfig::small()).build().db)
    }

    #[test]
    fn knowledge_cache_rebuilds_on_mutation() {
        let mut h = hive();
        let k1 = h.knowledge();
        let k2 = h.knowledge();
        assert!(Arc::ptr_eq(&k1, &k2), "cache hit");
        let users = h.db().user_ids();
        h.follow(users[0], users[5]).ok();
        let k3 = h.knowledge();
        assert!(!Arc::ptr_eq(&k1, &k3), "mutation invalidates");
    }

    #[test]
    fn relationship_graph_cached_per_generation() {
        let mut h = hive();
        let kn = h.knowledge();
        let r1 = h.relationship_graph(&kn);
        let r2 = h.relationship_graph(&kn);
        assert!(Arc::ptr_eq(&r1, &r2), "warm snapshot reused");
        let gen_before = h.db().generation();
        let users = h.db().user_ids();
        h.follow(users[1], users[2]).unwrap();
        assert!(h.db().generation() > gen_before, "mutation bumps generation");
        let kn2 = h.knowledge();
        let r3 = h.relationship_graph(&kn2);
        assert!(!Arc::ptr_eq(&r1, &r3), "generation move invalidates");
    }

    #[test]
    fn end_to_end_services_run() {
        let h = hive();
        let users = h.db().user_ids();
        let u = users[0];
        // Every Table 1 service group answers.
        let ctx = h.activity_context(u);
        assert!(!ctx.is_empty());
        let peers = h.recommend_peers(u, PeerRecConfig::default());
        assert!(!peers.is_empty());
        let hits = h.search(u, "tensor stream sketch", DiscoverConfig::default());
        assert!(!hits.is_empty());
        let comms = h.discover_communities();
        assert!(comms.count() >= 2);
        let report = h.update_report(
            &ReportScope::Platform,
            Timestamp(0),
            Timestamp(u64::MAX),
            5,
        );
        assert!(report.total_events > 0);
        let hist = h.search_history(&HistoryQuery { limit: 5, ..Default::default() }, None);
        assert!(!hist.is_empty());
        let tl = h.timeline(&[], 100);
        assert!(!tl.is_empty());
    }

    #[test]
    fn services_record_per_kind_counters() {
        hive_obs::with_level(hive_obs::Level::Full, || {
            hive_obs::reset();
            let h = hive();
            let u = h.db().user_ids()[0];
            let _ = h.search(u, "tensor", DiscoverConfig::default());
            let _ = h.search(u, "stream", DiscoverConfig::default());
            let _ = h.activity_context(u);
            let snap = hive_obs::snapshot();
            assert_eq!(snap.service(ServiceKind::Search).map(|s| s.calls), Some(2));
            assert_eq!(
                snap.service(ServiceKind::ActivityContext).map(|s| s.calls),
                Some(1)
            );
            // First knowledge-backed call missed the cache and built the
            // network under a child span of the service span.
            assert_eq!(snap.counter("core.kn.miss"), 1);
            assert!(snap.counter("core.kn.hit") >= 2);
            assert!(snap.spans().any(|(p, _)| p == "search/kn-build"));
            hive_obs::reset();
        });
    }

    #[test]
    fn observability_has_no_observer_effect() {
        let run = |level: hive_obs::Level| {
            hive_obs::with_level(level, || {
                hive_obs::reset();
                let h = hive();
                let u = h.db().user_ids()[0];
                let hits = h.search(u, "tensor stream sketch", DiscoverConfig::default());
                let out: Vec<(String, u64)> =
                    hits.into_iter().map(|x| (x.title, x.score.to_bits())).collect();
                hive_obs::reset();
                out
            })
        };
        assert_eq!(run(hive_obs::Level::Off), run(hive_obs::Level::Full));
    }

    #[test]
    fn explanation_between_simulated_coauthors() {
        let h = hive();
        // Find a pair of co-authors.
        let paper = h
            .db()
            .paper_ids()
            .into_iter()
            .map(|p| h.db().get_paper(p).unwrap().clone())
            .find(|p| p.authors.len() >= 2)
            .expect("multi-author paper exists");
        let exp = h.explain_relationship(paper.authors[0], paper.authors[1]);
        assert!(exp.combined > 0.0);
        assert!(!exp.items.is_empty());
    }

    #[test]
    fn concept_bootstrap_service() {
        let h = hive();
        let map = h.bootstrap_concepts(
            "notes",
            &["tensor stream sketches detect changes in tensor streams"],
        );
        assert!(map.concept_count() > 0);
    }

    #[test]
    fn resource_summaries_are_contextual() {
        let h = hive();
        let u = h.db().user_ids()[0];
        let paper = h.db().paper_ids()[0];
        let s = h
            .summarize_resource(u, Resource::Paper(paper), 2)
            .expect("paper has text");
        assert!(!s.sentences.is_empty());
        assert!(s.sentences.len() <= 2);
    }

    #[test]
    fn collection_json_roundtrip() {
        let mut h = hive();
        let users = h.db().user_ids();
        let paper = h.db().paper_ids()[0];
        let pad = h.create_workpad(users[0], "shared").unwrap();
        h.workpad_add(users[0], pad, crate::model::WorkpadItem::Paper(paper)).unwrap();
        h.workpad_note(users[0], pad, "read this").unwrap();
        let col = h.export_workpad(users[0], pad).unwrap();
        let json = h.export_collection_json(col).unwrap();
        let imported = h.import_collection_json(users[1], &json).unwrap();
        let got = h.db().get_workpad(imported).unwrap();
        assert_eq!(got.owner, users[1]);
        assert_eq!(got.items.len(), 2);
        assert_eq!(got.notes, vec!["read this".to_string()]);
        // Garbage and dangling references are rejected.
        assert!(h.import_collection_json(users[1], "not json").is_err());
        let dangling = json.replace(
            &format!("\"Paper\":{}", paper.0),
            "\"Paper\":999999",
        );
        assert!(h.import_collection_json(users[1], &dangling).is_err());
    }

    #[test]
    fn collaborative_recommendations_exclude_seen() {
        let h = hive();
        let users = h.db().user_ids();
        let recs = h.collaborative_recommendations(users[0], 5);
        let cf = CfModel::build(h.db());
        for (r, _) in recs {
            assert_eq!(cf.rating(users[0], r), 0.0, "{r:?} was already consumed");
        }
    }
}
