//! The `Hive` service facade — every service of the paper's Table 1
//! behind one typed API.
//!
//! | Table 1 row | Methods |
//! |---|---|
//! | Concept map & personalization | [`Hive::bootstrap_concepts`], [`Hive::activity_context`] |
//! | Peer network services | [`Hive::recommend_peers`], [`Hive::similar_peers`], [`Hive::request_connection`], [`Hive::respond_connection`], [`Hive::follow`] |
//! | Discovery / recommendation / preview | [`Hive::search`], [`Hive::recommend_resources`], [`Hive::explain_relationship`], [`Hive::discover_communities`], [`Hive::collaborative_recommendations`], [`Hive::update_report`] |
//! | Personal activity history | [`Hive::search_history`], [`Hive::timeline`] |
//!
//! The facade owns the [`HiveDb`] and lazily maintains the derived
//! [`KnowledgeNetwork`]: any mutation invalidates the cache; the next
//! knowledge-backed call rebuilds it. (A production deployment would
//! update incrementally; rebuild-on-dirty keeps the semantics obvious
//! and is plenty fast at demo scale.)

use crate::clock::Timestamp;
use crate::collab::CfModel;
use crate::communities::{self, Communities, Method};
use crate::context::{build_context, ActivityContext, ContextConfig};
use crate::db::HiveDb;
use crate::discover::{self, DiscoverConfig, Resource, SearchHit};
use crate::error::Result;
use crate::evidence::{self, RelationshipExplanation};
use crate::feed::{self, FeedDigest, Update};
use crate::history::{self, HistoryHit, HistoryQuery};
use crate::ids::*;
use crate::knowledge::KnowledgeNetwork;
use crate::model::{QaTarget, WorkpadItem};
use crate::peers::{self, PeerRecConfig, PeerRecommendation};
use crate::reports::{self, ReportScope, UpdateReport};
use hive_concept::{bootstrap_concept_map, BootstrapConfig, ConceptMap};
use std::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Generation-stamped relationship-graph snapshot: the `rel:*` triple
/// export of the knowledge network plus its [`hive_store::GraphView`]
/// CSR adjacency, built once per database generation so repeated
/// explanation queries skip both the export and the store scan.
struct RelSnapshot {
    generation: u64,
    store: hive_store::TripleStore,
    view: hive_store::GraphView,
}

/// The Hive platform facade.
pub struct Hive {
    db: HiveDb,
    kn_cache: Mutex<Option<Arc<KnowledgeNetwork>>>,
    rel_cache: Mutex<Option<Arc<RelSnapshot>>>,
}

impl Hive {
    /// Wraps a (possibly pre-populated) platform database.
    pub fn new(db: HiveDb) -> Self {
        Hive { db, kn_cache: Mutex::new(None), rel_cache: Mutex::new(None) }
    }

    /// Read access to the platform database.
    pub fn db(&self) -> &HiveDb {
        &self.db
    }

    /// Write access to the database; invalidates the derived knowledge
    /// network and the relationship-graph snapshot. (The relationship
    /// snapshot is additionally keyed by [`HiveDb::generation`], so even
    /// a mutation that slipped past this method cannot serve stale
    /// paths.)
    pub fn db_mut(&mut self) -> &mut HiveDb {
        // A poisoned cache mutex only means a panic elsewhere mid-build;
        // the cache is safely rebuildable, so recover the guard.
        match self.kn_cache.get_mut() {
            Ok(cache) => *cache = None,
            Err(poisoned) => *poisoned.into_inner() = None,
        }
        match self.rel_cache.get_mut() {
            Ok(cache) => *cache = None,
            Err(poisoned) => *poisoned.into_inner() = None,
        }
        &mut self.db
    }

    /// The current knowledge network (rebuilt if stale).
    pub fn knowledge(&self) -> Arc<KnowledgeNetwork> {
        let mut guard = match self.kn_cache.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(kn) = guard.as_ref() {
            return Arc::clone(kn);
        }
        let kn = Arc::new(KnowledgeNetwork::build(&self.db));
        *guard = Some(Arc::clone(&kn));
        kn
    }

    /// The current relationship-graph snapshot, rebuilt when the
    /// database generation moved past the cached one.
    fn relationship_graph(&self, kn: &KnowledgeNetwork) -> Arc<RelSnapshot> {
        let mut guard = match self.rel_cache.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let generation = self.db.generation();
        if let Some(snap) = guard.as_ref() {
            if snap.generation == generation {
                return Arc::clone(snap);
            }
        }
        let store = kn.to_store(&self.db);
        let view = hive_store::GraphView::build(&store);
        let snap = Arc::new(RelSnapshot { generation, store, view });
        *guard = Some(Arc::clone(&snap));
        snap
    }

    // ---- concept map & personalization services ---------------------------

    /// Bootstraps a concept map from user-supplied documents (§2.1).
    pub fn bootstrap_concepts(&self, name: &str, documents: &[&str]) -> ConceptMap {
        bootstrap_concept_map(name, documents, BootstrapConfig::default())
    }

    /// The user's current activity context (active workpad + history).
    pub fn activity_context(&self, user: UserId) -> ActivityContext {
        build_context(&self.db, &self.knowledge(), user, ContextConfig::default())
    }

    // ---- peer network services ---------------------------------------------

    /// Recommends new peers, contextualized by the active workpad.
    pub fn recommend_peers(&self, user: UserId, cfg: PeerRecConfig) -> Vec<PeerRecommendation> {
        let kn = self.knowledge();
        let ctx = build_context(&self.db, &kn, user, ContextConfig::default());
        peers::recommend_peers(&self.db, &kn, user, &ctx, cfg)
    }

    /// Locates peers with the most similar content profile.
    pub fn similar_peers(&self, user: UserId, k: usize) -> Vec<(UserId, f64)> {
        let kn = self.knowledge();
        let mut out: Vec<(UserId, f64)> = self
            .db
            .user_ids()
            .into_iter()
            .filter(|&v| v != user)
            .map(|v| (v, kn.user_similarity(user, v)))
            .filter(|(_, s)| *s > 0.0)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Predicts the sessions a researcher will likely attend.
    pub fn predict_sessions(&self, user: UserId, k: usize) -> Vec<(SessionId, f64)> {
        peers::predict_sessions(&self.db, &self.knowledge(), user, k)
    }

    /// Sends a connection request.
    pub fn request_connection(&mut self, from: UserId, to: UserId) -> Result<()> {
        self.db_mut().request_connection(from, to)
    }

    /// Accepts or declines a pending connection request.
    pub fn respond_connection(&mut self, to: UserId, from: UserId, accept: bool) -> Result<()> {
        self.db_mut().respond_connection(to, from, accept)
    }

    /// Starts following another researcher.
    pub fn follow(&mut self, follower: UserId, followee: UserId) -> Result<()> {
        self.db_mut().follow(follower, followee)
    }

    /// Restricts which of a followee's activity categories reach this
    /// follower ("the set of ... activities he would like to follow").
    pub fn set_follow_filter(
        &mut self,
        follower: UserId,
        followee: UserId,
        categories: Vec<String>,
    ) -> Result<()> {
        self.db_mut().set_follow_filter(follower, followee, categories)
    }

    // ---- discovery, recommendation, preview ---------------------------------

    /// Context-aware search over papers, presentations, sessions, users.
    pub fn search(&self, user: UserId, query: &str, cfg: DiscoverConfig) -> Vec<SearchHit> {
        let kn = self.knowledge();
        let ctx = build_context(&self.db, &kn, user, ContextConfig::default());
        discover::search(&self.db, &kn, &ctx, query, cfg)
    }

    /// Pure contextual resource recommendation (empty query).
    pub fn recommend_resources(&self, user: UserId, cfg: DiscoverConfig) -> Vec<SearchHit> {
        let kn = self.knowledge();
        let ctx = build_context(&self.db, &kn, user, ContextConfig::default());
        discover::recommend_resources(&self.db, &kn, &ctx, cfg)
    }

    /// Collaborative-filtering recommendations from the activity matrix.
    pub fn collaborative_recommendations(&self, user: UserId, k: usize) -> Vec<(Resource, f64)> {
        let cf = CfModel::build(&self.db);
        cf.recommend_user_based(user, 10, k)
    }

    /// Figure 2: relationship discovery and explanation between peers.
    /// The underlying `rel:*` store and its CSR view are cached per
    /// database generation, so repeated explanations only pay for the
    /// path search itself.
    pub fn explain_relationship(&self, a: UserId, b: UserId) -> RelationshipExplanation {
        let kn = self.knowledge();
        let rel = self.relationship_graph(&kn);
        evidence::explain_relationship_with_view(&self.db, &kn, &rel.store, &rel.view, a, b, 3)
    }

    /// Community discovery over the social + co-authorship layers.
    pub fn discover_communities(&self) -> Communities {
        communities::discover(&self.knowledge(), Method::Louvain)
    }

    /// Context-aware extractive summary of a resource's text (the §2.3
    /// "content summarization" service): the summary is biased toward the
    /// user's current activity context.
    pub fn summarize_resource(
        &self,
        user: UserId,
        resource: Resource,
        sentences: usize,
    ) -> Option<hive_text::DocumentSummary> {
        let kn = self.knowledge();
        let ctx = build_context(&self.db, &kn, user, ContextConfig::default());
        let text = match resource {
            Resource::Paper(p) => self.db.get_paper(p).ok()?.text(),
            Resource::Presentation(p) => self.db.get_presentation(p).ok()?.slides_text.clone(),
            Resource::Session(s) => self.db.get_session(s).ok()?.text(),
            Resource::User(u) => self.db.get_user(u).ok()?.profile_text(),
        };
        let terms: Vec<&str> = ctx.terms.iter().map(String::as_str).collect();
        hive_text::summarize_document(
            &text,
            &terms,
            hive_text::DocSumConfig { sentences, ..Default::default() },
        )
    }

    /// Scheduled, size-constrained update report (AlphaSum-backed).
    pub fn update_report(
        &self,
        scope: &ReportScope,
        from: Timestamp,
        to: Timestamp,
        max_rows: usize,
    ) -> UpdateReport {
        reports::update_report(&self.db, scope, from, to, max_rows)
    }

    /// Sessions ranked by live activity in a window.
    pub fn trending_sessions(
        &self,
        from: Timestamp,
        to: Timestamp,
        k: usize,
    ) -> Vec<(SessionId, f64)> {
        crate::trends::trending_sessions(&self.db, from, to, k, crate::trends::HeatWeights::default())
    }

    /// Topics whose discussion rose the most between two windows.
    pub fn rising_topics(
        &self,
        prev: (Timestamp, Timestamp),
        cur: (Timestamp, Timestamp),
        k: usize,
    ) -> Vec<(String, f64)> {
        crate::trends::rising_topics(&self.db, prev, cur, k, 2)
    }

    // ---- feeds ---------------------------------------------------------------

    /// Real-time updates for a user since a timestamp.
    pub fn updates_for(&self, user: UserId, since: Timestamp) -> Vec<Update> {
        feed::updates_for(&self.db, user, since)
    }

    /// Context-ranked highlights over the update stream.
    pub fn highlights(&self, user: UserId, since: Timestamp, k: usize) -> Vec<(Update, f64)> {
        let kn = self.knowledge();
        let ctx = build_context(&self.db, &kn, user, ContextConfig::default());
        feed::highlights(&self.db, &kn, &ctx, user, since, k)
    }

    /// Digest (updates + per-category counts).
    pub fn digest(&self, user: UserId, since: Timestamp) -> FeedDigest {
        feed::digest(&self.db, user, since)
    }

    /// The merged Hive/Twitter timeline of a session.
    pub fn session_ticker(&self, session: SessionId, since: Timestamp) -> Vec<String> {
        feed::session_ticker(&self.db, session, since)
    }

    // ---- activity history ------------------------------------------------------

    /// Searches the activity history, optionally context-ranked.
    pub fn search_history(&self, query: &HistoryQuery, contextual_for: Option<UserId>) -> Vec<HistoryHit> {
        let kn = self.knowledge();
        let ctx = contextual_for.map(|u| build_context(&self.db, &kn, u, ContextConfig::default()));
        history::search_history(&self.db, &kn, query, ctx.as_ref())
    }

    /// Bucketed activity timeline for visualization.
    pub fn timeline(
        &self,
        actors: &[UserId],
        bucket_width: u64,
    ) -> Vec<(Timestamp, HashMap<&'static str, usize>)> {
        history::timeline(&self.db, actors, bucket_width)
    }

    // ---- content & workpad conveniences ------------------------------------------

    /// Uploads/revises, asks, answers — thin delegations that keep the
    /// cache coherent.
    pub fn ask_question(
        &mut self,
        author: UserId,
        target: QaTarget,
        text: &str,
        broadcast: bool,
    ) -> Result<QuestionId> {
        self.db_mut().ask_question(author, target, text, broadcast)
    }

    /// Answers a question.
    pub fn answer_question(&mut self, author: UserId, q: QuestionId, text: &str) -> Result<AnswerId> {
        self.db_mut().answer_question(author, q, text)
    }

    /// Checks into a session.
    pub fn check_in(&mut self, user: UserId, session: SessionId) -> Result<()> {
        self.db_mut().check_in(user, session)
    }

    /// Creates a workpad.
    pub fn create_workpad(&mut self, owner: UserId, name: &str) -> Result<WorkpadId> {
        self.db_mut().create_workpad(owner, name)
    }

    /// Drops an item onto a workpad.
    pub fn workpad_add(&mut self, user: UserId, pad: WorkpadId, item: WorkpadItem) -> Result<()> {
        self.db_mut().workpad_add(user, pad, item)
    }

    /// Switches the active workpad (and therefore the context).
    pub fn activate_workpad(&mut self, user: UserId, pad: WorkpadId) -> Result<()> {
        self.db_mut().activate_workpad(user, pad)
    }

    /// Exports a workpad as a shared collection.
    pub fn export_workpad(&mut self, user: UserId, pad: WorkpadId) -> Result<CollectionId> {
        self.db_mut().export_workpad(user, pad)
    }

    /// Imports a shared collection as the active workpad.
    pub fn import_collection(&mut self, user: UserId, col: CollectionId) -> Result<WorkpadId> {
        self.db_mut().import_collection(user, col)
    }

    /// Serializes a shared collection to JSON — the paper's "export
    /// workpads as collections accessible to others" across deployments.
    pub fn export_collection_json(&self, col: CollectionId) -> Result<String> {
        let c = self.db.get_collection(col)?;
        Ok(hive_json::to_string(c))
    }

    /// Imports a JSON collection export for `user`: validates every item
    /// against this platform, registers the collection, and activates it
    /// as a fresh workpad.
    pub fn import_collection_json(&mut self, user: UserId, json: &str) -> Result<WorkpadId> {
        let mut col: crate::model::Collection = hive_json::from_str(json)
            .map_err(|e| crate::error::HiveError::Invalid(format!("parse: {e}")))?;
        // The importing user owns their copy.
        col.owner = user;
        let db = self.db_mut();
        let id = db.add_collection(col)?;
        db.import_collection(user, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, WorldBuilder};

    fn hive() -> Hive {
        Hive::new(WorldBuilder::new(SimConfig::small()).build().db)
    }

    #[test]
    fn knowledge_cache_rebuilds_on_mutation() {
        let mut h = hive();
        let k1 = h.knowledge();
        let k2 = h.knowledge();
        assert!(Arc::ptr_eq(&k1, &k2), "cache hit");
        let users = h.db().user_ids();
        h.follow(users[0], users[5]).ok();
        let k3 = h.knowledge();
        assert!(!Arc::ptr_eq(&k1, &k3), "mutation invalidates");
    }

    #[test]
    fn relationship_graph_cached_per_generation() {
        let mut h = hive();
        let kn = h.knowledge();
        let r1 = h.relationship_graph(&kn);
        let r2 = h.relationship_graph(&kn);
        assert!(Arc::ptr_eq(&r1, &r2), "warm snapshot reused");
        let gen_before = h.db().generation();
        let users = h.db().user_ids();
        h.follow(users[1], users[2]).unwrap();
        assert!(h.db().generation() > gen_before, "mutation bumps generation");
        let kn2 = h.knowledge();
        let r3 = h.relationship_graph(&kn2);
        assert!(!Arc::ptr_eq(&r1, &r3), "generation move invalidates");
    }

    #[test]
    fn end_to_end_services_run() {
        let h = hive();
        let users = h.db().user_ids();
        let u = users[0];
        // Every Table 1 service group answers.
        let ctx = h.activity_context(u);
        assert!(!ctx.is_empty());
        let peers = h.recommend_peers(u, PeerRecConfig::default());
        assert!(!peers.is_empty());
        let hits = h.search(u, "tensor stream sketch", DiscoverConfig::default());
        assert!(!hits.is_empty());
        let comms = h.discover_communities();
        assert!(comms.count() >= 2);
        let report = h.update_report(
            &ReportScope::Platform,
            Timestamp(0),
            Timestamp(u64::MAX),
            5,
        );
        assert!(report.total_events > 0);
        let hist = h.search_history(&HistoryQuery { limit: 5, ..Default::default() }, None);
        assert!(!hist.is_empty());
        let tl = h.timeline(&[], 100);
        assert!(!tl.is_empty());
    }

    #[test]
    fn explanation_between_simulated_coauthors() {
        let h = hive();
        // Find a pair of co-authors.
        let paper = h
            .db()
            .paper_ids()
            .into_iter()
            .map(|p| h.db().get_paper(p).unwrap().clone())
            .find(|p| p.authors.len() >= 2)
            .expect("multi-author paper exists");
        let exp = h.explain_relationship(paper.authors[0], paper.authors[1]);
        assert!(exp.combined > 0.0);
        assert!(!exp.items.is_empty());
    }

    #[test]
    fn concept_bootstrap_service() {
        let h = hive();
        let map = h.bootstrap_concepts(
            "notes",
            &["tensor stream sketches detect changes in tensor streams"],
        );
        assert!(map.concept_count() > 0);
    }

    #[test]
    fn resource_summaries_are_contextual() {
        let h = hive();
        let u = h.db().user_ids()[0];
        let paper = h.db().paper_ids()[0];
        let s = h
            .summarize_resource(u, Resource::Paper(paper), 2)
            .expect("paper has text");
        assert!(!s.sentences.is_empty());
        assert!(s.sentences.len() <= 2);
    }

    #[test]
    fn collection_json_roundtrip() {
        let mut h = hive();
        let users = h.db().user_ids();
        let paper = h.db().paper_ids()[0];
        let pad = h.create_workpad(users[0], "shared").unwrap();
        h.workpad_add(users[0], pad, crate::model::WorkpadItem::Paper(paper)).unwrap();
        h.db_mut().workpad_note(users[0], pad, "read this").unwrap();
        let col = h.export_workpad(users[0], pad).unwrap();
        let json = h.export_collection_json(col).unwrap();
        let imported = h.import_collection_json(users[1], &json).unwrap();
        let got = h.db().get_workpad(imported).unwrap();
        assert_eq!(got.owner, users[1]);
        assert_eq!(got.items.len(), 2);
        assert_eq!(got.notes, vec!["read this".to_string()]);
        // Garbage and dangling references are rejected.
        assert!(h.import_collection_json(users[1], "not json").is_err());
        let dangling = json.replace(
            &format!("\"Paper\":{}", paper.0),
            "\"Paper\":999999",
        );
        assert!(h.import_collection_json(users[1], &dangling).is_err());
    }

    #[test]
    fn collaborative_recommendations_exclude_seen() {
        let h = hive();
        let users = h.db().user_ids();
        let recs = h.collaborative_recommendations(users[0], 5);
        let cf = CfModel::build(h.db());
        for (r, _) in recs {
            assert_eq!(cf.rating(users[0], r), 0.0, "{r:?} was already consumed");
        }
    }
}
