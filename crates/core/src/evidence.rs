//! Relationship evidence: discovering and *explaining* why two
//! researchers are related (paper §2, Figure 2).
//!
//! "Hive uses the following evidences for discovering and explaining
//! relationships between individuals (peers) and for recommending new
//! peers or resources:
//!  profile and declared interest; current and past affiliation, group
//!  membership; co-authorship, direct citation, or indirect citation;
//!  online following; conference participation; session
//!  participation/check-in; reciprocal question, comment, and answer
//!  activities; user-provided content similarity; and activity
//!  similarity."
//!
//! Each evidence kind produces scored, human-readable [`EvidenceItem`]s;
//! [`explain_relationship`] additionally surfaces the strongest
//! knowledge-network paths between the two users (the right-hand column
//! of Figure 2).

use crate::db::HiveDb;
use crate::ids::{PaperId, UserId};
use crate::knowledge::KnowledgeNetwork;
use crate::model::QaTarget;
use hive_store::{GraphView, PathQuery, Term, TripleStore};
use hive_text::tokenize::tokenize_filtered;
use std::collections::HashSet;

/// The evidence taxonomy of §2 (the paper's nine bullets, with the
/// citation bullet split into its three named sub-cases).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EvidenceKind {
    /// Overlapping declared interests (profile bullet).
    SharedInterests,
    /// Shared current/past affiliation.
    Affiliation,
    /// Shared group membership.
    GroupMembership,
    /// Co-authored papers.
    CoAuthorship,
    /// One's paper cites the other's.
    DirectCitation,
    /// Both cite the same paper.
    IndirectCitation,
    /// One follows the other online.
    Following,
    /// Attended the same conference edition / series.
    ConferenceCoParticipation,
    /// Checked into the same sessions.
    SessionCoParticipation,
    /// Reciprocal question/comment/answer activity.
    ReciprocalQa,
    /// User-provided content similarity.
    ContentSimilarity,
    /// Similar browsing/check-in behaviour.
    ActivitySimilarity,
}

impl EvidenceKind {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            EvidenceKind::SharedInterests => "shared interests",
            EvidenceKind::Affiliation => "affiliation",
            EvidenceKind::GroupMembership => "group membership",
            EvidenceKind::CoAuthorship => "co-authorship",
            EvidenceKind::DirectCitation => "direct citation",
            EvidenceKind::IndirectCitation => "indirect citation",
            EvidenceKind::Following => "following",
            EvidenceKind::ConferenceCoParticipation => "conference co-participation",
            EvidenceKind::SessionCoParticipation => "session co-participation",
            EvidenceKind::ReciprocalQa => "reciprocal Q&A",
            EvidenceKind::ContentSimilarity => "content similarity",
            EvidenceKind::ActivitySimilarity => "activity similarity",
        }
    }
}

/// One piece of scored, explained evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct EvidenceItem {
    /// The evidence kind.
    pub kind: EvidenceKind,
    /// Strength in `(0, 1]`.
    pub score: f64,
    /// Human-readable explanation ("co-authored 2 papers: ...").
    pub explanation: String,
}

/// A full Figure 2-style relationship explanation.
#[derive(Clone, Debug)]
pub struct RelationshipExplanation {
    /// First user.
    pub a: UserId,
    /// Second user.
    pub b: UserId,
    /// Evidence items, strongest first.
    pub items: Vec<EvidenceItem>,
    /// Noisy-or combination of the item scores.
    pub combined: f64,
    /// Rendered strongest knowledge-network paths between the two.
    pub paths: Vec<String>,
}

fn push(items: &mut Vec<EvidenceItem>, kind: EvidenceKind, score: f64, explanation: String) {
    if score > 0.0 {
        items.push(EvidenceItem { kind, score: score.min(1.0), explanation });
    }
}

fn jaccard_str(a: &[String], b: &[String]) -> f64 {
    let sa: HashSet<String> = a.iter().flat_map(|s| tokenize_filtered(s)).collect();
    let sb: HashSet<String> = b.iter().flat_map(|s| tokenize_filtered(s)).collect();
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    sa.intersection(&sb).count() as f64 / sa.union(&sb).count() as f64
}

/// Computes every evidence item between `a` and `b`, strongest first.
pub fn relationship_evidence(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    a: UserId,
    b: UserId,
) -> Vec<EvidenceItem> {
    let mut items = Vec::new();
    let (Ok(ua), Ok(ub)) = (db.get_user(a), db.get_user(b)) else {
        return items;
    };
    // 1. Profile / declared interests.
    let interest_sim = jaccard_str(&ua.interests, &ub.interests);
    push(
        &mut items,
        EvidenceKind::SharedInterests,
        interest_sim,
        format!("declared interests overlap (jaccard {:.2})", interest_sim),
    );
    // 2a. Affiliation (current = strong, past = weaker).
    let affs_a: HashSet<&str> = ua.all_affiliations().collect();
    let affs_b: HashSet<&str> = ub.all_affiliations().collect();
    if ua.affiliation == ub.affiliation {
        push(
            &mut items,
            EvidenceKind::Affiliation,
            0.8,
            format!("both currently at {}", ua.affiliation),
        );
    } else if let Some(shared) = affs_a.intersection(&affs_b).next() {
        push(
            &mut items,
            EvidenceKind::Affiliation,
            0.4,
            format!("shared (past) affiliation: {shared}"),
        );
    }
    // 2b. Group membership.
    let groups_a: HashSet<&String> = ua.groups.iter().collect();
    let shared_groups: Vec<&str> = ub
        .groups
        .iter()
        .filter(|g| groups_a.contains(g))
        .map(|g| g.as_str())
        .collect();
    if !shared_groups.is_empty() {
        push(
            &mut items,
            EvidenceKind::GroupMembership,
            (0.3 * shared_groups.len() as f64).min(1.0),
            format!(
                "shared groups: {}",
                shared_groups.join(", ")
            ),
        );
    }
    // 3. Co-authorship.
    let papers_a: HashSet<PaperId> = db.papers_of(a).iter().copied().collect();
    let shared_papers: Vec<PaperId> = db
        .papers_of(b)
        .iter()
        .copied()
        .filter(|p| papers_a.contains(p))
        .collect();
    if !shared_papers.is_empty() {
        let titles: Vec<String> = shared_papers
            .iter()
            .filter_map(|&p| db.get_paper(p).ok().map(|x| format!("\"{}\"", x.title)))
            .collect();
        push(
            &mut items,
            EvidenceKind::CoAuthorship,
            (0.5 + 0.2 * shared_papers.len() as f64).min(1.0),
            format!("co-authored {} paper(s): {}", shared_papers.len(), titles.join(", ")),
        );
    }
    // 4. Direct citation (either direction).
    let mut direct = 0usize;
    let mut direct_example = String::new();
    for &pa in db.papers_of(a) {
        let Ok(paper_a) = db.get_paper(pa) else { continue; };
        for &cited in &paper_a.citations {
            if db.get_paper(cited).map(|p| p.has_author(b)).unwrap_or(false) {
                direct += 1;
                if direct_example.is_empty() {
                    direct_example = format!(
                        "\"{}\" cites {}'s \"{}\"",
                        paper_a.title,
                        ub.name,
                        db.get_paper(cited).map(|p| p.title.as_str()).unwrap_or("?")
                    );
                }
            }
        }
    }
    for &pb in db.papers_of(b) {
        let Ok(paper_b) = db.get_paper(pb) else { continue; };
        for &cited in &paper_b.citations {
            if db.get_paper(cited).map(|p| p.has_author(a)).unwrap_or(false) {
                direct += 1;
                if direct_example.is_empty() {
                    direct_example = format!(
                        "\"{}\" cites {}'s \"{}\"",
                        paper_b.title,
                        ua.name,
                        db.get_paper(cited).map(|p| p.title.as_str()).unwrap_or("?")
                    );
                }
            }
        }
    }
    if direct > 0 {
        push(
            &mut items,
            EvidenceKind::DirectCitation,
            (0.4 + 0.15 * direct as f64).min(1.0),
            format!("{direct} direct citation(s); e.g. {direct_example}"),
        );
    }
    // 5. Indirect citation: "citing the same paper or transitive
    // citation". Shared references count fully; 2-hop transitive chains
    // (a's paper cites X, X cites b's paper, either direction) count at
    // half weight.
    let refs_of = |u: UserId| -> HashSet<PaperId> {
        db.papers_of(u)
            .iter()
            .flat_map(|&p| db.get_paper(p).map(|pp| pp.citations.clone()).unwrap_or_default())
            .collect()
    };
    let refs_a = refs_of(a);
    let refs_b = refs_of(b);
    let shared_refs = refs_a.intersection(&refs_b).count();
    let papers_b_set: HashSet<PaperId> = db.papers_of(b).iter().copied().collect();
    let papers_a_set: HashSet<PaperId> = db.papers_of(a).iter().copied().collect();
    let transitive_hops = |refs: &HashSet<PaperId>, targets: &HashSet<PaperId>| -> usize {
        refs.iter()
            .flat_map(|&mid| db.get_paper(mid).map(|p| p.citations.clone()).unwrap_or_default())
            .filter(|hop| targets.contains(hop))
            .count()
    };
    let transitive = transitive_hops(&refs_a, &papers_b_set) + transitive_hops(&refs_b, &papers_a_set);
    if shared_refs > 0 || transitive > 0 {
        let score = (0.15 * shared_refs as f64 + 0.075 * transitive as f64).min(0.7);
        let mut text = String::new();
        if shared_refs > 0 {
            text.push_str(&format!("cite {shared_refs} common paper(s)"));
        }
        if transitive > 0 {
            if !text.is_empty() {
                text.push_str("; ");
            }
            text.push_str(&format!("{transitive} transitive citation chain(s)"));
        }
        push(&mut items, EvidenceKind::IndirectCitation, score, text);
    }
    // 6. Following.
    match (db.is_following(a, b), db.is_following(b, a)) {
        (true, true) => push(
            &mut items,
            EvidenceKind::Following,
            0.7,
            format!("{} and {} follow each other", ua.name, ub.name),
        ),
        (true, false) => push(
            &mut items,
            EvidenceKind::Following,
            0.4,
            format!("{} follows {}", ua.name, ub.name),
        ),
        (false, true) => push(
            &mut items,
            EvidenceKind::Following,
            0.4,
            format!("{} follows {}", ub.name, ua.name),
        ),
        (false, false) => {}
    }
    // 7. Conference co-participation: same edition, or same series across
    // years.
    let confs_a: HashSet<_> = db.conferences_of(a).into_iter().collect();
    let confs_b: HashSet<_> = db.conferences_of(b).into_iter().collect();
    let same_edition = confs_a.intersection(&confs_b).count();
    if same_edition > 0 {
        push(
            &mut items,
            EvidenceKind::ConferenceCoParticipation,
            (0.1 * same_edition as f64).min(0.4),
            format!("attended {same_edition} conference edition(s) together"),
        );
    } else {
        let series_a: HashSet<String> = confs_a
            // lint:allow(determinism-taint) -- only the intersection count is used
            .iter()
            .filter_map(|&c| db.get_conference(c).ok().map(|x| x.series.clone()))
            .collect();
        let series_b: HashSet<String> = confs_b
            // lint:allow(determinism-taint) -- only the intersection count is used
            .iter()
            .filter_map(|&c| db.get_conference(c).ok().map(|x| x.series.clone()))
            .collect();
        let shared_series = series_a.intersection(&series_b).count();
        if shared_series > 0 {
            push(
                &mut items,
                EvidenceKind::ConferenceCoParticipation,
                0.15,
                format!("attend the same series ({shared_series}) in different years"),
            );
        }
    }
    // 8. Session co-participation: "related sessions or same session/same
    // time". Same sessions count fully; distinct-but-topically-related
    // sessions (content cosine above 0.4) count at a quarter weight.
    let sess_a: HashSet<_> = db.checkins_of(a).iter().map(|c| c.session).collect();
    let sess_b: HashSet<_> = db.checkins_of(b).iter().map(|c| c.session).collect();
    let shared_sessions = sess_a.intersection(&sess_b).count();
    let mut related_sessions = 0usize;
    // lint:allow(determinism-taint) -- pure counting, order-insensitive
    for &sa in &sess_a {
        if sess_b.contains(&sa) {
            continue;
        }
        // lint:allow(determinism-taint) -- pure counting, order-insensitive
        for &sb in &sess_b {
            if sess_a.contains(&sb) {
                continue;
            }
            let sim = match (kn.session_vectors.get(&sa), kn.session_vectors.get(&sb)) {
                (Some(va), Some(vb)) => va.cosine(vb),
                _ => 0.0,
            };
            if sim > 0.4 {
                related_sessions += 1;
            }
        }
    }
    if shared_sessions > 0 || related_sessions > 0 {
        let score = (0.2 * shared_sessions as f64 + 0.05 * related_sessions as f64).min(0.8);
        let mut text = String::new();
        if shared_sessions > 0 {
            text.push_str(&format!("checked into {shared_sessions} session(s) together"));
        }
        if related_sessions > 0 {
            if !text.is_empty() {
                text.push_str("; ");
            }
            text.push_str(&format!(
                "attended {related_sessions} topically related session pair(s)"
            ));
        }
        push(&mut items, EvidenceKind::SessionCoParticipation, score, text);
    }
    // 9. Reciprocal Q&A: one answered the other's question, or asked on
    // the other's presentation.
    let mut qa_hits = 0usize;
    for q in db.question_ids() {
        let Ok(question) = db.get_question(q) else { continue; };
        for &ans in db.answers_to(q) {
            let Ok(answer) = db.get_answer(ans) else { continue; };
            if (question.author == a && answer.author == b)
                || (question.author == b && answer.author == a)
            {
                qa_hits += 1;
            }
        }
        if let QaTarget::Presentation(p) = question.target {
            if let Ok(pres) = db.get_presentation(p) {
                if (question.author == a && pres.presenter == b)
                    || (question.author == b && pres.presenter == a)
                {
                    qa_hits += 1;
                }
            }
        }
    }
    if qa_hits > 0 {
        push(
            &mut items,
            EvidenceKind::ReciprocalQa,
            (0.25 * qa_hits as f64).min(0.9),
            format!("{qa_hits} reciprocal question/answer exchange(s)"),
        );
    }
    // 10. Content similarity.
    let csim = kn.user_similarity(a, b);
    if csim > 0.05 {
        push(
            &mut items,
            EvidenceKind::ContentSimilarity,
            csim,
            format!("user-provided content similarity {:.2}", csim),
        );
    }
    // 11. Activity similarity: Jaccard over touched resources.
    let touched = |u: UserId| -> HashSet<String> {
        db.activities_of(u)
            .iter()
            .filter_map(|r| match r.event {
                crate::model::ActivityEvent::CheckIn(s) => Some(s.iri()),
                crate::model::ActivityEvent::ViewPaper(p) => Some(p.iri()),
                crate::model::ActivityEvent::ViewPresentation(p) => Some(p.iri()),
                _ => None,
            })
            .collect()
    };
    let ta = touched(a);
    let tb = touched(b);
    if !ta.is_empty() && !tb.is_empty() {
        let inter = ta.intersection(&tb).count();
        let union = ta.union(&tb).count();
        let asim = inter as f64 / union as f64;
        if asim > 0.0 {
            push(
                &mut items,
                EvidenceKind::ActivitySimilarity,
                asim,
                format!("browsing/check-in overlap {:.2} ({inter} shared resources)", asim),
            );
        }
    }
    items.sort_by(|x, y| {
        y.score
            .total_cmp(&x.score)
            .then_with(|| x.kind.cmp(&y.kind))
    });
    items
}

impl RelationshipExplanation {
    /// Renders the explanation as the Figure 2 panel text: names,
    /// combined strength, the ranked evidence list, and the strongest
    /// connecting paths.
    pub fn render(&self, db: &HiveDb) -> String {
        let name = |u: UserId| {
            db.get_user(u)
                .map(|x| x.name.clone())
                .unwrap_or_else(|_| u.to_string())
        };
        let mut out = format!(
            "Relationships between \"{}\" and \"{}\" (strength {:.2})\n",
            name(self.a),
            name(self.b),
            self.combined
        );
        for item in &self.items {
            out.push_str(&format!(
                "  [{:.2}] {:<28} {}\n",
                item.score,
                item.kind.label(),
                item.explanation
            ));
        }
        if !self.paths.is_empty() {
            out.push_str("  connecting paths:\n");
            for p in &self.paths {
                out.push_str(&format!("    {p}\n"));
            }
        }
        out
    }
}

/// Noisy-or aggregation: `1 - prod(1 - s_i)`. Independent weak evidence
/// accumulates without any single item being required.
pub fn combined_score(items: &[EvidenceItem]) -> f64 {
    1.0 - items.iter().map(|i| 1.0 - i.score).product::<f64>()
}

/// [`relationship_evidence`] against every peer in `peers`, fanned out
/// over the worker pool (each pair's evidence scan is independent).
/// Results come back in `peers` order, identical for any `HIVE_THREADS`.
pub fn batch_relationship_evidence(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    user: UserId,
    peers: &[UserId],
) -> Vec<Vec<EvidenceItem>> {
    hive_par::par_map(peers, |&peer| relationship_evidence(db, kn, user, peer))
}

/// Full Figure 2 output: evidence list + strongest knowledge-network
/// paths between the two users (rendered). Builds a throwaway
/// [`GraphView`] of `store`; callers holding a cached view should use
/// [`explain_relationship_with_view`].
pub fn explain_relationship(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    store: &TripleStore,
    a: UserId,
    b: UserId,
    top_paths: usize,
) -> RelationshipExplanation {
    let view = GraphView::build(store);
    explain_relationship_with_view(db, kn, store, &view, a, b, top_paths)
}

/// [`explain_relationship`] over a pre-built [`GraphView`] snapshot of
/// `store` — the cached fast path used by the `Hive` facade, which keys
/// the view by database generation.
pub fn explain_relationship_with_view(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    store: &TripleStore,
    view: &GraphView,
    a: UserId,
    b: UserId,
    top_paths: usize,
) -> RelationshipExplanation {
    let items = relationship_evidence(db, kn, a, b);
    let combined = combined_score(&items);
    let paths = PathQuery::new(Term::iri(a.iri()), Term::iri(b.iri()))
        .top_k(top_paths.max(1))
        .max_hops(4)
        .run_on(store, view)
        .map(|ps| ps.iter().map(|p| p.explain(store)).collect())
        .unwrap_or_default();
    RelationshipExplanation { a, b, items, combined, paths }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::*;

    fn rich_world() -> (HiveDb, Vec<UserId>) {
        let mut db = HiveDb::new();
        let users = vec![
            db.add_user(
                User::new("Zach", "ASU")
                    .with_interests(vec!["tensor streams".into(), "social networks".into()])
                    .with_groups(vec!["MiNC".into()]),
            ),
            db.add_user(
                User::new("Ann", "ASU")
                    .with_interests(vec!["tensor streams".into()])
                    .with_groups(vec!["MiNC".into()]),
            ),
            db.add_user(User::new("Dave", "MIT").with_interests(vec!["databases".into()])),
        ];
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        let s = db
            .add_session(Session::new(conf, "Tensors", "R1"))
            .unwrap();
        // Shared paper for Zach+Ann; Dave has an unrelated paper citing theirs.
        let shared = db
            .add_paper(
                Paper::new("Tensor monitoring", vec![users[0], users[1]])
                    .with_abstract("tensor streams compressed sensing")
                    .at_venue(conf),
            )
            .unwrap();
        db.add_paper(
            Paper::new("DB survey", vec![users[2]])
                .with_abstract("database systems survey")
                .citing(vec![shared]),
        )
        .unwrap();
        db.attend(users[0], conf).unwrap();
        db.attend(users[1], conf).unwrap();
        db.check_in(users[0], s).unwrap();
        db.check_in(users[1], s).unwrap();
        db.follow(users[0], users[1]).unwrap();
        (db, users)
    }

    #[test]
    fn strong_pair_has_many_evidence_kinds() {
        let (db, users) = rich_world();
        let kn = KnowledgeNetwork::build(&db);
        let items = relationship_evidence(&db, &kn, users[0], users[1]);
        let kinds: HashSet<EvidenceKind> = items.iter().map(|i| i.kind).collect();
        for expected in [
            EvidenceKind::SharedInterests,
            EvidenceKind::Affiliation,
            EvidenceKind::GroupMembership,
            EvidenceKind::CoAuthorship,
            EvidenceKind::Following,
            EvidenceKind::ConferenceCoParticipation,
            EvidenceKind::SessionCoParticipation,
            EvidenceKind::ContentSimilarity,
        ] {
            assert!(kinds.contains(&expected), "missing {expected:?} in {kinds:?}");
        }
        // Sorted descending.
        for w in items.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // Explanations are human-readable.
        let coauth = items
            .iter()
            .find(|i| i.kind == EvidenceKind::CoAuthorship)
            .unwrap();
        assert!(coauth.explanation.contains("Tensor monitoring"));
    }

    #[test]
    fn weak_pair_scores_lower() {
        let (db, users) = rich_world();
        let kn = KnowledgeNetwork::build(&db);
        let strong = combined_score(&relationship_evidence(&db, &kn, users[0], users[1]));
        let weak = combined_score(&relationship_evidence(&db, &kn, users[0], users[2]));
        assert!(strong > weak, "{strong} > {weak}");
    }

    #[test]
    fn direct_citation_detected_both_directions() {
        let (db, users) = rich_world();
        let kn = KnowledgeNetwork::build(&db);
        // Dave's paper cites Zach+Ann's.
        let items = relationship_evidence(&db, &kn, users[2], users[0]);
        assert!(
            items.iter().any(|i| i.kind == EvidenceKind::DirectCitation),
            "{items:?}"
        );
        let items_rev = relationship_evidence(&db, &kn, users[0], users[2]);
        assert!(items_rev.iter().any(|i| i.kind == EvidenceKind::DirectCitation));
    }

    #[test]
    fn symmetry_of_scores() {
        let (db, users) = rich_world();
        let kn = KnowledgeNetwork::build(&db);
        let ab = combined_score(&relationship_evidence(&db, &kn, users[0], users[1]));
        let ba = combined_score(&relationship_evidence(&db, &kn, users[1], users[0]));
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn noisy_or_properties() {
        let mk = |s: f64| EvidenceItem {
            kind: EvidenceKind::Following,
            score: s,
            explanation: String::new(),
        };
        assert_eq!(combined_score(&[]), 0.0);
        assert!((combined_score(&[mk(0.5)]) - 0.5).abs() < 1e-12);
        assert!((combined_score(&[mk(0.5), mk(0.5)]) - 0.75).abs() < 1e-12);
        assert!(combined_score(&[mk(1.0), mk(0.1)]) >= 1.0 - 1e-12);
    }

    #[test]
    fn explanation_includes_paths() {
        let (db, users) = rich_world();
        let kn = KnowledgeNetwork::build(&db);
        let store = kn.to_store(&db);
        let exp = explain_relationship(&db, &kn, &store, users[0], users[1], 3);
        assert!(exp.combined > 0.5);
        assert!(!exp.paths.is_empty(), "a path should exist between co-authors");
        assert!(exp.paths[0].contains(&users[0].iri()) || exp.paths[0].contains(&users[1].iri()));
    }

    #[test]
    fn transitive_citation_detected() {
        let mut db = HiveDb::new();
        let a = db.add_user(User::new("A", "X"));
        let mid_author = db.add_user(User::new("M", "Y"));
        let b = db.add_user(User::new("B", "Z"));
        // b's paper <- mid cites it <- a cites mid: transitive chain a->b.
        let b_paper = db
            .add_paper(Paper::new("Target", vec![b]).with_abstract("targets"))
            .unwrap();
        let mid = db
            .add_paper(
                Paper::new("Middle", vec![mid_author])
                    .with_abstract("middles")
                    .citing(vec![b_paper]),
            )
            .unwrap();
        db.add_paper(
            Paper::new("Source", vec![a])
                .with_abstract("sources")
                .citing(vec![mid]),
        )
        .unwrap();
        let kn = KnowledgeNetwork::build(&db);
        let items = relationship_evidence(&db, &kn, a, b);
        let indirect = items
            .iter()
            .find(|i| i.kind == EvidenceKind::IndirectCitation)
            .expect("transitive chain counts as indirect citation");
        assert!(indirect.explanation.contains("transitive"), "{indirect:?}");
        // No direct citation between a and b themselves.
        assert!(!items.iter().any(|i| i.kind == EvidenceKind::DirectCitation));
    }

    #[test]
    fn related_sessions_count_partially() {
        let mut db = HiveDb::new();
        let a = db.add_user(User::new("A", "X"));
        let b = db.add_user(User::new("B", "Y"));
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        // Two distinct but topically near-identical sessions.
        let s1 = db
            .add_session(
                Session::new(conf, "Tensor Streams I", "R1")
                    .with_topics(vec!["tensor stream monitoring sketches".into()]),
            )
            .unwrap();
        let s2 = db
            .add_session(
                Session::new(conf, "Tensor Streams II", "R2")
                    .with_topics(vec!["tensor stream monitoring ensembles".into()]),
            )
            .unwrap();
        db.check_in(a, s1).unwrap();
        db.check_in(b, s2).unwrap();
        let kn = KnowledgeNetwork::build(&db);
        let items = relationship_evidence(&db, &kn, a, b);
        let sess = items
            .iter()
            .find(|i| i.kind == EvidenceKind::SessionCoParticipation)
            .expect("related sessions count: {items:?}");
        assert!(sess.explanation.contains("related"), "{sess:?}");
        assert!(sess.score < 0.2, "weaker than a shared session");
    }

    #[test]
    fn rendered_explanation_reads_like_figure_2() {
        let (db, users) = rich_world();
        let kn = KnowledgeNetwork::build(&db);
        let store = kn.to_store(&db);
        let exp = explain_relationship(&db, &kn, &store, users[0], users[1], 2);
        let text = exp.render(&db);
        assert!(text.contains("Zach"));
        assert!(text.contains("Ann"));
        assert!(text.contains("co-authorship"));
        assert!(text.contains("connecting paths"));
    }

    #[test]
    fn reciprocal_qa_evidence() {
        let (mut db, users) = rich_world();
        let s = db.session_ids()[0];
        let q = db
            .ask_question(users[2], QaTarget::Session(s), "what about scale?", false)
            .unwrap();
        db.answer_question(users[0], q, "it scales linearly").unwrap();
        let kn = KnowledgeNetwork::build(&db);
        let items = relationship_evidence(&db, &kn, users[0], users[2]);
        assert!(items.iter().any(|i| i.kind == EvidenceKind::ReciprocalQa), "{items:?}");
    }
}
