//! Real-time update feeds (use scenario: "Zach highlights the set of
//! researchers whose (session check-in, question, comment, answer)
//! activities he would like to follow and instructs Hive to provide
//! real-time updates regarding these during the conference").
//!
//! The feed service routes three kinds of traffic:
//!
//! * **followee updates** — activities of the users one follows,
//! * **own-content updates** — questions/answers/comments landing on the
//!   user's presentations and questions ("there is already a question
//!   posted regarding the presentation he had uploaded"),
//! * the **session ticker** — the merged Hive + Twitter-bridge timeline
//!   of one session's hashtag.

use crate::clock::Timestamp;
use crate::db::index::{ActivityQuery, DbIndexes, TickRange};
use crate::db::HiveDb;
use crate::ids::{SessionId, UserId};
use crate::model::{ActivityEvent, QaTarget};
use std::collections::HashMap;

/// One feed update.
#[derive(Clone, Debug, PartialEq)]
pub struct Update {
    /// The acting user (the followee, the asker, ...).
    pub actor: UserId,
    /// When it happened.
    pub at: Timestamp,
    /// Category label (matches `ActivityEvent::category`).
    pub category: &'static str,
    /// Rendered one-line description.
    pub text: String,
}

/// A per-user digest of everything since a timestamp.
#[derive(Clone, Debug, Default)]
pub struct FeedDigest {
    /// Updates in time order.
    pub updates: Vec<Update>,
    /// Count per category.
    pub counts: HashMap<&'static str, usize>,
}

fn render_event(db: &HiveDb, actor: UserId, event: &ActivityEvent) -> String {
    let name = db
        .get_user(actor)
        .map(|u| u.name.clone())
        .unwrap_or_else(|_| actor.to_string());
    match event {
        ActivityEvent::CheckIn(s) => {
            let title = db.get_session(*s).map(|x| x.title.clone()).unwrap_or_default();
            format!("{name} checked into \"{title}\"")
        }
        ActivityEvent::AskQuestion(q) => {
            let text = db.get_question(*q).map(|x| x.text.clone()).unwrap_or_default();
            format!("{name} asked: {text}")
        }
        ActivityEvent::AnswerQuestion(a) => {
            let text = db.get_answer(*a).map(|x| x.text.clone()).unwrap_or_default();
            format!("{name} answered: {text}")
        }
        ActivityEvent::Comment(c) => {
            let text = db.get_comment(*c).map(|x| x.text.clone()).unwrap_or_default();
            format!("{name} commented: {text}")
        }
        ActivityEvent::UploadPresentation(_) => format!("{name} uploaded a presentation"),
        ActivityEvent::ReviseSlides(_) => format!("{name} revised their slides"),
        ActivityEvent::Follow(u) => {
            let other = db.get_user(*u).map(|x| x.name.clone()).unwrap_or_default();
            format!("{name} started following {other}")
        }
        ActivityEvent::AttendConference(c) => {
            let conf = db
                .get_conference(*c)
                .map(|x| x.display_name())
                .unwrap_or_default();
            format!("{name} is attending {conf}")
        }
        _ => format!("{name} was active"),
    }
}

/// Which followee activity kinds are routed into a follower's feed.
fn is_followable(event: &ActivityEvent) -> bool {
    matches!(
        event,
        ActivityEvent::CheckIn(_)
            | ActivityEvent::AskQuestion(_)
            | ActivityEvent::AnswerQuestion(_)
            | ActivityEvent::Comment(_)
            | ActivityEvent::UploadPresentation(_)
            | ActivityEvent::ReviseSlides(_)
            | ActivityEvent::AttendConference(_)
    )
}

/// All updates for `user` since `since` (exclusive of their own actions).
pub fn updates_for(db: &HiveDb, idx: &DbIndexes, user: UserId, since: Timestamp) -> Vec<Update> {
    let mut followees = db.following(user);
    followees.sort_unstable();
    followees.dedup();
    let mut out: Vec<Update> = Vec::new();
    if followees.is_empty() {
        // An empty actor list would mean "everyone" to the planner.
    } else {
        // Followee activities, via the actor postings + window clip.
        let query = ActivityQuery::new()
            .with_actors(followees)
            .within(TickRange::since(since));
        for rec in query.run(db, idx) {
            let filter_ok = db
                .follow_filter(user, rec.user)
                .is_none_or(|cats| cats.iter().any(|c| c == rec.event.category()));
            if is_followable(&rec.event) && filter_ok {
                out.push(Update {
                    actor: rec.user,
                    at: rec.at,
                    category: rec.event.category(),
                    text: render_event(db, rec.user, &rec.event),
                });
            }
        }
    }
    // Questions on my presentations, answers to my questions.
    for q in db.question_ids() {
        let Ok(question) = db.get_question(q) else { continue; };
        if question.asked_at >= since && question.author != user {
            if let QaTarget::Presentation(p) = question.target {
                if db.get_presentation(p).map(|x| x.presenter == user).unwrap_or(false) {
                    out.push(Update {
                        actor: question.author,
                        at: question.asked_at,
                        category: "discuss",
                        text: format!(
                            "new question on your presentation: {}",
                            question.text
                        ),
                    });
                }
            }
        }
        if question.author == user {
            for &aid in db.answers_to(q) {
                let Ok(answer) = db.get_answer(aid) else { continue; };
                if answer.answered_at >= since && answer.author != user {
                    out.push(Update {
                        actor: answer.author,
                        at: answer.answered_at,
                        category: "discuss",
                        text: format!("your question was answered: {}", answer.text),
                    });
                }
            }
        }
    }
    out.sort_by_key(|u| (u.at, u.actor));
    out.dedup();
    out
}

/// The merged Hive + Twitter timeline of one session since `since`.
pub fn session_ticker(db: &HiveDb, session: SessionId, since: Timestamp) -> Vec<String> {
    let mut entries: Vec<(Timestamp, String)> = Vec::new();
    // Native Q&A on the session and on its presentations.
    let mut targets = vec![QaTarget::Session(session)];
    targets.extend(
        db.presentations_in(session)
            .iter()
            .map(|&p| QaTarget::Presentation(p)),
    );
    for t in targets {
        for &q in db.questions_on(t) {
            let Ok(question) = db.get_question(q) else { continue; };
            if question.asked_at >= since {
                entries.push((
                    question.asked_at,
                    render_event(db, question.author, &ActivityEvent::AskQuestion(q)),
                ));
            }
            for &aid in db.answers_to(q) {
                let Ok(answer) = db.get_answer(aid) else { continue; };
                if answer.answered_at >= since {
                    entries.push((
                        answer.answered_at,
                        render_event(db, answer.author, &ActivityEvent::AnswerQuestion(aid)),
                    ));
                }
            }
        }
        for &c in db.comments_on(t) {
            let Ok(comment) = db.get_comment(c) else { continue; };
            if comment.commented_at >= since {
                entries.push((
                    comment.commented_at,
                    render_event(db, comment.author, &ActivityEvent::Comment(c)),
                ));
            }
        }
    }
    // Bridge traffic (includes external-only tweeters).
    for &tid in db.tweets_in(session) {
        let Ok(tweet) = db.get_tweet(tid) else { continue; };
        if tweet.at >= since {
            entries.push((tweet.at, format!("[twitter] {}", tweet.render())));
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    entries.into_iter().map(|(_, s)| s).collect()
}

/// Context-ranked highlights: the updates most relevant to the user's
/// current activity context (Table 1: "Generate summary previews and
/// highlights for updates and resources based on context"). Returns up
/// to `k` updates scored by the cosine between the update's rendered
/// text and the context vector (ties broken by recency).
pub fn highlights(
    db: &HiveDb,
    kn: &crate::knowledge::KnowledgeNetwork,
    idx: &DbIndexes,
    ctx: &crate::context::ActivityContext,
    user: UserId,
    since: Timestamp,
    k: usize,
) -> Vec<(Update, f64)> {
    let mut scored: Vec<(Update, f64)> = updates_for(db, idx, user, since)
        .into_iter()
        .map(|u| {
            let v = kn.corpus.vectorize_known(&u.text);
            let rel = ctx.similarity(&v);
            (u, rel)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.total_cmp(&a.1)
            .then_with(|| b.0.at.cmp(&a.0.at))
    });
    scored.truncate(k);
    scored
}

/// Builds the digest for `user` since `since`.
pub fn digest(db: &HiveDb, idx: &DbIndexes, user: UserId, since: Timestamp) -> FeedDigest {
    let updates = updates_for(db, idx, user, since);
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    for u in &updates {
        *counts.entry(u.category).or_insert(0) += 1;
    }
    FeedDigest { updates, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PresentationId;
    use crate::model::*;

    fn world() -> (HiveDb, Vec<UserId>, SessionId, PresentationId) {
        let mut db = HiveDb::new();
        let users = vec![
            db.add_user(User::new("Zach", "ASU")),
            db.add_user(User::new("Ann", "UniTo")),
            db.add_user(User::new("Aaron", "NEC")),
        ];
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        let s = db.add_session(Session::new(conf, "Tensors", "R1")).unwrap();
        let p = db
            .add_paper(Paper::new("Sketches", vec![users[0]]).with_abstract("tensors"))
            .unwrap();
        let pres = db
            .add_presentation(Presentation::new(p, users[0], s).with_slides("slides"))
            .unwrap();
        (db, users, s, pres)
    }

    #[test]
    fn followee_activity_routed() {
        let (mut db, users, s, _) = world();
        db.follow(users[0], users[1]).unwrap();
        let since = db.now();
        db.advance_clock(5);
        db.check_in(users[1], s).unwrap();
        db.check_in(users[2], s).unwrap(); // not followed
        let ups = updates_for(&db, &DbIndexes::build(&db), users[0], since);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].actor, users[1]);
        assert!(ups[0].text.contains("checked into"));
    }

    #[test]
    fn own_presentation_questions_surface() {
        let (mut db, users, _, pres) = world();
        let since = db.now();
        db.advance_clock(1);
        db.ask_question(
            users[1],
            QaTarget::Presentation(pres),
            "typo in the equation on slide 3?",
            false,
        )
        .unwrap();
        let ups = updates_for(&db, &DbIndexes::build(&db), users[0], since);
        assert_eq!(ups.len(), 1);
        assert!(ups[0].text.contains("your presentation"));
        assert_eq!(ups[0].actor, users[1]);
    }

    #[test]
    fn answers_to_my_questions_surface() {
        let (mut db, users, s, _) = world();
        let since = db.now();
        db.advance_clock(1);
        let q = db
            .ask_question(users[0], QaTarget::Session(s), "scale?", false)
            .unwrap();
        db.advance_clock(1);
        db.answer_question(users[2], q, "linearly").unwrap();
        let ups = updates_for(&db, &DbIndexes::build(&db), users[0], since);
        assert_eq!(ups.len(), 1);
        assert!(ups[0].text.contains("answered"));
    }

    #[test]
    fn since_filter_and_own_actions_excluded() {
        let (mut db, users, s, _) = world();
        db.follow(users[0], users[1]).unwrap();
        db.advance_clock(1);
        db.check_in(users[1], s).unwrap();
        let since = db.advance_clock(1);
        // Past activity excluded.
        assert!(updates_for(&db, &DbIndexes::build(&db), users[0], since).is_empty());
        // Own activity never appears.
        db.advance_clock(1);
        db.check_in(users[0], s).unwrap();
        assert!(updates_for(&db, &DbIndexes::build(&db), users[0], since).is_empty());
    }

    #[test]
    fn follow_filters_limit_categories() {
        let (mut db, users, s, _) = world();
        db.follow(users[0], users[1]).unwrap();
        db.set_follow_filter(users[0], users[1], vec!["discuss".into()]).unwrap();
        let since = db.now();
        db.advance_clock(1);
        db.check_in(users[1], s).unwrap(); // checkin: filtered out
        db.ask_question(users[1], QaTarget::Session(s), "q?", false).unwrap();
        let ups = updates_for(&db, &DbIndexes::build(&db), users[0], since);
        assert_eq!(ups.len(), 1, "{ups:?}");
        assert_eq!(ups[0].category, "discuss");
        // Clearing the filter restores everything.
        db.set_follow_filter(users[0], users[1], vec![]).unwrap();
        let ups = updates_for(&db, &DbIndexes::build(&db), users[0], since);
        assert_eq!(ups.len(), 2);
        // Filter requires an existing follow.
        assert!(db
            .set_follow_filter(users[0], users[2], vec!["discuss".into()])
            .is_err());
    }

    #[test]
    fn session_ticker_merges_native_and_twitter() {
        let (mut db, users, s, pres) = world();
        db.advance_clock(1);
        db.ask_question(users[1], QaTarget::Presentation(pres), "why sketches?", true)
            .unwrap();
        db.advance_clock(1);
        db.post_tweet(None, "@external_fan", "great talk!", s).unwrap();
        let ticker = session_ticker(&db, s, Timestamp(0));
        assert_eq!(ticker.len(), 3, "question + its broadcast + external tweet: {ticker:?}");
        assert!(ticker.iter().any(|l| l.contains("[twitter]") && l.contains("external_fan")));
        assert!(ticker.iter().any(|l| l.contains("why sketches?") && !l.contains("[twitter]")));
    }

    #[test]
    fn highlights_rank_by_context_relevance() {
        use crate::context::{build_context, ContextConfig};
        use crate::knowledge::KnowledgeNetwork;
        let mut db = HiveDb::new();
        let me = db.add_user(User::new("Me", "X").with_interests(vec!["tensor streams".into()]));
        let peer = db.add_user(User::new("Peer", "Y"));
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        let s_tensor = db
            .add_session(
                Session::new(conf, "Tensor Streams", "R1")
                    .with_topics(vec!["tensor stream sketches".into()]),
            )
            .unwrap();
        let s_txn = db
            .add_session(
                Session::new(conf, "Transactions", "R2")
                    .with_topics(vec!["concurrency control".into()]),
            )
            .unwrap();
        db.follow(me, peer).unwrap();
        let since = db.now();
        db.advance_clock(1);
        db.check_in(peer, s_txn).unwrap();
        db.advance_clock(1);
        db.check_in(peer, s_tensor).unwrap(); // relevant to my context
        db.advance_clock(1);
        let q = db
            .ask_question(peer, QaTarget::Session(s_tensor), "how big are the tensor sketches?", false)
            .unwrap();
        let _ = q;
        let kn = KnowledgeNetwork::build(&db);
        let ctx = build_context(&db, &kn, me, ContextConfig::default());
        let top = highlights(&db, &kn, &DbIndexes::build(&db), &ctx, me, since, 2);
        assert_eq!(top.len(), 2);
        assert!(
            top[0].0.text.contains("Tensor") || top[0].0.text.contains("tensor"),
            "tensor update ranks first: {top:?}"
        );
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn digest_counts_by_category() {
        let (mut db, users, s, _) = world();
        db.follow(users[0], users[1]).unwrap();
        let since = db.now();
        db.advance_clock(1);
        db.check_in(users[1], s).unwrap();
        db.ask_question(users[1], QaTarget::Session(s), "q1", false).unwrap();
        let d = digest(&db, &DbIndexes::build(&db), users[0], since);
        assert_eq!(d.updates.len(), 2);
        assert_eq!(d.counts["checkin"], 1);
        assert_eq!(d.counts["discuss"], 1);
    }
}
