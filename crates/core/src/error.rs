//! Platform error type.

use std::fmt;

/// Errors surfaced by platform services.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HiveError {
    /// A referenced entity does not exist.
    NotFound {
        /// Entity kind, e.g. `"user"`.
        kind: &'static str,
        /// The offending id rendered as a string.
        id: String,
    },
    /// The operation conflicts with current state (duplicate connection
    /// request, answering a closed question, ...).
    Conflict(String),
    /// Invalid input (empty text, bad parameter).
    Invalid(String),
    /// The caller lacks a prerequisite (e.g. no active workpad).
    Precondition(String),
    /// A platform snapshot was written by an incompatible format version.
    SnapshotVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
}

impl HiveError {
    /// Convenience constructor for [`HiveError::NotFound`].
    pub fn not_found(kind: &'static str, id: impl fmt::Display) -> Self {
        HiveError::NotFound { kind, id: id.to_string() }
    }
}

impl fmt::Display for HiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HiveError::NotFound { kind, id } => write!(f, "{kind} {id} not found"),
            HiveError::Conflict(msg) => write!(f, "conflict: {msg}"),
            HiveError::Invalid(msg) => write!(f, "invalid input: {msg}"),
            HiveError::Precondition(msg) => write!(f, "precondition failed: {msg}"),
            HiveError::SnapshotVersion { found, expected } => write!(
                f,
                "unsupported platform snapshot version {found} (this build reads version {expected})"
            ),
        }
    }
}

impl std::error::Error for HiveError {}

/// Platform result alias.
pub type Result<T> = std::result::Result<T, HiveError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UserId;

    #[test]
    fn display_forms() {
        assert_eq!(
            HiveError::not_found("user", UserId(3)).to_string(),
            "user user:3 not found"
        );
        assert!(HiveError::Conflict("x".into()).to_string().contains("conflict"));
        assert!(HiveError::Invalid("y".into()).to_string().contains("invalid"));
        assert!(HiveError::Precondition("z".into()).to_string().contains("precondition"));
        let v = HiveError::SnapshotVersion { found: 4, expected: 1 };
        assert!(v.to_string().contains('4') && v.to_string().contains('1'));
    }
}
