//! The in-memory, multi-indexed platform database.
//!
//! `HiveDb` replaces the paper's Joomla/MySQL stack: arena storage per
//! entity type, secondary indexes for every access path the services
//! need, an append-only activity log, and a logical clock. All mutating
//! operations validate referential integrity and record activity.

use crate::clock::{Clock, Timestamp};
use crate::error::{HiveError, Result};
use crate::ids::*;
use crate::model::*;
use std::collections::{HashMap, HashSet};

pub mod index;

/// Ring capacity of the mutation delta journal. A derived cache that
/// falls further than this behind the database can no longer be patched
/// and must rebuild.
pub const DB_DELTA_LOG_CAP: usize = 4096;

/// One database mutation, classified for delta cache maintenance.
///
/// Every generation bump appends exactly one `DbDelta`, so a derived
/// cache stamped with generation `g` can ask [`HiveDb::deltas_since`]
/// for the precise mutation suffix it missed. The patchable variants
/// carry enough context to derive the knowledge-network and
/// relationship-store edges without re-reading the database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DbDelta {
    /// No derived graph edge depends on this mutation (workpads, tweets,
    /// answers, filters, ...): caches re-stamp and move on.
    Neutral,
    /// Entity creation or content revision: derived caches (content
    /// vectors, concept maps, static graph layers) must rebuild.
    Structural,
    /// `follower` started following `followee`.
    Follow {
        /// The user who followed.
        follower: UserId,
        /// The user being followed.
        followee: UserId,
    },
    /// A connection request was accepted (`a <= b`, pair-normalized).
    Connect {
        /// Smaller user id of the pair.
        a: UserId,
        /// Larger user id of the pair.
        b: UserId,
    },
    /// `user` checked into `session`.
    CheckIn {
        /// The user who checked in.
        user: UserId,
        /// The session checked into.
        session: SessionId,
    },
    /// `user` registered attendance at `conf` (first time only).
    Attend {
        /// The attendee.
        user: UserId,
        /// The conference edition.
        conf: ConferenceId,
    },
    /// `author` asked a question in `session`; `paper` is set when the
    /// question targeted a presentation.
    Discuss {
        /// The question author.
        author: UserId,
        /// The session hosting the discussion.
        session: SessionId,
        /// The presented paper, when the target was a presentation.
        paper: Option<PaperId>,
    },
    /// `user` viewed `paper`.
    ViewPaper {
        /// The viewer.
        user: UserId,
        /// The viewed paper.
        paper: PaperId,
    },
}

impl DbDelta {
    /// True when this mutation invalidates the static derived layers
    /// (content vectors, concept maps, static graph layers) and forces
    /// a full rebuild instead of an in-place patch.
    ///
    /// Exhaustive on purpose (lint R10): adding a variant must force a
    /// decision here instead of silently defaulting to "patchable".
    pub fn is_structural(&self) -> bool {
        match self {
            DbDelta::Structural => true,
            DbDelta::Neutral
            | DbDelta::Follow { .. }
            | DbDelta::Connect { .. }
            | DbDelta::CheckIn { .. }
            | DbDelta::Attend { .. }
            | DbDelta::Discuss { .. }
            | DbDelta::ViewPaper { .. } => false,
        }
    }

    /// True when this mutation adds at least one edge to the dynamic
    /// knowledge-network layers, i.e. a patched network must re-derive
    /// its CSR snapshot afterwards. Exhaustive on purpose (lint R10).
    pub fn touches_graph(&self) -> bool {
        match self {
            DbDelta::Neutral => false,
            DbDelta::Structural
            | DbDelta::Follow { .. }
            | DbDelta::Connect { .. }
            | DbDelta::CheckIn { .. }
            | DbDelta::Attend { .. }
            | DbDelta::Discuss { .. }
            | DbDelta::ViewPaper { .. } => true,
        }
    }
}

/// The platform database.
#[derive(Clone, Debug, Default)]
pub struct HiveDb {
    clock: Clock,
    // Arenas.
    users: Vec<User>,
    conferences: Vec<Conference>,
    sessions: Vec<Session>,
    papers: Vec<Paper>,
    presentations: Vec<Presentation>,
    questions: Vec<Question>,
    answers: Vec<Answer>,
    comments: Vec<Comment>,
    workpads: Vec<Workpad>,
    collections: Vec<Collection>,
    tweets: Vec<Tweet>,
    // Social state.
    follows: Vec<Follow>,
    follow_index: HashSet<(UserId, UserId)>,
    /// Per-follow category filter: when present, only events whose
    /// category is listed reach the follower's feed ("Zach highlights the
    /// set of researchers whose (session check-in, question, comment,
    /// answer) activities he would like to follow").
    follow_filters: HashMap<(UserId, UserId), Vec<String>>,
    connections: Vec<Connection>,
    connection_index: HashMap<(UserId, UserId), usize>,
    checkins: Vec<CheckIn>,
    checkin_by_user: HashMap<UserId, Vec<usize>>,
    checkin_by_session: HashMap<SessionId, Vec<usize>>,
    attendance: HashSet<(UserId, ConferenceId)>,
    active_workpad: HashMap<UserId, WorkpadId>,
    // Activity log.
    log: Vec<ActivityRecord>,
    log_by_user: HashMap<UserId, Vec<usize>>,
    /// Monotone mutation counter. Bumped by every content mutation (but
    /// not by clock advancement), so derived caches — the knowledge
    /// network, the relationship [`hive_store::GraphView`] — can detect
    /// staleness with one integer compare.
    generation: u64,
    /// Delta journal: one entry per generation bump, so entry `i`
    /// describes the mutation that moved the counter from
    /// `delta_base + i` to `delta_base + i + 1`. Ring-capped at
    /// [`DB_DELTA_LOG_CAP`]; `delta_base` tracks how many entries have
    /// been compacted away.
    deltas: Vec<DbDelta>,
    delta_base: u64,
    // Secondary indexes.
    sessions_by_conf: HashMap<ConferenceId, Vec<SessionId>>,
    papers_by_author: HashMap<UserId, Vec<PaperId>>,
    papers_by_venue: HashMap<ConferenceId, Vec<PaperId>>,
    cited_by: HashMap<PaperId, Vec<PaperId>>,
    presentations_by_session: HashMap<SessionId, Vec<PresentationId>>,
    presentations_by_paper: HashMap<PaperId, Vec<PresentationId>>,
    questions_by_target: HashMap<QaTarget, Vec<QuestionId>>,
    answers_by_question: HashMap<QuestionId, Vec<AnswerId>>,
    comments_by_target: HashMap<QaTarget, Vec<CommentId>>,
    workpads_by_user: HashMap<UserId, Vec<WorkpadId>>,
    tweets_by_session: HashMap<SessionId, Vec<TweetId>>,
}

macro_rules! getter {
    ($get:ident, $arena:ident, $idt:ty, $t:ty, $kind:literal) => {
        /// Fetches the entity, or `NotFound`.
        pub fn $get(&self, id: $idt) -> Result<&$t> {
            self.$arena
                .get(id.index())
                .ok_or_else(|| HiveError::not_found($kind, id))
        }
    };
}

impl HiveDb {
    /// Creates an empty platform.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- clock -------------------------------------------------------

    /// Current logical time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Advances the logical clock.
    pub fn advance_clock(&mut self, dt: u64) -> Timestamp {
        self.clock.advance(dt)
    }

    /// Jumps the clock forward to `t` (never backwards).
    pub fn advance_clock_to(&mut self, t: Timestamp) {
        self.clock.advance_to(t);
    }

    /// The current mutation generation. Strictly increases on every
    /// content mutation; clock advancement does not count. Derived
    /// caches snapshot this value and compare to detect staleness.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The sole generation bump site: advances the counter and journals
    /// the classified delta, compacting the journal past its ring cap.
    fn bump(&mut self, delta: DbDelta) {
        self.generation += 1; // lint:allow(delta-log) -- the one legal bump
        self.deltas.push(delta);
        if self.deltas.len() > DB_DELTA_LOG_CAP {
            let excess = self.deltas.len() - DB_DELTA_LOG_CAP;
            self.deltas.drain(..excess);
            self.delta_base += excess as u64;
        }
    }

    /// The mutation deltas applied after generation `generation`, in
    /// order, or `None` when that window has been compacted away (or
    /// never existed) and the caller must rebuild.
    pub fn deltas_since(&self, generation: u64) -> Option<&[DbDelta]> {
        if generation > self.generation || generation < self.delta_base {
            return None;
        }
        Some(&self.deltas[(generation - self.delta_base) as usize..])
    }

    fn record(&mut self, user: UserId, event: ActivityEvent, delta: DbDelta) {
        self.bump(delta);
        let at = self.clock.now();
        let idx = self.log.len();
        self.log.push(ActivityRecord { user, event, at });
        self.log_by_user.entry(user).or_default().push(idx);
    }

    /// Classifies an activity record exactly as [`Self::record`] journals
    /// it, resolving question targets through the current indexes.
    fn classify(&self, rec: &ActivityRecord) -> Option<DbDelta> {
        match rec.event {
            ActivityEvent::Follow(followee) => {
                Some(DbDelta::Follow { follower: rec.user, followee })
            }
            ActivityEvent::ConnectAccept(from) => {
                let (a, b) = Self::pair_key(rec.user, from);
                Some(DbDelta::Connect { a, b })
            }
            ActivityEvent::CheckIn(session) => {
                Some(DbDelta::CheckIn { user: rec.user, session })
            }
            ActivityEvent::AttendConference(conf) => {
                Some(DbDelta::Attend { user: rec.user, conf })
            }
            ActivityEvent::AskQuestion(q) => {
                let question = self.get_question(q).ok()?;
                let (session, paper) = match question.target {
                    QaTarget::Presentation(p) => {
                        let pres = self.get_presentation(p).ok()?;
                        (pres.session, Some(pres.paper))
                    }
                    QaTarget::Session(s) => (s, None),
                };
                Some(DbDelta::Discuss { author: rec.user, session, paper })
            }
            ActivityEvent::ViewPaper(paper) => {
                Some(DbDelta::ViewPaper { user: rec.user, paper })
            }
            _ => None,
        }
    }

    /// The patchable graph events of the full activity log, in
    /// chronological order. Fresh knowledge-network builds replay exactly
    /// this sequence, so a cache patched with [`Self::deltas_since`]
    /// converges on the same node interning, adjacency order, and float
    /// accumulation order as a cold rebuild — bit for bit.
    pub fn replay_deltas(&self) -> Vec<DbDelta> {
        self.log.iter().filter_map(|rec| self.classify(rec)).collect()
    }

    // ---- entity creation ---------------------------------------------

    /// Registers a user.
    pub fn add_user(&mut self, user: User) -> UserId {
        let id = UserId(self.users.len() as u32);
        self.users.push(user);
        self.bump(DbDelta::Structural);
        id
    }

    /// Adds a conference edition.
    pub fn add_conference(&mut self, conf: Conference) -> ConferenceId {
        let id = ConferenceId(self.conferences.len() as u32);
        self.conferences.push(conf);
        self.bump(DbDelta::Structural);
        id
    }

    /// Adds a session; the conference must exist and the chair (if any)
    /// must be a registered user.
    pub fn add_session(&mut self, session: Session) -> Result<SessionId> {
        self.get_conference(session.conference)?;
        if let Some(chair) = session.chair {
            self.get_user(chair)?;
        }
        let id = SessionId(self.sessions.len() as u32);
        self.sessions_by_conf
            .entry(session.conference)
            .or_default()
            .push(id);
        self.sessions.push(session);
        self.bump(DbDelta::Structural);
        Ok(id)
    }

    /// Adds a paper; authors, venue, and cited papers must exist.
    pub fn add_paper(&mut self, paper: Paper) -> Result<PaperId> {
        if paper.authors.is_empty() {
            return Err(HiveError::Invalid("paper needs at least one author".into()));
        }
        for &a in &paper.authors {
            self.get_user(a)?;
        }
        if let Some(v) = paper.venue {
            self.get_conference(v)?;
        }
        for &c in &paper.citations {
            self.get_paper(c)?;
        }
        let id = PaperId(self.papers.len() as u32);
        for &a in &paper.authors {
            self.papers_by_author.entry(a).or_default().push(id);
        }
        if let Some(v) = paper.venue {
            self.papers_by_venue.entry(v).or_default().push(id);
        }
        for &c in &paper.citations {
            self.cited_by.entry(c).or_default().push(id);
        }
        self.papers.push(paper);
        self.bump(DbDelta::Structural);
        Ok(id)
    }

    /// Uploads a presentation; paper, presenter, and session must exist,
    /// and the presenter must be one of the paper's authors.
    pub fn add_presentation(&mut self, pres: Presentation) -> Result<PresentationId> {
        let paper = self.get_paper(pres.paper)?;
        if !paper.has_author(pres.presenter) {
            return Err(HiveError::Conflict(format!(
                "presenter {} is not an author of {}",
                pres.presenter, pres.paper
            )));
        }
        self.get_session(pres.session)?;
        let id = PresentationId(self.presentations.len() as u32);
        self.presentations_by_session
            .entry(pres.session)
            .or_default()
            .push(id);
        self.presentations_by_paper
            .entry(pres.paper)
            .or_default()
            .push(id);
        let presenter = pres.presenter;
        self.presentations.push(pres);
        self.record(presenter, ActivityEvent::UploadPresentation(id), DbDelta::Structural);
        Ok(id)
    }

    // ---- getters -------------------------------------------------------

    getter!(get_user, users, UserId, User, "user");
    getter!(get_conference, conferences, ConferenceId, Conference, "conference");
    getter!(get_session, sessions, SessionId, Session, "session");
    getter!(get_paper, papers, PaperId, Paper, "paper");
    getter!(get_presentation, presentations, PresentationId, Presentation, "presentation");
    getter!(get_question, questions, QuestionId, Question, "question");
    getter!(get_answer, answers, AnswerId, Answer, "answer");
    getter!(get_comment, comments, CommentId, Comment, "comment");
    getter!(get_workpad, workpads, WorkpadId, Workpad, "workpad");
    getter!(get_collection, collections, CollectionId, Collection, "collection");
    getter!(get_tweet, tweets, TweetId, Tweet, "tweet");

    // ---- id listings ---------------------------------------------------

    /// All user ids.
    pub fn user_ids(&self) -> Vec<UserId> {
        (0..self.users.len() as u32).map(UserId).collect()
    }

    /// All conference ids.
    pub fn conference_ids(&self) -> Vec<ConferenceId> {
        (0..self.conferences.len() as u32).map(ConferenceId).collect()
    }

    /// All session ids.
    pub fn session_ids(&self) -> Vec<SessionId> {
        (0..self.sessions.len() as u32).map(SessionId).collect()
    }

    /// All paper ids.
    pub fn paper_ids(&self) -> Vec<PaperId> {
        (0..self.papers.len() as u32).map(PaperId).collect()
    }

    /// All presentation ids.
    pub fn presentation_ids(&self) -> Vec<PresentationId> {
        (0..self.presentations.len() as u32).map(PresentationId).collect()
    }

    /// All question ids.
    pub fn question_ids(&self) -> Vec<QuestionId> {
        (0..self.questions.len() as u32).map(QuestionId).collect()
    }

    // ---- index lookups --------------------------------------------------

    /// Sessions of a conference.
    pub fn sessions_of(&self, conf: ConferenceId) -> &[SessionId] {
        self.sessions_by_conf.get(&conf).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Papers authored by a user.
    pub fn papers_of(&self, user: UserId) -> &[PaperId] {
        self.papers_by_author.get(&user).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Papers published at a venue edition.
    pub fn papers_at(&self, conf: ConferenceId) -> &[PaperId] {
        self.papers_by_venue.get(&conf).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Papers citing `p`.
    pub fn citing(&self, p: PaperId) -> &[PaperId] {
        self.cited_by.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Presentations in a session.
    pub fn presentations_in(&self, s: SessionId) -> &[PresentationId] {
        self.presentations_by_session
            .get(&s)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Presentations of a paper.
    pub fn presentations_of_paper(&self, p: PaperId) -> &[PresentationId] {
        self.presentations_by_paper
            .get(&p)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Questions on a target.
    pub fn questions_on(&self, t: QaTarget) -> &[QuestionId] {
        self.questions_by_target.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Answers to a question.
    pub fn answers_to(&self, q: QuestionId) -> &[AnswerId] {
        self.answers_by_question.get(&q).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Comments on a target.
    pub fn comments_on(&self, t: QaTarget) -> &[CommentId] {
        self.comments_by_target.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Workpads of a user.
    pub fn workpads_of(&self, u: UserId) -> &[WorkpadId] {
        self.workpads_by_user.get(&u).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Tweets on a session hashtag.
    pub fn tweets_in(&self, s: SessionId) -> &[TweetId] {
        self.tweets_by_session.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    // ---- conference participation ---------------------------------------

    /// Marks a user as attending a conference edition.
    pub fn attend(&mut self, user: UserId, conf: ConferenceId) -> Result<()> {
        self.get_user(user)?;
        self.get_conference(conf)?;
        if self.attendance.insert((user, conf)) {
            self.record(user, ActivityEvent::AttendConference(conf), DbDelta::Attend { user, conf });
        }
        Ok(())
    }

    /// True if the user attends/attended the edition.
    pub fn attends(&self, user: UserId, conf: ConferenceId) -> bool {
        self.attendance.contains(&(user, conf))
    }

    /// Attendees of an edition.
    pub fn attendees(&self, conf: ConferenceId) -> Vec<UserId> {
        let mut out: Vec<UserId> = self
            .attendance
            .iter()
            .filter(|(_, c)| *c == conf)
            .map(|(u, _)| *u)
            .collect();
        out.sort();
        out
    }

    /// Conference editions a user attends/attended.
    pub fn conferences_of(&self, user: UserId) -> Vec<ConferenceId> {
        let mut out: Vec<ConferenceId> = self
            .attendance
            // lint:allow(determinism-taint) -- sorted before returning
            .iter()
            .filter(|(u, _)| *u == user)
            .map(|(_, c)| *c)
            .collect();
        out.sort();
        out
    }

    /// Checks a user into a session.
    pub fn check_in(&mut self, user: UserId, session: SessionId) -> Result<()> {
        self.get_user(user)?;
        self.get_session(session)?;
        let at = self.clock.now();
        let idx = self.checkins.len();
        self.checkins.push(CheckIn { user, session, at });
        self.checkin_by_user.entry(user).or_default().push(idx);
        self.checkin_by_session.entry(session).or_default().push(idx);
        self.record(user, ActivityEvent::CheckIn(session), DbDelta::CheckIn { user, session });
        Ok(())
    }

    /// Check-ins of a user, in order.
    pub fn checkins_of(&self, user: UserId) -> Vec<&CheckIn> {
        self.checkin_by_user
            .get(&user)
            .map(|v| v.iter().map(|&i| &self.checkins[i]).collect())
            .unwrap_or_default()
    }

    /// Check-ins into a session.
    pub fn checkins_in(&self, session: SessionId) -> Vec<&CheckIn> {
        self.checkin_by_session
            .get(&session)
            .map(|v| v.iter().map(|&i| &self.checkins[i]).collect())
            .unwrap_or_default()
    }

    // ---- follows and connections ----------------------------------------

    /// `follower` starts following `followee`.
    pub fn follow(&mut self, follower: UserId, followee: UserId) -> Result<()> {
        self.get_user(follower)?;
        self.get_user(followee)?;
        if follower == followee {
            return Err(HiveError::Invalid("cannot follow yourself".into()));
        }
        if !self.follow_index.insert((follower, followee)) {
            return Err(HiveError::Conflict("already following".into()));
        }
        let since = self.clock.now();
        self.follows.push(Follow { follower, followee, since });
        self.record(follower, ActivityEvent::Follow(followee), DbDelta::Follow { follower, followee });
        Ok(())
    }

    /// True if `a` follows `b`.
    pub fn is_following(&self, a: UserId, b: UserId) -> bool {
        self.follow_index.contains(&(a, b))
    }

    /// Restricts which activity categories of `followee` reach
    /// `follower`'s feed (must already be following). An empty list
    /// clears the filter (= everything again).
    pub fn set_follow_filter(
        &mut self,
        follower: UserId,
        followee: UserId,
        categories: Vec<String>,
    ) -> Result<()> {
        if !self.is_following(follower, followee) {
            return Err(HiveError::Precondition(format!(
                "{follower} does not follow {followee}"
            )));
        }
        if categories.is_empty() {
            self.follow_filters.remove(&(follower, followee));
        } else {
            self.follow_filters.insert((follower, followee), categories);
        }
        self.bump(DbDelta::Neutral);
        Ok(())
    }

    /// The follow filter for a pair, if any.
    pub fn follow_filter(&self, follower: UserId, followee: UserId) -> Option<&[String]> {
        self.follow_filters
            .get(&(follower, followee))
            .map(Vec::as_slice)
    }

    /// Users that `u` follows.
    pub fn following(&self, u: UserId) -> Vec<UserId> {
        let mut out: Vec<UserId> = self
            .follow_index
            // lint:allow(determinism-taint) -- sorted before returning
            .iter()
            .filter(|(a, _)| *a == u)
            .map(|(_, b)| *b)
            .collect();
        out.sort();
        out
    }

    /// Users following `u`.
    pub fn followers(&self, u: UserId) -> Vec<UserId> {
        let mut out: Vec<UserId> = self
            .follow_index
            .iter()
            .filter(|(_, b)| *b == u)
            .map(|(a, _)| *a)
            .collect();
        out.sort();
        out
    }

    fn pair_key(a: UserId, b: UserId) -> (UserId, UserId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Sends a connection request.
    pub fn request_connection(&mut self, from: UserId, to: UserId) -> Result<()> {
        self.get_user(from)?;
        self.get_user(to)?;
        if from == to {
            return Err(HiveError::Invalid("cannot connect to yourself".into()));
        }
        let key = Self::pair_key(from, to);
        if let Some(&idx) = self.connection_index.get(&key) {
            match self.connections[idx].state {
                ConnectionState::Declined => {
                    // A declined request may be retried.
                    self.connections[idx] = Connection {
                        from,
                        to,
                        state: ConnectionState::Pending,
                        requested_at: self.clock.now(),
                        resolved_at: None,
                    };
                    self.record(from, ActivityEvent::ConnectRequest(to), DbDelta::Neutral);
                    return Ok(());
                }
                _ => return Err(HiveError::Conflict("connection already exists".into())),
            }
        }
        let idx = self.connections.len();
        self.connections.push(Connection {
            from,
            to,
            state: ConnectionState::Pending,
            requested_at: self.clock.now(),
            resolved_at: None,
        });
        self.connection_index.insert(key, idx);
        self.record(from, ActivityEvent::ConnectRequest(to), DbDelta::Neutral);
        Ok(())
    }

    /// The recipient accepts or declines a pending request.
    pub fn respond_connection(&mut self, to: UserId, from: UserId, accept: bool) -> Result<()> {
        let key = Self::pair_key(from, to);
        let idx = *self
            .connection_index
            .get(&key)
            .ok_or_else(|| HiveError::not_found("connection", format!("{from}-{to}")))?;
        let now = self.clock.now();
        {
            let conn = &mut self.connections[idx];
            if conn.state != ConnectionState::Pending {
                return Err(HiveError::Conflict("connection not pending".into()));
            }
            if conn.to != to || conn.from != from {
                return Err(HiveError::Conflict("only the recipient can respond".into()));
            }
            conn.state = if accept {
                ConnectionState::Accepted
            } else {
                ConnectionState::Declined
            };
            conn.resolved_at = Some(now);
        }
        if accept {
            let (a, b) = Self::pair_key(from, to);
            self.record(to, ActivityEvent::ConnectAccept(from), DbDelta::Connect { a, b });
        } else {
            // Declines don't log activity but still change state.
            self.bump(DbDelta::Neutral);
        }
        Ok(())
    }

    /// True if `a` and `b` have an accepted connection.
    pub fn are_connected(&self, a: UserId, b: UserId) -> bool {
        self.connection_index
            .get(&Self::pair_key(a, b))
            .map(|&i| self.connections[i].state == ConnectionState::Accepted)
            .unwrap_or(false)
    }

    /// Accepted connections of `u`.
    pub fn connections_of(&self, u: UserId) -> Vec<UserId> {
        let mut out: Vec<UserId> = self
            .connections
            .iter()
            .filter(|c| c.state == ConnectionState::Accepted && c.involves(u))
            .filter_map(|c| c.other(u))
            .collect();
        out.sort();
        out
    }

    /// Pending incoming requests for `u`.
    pub fn pending_requests_for(&self, u: UserId) -> Vec<UserId> {
        self.connections
            .iter()
            .filter(|c| c.state == ConnectionState::Pending && c.to == u)
            .map(|c| c.from)
            .collect()
    }

    // ---- Q&A, comments, tweets -------------------------------------------

    fn validate_target(&self, t: QaTarget) -> Result<SessionId> {
        match t {
            QaTarget::Presentation(p) => Ok(self.get_presentation(p)?.session),
            QaTarget::Session(s) => {
                self.get_session(s)?;
                Ok(s)
            }
        }
    }

    /// Posts a question; `broadcast` mirrors it to the session hashtag.
    pub fn ask_question(
        &mut self,
        author: UserId,
        target: QaTarget,
        text: impl Into<String>,
        broadcast: bool,
    ) -> Result<QuestionId> {
        self.get_user(author)?;
        let session = self.validate_target(target)?;
        let text = text.into();
        if text.trim().is_empty() {
            return Err(HiveError::Invalid("empty question".into()));
        }
        let id = QuestionId(self.questions.len() as u32);
        self.questions.push(Question {
            author,
            target,
            text: text.clone(),
            asked_at: self.clock.now(),
            broadcast,
        });
        self.questions_by_target.entry(target).or_default().push(id);
        let paper = match target {
            QaTarget::Presentation(p) => Some(self.get_presentation(p)?.paper),
            QaTarget::Session(_) => None,
        };
        self.record(author, ActivityEvent::AskQuestion(id), DbDelta::Discuss { author, session, paper });
        if broadcast {
            let handle = format!("@{}", self.get_user(author)?.name.to_lowercase().replace(' ', "_"));
            self.post_tweet(Some(author), handle, text, session)?;
        }
        Ok(id)
    }

    /// Answers a question.
    pub fn answer_question(
        &mut self,
        author: UserId,
        question: QuestionId,
        text: impl Into<String>,
    ) -> Result<AnswerId> {
        self.get_user(author)?;
        self.get_question(question)?;
        let text = text.into();
        if text.trim().is_empty() {
            return Err(HiveError::Invalid("empty answer".into()));
        }
        let id = AnswerId(self.answers.len() as u32);
        self.answers.push(Answer {
            question,
            author,
            text,
            answered_at: self.clock.now(),
        });
        self.answers_by_question.entry(question).or_default().push(id);
        self.record(author, ActivityEvent::AnswerQuestion(id), DbDelta::Neutral);
        Ok(id)
    }

    /// Posts a comment.
    pub fn comment(
        &mut self,
        author: UserId,
        target: QaTarget,
        text: impl Into<String>,
    ) -> Result<CommentId> {
        self.get_user(author)?;
        self.validate_target(target)?;
        let text = text.into();
        if text.trim().is_empty() {
            return Err(HiveError::Invalid("empty comment".into()));
        }
        let id = CommentId(self.comments.len() as u32);
        self.comments.push(Comment {
            author,
            target,
            text,
            commented_at: self.clock.now(),
        });
        self.comments_by_target.entry(target).or_default().push(id);
        self.record(author, ActivityEvent::Comment(id), DbDelta::Neutral);
        Ok(id)
    }

    /// Posts a tweet onto a session hashtag (platform or external user).
    pub fn post_tweet(
        &mut self,
        author: Option<UserId>,
        handle: impl Into<String>,
        text: impl Into<String>,
        session: SessionId,
    ) -> Result<TweetId> {
        self.get_session(session)?;
        let id = TweetId(self.tweets.len() as u32);
        self.tweets.push(Tweet {
            author,
            handle: handle.into(),
            text: text.into(),
            session,
            at: self.clock.now(),
        });
        self.tweets_by_session.entry(session).or_default().push(id);
        self.bump(DbDelta::Neutral);
        Ok(id)
    }

    // ---- browsing ---------------------------------------------------------

    /// Records a paper view.
    pub fn view_paper(&mut self, user: UserId, paper: PaperId) -> Result<()> {
        self.get_user(user)?;
        self.get_paper(paper)?;
        self.record(user, ActivityEvent::ViewPaper(paper), DbDelta::ViewPaper { user, paper });
        Ok(())
    }

    /// Records a presentation view.
    pub fn view_presentation(&mut self, user: UserId, pres: PresentationId) -> Result<()> {
        self.get_user(user)?;
        self.get_presentation(pres)?;
        self.record(user, ActivityEvent::ViewPresentation(pres), DbDelta::Neutral);
        Ok(())
    }

    /// Revises a presentation's slides (presenter only).
    pub fn revise_slides(
        &mut self,
        user: UserId,
        pres: PresentationId,
        text: impl Into<String>,
    ) -> Result<()> {
        let p = self.get_presentation(pres)?;
        if p.presenter != user {
            return Err(HiveError::Conflict("only the presenter can revise slides".into()));
        }
        self.presentations[pres.index()].revise(text);
        self.record(user, ActivityEvent::ReviseSlides(pres), DbDelta::Structural);
        Ok(())
    }

    // ---- workpads ----------------------------------------------------------

    /// Creates a workpad and makes it active if the user has none.
    pub fn create_workpad(&mut self, owner: UserId, name: impl Into<String>) -> Result<WorkpadId> {
        self.get_user(owner)?;
        let id = WorkpadId(self.workpads.len() as u32);
        self.workpads.push(Workpad::new(owner, name));
        self.workpads_by_user.entry(owner).or_default().push(id);
        self.bump(DbDelta::Neutral);
        if let std::collections::hash_map::Entry::Vacant(e) = self.active_workpad.entry(owner) {
            e.insert(id);
            self.record(owner, ActivityEvent::ActivateWorkpad(id), DbDelta::Neutral);
        }
        Ok(id)
    }

    fn validate_item(&self, item: &WorkpadItem, pad: &Workpad) -> Result<()> {
        match *item {
            WorkpadItem::UserAvatar(u) => self.get_user(u).map(|_| ()),
            WorkpadItem::Paper(p) => self.get_paper(p).map(|_| ()),
            WorkpadItem::Presentation(p) => self.get_presentation(p).map(|_| ()),
            WorkpadItem::Session(s) => self.get_session(s).map(|_| ()),
            WorkpadItem::Question(q) => self.get_question(q).map(|_| ()),
            WorkpadItem::Collection(c) => self.get_collection(c).map(|_| ()),
            WorkpadItem::Note(n) => {
                if (n as usize) < pad.notes.len() {
                    Ok(())
                } else {
                    Err(HiveError::not_found("note", n))
                }
            }
        }
    }

    /// Drops an item onto a workpad (owner only, referenced entity must
    /// exist, duplicates rejected).
    pub fn workpad_add(&mut self, user: UserId, pad: WorkpadId, item: WorkpadItem) -> Result<()> {
        let p = self.get_workpad(pad)?;
        if p.owner != user {
            return Err(HiveError::Conflict("not your workpad".into()));
        }
        self.validate_item(&item, p)?;
        if !self.workpads[pad.index()].add(item) {
            return Err(HiveError::Conflict("item already on workpad".into()));
        }
        self.record(user, ActivityEvent::WorkpadAdd(pad), DbDelta::Neutral);
        Ok(())
    }

    /// Adds a free-form note to a workpad.
    pub fn workpad_note(
        &mut self,
        user: UserId,
        pad: WorkpadId,
        text: impl Into<String>,
    ) -> Result<WorkpadItem> {
        let p = self.get_workpad(pad)?;
        if p.owner != user {
            return Err(HiveError::Conflict("not your workpad".into()));
        }
        let item = self.workpads[pad.index()].add_note(text);
        self.record(user, ActivityEvent::WorkpadAdd(pad), DbDelta::Neutral);
        Ok(item)
    }

    /// Removes an item from a workpad.
    pub fn workpad_remove(
        &mut self,
        user: UserId,
        pad: WorkpadId,
        item: &WorkpadItem,
    ) -> Result<()> {
        let p = self.get_workpad(pad)?;
        if p.owner != user {
            return Err(HiveError::Conflict("not your workpad".into()));
        }
        if !self.workpads[pad.index()].remove(item) {
            return Err(HiveError::not_found("workpad item", format!("{item:?}")));
        }
        self.bump(DbDelta::Neutral);
        Ok(())
    }

    /// Switches the user's active workpad ("the user ... can choose from
    /// different saved workpads, each corresponding to a different
    /// context or state of mind").
    pub fn activate_workpad(&mut self, user: UserId, pad: WorkpadId) -> Result<()> {
        let p = self.get_workpad(pad)?;
        if p.owner != user {
            return Err(HiveError::Conflict("not your workpad".into()));
        }
        self.active_workpad.insert(user, pad);
        self.record(user, ActivityEvent::ActivateWorkpad(pad), DbDelta::Neutral);
        Ok(())
    }

    /// The user's active workpad, if any.
    pub fn active_workpad_of(&self, user: UserId) -> Option<WorkpadId> {
        self.active_workpad.get(&user).copied()
    }

    /// Exports a workpad as an immutable shared collection.
    pub fn export_workpad(&mut self, user: UserId, pad: WorkpadId) -> Result<CollectionId> {
        let p = self.get_workpad(pad)?;
        if p.owner != user {
            return Err(HiveError::Conflict("not your workpad".into()));
        }
        let col = Collection::from_workpad(p);
        let id = CollectionId(self.collections.len() as u32);
        self.collections.push(col);
        self.bump(DbDelta::Neutral);
        Ok(id)
    }

    /// Registers an externally supplied collection (e.g. parsed from a
    /// JSON export) under a new id, after validating every item against
    /// this platform's entities.
    pub fn add_collection(&mut self, col: Collection) -> Result<CollectionId> {
        self.get_user(col.owner)?;
        // Reuse item validation with a scratch pad carrying the notes.
        let mut scratch = Workpad::new(col.owner, col.name.clone());
        scratch.notes = col.notes.clone();
        for item in &col.items {
            self.validate_item(item, &scratch)?;
        }
        let id = CollectionId(self.collections.len() as u32);
        self.collections.push(col);
        self.bump(DbDelta::Neutral);
        Ok(id)
    }

    /// Imports a collection as a fresh workpad of `user` and activates it.
    pub fn import_collection(&mut self, user: UserId, col: CollectionId) -> Result<WorkpadId> {
        self.get_user(user)?;
        let c = self.get_collection(col)?.clone();
        let id = WorkpadId(self.workpads.len() as u32);
        let mut pad = Workpad::new(user, c.name);
        pad.items = c.items;
        pad.notes = c.notes;
        self.workpads.push(pad);
        self.workpads_by_user.entry(user).or_default().push(id);
        self.active_workpad.insert(user, id);
        self.record(user, ActivityEvent::ActivateWorkpad(id), DbDelta::Neutral);
        Ok(id)
    }

    // ---- persistence (see persist.rs for the public API) -----------------

    pub(crate) fn capture_snapshot(&self) -> crate::persist::PlatformSnapshot {
        let mut attendance: Vec<(UserId, ConferenceId)> =
            self.attendance.iter().copied().collect();
        attendance.sort();
        let mut active_workpads: Vec<(UserId, WorkpadId)> =
            self.active_workpad.iter().map(|(&u, &w)| (u, w)).collect();
        active_workpads.sort();
        let mut follow_filters: Vec<(UserId, UserId, Vec<String>)> = self
            .follow_filters
            .iter()
            .map(|(&(a, b), cats)| (a, b, cats.clone()))
            .collect();
        follow_filters.sort();
        crate::persist::PlatformSnapshot {
            version: crate::persist::SNAPSHOT_VERSION,
            now: self.clock.now(),
            users: self.users.clone(),
            conferences: self.conferences.clone(),
            sessions: self.sessions.clone(),
            papers: self.papers.clone(),
            presentations: self.presentations.clone(),
            questions: self.questions.clone(),
            answers: self.answers.clone(),
            comments: self.comments.clone(),
            workpads: self.workpads.clone(),
            collections: self.collections.clone(),
            tweets: self.tweets.clone(),
            follows: self.follows.clone(),
            follow_filters,
            connections: self.connections.clone(),
            checkins: self.checkins.clone(),
            attendance,
            active_workpads,
            log: self.log.clone(),
        }
    }

    pub(crate) fn restore_snapshot(
        snap: &crate::persist::PlatformSnapshot,
    ) -> Result<Self> {
        let mut db = HiveDb::default();
        db.clock.advance_to(snap.now);
        db.users = snap.users.clone();
        db.conferences = snap.conferences.clone();
        db.sessions = snap.sessions.clone();
        db.papers = snap.papers.clone();
        db.presentations = snap.presentations.clone();
        db.questions = snap.questions.clone();
        db.answers = snap.answers.clone();
        db.comments = snap.comments.clone();
        db.workpads = snap.workpads.clone();
        db.collections = snap.collections.clone();
        db.tweets = snap.tweets.clone();
        db.follows = snap.follows.clone();
        db.follow_filters = snap
            .follow_filters
            .iter()
            .map(|(a, b, cats)| ((*a, *b), cats.clone()))
            .collect();
        db.connections = snap.connections.clone();
        db.checkins = snap.checkins.clone();
        db.attendance = snap.attendance.iter().copied().collect();
        db.active_workpad = snap.active_workpads.iter().copied().collect();
        db.log = snap.log.clone();
        db.rebuild_indexes()?;
        // The restored platform starts a fresh delta journal: caches
        // stamped against the pre-restore instance see `deltas_since`
        // return `None` and rebuild from the restored state.
        db.generation = 1;
        db.delta_base = 1;
        db.deltas.clear();
        Ok(db)
    }

    /// Re-stamps a restored platform at `generation` with an empty delta
    /// journal, as if it had lived through the same mutation history.
    ///
    /// Used by replication checkpoints: a follower installing a leader
    /// snapshot must adopt the leader's generation so the two journals
    /// stay aligned and subsequent log frames apply at matching
    /// generations. With `delta_base == generation`, `deltas_since` at
    /// the adopted generation answers an empty (patchable) slice.
    pub(crate) fn adopt_generation(&mut self, generation: u64) {
        self.generation = generation; // lint:allow(delta-log) -- checkpoint re-stamp, not a mutation
        self.delta_base = generation;
        self.deltas.clear();
    }

    /// Rebuilds every secondary index from the primary arenas, validating
    /// referential integrity along the way. Used only on restore, so a
    /// snapshot can never freeze a stale index.
    fn rebuild_indexes(&mut self) -> Result<()> {
        self.follow_index = self
            .follows
            .iter()
            .map(|f| (f.follower, f.followee))
            .collect();
        self.connection_index = self
            .connections
            .iter()
            .enumerate()
            .map(|(i, c)| (Self::pair_key(c.from, c.to), i))
            .collect();
        self.checkin_by_user.clear();
        self.checkin_by_session.clear();
        for (i, ci) in self.checkins.iter().enumerate() {
            if ci.user.index() >= self.users.len() || ci.session.index() >= self.sessions.len() {
                return Err(HiveError::Invalid("dangling check-in in snapshot".into()));
            }
            self.checkin_by_user.entry(ci.user).or_default().push(i);
            self.checkin_by_session.entry(ci.session).or_default().push(i);
        }
        self.log_by_user.clear();
        for (i, rec) in self.log.iter().enumerate() {
            self.log_by_user.entry(rec.user).or_default().push(i);
        }
        self.sessions_by_conf.clear();
        for (i, sess) in self.sessions.iter().enumerate() {
            if sess.conference.index() >= self.conferences.len() {
                return Err(HiveError::Invalid("dangling session in snapshot".into()));
            }
            self.sessions_by_conf
                .entry(sess.conference)
                .or_default()
                .push(SessionId(i as u32));
        }
        self.papers_by_author.clear();
        self.papers_by_venue.clear();
        self.cited_by.clear();
        for (i, paper) in self.papers.iter().enumerate() {
            let pid = PaperId(i as u32);
            for &a in &paper.authors {
                if a.index() >= self.users.len() {
                    return Err(HiveError::Invalid("dangling author in snapshot".into()));
                }
                self.papers_by_author.entry(a).or_default().push(pid);
            }
            if let Some(v) = paper.venue {
                self.papers_by_venue.entry(v).or_default().push(pid);
            }
            for &c in &paper.citations {
                if c.index() >= self.papers.len() {
                    return Err(HiveError::Invalid("dangling citation in snapshot".into()));
                }
                self.cited_by.entry(c).or_default().push(pid);
            }
        }
        self.presentations_by_session.clear();
        self.presentations_by_paper.clear();
        for (i, pres) in self.presentations.iter().enumerate() {
            let id = PresentationId(i as u32);
            self.presentations_by_session
                .entry(pres.session)
                .or_default()
                .push(id);
            self.presentations_by_paper
                .entry(pres.paper)
                .or_default()
                .push(id);
        }
        self.questions_by_target.clear();
        for (i, q) in self.questions.iter().enumerate() {
            self.questions_by_target
                .entry(q.target)
                .or_default()
                .push(QuestionId(i as u32));
        }
        self.answers_by_question.clear();
        for (i, a) in self.answers.iter().enumerate() {
            self.answers_by_question
                .entry(a.question)
                .or_default()
                .push(AnswerId(i as u32));
        }
        self.comments_by_target.clear();
        for (i, c) in self.comments.iter().enumerate() {
            self.comments_by_target
                .entry(c.target)
                .or_default()
                .push(CommentId(i as u32));
        }
        self.workpads_by_user.clear();
        for (i, pad) in self.workpads.iter().enumerate() {
            self.workpads_by_user
                .entry(pad.owner)
                .or_default()
                .push(WorkpadId(i as u32));
        }
        self.tweets_by_session.clear();
        for (i, t) in self.tweets.iter().enumerate() {
            self.tweets_by_session
                .entry(t.session)
                .or_default()
                .push(TweetId(i as u32));
        }
        Ok(())
    }

    /// Test-support hook: deliberately corrupts the secondary indexes
    /// without touching the primary arenas, the log, the clock, or the
    /// generation counter. Snapshots store only primary data, so a
    /// corrupted index must never survive a dump/reload cycle — the
    /// persist tests and the sim-harness recovery checkers use this to
    /// exercise the "index bug can't be frozen" invariant documented in
    /// `persist.rs`.
    #[doc(hidden)]
    pub fn debug_scramble_indexes(&mut self) {
        self.follow_index.clear();
        self.connection_index.clear();
        self.checkin_by_user.clear();
        self.checkin_by_session.clear();
        self.sessions_by_conf.clear();
        self.papers_by_author.clear();
        self.papers_by_venue.clear();
        self.cited_by.clear();
        self.presentations_by_session.clear();
        self.presentations_by_paper.clear();
        self.questions_by_target.clear();
        self.answers_by_question.clear();
        self.comments_by_target.clear();
        self.workpads_by_user.clear();
        self.tweets_by_session.clear();
        self.log_by_user.clear();
        // Plant wrong entries so "cleared" is not mistaken for "absent".
        if self.users.len() >= 2 {
            self.follow_index.insert((UserId(0), UserId(1)));
            self.papers_by_author
                .entry(UserId(0))
                .or_default()
                .push(PaperId(u32::MAX));
        }
    }

    // ---- activity log -------------------------------------------------------

    /// Full activity log, in order.
    pub fn activity_log(&self) -> &[ActivityRecord] {
        &self.log
    }

    /// A user's activity records, in order.
    pub fn activities_of(&self, user: UserId) -> Vec<&ActivityRecord> {
        self.log_by_user
            .get(&user)
            .map(|v| v.iter().map(|&i| &self.log[i]).collect())
            .unwrap_or_default()
    }

    /// Activity records in a time window `[from, to)`.
    pub fn activities_between(&self, from: Timestamp, to: Timestamp) -> Vec<&ActivityRecord> {
        self.log
            .iter()
            .filter(|r| r.at >= from && r.at < to)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny conference world: 3 users, 1 conference, 2 sessions,
    /// 2 papers, 1 presentation.
    pub(crate) fn tiny_world() -> (HiveDb, Vec<UserId>, ConferenceId, Vec<SessionId>, Vec<PaperId>, PresentationId)
    {
        let mut db = HiveDb::new();
        let users = vec![
            db.add_user(User::new("Zach", "ASU").with_interests(vec!["tensor streams".into()])),
            db.add_user(User::new("Ann", "UniTo").with_interests(vec!["community detection".into()])),
            db.add_user(User::new("Aaron", "NEC").with_interests(vec!["graph processing".into()])),
        ];
        let conf = db.add_conference(Conference::new("EDBT", 2013, "Genoa"));
        let sessions = vec![
            db.add_session(
                Session::new(conf, "Graph Processing", "R1")
                    .with_topics(vec!["large scale graphs".into()]),
            )
            .unwrap(),
            db.add_session(
                Session::new(conf, "Social Media", "R2")
                    .with_topics(vec!["tensor streams".into()]),
            )
            .unwrap(),
        ];
        let p0 = db
            .add_paper(
                Paper::new("Tensor monitoring", vec![users[0]])
                    .with_abstract("compressed sensing of tensor streams")
                    .at_venue(conf),
            )
            .unwrap();
        let p1 = db
            .add_paper(
                Paper::new("Community tracking", vec![users[1], users[2]])
                    .with_abstract("tracking communities in graphs")
                    .at_venue(conf)
                    .citing(vec![p0]),
            )
            .unwrap();
        let pres = db
            .add_presentation(
                Presentation::new(p0, users[0], sessions[1]).with_slides("slide one two"),
            )
            .unwrap();
        (db, users, conf, sessions, vec![p0, p1], pres)
    }

    #[test]
    fn referential_integrity_enforced() {
        let mut db = HiveDb::new();
        assert!(db
            .add_session(Session::new(ConferenceId(0), "x", "t"))
            .is_err());
        let u = db.add_user(User::new("A", "X"));
        assert!(db.add_paper(Paper::new("p", vec![])).is_err());
        assert!(db.add_paper(Paper::new("p", vec![UserId(99)])).is_err());
        let p = db.add_paper(Paper::new("p", vec![u])).unwrap();
        // Presenter must be an author.
        let c = db.add_conference(Conference::new("C", 2013, "X"));
        let s = db.add_session(Session::new(c, "s", "t")).unwrap();
        let other = db.add_user(User::new("B", "Y"));
        assert!(db.add_presentation(Presentation::new(p, other, s)).is_err());
        assert!(db.add_presentation(Presentation::new(p, u, s)).is_ok());
    }

    #[test]
    fn citation_indexes() {
        let (db, _, conf, _, papers, _) = tiny_world();
        assert_eq!(db.citing(papers[0]), &[papers[1]]);
        assert_eq!(db.papers_at(conf).len(), 2);
        assert_eq!(db.get_paper(papers[1]).unwrap().citations, vec![papers[0]]);
    }

    #[test]
    fn follows_and_connections() {
        let (mut db, users, ..) = tiny_world();
        db.follow(users[0], users[1]).unwrap();
        assert!(db.is_following(users[0], users[1]));
        assert!(!db.is_following(users[1], users[0]));
        assert_eq!(db.follow(users[0], users[1]).unwrap_err(), HiveError::Conflict("already following".into()));
        assert!(db.follow(users[0], users[0]).is_err());
        assert_eq!(db.followers(users[1]), vec![users[0]]);

        db.request_connection(users[0], users[2]).unwrap();
        assert!(!db.are_connected(users[0], users[2]));
        assert_eq!(db.pending_requests_for(users[2]), vec![users[0]]);
        // Duplicate request blocked.
        assert!(db.request_connection(users[0], users[2]).is_err());
        assert!(db.request_connection(users[2], users[0]).is_err());
        db.respond_connection(users[2], users[0], true).unwrap();
        assert!(db.are_connected(users[0], users[2]));
        assert!(db.are_connected(users[2], users[0]));
        assert_eq!(db.connections_of(users[0]), vec![users[2]]);
        // Can't respond twice.
        assert!(db.respond_connection(users[2], users[0], true).is_err());
    }

    #[test]
    fn declined_connection_can_be_retried() {
        let (mut db, users, ..) = tiny_world();
        db.request_connection(users[0], users[1]).unwrap();
        db.respond_connection(users[1], users[0], false).unwrap();
        assert!(!db.are_connected(users[0], users[1]));
        // Either side may retry after a decline.
        db.request_connection(users[1], users[0]).unwrap();
        db.respond_connection(users[0], users[1], true).unwrap();
        assert!(db.are_connected(users[0], users[1]));
    }

    #[test]
    fn only_recipient_responds() {
        let (mut db, users, ..) = tiny_world();
        db.request_connection(users[0], users[1]).unwrap();
        assert!(db.respond_connection(users[0], users[1], true).is_err());
    }

    #[test]
    fn checkins_indexed_both_ways() {
        let (mut db, users, _, sessions, ..) = tiny_world();
        db.advance_clock(10);
        db.check_in(users[0], sessions[0]).unwrap();
        db.check_in(users[1], sessions[0]).unwrap();
        db.check_in(users[0], sessions[1]).unwrap();
        assert_eq!(db.checkins_of(users[0]).len(), 2);
        assert_eq!(db.checkins_in(sessions[0]).len(), 2);
        assert_eq!(db.checkins_of(users[0])[0].at, Timestamp(10));
    }

    #[test]
    fn questions_answers_and_broadcast() {
        let (mut db, users, _, sessions, _, pres) = tiny_world();
        let q = db
            .ask_question(
                users[1],
                QaTarget::Presentation(pres),
                "is the equation on slide 3 right?",
                true,
            )
            .unwrap();
        assert_eq!(db.questions_on(QaTarget::Presentation(pres)), &[q]);
        // Broadcast created a tweet on the presentation's session hashtag.
        assert_eq!(db.tweets_in(sessions[1]).len(), 1);
        let a = db.answer_question(users[0], q, "good catch — fixed").unwrap();
        assert_eq!(db.answers_to(q), &[a]);
        assert!(db.ask_question(users[1], QaTarget::Presentation(pres), "  ", false).is_err());
        // Question on a bare session (keynote traffic).
        let q2 = db
            .ask_question(users[2], QaTarget::Session(sessions[0]), "what about scale?", false)
            .unwrap();
        assert_eq!(db.questions_on(QaTarget::Session(sessions[0])), &[q2]);
        assert_eq!(db.tweets_in(sessions[0]).len(), 0, "no broadcast requested");
    }

    #[test]
    fn slide_revision_rules() {
        let (mut db, users, _, _, _, pres) = tiny_world();
        assert!(db.revise_slides(users[1], pres, "hijack").is_err());
        db.revise_slides(users[0], pres, "slide one two three").unwrap();
        assert_eq!(db.get_presentation(pres).unwrap().revision, 1);
    }

    #[test]
    fn workpad_lifecycle() {
        let (mut db, users, _, sessions, papers, _) = tiny_world();
        let pad = db.create_workpad(users[0], "session").unwrap();
        // First pad auto-activates.
        assert_eq!(db.active_workpad_of(users[0]), Some(pad));
        db.workpad_add(users[0], pad, WorkpadItem::Session(sessions[0])).unwrap();
        db.workpad_add(users[0], pad, WorkpadItem::Paper(papers[1])).unwrap();
        // Duplicate rejected.
        assert!(db.workpad_add(users[0], pad, WorkpadItem::Paper(papers[1])).is_err());
        // Foreign pad rejected.
        assert!(db.workpad_add(users[1], pad, WorkpadItem::Paper(papers[0])).is_err());
        // Dangling item rejected.
        assert!(db
            .workpad_add(users[0], pad, WorkpadItem::Paper(PaperId(99)))
            .is_err());
        let note = db.workpad_note(users[0], pad, "look into INI").unwrap();
        assert_eq!(db.get_workpad(pad).unwrap().len(), 3);
        db.workpad_remove(users[0], pad, &note).unwrap();
        assert_eq!(db.get_workpad(pad).unwrap().len(), 2);

        let pad2 = db.create_workpad(users[0], "to investigate later").unwrap();
        assert_eq!(db.active_workpad_of(users[0]), Some(pad), "second pad not auto-active");
        db.activate_workpad(users[0], pad2).unwrap();
        assert_eq!(db.active_workpad_of(users[0]), Some(pad2));
        assert_eq!(db.workpads_of(users[0]).len(), 2);
    }

    #[test]
    fn export_import_collections() {
        let (mut db, users, _, sessions, ..) = tiny_world();
        let pad = db.create_workpad(users[0], "graphs").unwrap();
        db.workpad_add(users[0], pad, WorkpadItem::Session(sessions[0])).unwrap();
        let col = db.export_workpad(users[0], pad).unwrap();
        // Someone else imports it; it becomes their active pad.
        let imported = db.import_collection(users[1], col).unwrap();
        assert_eq!(db.active_workpad_of(users[1]), Some(imported));
        let got = db.get_workpad(imported).unwrap();
        assert_eq!(got.owner, users[1]);
        assert_eq!(got.items, vec![WorkpadItem::Session(sessions[0])]);
        // Export is frozen: later edits to the source don't leak.
        db.workpad_note(users[0], pad, "new note").unwrap();
        assert_eq!(db.get_collection(col).unwrap().items.len(), 1);
    }

    #[test]
    fn getters_report_not_found() {
        let db = HiveDb::new();
        assert!(db.get_user(UserId(0)).is_err());
        assert!(db.get_conference(ConferenceId(5)).is_err());
        assert!(db.get_session(SessionId(1)).is_err());
        assert!(db.get_paper(PaperId(9)).is_err());
        assert!(db.get_presentation(PresentationId(0)).is_err());
        assert!(db.get_question(QuestionId(0)).is_err());
        assert!(db.get_workpad(WorkpadId(0)).is_err());
        assert!(db.get_collection(CollectionId(0)).is_err());
        assert!(db.get_tweet(TweetId(0)).is_err());
    }

    #[test]
    fn actions_on_dangling_entities_fail_cleanly() {
        let (mut db, users, _, sessions, papers, pres) = {
            let t = tiny_world();
            (t.0, t.1, t.2, t.3, t.4, t.5)
        };
        // Unknown actors/targets.
        assert!(db.check_in(UserId(99), sessions[0]).is_err());
        assert!(db.check_in(users[0], SessionId(99)).is_err());
        assert!(db
            .ask_question(users[0], QaTarget::Presentation(PresentationId(99)), "x", false)
            .is_err());
        assert!(db.answer_question(users[0], QuestionId(99), "x").is_err());
        assert!(db.view_paper(users[0], PaperId(99)).is_err());
        assert!(db.view_paper(UserId(99), papers[0]).is_err());
        assert!(db.view_presentation(users[0], PresentationId(99)).is_err());
        assert!(db.follow(UserId(99), users[0]).is_err());
        assert!(db.request_connection(users[0], UserId(99)).is_err());
        assert!(db.create_workpad(UserId(99), "x").is_err());
        assert!(db.export_workpad(users[0], WorkpadId(99)).is_err());
        assert!(db.import_collection(users[0], CollectionId(99)).is_err());
        // Comments validate their target too.
        assert!(db
            .comment(users[0], QaTarget::Session(SessionId(99)), "x")
            .is_err());
        assert!(db.comment(users[0], QaTarget::Presentation(pres), "  ").is_err());
        // Nothing above left a log record beyond the fixture's own.
        let log_len = db.activity_log().len();
        let fresh = tiny_world().0.activity_log().len();
        assert_eq!(log_len, fresh, "failed operations never log activity");
    }

    #[test]
    fn delta_journal_mirrors_every_generation_bump() {
        let (mut db, users, conf, sessions, papers, pres) = tiny_world();
        let g0 = db.generation();
        assert_eq!(db.deltas_since(g0), Some(&[][..]));
        // Every tiny_world mutation was journaled from generation 0.
        assert_eq!(db.deltas_since(0).unwrap().len() as u64, g0);
        db.follow(users[0], users[1]).unwrap();
        db.attend(users[2], conf).unwrap();
        db.check_in(users[0], sessions[0]).unwrap();
        db.view_paper(users[1], papers[0]).unwrap();
        db.ask_question(users[1], QaTarget::Presentation(pres), "why?", false).unwrap();
        db.request_connection(users[0], users[2]).unwrap();
        db.respond_connection(users[2], users[0], true).unwrap();
        let suffix = db.deltas_since(g0).unwrap().to_vec();
        assert_eq!(
            suffix,
            vec![
                DbDelta::Follow { follower: users[0], followee: users[1] },
                DbDelta::Attend { user: users[2], conf },
                DbDelta::CheckIn { user: users[0], session: sessions[0] },
                DbDelta::ViewPaper { user: users[1], paper: papers[0] },
                DbDelta::Discuss {
                    author: users[1],
                    session: sessions[1],
                    paper: Some(papers[0])
                },
                DbDelta::Neutral, // connection request
                DbDelta::Connect { a: users[0], b: users[2] },
            ]
        );
        // Duplicate attendance neither bumps nor journals.
        let g1 = db.generation();
        db.attend(users[2], conf).unwrap();
        assert_eq!(db.generation(), g1);
        // A future generation is unanswerable.
        assert_eq!(db.deltas_since(g1 + 1), None);
        // The replay view of the log agrees with the journal's patchable
        // suffix (Neutral entries aside).
        let replay = db.replay_deltas();
        let patchable: Vec<DbDelta> = db
            .deltas_since(0)
            .unwrap()
            .iter()
            .copied()
            .filter(|d| !matches!(d, DbDelta::Neutral | DbDelta::Structural))
            .collect();
        let replay_dynamic: Vec<DbDelta> = replay
            .iter()
            .copied()
            .filter(|d| !matches!(d, DbDelta::Neutral | DbDelta::Structural))
            .collect();
        assert_eq!(replay_dynamic, patchable);
    }

    #[test]
    fn delta_journal_compacts_past_the_cap() {
        let (mut db, users, _, sessions, ..) = tiny_world();
        let g0 = db.generation();
        for _ in 0..(DB_DELTA_LOG_CAP + 10) {
            db.check_in(users[0], sessions[0]).unwrap();
        }
        assert_eq!(db.deltas_since(g0), None, "window compacted away");
        let recent = db.deltas_since(db.generation() - 5).unwrap();
        assert_eq!(recent.len(), 5);
        assert!(recent
            .iter()
            .all(|d| *d == DbDelta::CheckIn { user: users[0], session: sessions[0] }));
    }

    #[test]
    fn restored_platform_starts_a_fresh_journal() {
        let (db, users, ..) = tiny_world();
        let snap = db.capture_snapshot();
        let restored = HiveDb::restore_snapshot(&snap).unwrap();
        assert_eq!(restored.generation(), 1);
        assert_eq!(restored.deltas_since(1), Some(&[][..]));
        assert_eq!(restored.deltas_since(0), None, "pre-restore stamps rebuild");
        // Replay still sees the persisted activity log.
        assert_eq!(restored.replay_deltas(), db.replay_deltas());
        let _ = users;
    }

    #[test]
    fn activity_log_records_everything() {
        let (mut db, users, conf, sessions, papers, _) = tiny_world();
        let before = db.activity_log().len(); // presentation upload
        db.attend(users[0], conf).unwrap();
        db.check_in(users[0], sessions[0]).unwrap();
        db.view_paper(users[1], papers[0]).unwrap();
        assert_eq!(db.activity_log().len(), before + 3);
        assert_eq!(db.activities_of(users[1]).len(), 1);
        let from = Timestamp(0);
        let to = Timestamp(u64::MAX);
        assert_eq!(db.activities_between(from, to).len(), before + 3);
        // Duplicate attendance not double-logged.
        db.attend(users[0], conf).unwrap();
        assert_eq!(db.activity_log().len(), before + 3);
        assert!(db.attends(users[0], conf));
        assert_eq!(db.attendees(conf), vec![users[0]]);
        assert_eq!(db.conferences_of(users[0]), vec![conf]);
    }
}
