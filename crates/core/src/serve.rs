//! Epoch-snapshot serving: single writer, lock-free concurrent readers.
//!
//! The facade ([`crate::api::Hive`]) serializes every knowledge-backed
//! call behind its `Mutex`-guarded caches — correct, but the opposite
//! of the paper's read-dominated service mix. This module splits the
//! platform into the two roles that mix actually has:
//!
//! * **One writer** owns the [`Hive`] inside a [`HiveServer`] and
//!   applies typed mutators through [`HiveServer::writer`]. Rust's
//!   `&mut` receiver *is* the single-writer discipline — there is no
//!   writer lock because there cannot be a second writer.
//! * **Many readers** hold cloned [`ReadHandle`]s and call
//!   [`ReadHandle::epoch`] to get an immutable [`Arc<Epoch>`] — a
//!   self-consistent bundle of database snapshot, knowledge network,
//!   and relationship-graph snapshot at one generation. Every Table-1
//!   read service is a method on [`Epoch`], so readers never touch a
//!   lock after the sub-microsecond `Arc` clone out of the publish
//!   slot, and an epoch once handed out never changes underneath them.
//!
//! [`HiveServer::publish`] makes the next epoch visible. It leans on
//! the delta machinery from the facade: [`Hive::knowledge`] and
//! `Hive::relationship_graph` patch their cached structures forward
//! through the journaled [`crate::db::DbDelta`] suffix
//! (`Arc::make_mut` + `apply_delta`), falling back to a rebuild when
//! the window is gone or a structural mutation occurred. Because the
//! retiring epoch still holds references to those same `Arc`s,
//! `Arc::make_mut` copies-on-write — the old epoch keeps answering out
//! of its own frozen structures while the new one moves forward.
//!
//! The pure-read service bodies shared by the facade and [`Epoch`]
//! live here as `read_*` free functions over `(&HiveDb,
//! &KnowledgeNetwork, ...)`, so both entry points are the same code by
//! construction — the sim-harness snapshot-consistency oracle then
//! checks the stronger property that any epoch read is bit-identical
//! to a serial replay at that epoch's generation.

use crate::api::{patchable_deltas, Hive, RelSnapshot};
use crate::clock::Timestamp;
use crate::collab::CfModel;
use crate::communities::{self, Communities, Method};
use crate::context::{build_context, ActivityContext, ContextConfig};
use crate::db::index::DbIndexes;
use crate::db::{DbDelta, HiveDb};
use crate::discover::{self, DiscoverConfig, Resource, SearchHit};
use crate::error::Result;
use crate::evidence::{self, RelationshipExplanation};
use crate::feed::{self, FeedDigest, Update};
use crate::history::{self, HistoryHit, HistoryQuery};
use crate::ids::{SessionId, UserId};
use crate::knowledge::KnowledgeNetwork;
use crate::peers::{self, PeerRecConfig, PeerRecommendation};
use crate::ppr::PprCache;
use crate::reports::{self, ReportScope, UpdateReport};
use hive_obs::ServiceKind;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

// ---- shared pure-read service bodies --------------------------------------
//
// Each function is the entire logic of one read service, over explicit
// snapshot arguments. The facade calls them with its live db + cached
// structures; `Epoch` calls them with its frozen bundle.

/// Context-aware search (shared body of `Hive::search`).
pub(crate) fn read_search(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    idx: &DbIndexes,
    ppr: &PprCache,
    user: UserId,
    query: &str,
    cfg: DiscoverConfig,
) -> Vec<SearchHit> {
    let ctx = build_context(db, kn, user, cfg.common.context);
    discover::search(db, kn, idx, ppr, &ctx, query, cfg)
}

/// Contextual resource recommendation (shared body of
/// `Hive::recommend_resources`).
pub(crate) fn read_recommend_resources(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    idx: &DbIndexes,
    ppr: &PprCache,
    user: UserId,
    cfg: DiscoverConfig,
) -> Vec<SearchHit> {
    let ctx = build_context(db, kn, user, cfg.common.context);
    discover::recommend_resources(db, kn, idx, ppr, &ctx, cfg)
}

/// Workpad-contextualized peer recommendation (shared body of
/// `Hive::recommend_peers`).
pub(crate) fn read_recommend_peers(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    ppr: &PprCache,
    user: UserId,
    cfg: PeerRecConfig,
) -> Vec<PeerRecommendation> {
    let ctx = build_context(db, kn, user, cfg.common.context);
    peers::recommend_peers(db, kn, ppr, user, &ctx, cfg)
}

/// Content-profile nearest peers (shared body of `Hive::similar_peers`).
pub(crate) fn read_similar_peers(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    user: UserId,
    k: usize,
) -> Vec<(UserId, f64)> {
    let mut out: Vec<(UserId, f64)> = db
        .user_ids()
        .into_iter()
        .filter(|&v| v != user)
        .map(|v| (v, kn.user_similarity(user, v)))
        .filter(|(_, s)| *s > 0.0)
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out.truncate(k);
    out
}

/// Context-ranked feed highlights (shared body of `Hive::highlights`).
pub(crate) fn read_highlights(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    idx: &DbIndexes,
    user: UserId,
    since: Timestamp,
    k: usize,
) -> Vec<(Update, f64)> {
    let ctx = build_context(db, kn, user, ContextConfig::default());
    feed::highlights(db, kn, idx, &ctx, user, since, k)
}

/// Optionally context-ranked history search (shared body of
/// `Hive::search_history`).
pub(crate) fn read_search_history(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    idx: &DbIndexes,
    query: &HistoryQuery,
    contextual_for: Option<UserId>,
) -> Vec<HistoryHit> {
    let ctx = contextual_for.map(|u| build_context(db, kn, u, ContextConfig::default()));
    history::search_history(db, kn, idx, query, ctx.as_ref())
}

/// Context-biased extractive summary (shared body of
/// `Hive::summarize_resource`).
pub(crate) fn read_summarize(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    user: UserId,
    resource: Resource,
    sentences: usize,
) -> Option<hive_text::DocumentSummary> {
    let ctx = build_context(db, kn, user, ContextConfig::default());
    let text = match resource {
        Resource::Paper(p) => db.get_paper(p).ok()?.text(),
        Resource::Presentation(p) => db.get_presentation(p).ok()?.slides_text.clone(),
        Resource::Session(s) => db.get_session(s).ok()?.text(),
        Resource::User(u) => db.get_user(u).ok()?.profile_text(),
    };
    let terms: Vec<&str> = ctx.terms.iter().map(String::as_str).collect();
    hive_text::summarize_document(
        &text,
        &terms,
        hive_text::DocSumConfig { sentences, ..Default::default() },
    )
}

/// Relationship explanation over a prepared `rel:*` snapshot (shared
/// body of `Hive::explain_relationship`).
pub(crate) fn read_explain(
    db: &HiveDb,
    kn: &KnowledgeNetwork,
    rel: &RelSnapshot,
    a: UserId,
    b: UserId,
) -> RelationshipExplanation {
    evidence::explain_relationship_with_view(db, kn, &rel.store, &rel.view, a, b, 3)
}

// ---- the epoch ------------------------------------------------------------

/// An immutable, self-consistent platform snapshot at one database
/// generation: the database copy, the knowledge network, and the
/// relationship-graph snapshot all agree with each other, forever.
///
/// Every Table-1 read service is available as a method; calls are
/// lock-free (the epoch owns everything it reads) and record the same
/// per-[`ServiceKind`] observability as the facade.
pub struct Epoch {
    generation: u64,
    seq: u64,
    db: Arc<HiveDb>,
    kn: Arc<KnowledgeNetwork>,
    rel: Arc<RelSnapshot>,
    idx: Arc<DbIndexes>,
    ppr: Arc<PprCache>,
}

impl Epoch {
    /// Cold-builds an epoch from a database snapshot: knowledge network
    /// and relationship graph rebuilt from scratch, no delta patching.
    /// This is the serving-layer analogue of the oracle's "cold
    /// platform" — the reference answer a published epoch must match
    /// bit-for-bit.
    pub fn rebuild(db: Arc<HiveDb>) -> Epoch {
        let generation = db.generation();
        let kn = Arc::new(KnowledgeNetwork::build(&db));
        let store = kn.to_store(&db);
        let view = hive_store::GraphView::build(&store);
        let idx = Arc::new(DbIndexes::build(&db));
        Epoch {
            generation,
            seq: 0,
            db,
            kn,
            rel: Arc::new(RelSnapshot { generation, store, view }),
            idx,
            ppr: Arc::new(PprCache::new()),
        }
    }

    /// The database generation this epoch freezes.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Publish sequence number (0 for the boot epoch, +1 per publish).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Read access to the frozen database snapshot.
    pub fn db(&self) -> &HiveDb {
        &self.db
    }

    /// The frozen knowledge network.
    pub fn knowledge(&self) -> &KnowledgeNetwork {
        &self.kn
    }

    /// The frozen secondary-index set.
    pub fn indexes(&self) -> &DbIndexes {
        &self.idx
    }

    /// Same span/counter protocol as `Hive::service`, over the frozen
    /// clock — epoch reads and facade reads are indistinguishable to
    /// observability except for where their time goes.
    fn svc<T>(&self, kind: ServiceKind, f: impl FnOnce(&Self) -> T) -> T {
        let token = hive_obs::service_enter(kind, self.db.now().ticks());
        let out = f(self);
        hive_obs::service_exit(kind, token, self.db.now().ticks());
        out
    }

    /// The user's activity context at this epoch.
    pub fn activity_context(&self, user: UserId) -> ActivityContext {
        self.svc(ServiceKind::ActivityContext, |e| {
            build_context(&e.db, &e.kn, user, ContextConfig::default())
        })
    }

    /// Peer recommendation at this epoch.
    pub fn recommend_peers(&self, user: UserId, cfg: PeerRecConfig) -> Vec<PeerRecommendation> {
        self.svc(ServiceKind::PeerRecommendation, |e| {
            read_recommend_peers(&e.db, &e.kn, &e.ppr, user, cfg)
        })
    }

    /// Content-profile nearest peers at this epoch.
    pub fn similar_peers(&self, user: UserId, k: usize) -> Vec<(UserId, f64)> {
        self.svc(ServiceKind::SimilarPeers, |e| read_similar_peers(&e.db, &e.kn, user, k))
    }

    /// Session-attendance prediction at this epoch.
    pub fn predict_sessions(&self, user: UserId, k: usize) -> Vec<(SessionId, f64)> {
        self.svc(ServiceKind::SessionPrediction, |e| {
            peers::predict_sessions(&e.db, &e.kn, user, k)
        })
    }

    /// Context-aware search at this epoch.
    pub fn search(&self, user: UserId, query: &str, cfg: DiscoverConfig) -> Vec<SearchHit> {
        self.svc(ServiceKind::Search, |e| read_search(&e.db, &e.kn, &e.idx, &e.ppr, user, query, cfg))
    }

    /// Contextual resource recommendation at this epoch.
    pub fn recommend_resources(&self, user: UserId, cfg: DiscoverConfig) -> Vec<SearchHit> {
        self.svc(ServiceKind::ResourceRecommendation, |e| {
            read_recommend_resources(&e.db, &e.kn, &e.idx, &e.ppr, user, cfg)
        })
    }

    /// Collaborative-filtering recommendations at this epoch.
    pub fn collaborative_recommendations(&self, user: UserId, k: usize) -> Vec<(Resource, f64)> {
        self.svc(ServiceKind::CollaborativeFiltering, |e| {
            CfModel::build(&e.db).recommend_user_based(user, 10, k)
        })
    }

    /// Relationship explanation at this epoch (pre-built `rel:*`
    /// snapshot, so only the path search itself runs).
    pub fn explain_relationship(&self, a: UserId, b: UserId) -> RelationshipExplanation {
        self.svc(ServiceKind::RelationshipExplanation, |e| {
            read_explain(&e.db, &e.kn, &e.rel, a, b)
        })
    }

    /// Community discovery at this epoch.
    pub fn discover_communities(&self) -> Communities {
        self.svc(ServiceKind::CommunityDiscovery, |e| {
            communities::discover(&e.kn, Method::Louvain)
        })
    }

    /// Context-biased resource summary at this epoch.
    pub fn summarize_resource(
        &self,
        user: UserId,
        resource: Resource,
        sentences: usize,
    ) -> Option<hive_text::DocumentSummary> {
        self.svc(ServiceKind::Summarization, |e| {
            read_summarize(&e.db, &e.kn, user, resource, sentences)
        })
    }

    /// Update report at this epoch.
    pub fn update_report(
        &self,
        scope: &ReportScope,
        from: Timestamp,
        to: Timestamp,
        max_rows: usize,
    ) -> UpdateReport {
        self.svc(ServiceKind::UpdateReport, |e| {
            reports::update_report(&e.db, &e.idx, scope, from, to, max_rows)
        })
    }

    /// Trending sessions at this epoch.
    pub fn trending_sessions(
        &self,
        from: Timestamp,
        to: Timestamp,
        k: usize,
    ) -> Vec<(SessionId, f64)> {
        self.svc(ServiceKind::Trends, |e| {
            crate::trends::trending_sessions(&e.db, from, to, k, crate::trends::HeatWeights::default())
        })
    }

    /// Rising topics at this epoch.
    pub fn rising_topics(
        &self,
        prev: (Timestamp, Timestamp),
        cur: (Timestamp, Timestamp),
        k: usize,
    ) -> Vec<(String, f64)> {
        self.svc(ServiceKind::Trends, |e| crate::trends::rising_topics(&e.db, prev, cur, k, 2))
    }

    /// Feed updates at this epoch.
    pub fn updates_for(&self, user: UserId, since: Timestamp) -> Vec<Update> {
        self.svc(ServiceKind::Feed, |e| feed::updates_for(&e.db, &e.idx, user, since))
    }

    /// Context-ranked highlights at this epoch.
    pub fn highlights(&self, user: UserId, since: Timestamp, k: usize) -> Vec<(Update, f64)> {
        self.svc(ServiceKind::Feed, |e| read_highlights(&e.db, &e.kn, &e.idx, user, since, k))
    }

    /// Feed digest at this epoch.
    pub fn digest(&self, user: UserId, since: Timestamp) -> FeedDigest {
        self.svc(ServiceKind::Feed, |e| feed::digest(&e.db, &e.idx, user, since))
    }

    /// Session ticker at this epoch.
    pub fn session_ticker(&self, session: SessionId, since: Timestamp) -> Vec<String> {
        self.svc(ServiceKind::Feed, |e| feed::session_ticker(&e.db, session, since))
    }

    /// History search at this epoch.
    pub fn search_history(
        &self,
        query: &HistoryQuery,
        contextual_for: Option<UserId>,
    ) -> Vec<HistoryHit> {
        self.svc(ServiceKind::HistorySearch, |e| {
            read_search_history(&e.db, &e.kn, &e.idx, query, contextual_for)
        })
    }

    /// Bucketed activity timeline at this epoch.
    pub fn timeline(
        &self,
        actors: &[UserId],
        bucket_width: u64,
    ) -> Vec<(Timestamp, HashMap<&'static str, usize>)> {
        self.svc(ServiceKind::Timeline, |e| history::timeline(&e.db, &e.idx, actors, bucket_width))
    }
}

// ---- the server -----------------------------------------------------------

/// The publish slot readers clone epochs out of. An `RwLock` rather
/// than a `Mutex` because the hold times are asymmetric and tiny: a
/// read holds it for one `Arc` clone, a publish for one pointer swap —
/// neither ever covers a build (the serving-layer analogue of the
/// facade's lock-scope discipline, lint R11).
struct Slot {
    current: RwLock<Arc<Epoch>>,
}

impl Slot {
    fn get(&self) -> Arc<Epoch> {
        match self.current.read() {
            Ok(g) => Arc::clone(&g),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    fn set(&self, next: Arc<Epoch>) {
        match self.current.write() {
            Ok(mut g) => *g = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
    }
}

/// A cloneable, lock-free read path into the serving layer. Handing a
/// `ReadHandle` to a reader task gives it [`ReadHandle::epoch`] and
/// nothing else — readers structurally cannot mutate or block the
/// writer.
#[derive(Clone)]
pub struct ReadHandle {
    slot: Arc<Slot>,
}

impl ReadHandle {
    /// The most recently published epoch. One `Arc` clone under a read
    /// guard; all subsequent service calls on the returned epoch touch
    /// no shared state at all.
    pub fn epoch(&self) -> Arc<Epoch> {
        hive_obs::count("serve.read.calls", 1);
        self.slot.get()
    }

    /// The generation of the most recently published epoch — lets a
    /// long-lived reader measure how far behind its pinned epoch is.
    pub fn current_generation(&self) -> u64 {
        self.slot.get().generation
    }
}

/// Single-writer serving wrapper around a [`Hive`].
///
/// The server owns the facade; mutators go through
/// [`HiveServer::writer`] (the full typed mutation surface of
/// [`Hive`]) and become visible to readers only at the next
/// [`HiveServer::publish`]. Readers come from [`HiveServer::reader`]
/// and scale without locks — see the module docs for the full
/// contract.
pub struct HiveServer {
    hive: Hive,
    slot: Arc<Slot>,
}

impl HiveServer {
    /// Boots a server over a (possibly pre-populated) database and
    /// publishes the boot epoch (seq 0) so readers never observe an
    /// empty slot.
    pub fn new(db: HiveDb) -> HiveServer {
        let hive = Hive::new(db);
        let boot = Arc::new(Self::snapshot_epoch(&hive, 0));
        HiveServer { hive, slot: Arc::new(Slot { current: RwLock::new(boot) }) }
    }

    /// Bundles the facade's current generation into an epoch. The
    /// knowledge network and rel snapshot come from the facade's
    /// delta-maintained caches: if the journal still covers the gap
    /// those patch forward in O(|delta|) (`Arc::make_mut` copies on
    /// write, because the retiring epoch still pins the old `Arc`s),
    /// otherwise they rebuild.
    fn snapshot_epoch(hive: &Hive, seq: u64) -> Epoch {
        let generation = hive.db().generation();
        let kn = hive.knowledge();
        let rel = hive.relationship_graph(&kn);
        let idx = hive.indexes();
        let ppr = hive.ppr();
        Epoch { generation, seq, db: Arc::new(hive.db().clone()), kn, rel, idx, ppr }
    }

    /// The typed mutation surface. `&mut self` is the single-writer
    /// guarantee: only one caller can ever be applying mutations, and
    /// readers never see them until [`HiveServer::publish`].
    pub fn writer(&mut self) -> &mut Hive {
        &mut self.hive
    }

    /// Read access to the owned facade (the writer's own live view —
    /// *not* snapshot-isolated; readers want [`HiveServer::reader`]).
    pub fn hive(&self) -> &Hive {
        &self.hive
    }

    /// A new lock-free read handle (cheap; clone freely per reader).
    pub fn reader(&self) -> ReadHandle {
        ReadHandle { slot: Arc::clone(&self.slot) }
    }

    /// The most recently published epoch.
    pub fn current(&self) -> Arc<Epoch> {
        self.slot.get()
    }

    /// Makes everything the writer has applied since the last publish
    /// visible to readers as one new immutable epoch. A no-op (and
    /// `serve.epoch.noop`) when the generation has not moved; otherwise
    /// counts whether the derived structures could patch forward
    /// through the delta log (`serve.epoch.patch`) or had to rebuild
    /// (`serve.epoch.rebuild`), under an `epoch-publish` span.
    pub fn publish(&mut self) -> Arc<Epoch> {
        let generation = self.hive.db().generation();
        let prev = self.current();
        if prev.generation == generation {
            hive_obs::count("serve.epoch.noop", 1);
            return prev;
        }
        let span = hive_obs::span_enter("epoch-publish", self.hive.db().now().ticks());
        if patchable_deltas(self.hive.db(), prev.generation).is_some() {
            hive_obs::count("serve.epoch.patch", 1);
        } else {
            hive_obs::count("serve.epoch.rebuild", 1);
        }
        let next = Arc::new(Self::snapshot_epoch(&self.hive, prev.seq + 1));
        self.slot.set(Arc::clone(&next));
        hive_obs::span_exit(span, self.hive.db().now().ticks());
        hive_obs::count("serve.epoch.publish", 1);
        hive_obs::gauge_max("serve.epoch.generation", generation);
        hive_obs::gauge_max("serve.epoch.gen_stride", generation - prev.generation);
        next
    }

    // ---- replication hooks --------------------------------------------------

    /// The writer's current mutation generation (what the next publish
    /// would stamp). Replication leaders frame log entries between
    /// consecutive values of this counter.
    pub fn generation(&self) -> u64 {
        self.hive.db().generation()
    }

    /// The classified delta stream journaled after `generation`, oldest
    /// first, or `None` when the ring journal no longer covers that
    /// window (the replication layer must fall back to a checkpoint).
    pub fn deltas_since(&self, generation: u64) -> Option<Vec<DbDelta>> {
        self.hive.db().deltas_since(generation).map(<[DbDelta]>::to_vec)
    }

    /// Exports a replication checkpoint of the writer's current state:
    /// the full snapshot stamped with its generation, for follower
    /// bootstrap and gap/truncation recovery.
    pub fn checkpoint(&self) -> crate::persist::ReplicaCheckpoint {
        self.hive.db().checkpoint()
    }

    /// Boots a server from a replication checkpoint: the restored
    /// database adopts the checkpoint's generation and the boot epoch
    /// is published from it, so a follower's first served epoch is the
    /// leader state the checkpoint captured.
    pub fn from_checkpoint(cp: &crate::persist::ReplicaCheckpoint) -> Result<HiveServer> {
        Ok(HiveServer::new(HiveDb::from_checkpoint(cp)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, WorldBuilder};

    fn server() -> HiveServer {
        HiveServer::new(WorldBuilder::new(SimConfig::small()).build().db)
    }

    #[test]
    fn boot_epoch_matches_facade_bit_for_bit() {
        let s = server();
        let epoch = s.current();
        let h = s.hive();
        let u = h.db().user_ids()[0];
        let q = "tensor stream sketch";
        let facade: Vec<(String, u64)> = h
            .search(u, q, DiscoverConfig::default())
            .into_iter()
            .map(|x| (x.title, x.score.to_bits()))
            .collect();
        let served: Vec<(String, u64)> = epoch
            .search(u, q, DiscoverConfig::default())
            .into_iter()
            .map(|x| (x.title, x.score.to_bits()))
            .collect();
        assert_eq!(facade, served);
        let fp: Vec<(UserId, u64)> =
            h.similar_peers(u, 5).into_iter().map(|(v, s)| (v, s.to_bits())).collect();
        let ep: Vec<(UserId, u64)> =
            epoch.similar_peers(u, 5).into_iter().map(|(v, s)| (v, s.to_bits())).collect();
        assert_eq!(fp, ep);
    }

    #[test]
    fn old_epoch_is_frozen_while_the_writer_moves_on() {
        let mut s = server();
        let users = s.hive().db().user_ids();
        let old = s.current();
        let old_follows = old.db().activity_log().len();
        s.writer().follow(users[0], users[7]).ok();
        s.writer().follow(users[1], users[8]).ok();
        let fresh = s.publish();
        assert!(fresh.generation() > old.generation(), "publish advances the generation");
        assert_eq!(fresh.seq(), old.seq() + 1);
        assert_eq!(
            old.db().activity_log().len(),
            old_follows,
            "retired epoch must not observe later writes"
        );
        // The retired epoch still answers (out of its own frozen kn).
        let _ = old.similar_peers(users[0], 3);
    }

    #[test]
    fn publish_without_mutation_is_a_noop() {
        let mut s = server();
        let e1 = s.publish();
        let e2 = s.publish();
        assert!(Arc::ptr_eq(&e1, &e2), "same generation republishes the same epoch");
    }

    #[test]
    fn published_epoch_matches_cold_rebuild() {
        let mut s = server();
        let users = s.hive().db().user_ids();
        let session = s.hive().db().session_ids()[0];
        s.writer().follow(users[2], users[3]).ok();
        s.writer().check_in(users[2], session).ok();
        let epoch = s.publish();
        let cold = Epoch::rebuild(Arc::new(epoch.db().clone()));
        let u = users[2];
        let a: Vec<(UserId, u64)> =
            epoch.similar_peers(u, 5).into_iter().map(|(v, s)| (v, s.to_bits())).collect();
        let b: Vec<(UserId, u64)> =
            cold.similar_peers(u, 5).into_iter().map(|(v, s)| (v, s.to_bits())).collect();
        assert_eq!(a, b, "patched-forward epoch must equal cold rebuild");
    }

    #[test]
    fn read_handles_survive_the_server_and_count_reads() {
        hive_obs::with_level(hive_obs::Level::Counts, || {
            hive_obs::reset();
            let s = server();
            let r1 = s.reader();
            let r2 = r1.clone();
            assert_eq!(r1.epoch().generation(), r2.epoch().generation());
            assert_eq!(r1.current_generation(), s.current().generation());
            let snap = hive_obs::snapshot();
            assert_eq!(snap.counter("serve.read.calls"), 2);
            hive_obs::reset();
        });
    }
}
