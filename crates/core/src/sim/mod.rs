//! Synthetic conference-world generator and attendee-behaviour simulator.
//!
//! The paper's deployments (ACM Multimedia 2011, SIGMOD 2012, two ASU
//! courses) ran on production data we do not have. This module generates
//! a statistically structured substitute: researchers with topic
//! mixtures, conference series with topical sessions, papers with
//! realistic co-authorship/citation structure, and a behavioural
//! simulation (check-ins, questions, answers, follows, connections,
//! workpads) driven by topic affinity — so every service exercises the
//! same code paths it would on real traces.
//!
//! The generator also *plants ground truth* used by the experiments:
//!
//! * `planted_communities` — users grouped by primary topic (E5),
//! * `held_out_connections` — same-topic pairs that *will* connect but
//!   are withheld from the database, the positives for recommender
//!   evaluation (E4).

use crate::db::HiveDb;
use crate::ids::{ConferenceId, PresentationId, SessionId, UserId};
use crate::model::*;
use hive_graph::Graph;
use hive_rng::{Rng, SliceRandom};

mod text_gen;
pub use text_gen::{
    topic_abstract, topic_count, topic_phrase, topic_question, topic_sentence, topic_title,
    TOPIC_NAMES,
};

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// RNG seed: equal seeds give identical worlds.
    pub seed: u64,
    /// Number of researchers.
    pub users: usize,
    /// Number of topics (capped by the built-in topic vocabulary).
    pub topics: usize,
    /// Conference editions (cycled over 2 series, consecutive years).
    pub conferences: usize,
    /// Sessions per edition.
    pub sessions_per_conf: usize,
    /// Papers per edition.
    pub papers_per_conf: usize,
    /// Max authors per paper.
    pub max_authors: usize,
    /// Citations drawn per paper (to earlier papers, topic-biased).
    pub citations_per_paper: usize,
    /// Probability an attendee checks into a session of their own topic
    /// (vs a random one) at each slot.
    pub topic_affinity: f64,
    /// Expected questions per user per conference.
    pub question_rate: f64,
    /// Probability a question gets answered.
    pub answer_rate: f64,
    /// Follows per user (topic-biased).
    pub follows_per_user: usize,
    /// Connections per user (topic-biased, auto-accepted).
    pub connections_per_user: usize,
    /// Fraction of would-be connections withheld as evaluation positives.
    pub holdout_fraction: f64,
    /// Probability a user attends any given edition (1.0 = everyone
    /// everywhere, matching the small MM'11-style deployments; lower
    /// values make conference co-participation a discriminative signal).
    pub attendance_prob: f64,
}

impl SimConfig {
    /// A laptop-instant world (~30 users).
    pub fn small() -> Self {
        SimConfig {
            seed: 42,
            users: 30,
            topics: 4,
            conferences: 2,
            sessions_per_conf: 6,
            papers_per_conf: 15,
            max_authors: 3,
            citations_per_paper: 3,
            topic_affinity: 0.8,
            question_rate: 1.5,
            answer_rate: 0.7,
            follows_per_user: 3,
            connections_per_user: 2,
            holdout_fraction: 0.3,
            attendance_prob: 1.0,
        }
    }

    /// The default experiment world (~150 users).
    pub fn medium() -> Self {
        SimConfig {
            users: 150,
            topics: 8,
            conferences: 3,
            sessions_per_conf: 10,
            papers_per_conf: 40,
            ..Self::small()
        }
    }

    /// A stress world (~500 users).
    pub fn large() -> Self {
        SimConfig {
            users: 500,
            topics: 12,
            conferences: 4,
            sessions_per_conf: 16,
            papers_per_conf: 90,
            ..Self::small()
        }
    }
}

/// A generated world: the populated platform plus planted ground truth.
#[derive(Clone, Debug)]
pub struct World {
    /// The populated platform database.
    pub db: HiveDb,
    /// Primary topic per user (index-aligned with user ids).
    pub user_topics: Vec<usize>,
    /// Users grouped by primary topic — the planted communities.
    pub planted_communities: Vec<Vec<UserId>>,
    /// Same-topic pairs withheld from the DB; they represent future
    /// connections a good recommender should predict.
    pub held_out_connections: Vec<(UserId, UserId)>,
    /// All conference editions, in creation order.
    pub conferences: Vec<ConferenceId>,
    /// All sessions with their topics.
    pub session_topics: Vec<(SessionId, usize)>,
}

impl World {
    /// The topic of a user.
    pub fn topic_of(&self, u: UserId) -> usize {
        self.user_topics[u.index()]
    }
}

/// Builds [`World`]s from a [`SimConfig`].
pub struct WorldBuilder {
    cfg: SimConfig,
}

impl WorldBuilder {
    /// Creates a builder.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.users >= 4, "need at least 4 users");
        assert!(cfg.topics >= 2, "need at least 2 topics");
        WorldBuilder { cfg }
    }

    /// Generates the world.
    pub fn build(&self) -> World {
        let cfg = self.cfg;
        let topics = cfg.topics.min(topic_count());
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let mut db = HiveDb::new();

        // ---- users -----------------------------------------------------
        let institutions = [
            "ASU", "UniTo", "MIT", "EPFL", "NUS", "TU Wien", "Tsinghua", "UCSD",
        ];
        let mut user_topics = Vec::with_capacity(cfg.users);
        let mut users: Vec<UserId> = Vec::with_capacity(cfg.users);
        for i in 0..cfg.users {
            let topic = i % topics; // balanced planted communities
            user_topics.push(topic);
            let interests: Vec<String> = (0..3)
                .map(|_| topic_phrase(topic, &mut rng))
                .collect();
            let user = User::new(
                format!("Researcher {i}"),
                institutions[rng.gen_range(0..institutions.len())],
            )
            .with_interests(interests)
            .with_groups(vec![format!("{}-wg", TOPIC_NAMES[topic])]);
            users.push(db.add_user(user));
        }
        let planted_communities: Vec<Vec<UserId>> = (0..topics)
            .map(|t| {
                users
                    .iter()
                    .copied()
                    .filter(|u| user_topics[u.index()] == t)
                    .collect()
            })
            .collect();

        // ---- conferences, sessions ---------------------------------------
        let series = ["EDBT", "SIGMOD"];
        let mut conferences = Vec::new();
        let mut session_topics: Vec<(SessionId, usize)> = Vec::new();
        let mut sessions_of_conf: Vec<Vec<SessionId>> = Vec::new();
        for e in 0..cfg.conferences {
            let mut conf = Conference::new(
                series[e % series.len()],
                2011 + (e / series.len()) as u32,
                "Genoa",
            );
            conf.starts_at = db.now().plus(100);
            let cid = db.add_conference(conf);
            conferences.push(cid);
            let mut sess = Vec::new();
            for s in 0..cfg.sessions_per_conf {
                let topic = s % topics;
                let title = format!(
                    "{} ({} {})",
                    text_gen::topic_title(topic, &mut rng),
                    series[e % series.len()],
                    s
                );
                let topics_text: Vec<String> =
                    (0..2).map(|_| topic_phrase(topic, &mut rng)).collect();
                let session = Session::new(cid, title, format!("R{}", s % 4 + 1))
                    .with_topics(topics_text)
                    .scheduled(db.now().plus(100 + (s as u64 / 4) * 90), 90);
                let Ok(sid) = db.add_session(session) else { continue; };
                session_topics.push((sid, topic));
                sess.push(sid);
            }
            sessions_of_conf.push(sess);
        }

        // ---- papers with co-authorship + citations -------------------------
        let mut papers_by_topic: Vec<Vec<crate::ids::PaperId>> = vec![Vec::new(); topics];
        let mut presentations: Vec<(PresentationId, usize)> = Vec::new();
        for (e, &cid) in conferences.iter().enumerate() {
            for _ in 0..cfg.papers_per_conf {
                let topic = rng.gen_range(0..topics);
                let pool = &planted_communities[topic];
                let n_authors = rng.gen_range(1..=cfg.max_authors.min(pool.len()));
                let mut authors: Vec<UserId> = pool
                    .choose_multiple(&mut rng, n_authors)
                    .copied()
                    .collect();
                // Occasional cross-topic collaborator keeps the graph connected.
                if rng.gen_bool(0.15) {
                    let other = users[rng.gen_range(0..users.len())];
                    if !authors.contains(&other) {
                        authors.push(other);
                    }
                }
                let mut citations = Vec::new();
                let same_topic = &papers_by_topic[topic];
                for _ in 0..cfg.citations_per_paper {
                    // 70% same-topic citations, 30% anywhere.
                    let candidate = if !same_topic.is_empty() && rng.gen_bool(0.7) {
                        Some(same_topic[rng.gen_range(0..same_topic.len())])
                    } else {
                        let all: Vec<_> = papers_by_topic.iter().flatten().copied().collect();
                        if all.is_empty() {
                            None
                        } else {
                            Some(all[rng.gen_range(0..all.len())])
                        }
                    };
                    if let Some(c) = candidate {
                        if !citations.contains(&c) {
                            citations.push(c);
                        }
                    }
                }
                let title = text_gen::topic_title(topic, &mut rng);
                let abstract_text = text_gen::topic_abstract(topic, &mut rng);
                let Ok(pid) = db.add_paper(
                    Paper::new(title, authors.clone())
                        .with_abstract(abstract_text)
                        .at_venue(cid)
                        .citing(citations),
                ) else {
                    continue;
                };
                papers_by_topic[topic].push(pid);
                // Present at a topically matching session of this conference.
                let matching: Vec<SessionId> = sessions_of_conf[e]
                    .iter()
                    .copied()
                    .filter(|s| {
                        session_topics
                            .iter()
                            .any(|(sid, t)| sid == s && *t == topic)
                    })
                    .collect();
                if let Some(&session) = matching.first() {
                    let slides = text_gen::topic_abstract(topic, &mut rng);
                    if let Ok(pres) = db.add_presentation(
                        Presentation::new(pid, authors[0], session).with_slides(slides),
                    ) {
                        presentations.push((pres, topic));
                    }
                }
            }
        }

        // ---- behaviour: attendance, check-ins, Q&A --------------------------
        for (e, &cid) in conferences.iter().enumerate() {
            // Attendance per edition (1.0 by default: small deployments,
            // matching MM'11 where the platform served the whole venue).
            let mut attendees: Vec<UserId> = Vec::new();
            for &u in &users {
                if (cfg.attendance_prob >= 1.0 || rng.gen_bool(cfg.attendance_prob.max(0.0)))
                    && db.attend(u, cid).is_ok()
                {
                    attendees.push(u);
                }
            }
            for &u in &attendees {
                let my_topic = user_topics[u.index()];
                // Two check-ins per edition.
                for _ in 0..2 {
                    db.advance_clock(rng.gen_range(1..10));
                    let session = if rng.gen_bool(cfg.topic_affinity) {
                        // A session of my topic at this conference.
                        sessions_of_conf[e]
                            .iter()
                            .copied()
                            .find(|s| {
                                session_topics.iter().any(|(sid, t)| sid == s && *t == my_topic)
                            })
                            .unwrap_or(sessions_of_conf[e][0])
                    } else {
                        sessions_of_conf[e][rng.gen_range(0..sessions_of_conf[e].len())]
                    };
                    let _ = db.check_in(u, session);
                }
                // Questions.
                if rng.gen_bool((cfg.question_rate / 2.0).min(1.0)) {
                    let topical: Vec<&(PresentationId, usize)> = presentations
                        .iter()
                        .filter(|(_, t)| *t == my_topic)
                        .collect();
                    if let Some(&&(pres, topic)) = topical.choose(&mut rng) {
                        db.advance_clock(1);
                        let asked = db.ask_question(
                            u,
                            QaTarget::Presentation(pres),
                            text_gen::topic_question(topic, &mut rng),
                            rng.gen_bool(0.3),
                        );
                        if let Ok(q) = asked {
                            if rng.gen_bool(cfg.answer_rate) {
                                let presenter =
                                    db.get_presentation(pres).map(|pr| pr.presenter);
                                if let Ok(presenter) = presenter {
                                    if presenter != u {
                                        db.advance_clock(1);
                                        let _ = db.answer_question(
                                            presenter,
                                            q,
                                            text_gen::topic_sentence(topic, &mut rng),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                // Some browsing.
                if rng.gen_bool(0.5) {
                    let all_papers: Vec<_> =
                        papers_by_topic.iter().flatten().copied().collect();
                    if !all_papers.is_empty() {
                        let p = all_papers[rng.gen_range(0..all_papers.len())];
                        db.advance_clock(1);
                        let _ = db.view_paper(u, p);
                    }
                }
            }
        }

        // ---- social graph: follows + connections, with held-out pairs -------
        let mut held_out: Vec<(UserId, UserId)> = Vec::new();
        for &u in &users {
            let my_topic = user_topics[u.index()];
            let peers: Vec<UserId> = planted_communities[my_topic]
                .iter()
                .copied()
                .filter(|&v| v != u)
                .collect();
            // Follows.
            for &v in peers.choose_multiple(&mut rng, cfg.follows_per_user.min(peers.len())) {
                db.advance_clock(1);
                let _ = db.follow(u, v); // duplicate follows are fine to skip
            }
            // Connections (some held out as evaluation positives).
            let chosen: Vec<UserId> = peers
                .choose_multiple(&mut rng, cfg.connections_per_user.min(peers.len()))
                .copied()
                .collect();
            for v in chosen {
                if db.are_connected(u, v) {
                    continue;
                }
                if rng.gen_bool(cfg.holdout_fraction) {
                    if u < v {
                        held_out.push((u, v));
                    } else {
                        held_out.push((v, u));
                    }
                    continue;
                }
                db.advance_clock(1);
                if db.request_connection(u, v).is_ok() {
                    let _ = db.respond_connection(v, u, true);
                }
            }
        }
        held_out.sort();
        held_out.dedup();
        // Don't keep pairs that connected anyway through the other side.
        held_out.retain(|&(a, b)| !db.are_connected(a, b));

        World {
            db,
            user_topics,
            planted_communities,
            held_out_connections: held_out,
            conferences,
            session_topics,
        }
    }
}

/// Slices the activity log into per-epoch user-interaction graphs
/// (co-check-ins and Q&A exchanges within each window) — the input for
/// community tracking (E5).
pub fn epoch_interaction_graphs(db: &HiveDb, epoch_width: u64) -> Vec<Graph> {
    assert!(epoch_width > 0);
    let horizon = db.now().ticks();
    let n_epochs = (horizon / epoch_width + 1) as usize;
    let mut graphs: Vec<Graph> = (0..n_epochs)
        .map(|_| {
            let mut g = Graph::new();
            for u in db.user_ids() {
                g.add_node(u.iri());
            }
            g
        })
        .collect();
    // Co-check-ins: users in the same session within the same epoch.
    use std::collections::HashMap;
    let mut by_epoch_session: HashMap<(usize, crate::ids::SessionId), Vec<UserId>> =
        HashMap::new();
    for s in db.session_ids() {
        for ci in db.checkins_in(s) {
            let e = (ci.at.ticks() / epoch_width) as usize;
            by_epoch_session.entry((e, s)).or_default().push(ci.user);
        }
    }
    for ((e, _), mut members) in by_epoch_session {
        members.sort();
        members.dedup();
        let g = &mut graphs[e];
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                let (na, nb) = (g.add_node(a.iri()), g.add_node(b.iri()));
                g.add_undirected_edge(na, nb, 1.0);
            }
        }
    }
    // Q&A exchanges.
    for q in db.question_ids() {
        let Ok(question) = db.get_question(q) else { continue; };
        for &aid in db.answers_to(q) {
            let Ok(answer) = db.get_answer(aid) else { continue; };
            if answer.author == question.author {
                continue;
            }
            let e = (answer.answered_at.ticks() / epoch_width) as usize;
            if e < graphs.len() {
                let g = &mut graphs[e];
                let (na, nb) = (
                    g.add_node(question.author.iri()),
                    g.add_node(answer.author.iri()),
                );
                g.add_undirected_edge(na, nb, 1.5);
            }
        }
    }
    graphs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worlds_are_deterministic() {
        let a = WorldBuilder::new(SimConfig::small()).build();
        let b = WorldBuilder::new(SimConfig::small()).build();
        assert_eq!(a.db.user_ids().len(), b.db.user_ids().len());
        assert_eq!(a.db.paper_ids().len(), b.db.paper_ids().len());
        assert_eq!(a.db.activity_log().len(), b.db.activity_log().len());
        assert_eq!(a.held_out_connections, b.held_out_connections);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorldBuilder::new(SimConfig::small()).build();
        let b = WorldBuilder::new(SimConfig { seed: 7, ..SimConfig::small() }).build();
        // Same sizes, different content (log lengths will almost surely
        // differ because behaviour is stochastic).
        assert_eq!(a.db.user_ids().len(), b.db.user_ids().len());
        assert_ne!(
            a.db.activity_log().len(),
            b.db.activity_log().len(),
            "different seeds should yield different behaviour traces"
        );
    }

    #[test]
    fn world_is_populated_and_consistent() {
        let w = WorldBuilder::new(SimConfig::small()).build();
        let cfg = SimConfig::small();
        assert_eq!(w.db.user_ids().len(), cfg.users);
        assert_eq!(w.db.conference_ids().len(), cfg.conferences);
        assert_eq!(
            w.db.session_ids().len(),
            cfg.conferences * cfg.sessions_per_conf
        );
        assert_eq!(w.db.paper_ids().len(), cfg.conferences * cfg.papers_per_conf);
        assert!(!w.db.presentation_ids().is_empty());
        assert!(!w.db.question_ids().is_empty());
        // Every presentation presenter is an author (DB invariant held).
        for p in w.db.presentation_ids() {
            let pres = w.db.get_presentation(p).unwrap();
            assert!(w.db.get_paper(pres.paper).unwrap().has_author(pres.presenter));
        }
    }

    #[test]
    fn planted_communities_partition_users() {
        let w = WorldBuilder::new(SimConfig::small()).build();
        let total: usize = w.planted_communities.iter().map(Vec::len).sum();
        assert_eq!(total, SimConfig::small().users);
        for (t, members) in w.planted_communities.iter().enumerate() {
            for &u in members {
                assert_eq!(w.topic_of(u), t);
            }
        }
    }

    #[test]
    fn holdout_pairs_not_connected() {
        let w = WorldBuilder::new(SimConfig::small()).build();
        assert!(!w.held_out_connections.is_empty(), "some pairs withheld");
        for &(a, b) in &w.held_out_connections {
            assert!(!w.db.are_connected(a, b));
            // Held-out pairs share a topic (they are plausible futures).
            assert_eq!(w.topic_of(a), w.topic_of(b));
        }
    }

    #[test]
    fn partial_attendance_respected() {
        let cfg = SimConfig { attendance_prob: 0.5, ..SimConfig::small() };
        let w = WorldBuilder::new(cfg).build();
        let total_users = cfg.users;
        for &c in &w.conferences {
            let n = w.db.attendees(c).len();
            assert!(n < total_users, "some users skip edition {c:?}: {n}");
            assert!(n > 0, "someone attends edition {c:?}");
        }
        // Activity only comes from attendees: every check-in user attended.
        for s in w.db.session_ids() {
            let conf = w.db.get_session(s).unwrap().conference;
            for ci in w.db.checkins_in(s) {
                assert!(w.db.attends(ci.user, conf));
            }
        }
    }

    #[test]
    #[ignore = "stress world (~500 users); run with --ignored"]
    fn large_world_builds_and_serves() {
        let w = WorldBuilder::new(SimConfig::large()).build();
        assert_eq!(w.db.user_ids().len(), SimConfig::large().users);
        let hive = crate::api::Hive::new(w.db);
        let u = hive.db().user_ids()[0];
        assert!(!hive
            .recommend_peers(u, crate::peers::PeerRecConfig::default())
            .is_empty());
        assert!(hive.discover_communities().count() >= 2);
    }

    #[test]
    fn epoch_graphs_cover_the_log() {
        let w = WorldBuilder::new(SimConfig::small()).build();
        let graphs = epoch_interaction_graphs(&w.db, 50);
        assert!(!graphs.is_empty());
        let total_edges: usize = graphs.iter().map(|g| g.edge_count()).sum();
        assert!(total_edges > 0, "co-checkins should create edges");
        for g in &graphs {
            assert_eq!(g.node_count(), SimConfig::small().users);
        }
    }
}
