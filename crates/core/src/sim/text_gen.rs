//! Deterministic topical text generation for the simulator.
//!
//! Each topic owns a small vocabulary of domain terms; titles, abstracts,
//! questions and answers are produced by filling sentence templates with
//! topic terms, so documents of the same topic are measurably similar
//! under TF-IDF (which is what the content-similarity services need) and
//! distinct across topics.

use hive_rng::{Rng, SliceRandom};

/// Topic display names, index-aligned with the vocabularies.
pub const TOPIC_NAMES: [&str; 12] = [
    "tensor-streams",
    "graph-processing",
    "transactions",
    "query-optimization",
    "information-retrieval",
    "privacy",
    "stream-processing",
    "crowdsourcing",
    "recommendation",
    "semantic-web",
    "spatial-data",
    "machine-learning",
];

/// Per-topic term pools.
const TOPIC_TERMS: [&[&str]; 12] = [
    &["tensor", "stream", "compressed", "sensing", "sketch", "ensemble", "monitoring", "decomposition"],
    &["graph", "vertex", "edge", "community", "partition", "traversal", "pagerank", "clustering"],
    &["transaction", "concurrency", "isolation", "snapshot", "locking", "serializable", "recovery", "logging"],
    &["query", "optimizer", "plan", "cardinality", "join", "selectivity", "cost", "execution"],
    &["retrieval", "ranking", "relevance", "index", "inverted", "document", "scoring", "feedback"],
    &["privacy", "anonymization", "differential", "disclosure", "perturbation", "utility", "sensitive", "attack"],
    &["window", "operator", "latency", "throughput", "backpressure", "watermark", "event", "pipeline"],
    &["crowd", "worker", "task", "quality", "aggregation", "incentive", "labeling", "assignment"],
    &["recommendation", "collaborative", "filtering", "preference", "rating", "neighborhood", "factorization", "coldstart"],
    &["ontology", "rdf", "sparql", "reasoning", "triple", "linked", "schema", "entity"],
    &["spatial", "trajectory", "index", "nearest", "neighbor", "region", "road", "moving"],
    &["model", "training", "feature", "gradient", "inference", "regression", "embedding", "classifier"],
];

const GLUE_SENTENCES: [&str; 5] = [
    "We evaluate the technique on several workloads",
    "The system scales to realistic data sizes",
    "Experimental results confirm the design choices",
    "A careful implementation keeps overheads low",
    "We discuss trade-offs and limitations",
];

/// Number of available topics.
pub fn topic_count() -> usize {
    TOPIC_TERMS.len()
}

fn terms(topic: usize) -> &'static [&'static str] {
    TOPIC_TERMS[topic % TOPIC_TERMS.len()]
}

/// A short topical phrase (2 terms).
pub fn topic_phrase(topic: usize, rng: &mut Rng) -> String {
    let pool = terms(topic);
    let a = pool[rng.gen_range(0..pool.len())];
    let mut b = pool[rng.gen_range(0..pool.len())];
    while b == a {
        b = pool[rng.gen_range(0..pool.len())];
    }
    format!("{a} {b}")
}

/// A paper/session title.
pub fn topic_title(topic: usize, rng: &mut Rng) -> String {
    let pool = terms(topic);
    let patterns = [
        format!(
            "Scalable {} {} via {}",
            pool[rng.gen_range(0..pool.len())],
            pool[rng.gen_range(0..pool.len())],
            pool[rng.gen_range(0..pool.len())]
        ),
        format!(
            "Efficient {} for {} {}",
            pool[rng.gen_range(0..pool.len())],
            pool[rng.gen_range(0..pool.len())],
            pool[rng.gen_range(0..pool.len())]
        ),
        format!(
            "On {} and {} in modern systems",
            pool[rng.gen_range(0..pool.len())],
            pool[rng.gen_range(0..pool.len())]
        ),
    ];
    patterns[rng.gen_range(0..patterns.len())].clone()
}

/// One topical sentence.
pub fn topic_sentence(topic: usize, rng: &mut Rng) -> String {
    let pool = terms(topic);
    format!(
        "The {} {} approach improves {} under {} workloads.",
        pool[rng.gen_range(0..pool.len())],
        pool[rng.gen_range(0..pool.len())],
        pool[rng.gen_range(0..pool.len())],
        pool[rng.gen_range(0..pool.len())]
    )
}

/// A multi-sentence abstract (4 topical + 1 glue sentence).
pub fn topic_abstract(topic: usize, rng: &mut Rng) -> String {
    let mut out = String::new();
    for _ in 0..4 {
        out.push_str(&topic_sentence(topic, rng));
        out.push(' ');
    }
    out.push_str(GLUE_SENTENCES.choose(rng).copied().unwrap_or(""));
    out.push('.');
    out
}

/// A question about a presentation.
pub fn topic_question(topic: usize, rng: &mut Rng) -> String {
    let pool = terms(topic);
    format!(
        "How does the {} handle {} when the {} grows?",
        pool[rng.gen_range(0..pool.len())],
        pool[rng.gen_range(0..pool.len())],
        pool[rng.gen_range(0..pool.len())]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = Rng::seed_from_u64(5);
        let mut r2 = Rng::seed_from_u64(5);
        assert_eq!(topic_abstract(0, &mut r1), topic_abstract(0, &mut r2));
        assert_eq!(topic_title(3, &mut r1), topic_title(3, &mut r2));
    }

    #[test]
    fn phrases_use_topic_vocabulary() {
        let mut rng = Rng::seed_from_u64(1);
        for t in 0..topic_count() {
            let p = topic_phrase(t, &mut rng);
            let words: Vec<&str> = p.split(' ').collect();
            assert_eq!(words.len(), 2);
            for w in words {
                assert!(terms(t).contains(&w), "{w} not in topic {t}");
            }
        }
    }

    #[test]
    fn same_topic_texts_share_vocabulary() {
        let mut rng = Rng::seed_from_u64(2);
        let a = topic_abstract(0, &mut rng);
        let b = topic_abstract(0, &mut rng);
        let c = topic_abstract(5, &mut rng);
        let overlap = |x: &str, y: &str| {
            let sx: std::collections::HashSet<&str> = x.split_whitespace().collect();
            let sy: std::collections::HashSet<&str> = y.split_whitespace().collect();
            sx.intersection(&sy).count()
        };
        assert!(
            overlap(&a, &b) > overlap(&a, &c),
            "same-topic abstracts should overlap more"
        );
    }

    #[test]
    fn names_and_pools_aligned() {
        assert_eq!(TOPIC_NAMES.len(), TOPIC_TERMS.len());
        for pool in TOPIC_TERMS {
            assert!(pool.len() >= 4);
        }
    }
}
