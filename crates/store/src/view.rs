//! `GraphView` — a generation-stamped CSR snapshot of the triple graph.
//!
//! Path search and relationship explanation used to rebuild a transient
//! adjacency map from a full store scan on **every query**. A
//! [`GraphView`] does that scan once, flattening the resource-to-resource
//! edges into a dictionary-encoded CSR layout (dense node index +
//! offsets + flat edge array, as in RDF-3X-style in-memory RDF engines),
//! and stamps itself with the store's mutation [`TripleStore::generation`].
//! Callers cache the view and check [`GraphView::is_current`]: any
//! insert / remove / re-weight bumps the store generation and
//! invalidates the snapshot.
//!
//! Both edge directions are materialized (reverse hops carry
//! `forward = false`), so one view serves directed and undirected
//! queries; per-query predicate filters apply at traversal time.

use crate::dict::TermId;
use crate::store::{StoredTriple, TripleStore};
use crate::term::Term;
use std::collections::HashMap;

/// Tiny strictly-positive per-hop cost; see [`GraphView::build`].
pub(crate) const HOP_EPSILON: f64 = 1e-9;

/// One traversable hop in a [`GraphView`]: neighbor node, the
/// underlying stored triple, the additive cost `-ln(weight) +
/// HOP_EPSILON`, and whether the hop follows the stored direction.
#[derive(Clone, Copy, Debug)]
pub struct ViewEdge {
    /// Neighbor term id.
    pub to: TermId,
    /// The stored triple this hop traverses (direction as stored).
    pub triple: StoredTriple,
    /// Additive search cost of the hop.
    pub cost: f64,
    /// True for subject→object hops, false for reverse traversal.
    pub forward: bool,
}

/// Dictionary-encoded CSR adjacency snapshot of a [`TripleStore`],
/// stamped with the generation it was built from.
#[derive(Clone, Debug, Default)]
pub struct GraphView {
    generation: u64,
    index: HashMap<TermId, u32>,
    nodes: Vec<TermId>,
    off: Vec<u32>,
    edges: Vec<ViewEdge>,
}

impl GraphView {
    /// Scans `store` once and flattens every resource-to-resource edge
    /// (literal objects are attributes, not hops) in SPO order, both
    /// directions. The per-hop cost gets a strictly positive epsilon:
    /// weight-1.0 edges would otherwise cost 0 and let shortest-path
    /// search return zero-cost *walks* containing loops.
    pub fn build(store: &TripleStore) -> Self {
        hive_obs::count("store.view.build", 1);
        let mut index: HashMap<TermId, u32> = HashMap::new();
        let mut nodes: Vec<TermId> = Vec::new();
        let mut per: Vec<Vec<ViewEdge>> = Vec::new();
        let mut intern = |t: TermId, nodes: &mut Vec<TermId>, per: &mut Vec<Vec<ViewEdge>>| {
            *index.entry(t).or_insert_with(|| {
                nodes.push(t);
                per.push(Vec::new());
                (nodes.len() - 1) as u32
            }) as usize
        };
        for t in store.iter() {
            let obj_is_resource =
                store.dict().resolve(t.o).map(Term::is_resource).unwrap_or(false);
            if !obj_is_resource {
                continue;
            }
            let cost = -t.weight.ln() + HOP_EPSILON;
            let si = intern(t.s, &mut nodes, &mut per);
            per[si].push(ViewEdge { to: t.o, triple: t, cost, forward: true });
            let oi = intern(t.o, &mut nodes, &mut per);
            per[oi].push(ViewEdge { to: t.s, triple: t, cost, forward: false });
        }
        let mut off = Vec::with_capacity(nodes.len() + 1);
        let mut edges = Vec::with_capacity(per.iter().map(Vec::len).sum());
        off.push(0u32);
        for list in per {
            edges.extend(list);
            off.push(edges.len() as u32);
        }
        GraphView { generation: store.generation(), index, nodes, off, edges }
    }

    /// The store generation this snapshot was built from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True while no mutation has touched `store` since this view was
    /// built — the cache-validity check.
    pub fn is_current(&self, store: &TripleStore) -> bool {
        let current = self.generation == store.generation();
        hive_obs::count(if current { "store.view.hit" } else { "store.view.miss" }, 1);
        current
    }

    /// Number of graph nodes (resources that take part in at least one
    /// traversable edge).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed hops (2× the traversable triples).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All hops leaving `n`, forward and reverse; empty for nodes
    /// without traversable edges.
    pub fn edges_of(&self, n: TermId) -> &[ViewEdge] {
        match self.index.get(&n) {
            Some(&i) => {
                let (lo, hi) = (self.off[i as usize] as usize, self.off[i as usize + 1] as usize);
                &self.edges[lo..hi]
            }
            None => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn small_store() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert(Term::iri("a"), Term::iri("rel"), Term::iri("b"), 0.9).unwrap();
        st.insert(Term::iri("b"), Term::iri("rel"), Term::iri("c"), 0.5).unwrap();
        st.insert(Term::iri("a"), Term::iri("name"), Term::str("Ann"), 1.0).unwrap();
        st
    }

    #[test]
    fn view_flattens_both_directions_and_skips_literals() {
        let st = small_store();
        let view = GraphView::build(&st);
        // a, b, c — the literal "Ann" is not a node.
        assert_eq!(view.node_count(), 3);
        assert_eq!(view.edge_count(), 4, "two triples, both directions");
        let b = st.dict().get(&Term::iri("b")).unwrap();
        let hops = view.edges_of(b);
        assert_eq!(hops.len(), 2);
        assert!(hops.iter().any(|e| e.forward) && hops.iter().any(|e| !e.forward));
        let unknown = view.edges_of(TermId(9999));
        assert!(unknown.is_empty());
    }

    #[test]
    fn view_staleness_tracks_store_generation() {
        let mut st = small_store();
        let view = GraphView::build(&st);
        assert!(view.is_current(&st));
        st.set_weight(&Term::iri("a"), &Term::iri("rel"), &Term::iri("b"), 0.1).unwrap();
        assert!(!view.is_current(&st), "re-weighting must invalidate");
        let rebuilt = GraphView::build(&st);
        assert!(rebuilt.is_current(&st));
        assert!(rebuilt.generation() > view.generation());
    }
}
