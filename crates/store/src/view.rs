//! `GraphView` — a generation-stamped CSR snapshot of the triple graph.
//!
//! Path search and relationship explanation used to rebuild a transient
//! adjacency map from a full store scan on **every query**. A
//! [`GraphView`] does that scan once, flattening the resource-to-resource
//! edges into a dictionary-encoded CSR layout (dense node index +
//! offsets + flat edge array, as in RDF-3X-style in-memory RDF engines),
//! and stamps itself with the store's mutation [`TripleStore::generation`].
//!
//! The layout is **canonical**: nodes are sorted by term id and each
//! row's hops are sorted by `(s, p, o, direction)`. Canonical order is
//! what makes *delta maintenance* possible — [`GraphView::apply_delta`]
//! replays the store's [`DeltaOp`] suffix into the CSR in place and the
//! result is bit-identical to a cold [`GraphView::build`], because both
//! are pure functions of the current triple set. A stale view is
//! detected via [`GraphView::is_current`]; callers then patch with
//! `apply_delta` and only fall back to a rebuild when the delta window
//! was compacted away or exceeds [`REBUILD_FRACTION`] of the view.
//!
//! Both edge directions are materialized (reverse hops carry
//! `forward = false`), so one view serves directed and undirected
//! queries; per-query predicate filters apply at traversal time.

use crate::dict::TermId;
use crate::store::{DeltaOp, StoredTriple, TripleStore};
use crate::term::Term;
use std::collections::BTreeMap;

/// Tiny strictly-positive per-hop cost; see [`GraphView::build`].
pub(crate) const HOP_EPSILON: f64 = 1e-9;

/// `apply_delta` falls back to a rebuild when the op count exceeds this
/// fraction of the current hop count (plus a small absolute floor, so
/// tiny views always patch). Each op costs an `O(row + shift)` splice;
/// past a quarter of the view a single `O(V + E)` rebuild is cheaper.
pub const REBUILD_FRACTION: f64 = 0.25;

/// One traversable hop in a [`GraphView`]: neighbor node, the
/// underlying stored triple, the additive cost `-ln(weight) +
/// HOP_EPSILON`, and whether the hop follows the stored direction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ViewEdge {
    /// Neighbor term id.
    pub to: TermId,
    /// The stored triple this hop traverses (direction as stored).
    pub triple: StoredTriple,
    /// Additive search cost of the hop.
    pub cost: f64,
    /// True for subject→object hops, false for reverse traversal.
    pub forward: bool,
}

/// The canonical within-row sort key: stored triple, forward first.
fn edge_key(e: &ViewEdge) -> (u32, u32, u32, bool) {
    (e.triple.s.0, e.triple.p.0, e.triple.o.0, !e.forward)
}

fn hop_cost(weight: f64) -> f64 {
    -weight.ln() + HOP_EPSILON
}

/// Dictionary-encoded CSR adjacency snapshot of a [`TripleStore`],
/// stamped with the generation it reflects. Node lookup is a binary
/// search over the sorted node array (no hash map to keep in sync).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GraphView {
    generation: u64,
    nodes: Vec<TermId>,
    off: Vec<u32>,
    edges: Vec<ViewEdge>,
}

impl GraphView {
    /// Scans `store` once and flattens every resource-to-resource edge
    /// (literal objects are attributes, not hops) into canonical order,
    /// both directions. The per-hop cost gets a strictly positive
    /// epsilon: weight-1.0 edges would otherwise cost 0 and let
    /// shortest-path search return zero-cost *walks* containing loops.
    pub fn build(store: &TripleStore) -> Self {
        hive_obs::count("store.view.build", 1);
        let mut rows: BTreeMap<TermId, Vec<ViewEdge>> = BTreeMap::new();
        for t in store.iter() {
            let obj_is_resource =
                store.dict().resolve(t.o).map(Term::is_resource).unwrap_or(false);
            if !obj_is_resource {
                continue;
            }
            let cost = hop_cost(t.weight);
            rows.entry(t.s)
                .or_default()
                .push(ViewEdge { to: t.o, triple: t, cost, forward: true });
            rows.entry(t.o)
                .or_default()
                .push(ViewEdge { to: t.s, triple: t, cost, forward: false });
        }
        let mut nodes = Vec::with_capacity(rows.len());
        let mut off = Vec::with_capacity(rows.len() + 1);
        let mut edges = Vec::with_capacity(rows.values().map(Vec::len).sum());
        off.push(0u32);
        for (node, mut list) in rows {
            list.sort_unstable_by(|a, b| edge_key(a).cmp(&edge_key(b)));
            nodes.push(node);
            edges.extend(list);
            off.push(edges.len() as u32);
        }
        GraphView { generation: store.generation(), nodes, off, edges }
    }

    /// Patches this view in place with the store's delta suffix since
    /// the view's generation. Returns `false` — leaving the view
    /// untouched — when the window was compacted away or the delta is
    /// large enough that a rebuild is cheaper; the caller then calls
    /// [`GraphView::build`]. On success the view is bit-identical to a
    /// cold rebuild at the store's current generation (the canonical
    /// layout is a pure function of the triple set).
    pub fn apply_delta(&mut self, store: &TripleStore) -> bool {
        if self.generation == store.generation() {
            return true;
        }
        let Some(ops) = store.deltas_since(self.generation) else {
            hive_obs::count("store.view.rebuild_fallback", 1);
            return false;
        };
        if ops.len() as f64 > (self.edges.len() as f64) * REBUILD_FRACTION + 16.0 {
            hive_obs::count("store.view.rebuild_fallback", 1);
            return false;
        }
        if self.off.is_empty() {
            self.off.push(0); // a Default view is an empty zero-generation view
        }
        let ops: Vec<DeltaOp> = ops.to_vec();
        for op in ops {
            match op {
                DeltaOp::Upsert { s, p, o, weight } => {
                    if !store.dict().resolve(o).map(Term::is_resource).unwrap_or(false) {
                        continue; // attribute triple: never a hop
                    }
                    let triple = StoredTriple { s, p, o, weight };
                    let cost = hop_cost(weight);
                    self.upsert_edge(s, ViewEdge { to: o, triple, cost, forward: true });
                    self.upsert_edge(o, ViewEdge { to: s, triple, cost, forward: false });
                }
                DeltaOp::Remove { s, p, o } => {
                    self.remove_edge(s, (s.0, p.0, o.0, false));
                    self.remove_edge(o, (s.0, p.0, o.0, true));
                }
            }
        }
        self.generation = store.generation();
        hive_obs::count("store.view.delta", 1);
        true
    }

    /// Inserts or replaces one hop in `row`'s sorted edge slice,
    /// creating the row at its sorted position if needed.
    fn upsert_edge(&mut self, row: TermId, e: ViewEdge) {
        let ri = match self.nodes.binary_search(&row) {
            Ok(i) => i,
            Err(i) => {
                let at = self.off[i];
                self.nodes.insert(i, row);
                self.off.insert(i + 1, at);
                i
            }
        };
        let (lo, hi) = (self.off[ri] as usize, self.off[ri + 1] as usize);
        let key = edge_key(&e);
        match self.edges[lo..hi].binary_search_by(|x| edge_key(x).cmp(&key)) {
            Ok(j) => self.edges[lo + j] = e,
            Err(j) => {
                self.edges.insert(lo + j, e);
                for o in &mut self.off[ri + 1..] {
                    *o += 1;
                }
            }
        }
    }

    /// Removes one hop from `row` (keyed by `(s, p, o, !forward)`),
    /// dropping the row entirely when it becomes empty — `build` never
    /// emits edge-less nodes, and a patched view must match it.
    fn remove_edge(&mut self, row: TermId, key: (u32, u32, u32, bool)) {
        let Ok(ri) = self.nodes.binary_search(&row) else {
            return;
        };
        let (lo, hi) = (self.off[ri] as usize, self.off[ri + 1] as usize);
        let Ok(j) = self.edges[lo..hi].binary_search_by(|x| edge_key(x).cmp(&key)) else {
            return;
        };
        self.edges.remove(lo + j);
        for o in &mut self.off[ri + 1..] {
            *o -= 1;
        }
        if self.off[ri] == self.off[ri + 1] {
            self.nodes.remove(ri);
            self.off.remove(ri + 1);
        }
    }

    /// The store generation this snapshot reflects.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True while no mutation has touched `store` since this view was
    /// built or last patched — the cache-validity check.
    pub fn is_current(&self, store: &TripleStore) -> bool {
        let current = self.generation == store.generation();
        hive_obs::count(if current { "store.view.hit" } else { "store.view.miss" }, 1);
        current
    }

    /// Number of graph nodes (resources that take part in at least one
    /// traversable edge).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed hops (2× the traversable triples).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Dense row index of `n` in this view, if it has any edges. Rows
    /// are numbered `0..node_count()` in ascending term-id order.
    pub fn node_index(&self, n: TermId) -> Option<usize> {
        self.nodes.binary_search(&n).ok()
    }

    /// The term id of row `i` (inverse of [`GraphView::node_index`]).
    pub fn node_at(&self, i: usize) -> TermId {
        self.nodes[i]
    }

    /// All hops leaving row `i` (see [`GraphView::node_index`]).
    pub fn edges_of_index(&self, i: usize) -> &[ViewEdge] {
        let (lo, hi) = (self.off[i] as usize, self.off[i + 1] as usize);
        &self.edges[lo..hi]
    }

    /// All hops leaving `n`, forward and reverse; empty for nodes
    /// without traversable edges.
    pub fn edges_of(&self, n: TermId) -> &[ViewEdge] {
        match self.node_index(n) {
            Some(i) => self.edges_of_index(i),
            None => &[],
        }
    }

    /// Bitwise comparison against `other` (float fields compared by
    /// bits, not by `==`): the delta-vs-rebuild oracle used by property
    /// tests and the sim harness. Returns the first difference found.
    pub fn bitwise_diff(&self, other: &GraphView) -> Option<String> {
        if self.generation != other.generation {
            return Some(format!("generation {} != {}", self.generation, other.generation));
        }
        if self.nodes != other.nodes {
            return Some(format!("node sets differ: {} vs {}", self.nodes.len(), other.nodes.len()));
        }
        if self.off != other.off {
            return Some("row offsets differ".to_string());
        }
        for (i, (a, b)) in self.edges.iter().zip(&other.edges).enumerate() {
            let same = a.to == b.to
                && a.forward == b.forward
                && a.triple.s == b.triple.s
                && a.triple.p == b.triple.p
                && a.triple.o == b.triple.o
                && a.triple.weight.to_bits() == b.triple.weight.to_bits()
                && a.cost.to_bits() == b.cost.to_bits();
            if !same {
                return Some(format!("edge {i} differs: {a:?} vs {b:?}"));
            }
        }
        if self.edges.len() != other.edges.len() {
            return Some(format!("edge counts differ: {} vs {}", self.edges.len(), other.edges.len()));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn small_store() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert(Term::iri("a"), Term::iri("rel"), Term::iri("b"), 0.9).unwrap();
        st.insert(Term::iri("b"), Term::iri("rel"), Term::iri("c"), 0.5).unwrap();
        st.insert(Term::iri("a"), Term::iri("name"), Term::str("Ann"), 1.0).unwrap();
        st
    }

    #[test]
    fn view_flattens_both_directions_and_skips_literals() {
        let st = small_store();
        let view = GraphView::build(&st);
        // a, b, c — the literal "Ann" is not a node.
        assert_eq!(view.node_count(), 3);
        assert_eq!(view.edge_count(), 4, "two triples, both directions");
        let b = st.dict().get(&Term::iri("b")).unwrap();
        let hops = view.edges_of(b);
        assert_eq!(hops.len(), 2);
        assert!(hops.iter().any(|e| e.forward) && hops.iter().any(|e| !e.forward));
        let unknown = view.edges_of(TermId(9999));
        assert!(unknown.is_empty());
    }

    #[test]
    fn view_staleness_tracks_store_generation() {
        let mut st = small_store();
        let view = GraphView::build(&st);
        assert!(view.is_current(&st));
        st.set_weight(&Term::iri("a"), &Term::iri("rel"), &Term::iri("b"), 0.1).unwrap();
        assert!(!view.is_current(&st), "re-weighting must invalidate");
        let rebuilt = GraphView::build(&st);
        assert!(rebuilt.is_current(&st));
        assert!(rebuilt.generation() > view.generation());
    }

    #[test]
    fn apply_delta_matches_rebuild_for_each_mutation_kind() {
        let mut st = small_store();
        let mut view = GraphView::build(&st);
        // Insert (new nodes), re-weight, attribute insert, remove.
        st.insert(Term::iri("c"), Term::iri("rel"), Term::iri("d"), 0.7).unwrap();
        st.set_weight(&Term::iri("a"), &Term::iri("rel"), &Term::iri("b"), 0.2).unwrap();
        st.insert(Term::iri("d"), Term::iri("name"), Term::str("Dee"), 1.0).unwrap();
        st.remove(&Term::iri("b"), &Term::iri("rel"), &Term::iri("c"));
        assert!(view.apply_delta(&st), "small delta must patch in place");
        assert!(view.is_current(&st));
        let rebuilt = GraphView::build(&st);
        assert_eq!(view.bitwise_diff(&rebuilt), None);
    }

    #[test]
    fn apply_delta_handles_self_loops_and_row_removal() {
        let mut st = TripleStore::new();
        st.insert(Term::iri("x"), Term::iri("rel"), Term::iri("y"), 0.5).unwrap();
        let mut view = GraphView::build(&st);
        st.insert(Term::iri("x"), Term::iri("rel"), Term::iri("x"), 0.4).unwrap();
        st.remove(&Term::iri("x"), &Term::iri("rel"), &Term::iri("y"));
        assert!(view.apply_delta(&st));
        let rebuilt = GraphView::build(&st);
        assert_eq!(view.bitwise_diff(&rebuilt), None);
        assert_eq!(view.node_count(), 1, "y's row must vanish with its last hop");
    }

    #[test]
    fn apply_delta_refuses_compacted_or_oversized_windows() {
        let mut st = small_store();
        let mut view = GraphView::build(&st);
        // An oversized delta (relative to this tiny view's floor) is
        // simulated by exceeding the absolute floor of 16 + 25% of 4.
        for i in 0..40 {
            st.insert(Term::iri(format!("m{i}")), Term::iri("rel"), Term::iri("m0"), 0.5)
                .unwrap();
        }
        assert!(!view.apply_delta(&st), "oversized delta must fall back");
        // The untouched view still patches cleanly after a rebuild.
        let mut fresh = GraphView::build(&st);
        st.insert(Term::iri("z"), Term::iri("rel"), Term::iri("m0"), 0.3).unwrap();
        assert!(fresh.apply_delta(&st));
        assert_eq!(fresh.bitwise_diff(&GraphView::build(&st)), None);
    }
}
