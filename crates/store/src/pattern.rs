//! Triple patterns with variables and variable bindings.

use crate::dict::TermId;
use crate::term::Term;
use std::collections::BTreeMap;

/// One position of a triple pattern: a variable or a bound term.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PatternTerm {
    /// A named variable, e.g. `?x`.
    Var(String),
    /// A concrete term that must match exactly.
    Bound(Term),
}

impl PatternTerm {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> Self {
        PatternTerm::Var(name.into())
    }

    /// Convenience constructor for a bound term.
    pub fn bound(term: Term) -> Self {
        PatternTerm::Bound(term)
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            PatternTerm::Var(v) => Some(v),
            PatternTerm::Bound(_) => None,
        }
    }
}

/// A triple pattern `(s, p, o)` where each position may be a variable.
#[derive(Clone, Debug, PartialEq)]
pub struct Pattern {
    /// Subject position.
    pub s: PatternTerm,
    /// Predicate position.
    pub p: PatternTerm,
    /// Object position.
    pub o: PatternTerm,
    /// Minimum weight a triple must carry to match (0 = any).
    pub min_weight: f64,
}

impl Pattern {
    /// Creates a pattern with no weight filter.
    pub fn new(s: PatternTerm, p: PatternTerm, o: PatternTerm) -> Self {
        Pattern { s, p, o, min_weight: 0.0 }
    }

    /// Adds a minimum-weight filter.
    pub fn with_min_weight(mut self, w: f64) -> Self {
        self.min_weight = w;
        self
    }

    /// Names of the variables appearing in this pattern, in S/P/O order,
    /// deduplicated.
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for t in [&self.s, &self.p, &self.o] {
            if let Some(v) = t.as_var() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

/// A partial assignment of variables to term ids during BGP evaluation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Binding {
    map: BTreeMap<String, TermId>,
}

impl Binding {
    /// An empty binding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Value bound to `var`, if any.
    pub fn get(&self, var: &str) -> Option<TermId> {
        self.map.get(var).copied()
    }

    /// Extends the binding with `var = id`. Returns `None` on conflict.
    pub fn extended(&self, var: &str, id: TermId) -> Option<Binding> {
        match self.map.get(var) {
            Some(&existing) if existing != id => None,
            Some(_) => Some(self.clone()),
            None => {
                let mut next = self.clone();
                next.map.insert(var.to_string(), id);
                Some(next)
            }
        }
    }

    /// Iterates `(variable, id)` pairs in variable-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, TermId)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_deduplicated() {
        let p = Pattern::new(
            PatternTerm::var("x"),
            PatternTerm::bound(Term::iri("p")),
            PatternTerm::var("x"),
        );
        assert_eq!(p.variables(), vec!["x"]);
    }

    #[test]
    fn binding_extension_and_conflict() {
        let b = Binding::new();
        let b1 = b.extended("x", TermId(1)).unwrap();
        assert_eq!(b1.get("x"), Some(TermId(1)));
        // Re-binding to the same value succeeds.
        assert!(b1.extended("x", TermId(1)).is_some());
        // Conflict fails.
        assert!(b1.extended("x", TermId(2)).is_none());
        // Fresh variable extends.
        let b2 = b1.extended("y", TermId(3)).unwrap();
        assert_eq!(b2.len(), 2);
    }
}
