//! A SPARQL-flavored textual query language for the weighted store.
//!
//! R2DF/R2DB (paper refs \[11\]\[12\]) expose ranked queries over weighted
//! RDF through a SPARQL-like surface; this module provides the
//! corresponding front end for the BGP engine:
//!
//! ```text
//! SELECT ?who ?paper WHERE {
//!     ?who  <rel:coauthor>  <user:3> .
//!     ?who  <rel:authored>  ?paper [0.5] .
//! } LIMIT 10
//! ```
//!
//! * IRIs in angle brackets, variables as `?name`.
//! * String literals in double quotes; bare integers/floats as literals.
//! * An optional `[w]` after a triple sets its minimum weight.
//! * `SELECT *` (or an empty projection) returns every variable.
//! * Keywords are case-insensitive; the trailing dot of the last pattern
//!   is optional.

use crate::error::StoreError;
use crate::pattern::{Pattern, PatternTerm};
use crate::query::BgpQuery;
use crate::store::TripleStore;
use crate::term::Term;

/// A parsed query: projection + the underlying BGP.
#[derive(Clone, Debug)]
pub struct ParsedQuery {
    /// Projected variable names (empty = all variables).
    pub projection: Vec<String>,
    /// The conjunctive pattern query.
    pub bgp: BgpQuery,
    /// Variables appearing in the patterns, in first-appearance order.
    pub variables: Vec<String>,
}

/// One result row: projected variable values in projection order, plus
/// the solution score.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRow {
    /// Values aligned with the query's effective projection.
    pub values: Vec<Term>,
    /// Product of matched triple weights.
    pub score: f64,
}

impl ParsedQuery {
    /// The effective projection: explicit one, or all variables.
    pub fn effective_projection(&self) -> &[String] {
        if self.projection.is_empty() {
            &self.variables
        } else {
            &self.projection
        }
    }

    /// Evaluates against a store, materializing projected rows sorted by
    /// descending score.
    pub fn evaluate(&self, store: &TripleStore) -> Result<Vec<QueryRow>, StoreError> {
        let proj = self.effective_projection().to_vec();
        let mut rows = Vec::new();
        for sol in self.bgp.evaluate(store) {
            let mut values = Vec::with_capacity(proj.len());
            for var in &proj {
                let term = sol
                    .term(store, var)
                    .ok_or_else(|| StoreError::UnknownTerm(format!("?{var}")))?;
                values.push(term.clone());
            }
            rows.push(QueryRow { values, score: sol.score });
        }
        Ok(rows)
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Keyword(String), // select / where / limit (lowercased)
    Var(String),
    Iri(String),
    Str(String),
    Int(i64),
    Float(f64),
    Star,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Dot,
}

fn err(msg: impl Into<String>) -> StoreError {
    StoreError::BadPathQuery(format!("query parse error: {}", msg.into()))
}

fn tokenize(input: &str) -> Result<Vec<Tok>, StoreError> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '{' => {
                chars.next();
                toks.push(Tok::LBrace);
            }
            '}' => {
                chars.next();
                toks.push(Tok::RBrace);
            }
            '[' => {
                chars.next();
                toks.push(Tok::LBracket);
            }
            ']' => {
                chars.next();
                toks.push(Tok::RBracket);
            }
            '.' => {
                chars.next();
                toks.push(Tok::Dot);
            }
            '*' => {
                chars.next();
                toks.push(Tok::Star);
            }
            '?' => {
                chars.next();
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(err("empty variable name after '?'"));
                }
                toks.push(Tok::Var(name));
            }
            '<' => {
                chars.next();
                let mut iri = String::new();
                loop {
                    match chars.next() {
                        Some('>') => break,
                        Some(c) => iri.push(c),
                        None => return Err(err("unterminated IRI (missing '>')")),
                    }
                }
                toks.push(Tok::Iri(iri));
            }
            '"' => {
                chars.next();
                let mut lit = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some(e) => lit.push(e),
                            None => return Err(err("dangling escape in string literal")),
                        },
                        Some(c) => lit.push(c),
                        None => return Err(err("unterminated string literal")),
                    }
                }
                toks.push(Tok::Str(lit));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut num = String::new();
                num.push(c);
                chars.next();
                let mut is_float = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        num.push(c);
                        chars.next();
                    } else if c == '.' {
                        // A dot could terminate a triple; only treat it as
                        // a decimal point when a digit follows.
                        let mut clone = chars.clone();
                        clone.next();
                        if clone.peek().is_some_and(|d| d.is_ascii_digit()) {
                            is_float = true;
                            num.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                if is_float {
                    let v: f64 = num.parse().map_err(|_| err(format!("bad float {num:?}")))?;
                    toks.push(Tok::Float(v));
                } else {
                    let v: i64 = num.parse().map_err(|_| err(format!("bad integer {num:?}")))?;
                    toks.push(Tok::Int(v));
                }
            }
            c if c.is_alphabetic() => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        word.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Keyword(word.to_lowercase()));
            }
            other => return Err(err(format!("unexpected character {other:?}"))),
        }
    }
    Ok(toks)
}

/// Parses the query text into a [`ParsedQuery`].
pub fn parse_query(input: &str) -> Result<ParsedQuery, StoreError> {
    let toks = tokenize(input)?;
    let mut pos = 0usize;
    let expect_kw = |toks: &[Tok], pos: &mut usize, kw: &str| -> Result<(), StoreError> {
        match toks.get(*pos) {
            Some(Tok::Keyword(k)) if k == kw => {
                *pos += 1;
                Ok(())
            }
            other => Err(err(format!("expected {kw:?}, found {other:?}"))),
        }
    };
    expect_kw(&toks, &mut pos, "select")?;
    // Projection: '*' or a list of variables (possibly empty before WHERE).
    let mut projection = Vec::new();
    loop {
        match toks.get(pos) {
            Some(Tok::Star) => {
                pos += 1;
            }
            Some(Tok::Var(v)) => {
                projection.push(v.clone());
                pos += 1;
            }
            _ => break,
        }
    }
    expect_kw(&toks, &mut pos, "where")?;
    match toks.get(pos) {
        Some(Tok::LBrace) => pos += 1,
        other => return Err(err(format!("expected '{{' after WHERE, found {other:?}"))),
    }
    let mut bgp = BgpQuery::new();
    let mut variables: Vec<String> = Vec::new();
    let note_var = |variables: &mut Vec<String>, t: &PatternTerm| {
        if let Some(v) = t.as_var() {
            if !variables.iter().any(|x| x == v) {
                variables.push(v.to_string());
            }
        }
    };
    loop {
        match toks.get(pos) {
            Some(Tok::RBrace) => {
                pos += 1;
                break;
            }
            None => return Err(err("unterminated WHERE block (missing '}')")),
            _ => {}
        }
        let term_at = |pos: &mut usize, position: &str| -> Result<PatternTerm, StoreError> {
            let t = match toks.get(*pos) {
                Some(Tok::Var(v)) => PatternTerm::var(v.clone()),
                Some(Tok::Iri(i)) => PatternTerm::bound(Term::iri(i.clone())),
                Some(Tok::Str(s)) => PatternTerm::bound(Term::str(s.clone())),
                Some(Tok::Int(v)) => PatternTerm::bound(Term::int(*v)),
                Some(Tok::Float(v)) => PatternTerm::bound(Term::float(*v)),
                other => {
                    return Err(err(format!(
                        "expected {position} term, found {other:?}"
                    )))
                }
            };
            *pos += 1;
            Ok(t)
        };
        let s = term_at(&mut pos, "subject")?;
        let p = term_at(&mut pos, "predicate")?;
        let o = term_at(&mut pos, "object")?;
        let mut pattern = Pattern::new(s, p, o);
        // Optional [min_weight].
        if matches!(toks.get(pos), Some(Tok::LBracket)) {
            pos += 1;
            let w = match toks.get(pos) {
                Some(Tok::Float(v)) => *v,
                Some(Tok::Int(v)) => *v as f64,
                other => return Err(err(format!("expected weight in [..], found {other:?}"))),
            };
            pos += 1;
            match toks.get(pos) {
                Some(Tok::RBracket) => pos += 1,
                other => return Err(err(format!("expected ']', found {other:?}"))),
            }
            pattern = pattern.with_min_weight(w);
        }
        note_var(&mut variables, &pattern.s);
        note_var(&mut variables, &pattern.p);
        note_var(&mut variables, &pattern.o);
        bgp = bgp.pattern(pattern);
        // Optional separating dot.
        if matches!(toks.get(pos), Some(Tok::Dot)) {
            pos += 1;
        }
    }
    // Optional LIMIT n.
    if matches!(toks.get(pos), Some(Tok::Keyword(k)) if k == "limit") {
        pos += 1;
        match toks.get(pos) {
            Some(Tok::Int(n)) if *n > 0 => {
                bgp = bgp.limit(*n as usize);
                pos += 1;
            }
            other => return Err(err(format!("expected positive LIMIT, found {other:?}"))),
        }
    }
    if pos != toks.len() {
        return Err(err(format!("trailing tokens after query: {:?}", &toks[pos..])));
    }
    // Projection variables must appear in the patterns.
    for v in &projection {
        if !variables.iter().any(|x| x == v) {
            return Err(err(format!("projected variable ?{v} never used")));
        }
    }
    Ok(ParsedQuery { projection, bgp, variables })
}

/// Convenience: parse and evaluate in one call.
pub fn run_query(store: &TripleStore, input: &str) -> Result<Vec<QueryRow>, StoreError> {
    parse_query(input)?.evaluate(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        let mut st = TripleStore::new();
        let ins = |st: &mut TripleStore, s: &str, p: &str, o: &str, w: f64| {
            st.insert(Term::iri(s), Term::iri(p), Term::iri(o), w).unwrap();
        };
        ins(&mut st, "user:1", "rel:coauthor", "user:2", 0.9);
        ins(&mut st, "user:1", "rel:coauthor", "user:3", 0.4);
        ins(&mut st, "user:2", "rel:authored", "paper:7", 1.0);
        ins(&mut st, "user:3", "rel:authored", "paper:8", 1.0);
        st.insert(Term::iri("user:1"), Term::iri("rel:name"), Term::str("Zach"), 1.0)
            .unwrap();
        st.insert(Term::iri("user:1"), Term::iri("rel:age"), Term::int(27), 1.0)
            .unwrap();
        st
    }

    #[test]
    fn single_pattern_select() {
        let st = sample();
        let rows = run_query(
            &st,
            "SELECT ?who WHERE { <user:1> <rel:coauthor> ?who . }",
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].values, vec![Term::iri("user:2")]); // 0.9 first
        assert_eq!(rows[1].values, vec![Term::iri("user:3")]);
    }

    #[test]
    fn join_with_projection_order() {
        let st = sample();
        let rows = run_query(
            &st,
            "select ?paper ?who where {
                 <user:1> <rel:coauthor> ?who .
                 ?who <rel:authored> ?paper
             }",
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        // Projection order respected: paper first.
        assert_eq!(rows[0].values[0], Term::iri("paper:7"));
        assert_eq!(rows[0].values[1], Term::iri("user:2"));
    }

    #[test]
    fn min_weight_annotation() {
        let st = sample();
        let rows = run_query(
            &st,
            "SELECT ?who WHERE { <user:1> <rel:coauthor> ?who [0.5] }",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values, vec![Term::iri("user:2")]);
    }

    #[test]
    fn star_and_default_projection() {
        let st = sample();
        let q = parse_query("SELECT * WHERE { ?s <rel:coauthor> ?o }").unwrap();
        assert_eq!(q.effective_projection(), ["s", "o"]);
        let rows = q.evaluate(&st).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].values.len(), 2);
    }

    #[test]
    fn literals_match() {
        let st = sample();
        let rows = run_query(
            &st,
            "SELECT ?u WHERE { ?u <rel:name> \"Zach\" }",
        )
        .unwrap();
        assert_eq!(rows, vec![QueryRow { values: vec![Term::iri("user:1")], score: 1.0 }]);
        let rows = run_query(&st, "SELECT ?u WHERE { ?u <rel:age> 27 }").unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn limit_applies() {
        let st = sample();
        let rows = run_query(
            &st,
            "SELECT ?who WHERE { <user:1> <rel:coauthor> ?who } LIMIT 1",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn parse_errors_are_informative() {
        for (q, needle) in [
            ("WHERE { ?a <p> ?b }", "expected \"select\""),
            ("SELECT ?x WHERE { ?x <p> }", "object term"),
            ("SELECT ?x WHERE { ?x <p> ?y ", "unterminated WHERE"),
            ("SELECT ?zz WHERE { ?x <p> ?y }", "never used"),
            ("SELECT ?x WHERE { ?x <p ?y }", "unterminated IRI"),
            ("SELECT ?x WHERE { ?x <p> ?y } LIMIT 0", "positive LIMIT"),
            ("SELECT ?x WHERE { ?x <p> ?y } garbage", "trailing"),
            ("SELECT ?x WHERE { ?x <p> ?y [oops] }", "weight"),
        ] {
            let e = parse_query(q).expect_err(q).to_string();
            assert!(e.contains(needle), "query {q:?}: error {e:?} should mention {needle:?}");
        }
    }

    #[test]
    fn float_literal_vs_triple_dot() {
        let st = sample();
        // `0.9` inside brackets parses as a float even with dots around.
        let rows = run_query(
            &st,
            "SELECT ?who WHERE { <user:1> <rel:coauthor> ?who [0.9] . }",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn shared_variables_join_correctly() {
        let st = sample();
        // ?x coauthors with someone who authored paper:8 -> user:1 via user:3.
        let rows = run_query(
            &st,
            "SELECT ?x WHERE { ?x <rel:coauthor> ?y . ?y <rel:authored> <paper:8> }",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values, vec![Term::iri("user:1")]);
    }
}
