//! Two-way interning dictionary mapping [`Term`]s to dense [`TermId`]s.
//!
//! Dictionary encoding keeps the permutation indexes compact (three `u32`s
//! per triple per index) and makes term comparisons O(1), the standard
//! design in RDF stores.

use crate::term::Term;
use std::collections::HashMap;

/// Dense identifier for an interned term. Ids are assigned sequentially
/// starting at 0 and are stable for the lifetime of the dictionary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

hive_json::impl_json_newtype!(TermId);

impl TermId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Two-way dictionary: `Term -> TermId` and `TermId -> Term`.
#[derive(Clone, Debug, Default)]
pub struct TermDict {
    forward: HashMap<Term, TermId>,
    reverse: Vec<Term>,
}

impl TermDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.forward.get(&term) {
            return id;
        }
        // Capacity invariant: ids are u32, so a dictionary holds at most
        // 2^32 distinct terms. Exceeding that is unrecoverable corruption
        // territory, not a caller error — panic with a clear message.
        let id = TermId(u32::try_from(self.reverse.len()).expect("term dictionary overflow")); // lint:allow(no-panic-paths)
        self.forward.insert(term.clone(), id);
        self.reverse.push(term);
        id
    }

    /// Looks up an already-interned term without inserting.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.forward.get(term).copied()
    }

    /// Resolves an id back to its term. Returns `None` for unknown ids.
    pub fn resolve(&self, id: TermId) -> Option<&Term> {
        self.reverse.get(id.index())
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// True if no term has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }

    /// Iterates `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.reverse
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = TermDict::new();
        let a = d.intern(Term::iri("a"));
        let b = d.intern(Term::iri("b"));
        let a2 = d.intern(Term::iri("a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut d = TermDict::new();
        let terms = vec![
            Term::iri("user:ann"),
            Term::str("Ann"),
            Term::int(42),
            Term::float(0.25),
            Term::Blank(3),
        ];
        let ids: Vec<_> = terms.iter().cloned().map(|t| d.intern(t)).collect();
        for (id, term) in ids.iter().zip(&terms) {
            assert_eq!(d.resolve(*id), Some(term));
        }
        assert_eq!(d.resolve(TermId(999)), None);
    }

    #[test]
    fn get_does_not_insert() {
        let mut d = TermDict::new();
        assert_eq!(d.get(&Term::iri("x")), None);
        assert!(d.is_empty());
        d.intern(Term::iri("x"));
        assert!(d.get(&Term::iri("x")).is_some());
    }

    #[test]
    fn iter_in_id_order() {
        let mut d = TermDict::new();
        d.intern(Term::iri("a"));
        d.intern(Term::iri("b"));
        let collected: Vec<_> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(collected, vec![0, 1]);
    }
}
