//! Ranked path queries over the weighted triple graph.
//!
//! R2DB's headline feature (ref \[11\]) is *ranked path queries over weighted
//! RDF graphs*: "which chains of relationships connect X to Y, strongest
//! first?" Hive uses this to discover and **explain** relationships between
//! two researchers (paper Figure 2), where each hop is an evidence triple
//! (co-authorship, citation, shared session, ...).
//!
//! Path strength is the product of hop weights; internally we run Dijkstra
//! over additive costs `-ln(w)` (weights are in `(0,1]`, so costs are
//! non-negative). Top-k paths use Yen's algorithm with loop-free paths.
//!
//! Traversal runs over a [`GraphView`] CSR snapshot. [`PathQuery::run`]
//! builds one on the fly (one full store scan); repeated queries should
//! build the view once and call [`PathQuery::run_on`], which skips the
//! scan entirely while the view stays current.

use crate::dict::TermId;
use crate::error::StoreError;
use crate::store::{StoredTriple, TripleStore};
use crate::term::Term;
use crate::view::{GraphView, ViewEdge};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// A loop-free path through the triple graph, strongest-first ranked.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedPath {
    /// Node sequence from source to target (length = hops + 1).
    pub nodes: Vec<TermId>,
    /// The triples traversed, one per hop (direction as stored).
    pub triples: Vec<StoredTriple>,
    /// Product of hop weights in `(0, 1]`.
    pub score: f64,
}

impl RankedPath {
    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.triples.len()
    }

    /// Renders the path as a human-readable chain using the dictionary.
    pub fn explain(&self, store: &TripleStore) -> String {
        let mut out = String::new();
        for (i, t) in self.triples.iter().enumerate() {
            let (s, p, o) = store.resolve_triple(t);
            if i > 0 {
                out.push_str("  ->  ");
            }
            out.push_str(&format!("{s} --{p}/{:.2}--> {o}", t.weight));
        }
        out
    }
}

/// Configuration for a ranked path search.
#[derive(Clone, Debug)]
pub struct PathQuery {
    source: Term,
    target: Term,
    /// Restrict traversal to these predicates (empty = all).
    predicates: Vec<Term>,
    /// Also traverse edges object->subject.
    undirected: bool,
    /// Maximum number of hops per path.
    max_hops: usize,
    /// Number of paths to return.
    k: usize,
}

impl PathQuery {
    /// Creates a query from `source` to `target` with defaults:
    /// undirected traversal, max 4 hops, top-1 path, all predicates.
    pub fn new(source: Term, target: Term) -> Self {
        PathQuery {
            source,
            target,
            predicates: Vec::new(),
            undirected: true,
            max_hops: 4,
            k: 1,
        }
    }

    /// Restricts traversal to the given predicates.
    pub fn over_predicates(mut self, preds: Vec<Term>) -> Self {
        self.predicates = preds;
        self
    }

    /// Sets directed-only traversal (subject -> object).
    pub fn directed(mut self) -> Self {
        self.undirected = false;
        self
    }

    /// Sets the hop budget.
    pub fn max_hops(mut self, h: usize) -> Self {
        self.max_hops = h;
        self
    }

    /// Requests the top-k strongest paths.
    pub fn top_k(mut self, k: usize) -> Self {
        self.k = k.max(1);
        self
    }

    /// Runs the search, building a fresh [`GraphView`] snapshot (one
    /// full store scan). For repeated queries over an unchanged store,
    /// build the view once and use [`Self::run_on`].
    pub fn run(&self, store: &TripleStore) -> Result<Vec<RankedPath>, StoreError> {
        let view = GraphView::build(store);
        self.run_on(store, &view)
    }

    /// Runs the search over a pre-built [`GraphView`] — the cached-query
    /// fast path. `store` is only consulted to resolve the query terms;
    /// the caller is responsible for the view being current for that
    /// store (see [`GraphView::is_current`]): a stale view answers from
    /// its snapshot.
    pub fn run_on(
        &self,
        store: &TripleStore,
        view: &GraphView,
    ) -> Result<Vec<RankedPath>, StoreError> {
        hive_obs::count("store.path_query", 1);
        if self.source == self.target {
            return Err(StoreError::BadPathQuery("source equals target".into()));
        }
        let src = store
            .dict()
            .get(&self.source)
            .ok_or_else(|| StoreError::UnknownTerm(self.source.to_string()))?;
        let dst = store
            .dict()
            .get(&self.target)
            .ok_or_else(|| StoreError::UnknownTerm(self.target.to_string()))?;
        let pred_ids: Option<HashSet<TermId>> = if self.predicates.is_empty() {
            None
        } else {
            Some(self.predicates.iter().filter_map(|p| store.dict().get(p)).collect())
        };
        let trav = Traversal { view, preds: pred_ids, undirected: self.undirected };
        Ok(yen_top_k(&trav, src, dst, self.k, self.max_hops))
    }
}

/// Per-query lens over a shared [`GraphView`]: applies the predicate
/// restriction and directedness at traversal time, so one cached
/// snapshot serves every query shape.
struct Traversal<'a> {
    view: &'a GraphView,
    preds: Option<HashSet<TermId>>,
    undirected: bool,
}

impl Traversal<'_> {
    fn edges_at(&self, row: usize) -> impl Iterator<Item = &ViewEdge> + '_ {
        self.view.edges_of_index(row).iter().filter(move |e| {
            (self.undirected || e.forward)
                && self.preds.as_ref().map_or(true, |ps| ps.contains(&e.triple.p))
        })
    }
}

/// Min-heap entry for Dijkstra.
struct HeapEntry {
    cost: f64,
    node: TermId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; costs are finite (weights > 0), so
        // the IEEE total order agrees with the numeric order here.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Dijkstra shortest (cheapest) path from `src` to `dst`, avoiding
/// `banned_nodes` and `banned_edges`, within `max_hops`.
fn dijkstra(
    adj: &Traversal<'_>,
    src: TermId,
    dst: TermId,
    banned_nodes: &HashSet<TermId>,
    banned_edges: &HashSet<(TermId, TermId, TermId, TermId)>,
    max_hops: usize,
) -> Option<RankedPath> {
    // State is (view row, hops): the hop dimension keeps the budget from
    // pruning cheaper longer paths incorrectly, and the dense row index
    // turns the per-state bookkeeping into flat array reads — no hashing
    // on the hot relaxation loop (the warm-view fast path).
    let view = adj.view;
    let src_row = view.node_index(src)?; // edge-less source reaches nothing
    let layers = max_hops + 1;
    let mut best: Vec<f64> = vec![f64::INFINITY; view.node_count() * layers];
    let mut prev: Vec<Option<(u32, u32, StoredTriple)>> =
        vec![None; view.node_count() * layers];
    let mut heap = BinaryHeap::new();
    best[src_row * layers] = 0.0;
    heap.push((HeapEntry { cost: 0.0, node: src }, src_row, 0usize));
    let mut found: Option<(usize, usize)> = None;
    while let Some((entry, row, hops)) = heap.pop() {
        if entry.cost > best[row * layers + hops] {
            continue;
        }
        if entry.node == dst {
            found = Some((row, hops));
            break;
        }
        if hops == max_hops {
            continue;
        }
        for e in adj.edges_at(row) {
            if banned_nodes.contains(&e.to) {
                continue;
            }
            let edge_key = (entry.node, e.to, e.triple.p, e.triple.s);
            if banned_edges.contains(&edge_key) {
                continue;
            }
            let Some(nrow) = view.node_index(e.to) else {
                continue;
            };
            let nsi = nrow * layers + hops + 1;
            let ncost = entry.cost + e.cost;
            if ncost < best[nsi] {
                best[nsi] = ncost;
                prev[nsi] = Some((row as u32, hops as u32, e.triple));
                heap.push((HeapEntry { cost: ncost, node: e.to }, nrow, hops + 1));
            }
        }
    }
    let (mut row, mut hops) = found?;
    // Reconstruct.
    let mut nodes = vec![view.node_at(row)];
    let mut triples = Vec::new();
    while let Some((pr, ph, t)) = prev[row * layers + hops] {
        nodes.push(view.node_at(pr as usize));
        triples.push(t);
        row = pr as usize;
        hops = ph as usize;
    }
    nodes.reverse();
    triples.reverse();
    let score = triples.iter().map(|t| t.weight).product();
    Some(RankedPath { nodes, triples, score })
}

/// Yen's algorithm for the k cheapest loop-free paths.
fn yen_top_k(
    adj: &Traversal<'_>,
    src: TermId,
    dst: TermId,
    k: usize,
    max_hops: usize,
) -> Vec<RankedPath> {
    let mut paths: Vec<RankedPath> = Vec::new();
    let Some(first) = dijkstra(adj, src, dst, &HashSet::new(), &HashSet::new(), max_hops) else {
        return paths;
    };
    paths.push(first);
    let mut candidates: Vec<RankedPath> = Vec::new();
    while paths.len() < k {
        let Some(last) = paths.last().cloned() else {
            break;
        };
        for spur_idx in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[spur_idx];
            let root_nodes = &last.nodes[..=spur_idx];
            let root_triples = &last.triples[..spur_idx];
            // Ban edges used by previous paths sharing this root.
            let mut banned_edges = HashSet::new();
            for p in &paths {
                if p.nodes.len() > spur_idx && p.nodes[..=spur_idx] == *root_nodes {
                    if let Some(t) = p.triples.get(spur_idx) {
                        let from = p.nodes[spur_idx];
                        let to = p.nodes[spur_idx + 1];
                        banned_edges.insert((from, to, t.p, t.s));
                    }
                }
            }
            // Ban root nodes (except the spur node) to keep paths loop-free.
            let banned_nodes: HashSet<TermId> =
                root_nodes[..spur_idx].iter().copied().collect();
            let remaining_hops = max_hops.saturating_sub(spur_idx);
            if remaining_hops == 0 {
                continue;
            }
            if let Some(spur) =
                dijkstra(adj, spur_node, dst, &banned_nodes, &banned_edges, remaining_hops)
            {
                let mut nodes = root_nodes.to_vec();
                nodes.extend_from_slice(&spur.nodes[1..]);
                let mut triples = root_triples.to_vec();
                triples.extend_from_slice(&spur.triples);
                let score = triples.iter().map(|t| t.weight).product();
                let cand = RankedPath { nodes, triples, score };
                if !paths.contains(&cand) && !candidates.contains(&cand) {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Take the strongest candidate (max score = min cost).
        let Some(best_idx) = candidates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.score.total_cmp(&b.score))
            .map(|(i, _)| i)
        else {
            break;
        };
        paths.push(candidates.swap_remove(best_idx));
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TripleStore {
        // a -> b -> d (0.9 * 0.9 = 0.81)
        // a -> c -> d (0.5 * 0.5 = 0.25)
        // a -> d direct (0.3)
        let mut st = TripleStore::new();
        let ins = |st: &mut TripleStore, s: &str, o: &str, w: f64| {
            st.insert(Term::iri(s), Term::iri("rel"), Term::iri(o), w).unwrap();
        };
        ins(&mut st, "a", "b", 0.9);
        ins(&mut st, "b", "d", 0.9);
        ins(&mut st, "a", "c", 0.5);
        ins(&mut st, "c", "d", 0.5);
        ins(&mut st, "a", "d", 0.3);
        st
    }

    #[test]
    fn strongest_path_wins() {
        let st = diamond();
        let paths = PathQuery::new(Term::iri("a"), Term::iri("d"))
            .run(&st)
            .unwrap();
        assert_eq!(paths.len(), 1);
        assert!((paths[0].score - 0.81).abs() < 1e-12);
        assert_eq!(paths[0].hops(), 2);
    }

    #[test]
    fn top_k_ordering() {
        let st = diamond();
        let paths = PathQuery::new(Term::iri("a"), Term::iri("d"))
            .top_k(3)
            .run(&st)
            .unwrap();
        assert_eq!(paths.len(), 3);
        assert!((paths[0].score - 0.81).abs() < 1e-12);
        assert!((paths[1].score - 0.30).abs() < 1e-12);
        assert!((paths[2].score - 0.25).abs() < 1e-12);
        // Scores non-increasing.
        for w in paths.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn max_hops_prunes() {
        let st = diamond();
        let paths = PathQuery::new(Term::iri("a"), Term::iri("d"))
            .max_hops(1)
            .run(&st)
            .unwrap();
        assert_eq!(paths.len(), 1);
        assert!((paths[0].score - 0.3).abs() < 1e-12);
    }

    #[test]
    fn undirected_traversal() {
        let mut st = TripleStore::new();
        st.insert(Term::iri("x"), Term::iri("rel"), Term::iri("y"), 0.8)
            .unwrap();
        // y -> x only exists via the reverse direction.
        let paths = PathQuery::new(Term::iri("y"), Term::iri("x")).run(&st).unwrap();
        assert_eq!(paths.len(), 1);
        let none = PathQuery::new(Term::iri("y"), Term::iri("x"))
            .directed()
            .run(&st)
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn predicate_restriction() {
        let mut st = TripleStore::new();
        st.insert(Term::iri("a"), Term::iri("good"), Term::iri("b"), 0.5)
            .unwrap();
        st.insert(Term::iri("a"), Term::iri("bad"), Term::iri("b"), 0.9)
            .unwrap();
        let paths = PathQuery::new(Term::iri("a"), Term::iri("b"))
            .over_predicates(vec![Term::iri("good")])
            .run(&st)
            .unwrap();
        assert_eq!(paths.len(), 1);
        assert!((paths[0].score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn literal_objects_not_traversed() {
        let mut st = TripleStore::new();
        st.insert(Term::iri("a"), Term::iri("name"), Term::str("Ann"), 1.0)
            .unwrap();
        st.insert(Term::iri("b"), Term::iri("name"), Term::str("Ann"), 1.0)
            .unwrap();
        // a and b share a literal, but literals are attributes, not hops.
        let paths = PathQuery::new(Term::iri("a"), Term::iri("b")).run(&st).unwrap();
        assert!(paths.is_empty());
    }

    #[test]
    fn errors() {
        let st = diamond();
        assert!(matches!(
            PathQuery::new(Term::iri("a"), Term::iri("a")).run(&st),
            Err(StoreError::BadPathQuery(_))
        ));
        assert!(matches!(
            PathQuery::new(Term::iri("a"), Term::iri("zzz")).run(&st),
            Err(StoreError::UnknownTerm(_))
        ));
    }

    #[test]
    fn explanation_renders() {
        let st = diamond();
        let paths = PathQuery::new(Term::iri("a"), Term::iri("d")).run(&st).unwrap();
        let text = paths[0].explain(&st);
        assert!(text.contains("<a>"));
        assert!(text.contains("<d>"));
        assert!(text.contains("->"));
    }

    #[test]
    fn cached_view_matches_fresh_run() {
        let st = diamond();
        let view = GraphView::build(&st);
        let q = PathQuery::new(Term::iri("a"), Term::iri("d")).top_k(3);
        let fresh = q.run(&st).unwrap();
        let cached = q.run_on(&st, &view).unwrap();
        assert_eq!(fresh, cached);
        // The same snapshot serves directed queries: every edge points
        // away from `a`, so nothing is reachable from `d`.
        let directed = PathQuery::new(Term::iri("d"), Term::iri("a"))
            .directed()
            .run_on(&st, &view)
            .unwrap();
        assert!(directed.is_empty());
    }

    #[test]
    fn loop_free_paths() {
        let st = diamond();
        let paths = PathQuery::new(Term::iri("a"), Term::iri("d"))
            .top_k(5)
            .max_hops(6)
            .run(&st)
            .unwrap();
        for p in &paths {
            let uniq: HashSet<_> = p.nodes.iter().collect();
            assert_eq!(uniq.len(), p.nodes.len(), "path has a loop: {:?}", p.nodes);
        }
    }
}
