//! The weighted triple store: dictionary + three permutation indexes.

use crate::dict::{TermDict, TermId};
use crate::error::StoreError;
use crate::term::Term;
use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;

/// A triple as stored: dictionary-encoded ids plus its weight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StoredTriple {
    /// Subject id.
    pub s: TermId,
    /// Predicate id.
    pub p: TermId,
    /// Object id.
    pub o: TermId,
    /// Strength in `(0, 1]`.
    pub weight: f64,
}

/// One logged mutation of the triple set, dictionary-encoded. The store
/// appends one op per successful mutation (see [`TripleStore::log_op`]);
/// derived snapshots replay the suffix since their stamped generation
/// instead of rebuilding (see [`crate::GraphView::apply_delta`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeltaOp {
    /// A triple was inserted or re-weighted to `weight`.
    Upsert {
        /// Subject id.
        s: TermId,
        /// Predicate id.
        p: TermId,
        /// Object id.
        o: TermId,
        /// New weight in `(0, 1]`.
        weight: f64,
    },
    /// A triple was removed.
    Remove {
        /// Subject id.
        s: TermId,
        /// Predicate id.
        p: TermId,
        /// Object id.
        o: TermId,
    },
}

/// Maximum retained delta-log length. Older entries are compacted away;
/// snapshots stamped before the retained window fall back to a rebuild.
/// Sized so that every realistic patch window (a facade cache lagging a
/// burst of mutations) fits, while bounding memory to a few hundred KB.
pub const DELTA_LOG_CAP: usize = 4096;

/// One permutation index over `(a, b, c)` key tuples.
///
/// The store keeps three of these (SPO, POS, OSP) so that any combination
/// of bound positions can be answered with a range scan over a prefix.
#[derive(Clone, Debug, Default)]
pub(crate) struct PermIndex {
    set: BTreeSet<(u32, u32, u32)>,
}

impl PermIndex {
    fn insert(&mut self, key: (u32, u32, u32)) {
        self.set.insert(key);
    }

    fn remove(&mut self, key: &(u32, u32, u32)) {
        self.set.remove(key);
    }

    /// Scans all keys whose first components match the given prefix.
    ///
    /// The `(Bound, Bound)` pair type is spelled out for clarity.
    ///
    /// `prefix` may bind the first one or two components; an unbound
    /// second component with a bound first scans the whole `(a, *, *)`
    /// range.
    fn scan_prefix(
        &self,
        first: Option<u32>,
        second: Option<u32>,
    ) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.set.range(Self::prefix_bounds(first, second)).copied()
    }

    /// Counts keys matching the prefix without materializing them —
    /// a pure range walk, no per-key tuple collection.
    fn count_prefix(&self, first: Option<u32>, second: Option<u32>) -> usize {
        self.set.range(Self::prefix_bounds(first, second)).count()
    }

    /// The `(Bound, Bound)` pair type is spelled out for clarity.
    fn prefix_bounds(
        first: Option<u32>,
        second: Option<u32>,
    ) -> (Bound<(u32, u32, u32)>, Bound<(u32, u32, u32)>) {
        type KeyBound = Bound<(u32, u32, u32)>;
        let (lo, hi): (KeyBound, KeyBound) = match (first, second) {
            (None, _) => (Bound::Unbounded, Bound::Unbounded),
            (Some(a), None) => (
                Bound::Included((a, 0, 0)),
                Bound::Included((a, u32::MAX, u32::MAX)),
            ),
            (Some(a), Some(b)) => (
                Bound::Included((a, b, 0)),
                Bound::Included((a, b, u32::MAX)),
            ),
        };
        (lo, hi)
    }

    fn len(&self) -> usize {
        self.set.len()
    }
}

/// A weighted RDF triple store (the R2DB stand-in).
///
/// Weights model relationship strength and must lie in `(0, 1]`; inserting
/// an existing triple overwrites its weight. Literals may appear only in
/// object position, as in RDF.
#[derive(Clone, Debug, Default)]
pub struct TripleStore {
    pub(crate) dict: TermDict,
    pub(crate) weights: HashMap<(TermId, TermId, TermId), f64>,
    spo: PermIndex,
    pos: PermIndex,
    osp: PermIndex,
    next_blank: u64,
    /// Bumped on every mutation of the triple set or a weight; lets
    /// derived snapshots (e.g. [`crate::GraphView`]) detect staleness.
    /// Only [`Self::log_op`] may advance it (lint rule R8), so every
    /// generation step has a corresponding [`DeltaOp`] in the log.
    generation: u64,
    /// Generation at which `delta_log` starts: `delta_log[i]` is the op
    /// that produced generation `delta_base + i + 1`.
    delta_base: u64,
    /// The retained suffix of mutation ops, newest last.
    delta_log: Vec<DeltaOp>,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples currently stored.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Access to the term dictionary.
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Mutation counter: any successful `insert` / `remove` /
    /// `set_weight` / `remove_matching` advances it. Snapshots stamped
    /// with an older generation are stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The single mutation choke point: records the op in the delta log
    /// and advances the generation, compacting the log's oldest entries
    /// past [`DELTA_LOG_CAP`]. Every mutating method routes through
    /// here, so `generation - delta_base` always equals the retained
    /// log length and [`Self::deltas_since`] can hand out exact patch
    /// suffixes.
    fn log_op(&mut self, op: DeltaOp) {
        self.generation += 1; // lint:allow(delta-log) -- the one legal bump
        self.delta_log.push(op);
        if self.delta_log.len() > DELTA_LOG_CAP {
            let excess = self.delta_log.len() - DELTA_LOG_CAP;
            self.delta_log.drain(..excess);
            self.delta_base += excess as u64;
        }
    }

    /// The ops applied since `generation` (oldest first), or `None` when
    /// that window has been compacted away (or `generation` is from the
    /// future, i.e. a different store) — callers must rebuild then.
    pub fn deltas_since(&self, generation: u64) -> Option<&[DeltaOp]> {
        if generation > self.generation || generation < self.delta_base {
            return None;
        }
        Some(&self.delta_log[(generation - self.delta_base) as usize..])
    }

    /// Mints a fresh blank node unique within this store.
    pub fn fresh_blank(&mut self) -> Term {
        let id = self.next_blank;
        self.next_blank += 1;
        Term::Blank(id)
    }

    fn validate(s: &Term, p: &Term, weight: f64) -> Result<(), StoreError> {
        if !(weight > 0.0 && weight <= 1.0) {
            return Err(StoreError::InvalidWeight(weight));
        }
        if !s.is_resource() {
            return Err(StoreError::InvalidPosition("subject"));
        }
        if !matches!(p, Term::Iri(_)) {
            return Err(StoreError::InvalidPosition("predicate"));
        }
        Ok(())
    }

    /// Inserts (or re-weights) a triple. Returns `true` if the triple was
    /// not previously present.
    pub fn insert(&mut self, s: Term, p: Term, o: Term, weight: f64) -> Result<bool, StoreError> {
        Self::validate(&s, &p, weight)?;
        let si = self.dict.intern(s);
        let pi = self.dict.intern(p);
        let oi = self.dict.intern(o);
        Ok(self.insert_ids(si, pi, oi, weight))
    }

    /// Id-level insert for callers that already hold interned ids.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId, weight: f64) -> bool {
        let fresh = self.weights.insert((s, p, o), weight).is_none();
        if fresh {
            self.spo.insert((s.0, p.0, o.0));
            self.pos.insert((p.0, o.0, s.0));
            self.osp.insert((o.0, s.0, p.0));
        }
        // Re-weighting an existing triple also mutates.
        self.log_op(DeltaOp::Upsert { s, p, o, weight });
        fresh
    }

    /// Removes a triple. Returns `true` if it was present.
    pub fn remove(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let (Some(si), Some(pi), Some(oi)) =
            (self.dict.get(s), self.dict.get(p), self.dict.get(o))
        else {
            return false;
        };
        if self.weights.remove(&(si, pi, oi)).is_some() {
            self.spo.remove(&(si.0, pi.0, oi.0));
            self.pos.remove(&(pi.0, oi.0, si.0));
            self.osp.remove(&(oi.0, si.0, pi.0));
            self.log_op(DeltaOp::Remove { s: si, p: pi, o: oi });
            true
        } else {
            false
        }
    }

    /// Weight of a triple, if present.
    pub fn weight(&self, s: &Term, p: &Term, o: &Term) -> Option<f64> {
        let (si, pi, oi) = (self.dict.get(s)?, self.dict.get(p)?, self.dict.get(o)?);
        self.weights.get(&(si, pi, oi)).copied()
    }

    /// True if the triple is present (with any weight).
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        self.weight(s, p, o).is_some()
    }

    /// Re-weights an existing triple without changing the indexes.
    /// Returns `false` if the triple is absent; errors on a bad weight.
    pub fn set_weight(
        &mut self,
        s: &Term,
        p: &Term,
        o: &Term,
        weight: f64,
    ) -> Result<bool, StoreError> {
        if !(weight > 0.0 && weight <= 1.0) {
            return Err(StoreError::InvalidWeight(weight));
        }
        let (Some(si), Some(pi), Some(oi)) =
            (self.dict.get(s), self.dict.get(p), self.dict.get(o))
        else {
            return Ok(false);
        };
        match self.weights.get_mut(&(si, pi, oi)) {
            Some(w) => {
                *w = weight;
                self.log_op(DeltaOp::Upsert { s: si, p: pi, o: oi, weight });
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Removes every triple matching the (term-level) pattern; unbound
    /// positions are wildcards. Returns how many were removed.
    ///
    /// Used when a knowledge layer is rebuilt: e.g. dropping all
    /// `rel:checked_in` triples before re-deriving them.
    pub fn remove_matching(
        &mut self,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> usize {
        let victims: Vec<StoredTriple> = self.triples_matching(s, p, o).collect();
        for t in &victims {
            self.weights.remove(&(t.s, t.p, t.o));
            self.spo.remove(&(t.s.0, t.p.0, t.o.0));
            self.pos.remove(&(t.p.0, t.o.0, t.s.0));
            self.osp.remove(&(t.o.0, t.s.0, t.p.0));
            self.log_op(DeltaOp::Remove { s: t.s, p: t.p, o: t.o });
        }
        victims.len()
    }

    /// Id-level pattern scan choosing the best permutation index.
    ///
    /// Each position may be bound (`Some(id)`) or a wildcard (`None`).
    pub fn scan_ids(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<StoredTriple> {
        let raw: Vec<(u32, u32, u32)> = match (s, p, o) {
            // Subject bound: SPO index, prefix (s, p?).
            (Some(si), pb, _) => self
                .spo
                .scan_prefix(Some(si.0), pb.map(|t| t.0))
                .collect(),
            // Predicate bound (subject free): POS index, prefix (p, o?).
            (None, Some(pi), ob) => self
                .pos
                .scan_prefix(Some(pi.0), ob.map(|t| t.0))
                .map(|(p_, o_, s_)| (s_, p_, o_))
                .collect(),
            // Only object bound: OSP index, prefix (o).
            (None, None, Some(oi)) => self
                .osp
                .scan_prefix(Some(oi.0), None)
                .map(|(o_, s_, p_)| (s_, p_, o_))
                .collect(),
            // Nothing bound: full SPO scan.
            (None, None, None) => self.spo.scan_prefix(None, None).collect(),
        };
        raw.into_iter()
            .filter(|&(s_, _, o_)| {
                // SPO prefix scans can't bind `o` without `p`; post-filter.
                s.is_none_or(|si| si.0 == s_) && o.is_none_or(|oi| oi.0 == o_)
            })
            .map(|(s_, p_, o_)| {
                let key = (TermId(s_), TermId(p_), TermId(o_));
                StoredTriple {
                    s: key.0,
                    p: key.1,
                    o: key.2,
                    weight: self.weights[&key],
                }
            })
            .collect()
    }

    /// Counts matches for a pattern without materializing terms (used by
    /// the BGP optimizer for selectivity ordering).
    ///
    /// Every binding combination maps to a pure prefix count on one of
    /// the three permutation indexes (or a hash probe when fully
    /// bound) — no key tuples or `StoredTriple`s are allocated.
    pub fn count_ids(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        match (s, p, o) {
            (Some(si), Some(pi), Some(oi)) => {
                usize::from(self.weights.contains_key(&(si, pi, oi)))
            }
            (Some(si), Some(pi), None) => self.spo.count_prefix(Some(si.0), Some(pi.0)),
            (Some(si), None, Some(oi)) => self.osp.count_prefix(Some(oi.0), Some(si.0)),
            (Some(si), None, None) => self.spo.count_prefix(Some(si.0), None),
            (None, Some(pi), Some(oi)) => self.pos.count_prefix(Some(pi.0), Some(oi.0)),
            (None, Some(pi), None) => self.pos.count_prefix(Some(pi.0), None),
            (None, None, Some(oi)) => self.osp.count_prefix(Some(oi.0), None),
            (None, None, None) => self.weights.len(),
        }
    }

    /// Term-level pattern scan. Unknown terms match nothing.
    pub fn triples_matching<'a>(
        &'a self,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> impl Iterator<Item = StoredTriple> + 'a {
        hive_obs::count("store.pattern_scan", 1);
        let ids = [
            s.map(|t| self.dict.get(t)),
            p.map(|t| self.dict.get(t)),
            o.map(|t| self.dict.get(t)),
        ];
        // If a bound term is unknown to the dictionary, nothing can match.
        let any_unknown = ids.iter().any(|x| matches!(x, Some(None)));
        let out = if any_unknown {
            Vec::new()
        } else {
            self.scan_ids(ids[0].flatten(), ids[1].flatten(), ids[2].flatten())
        };
        out.into_iter()
    }

    /// Resolves a stored triple's ids back to terms.
    ///
    /// Ids unknown to the dictionary (impossible for triples obtained
    /// from this store's own iterators) resolve to blank nodes rather
    /// than panicking.
    pub fn resolve_triple(&self, t: &StoredTriple) -> (Term, Term, Term) {
        let resolve = |id: TermId| {
            self.dict
                .resolve(id)
                .cloned()
                .unwrap_or(Term::Blank(u64::from(id.0)))
        };
        (resolve(t.s), resolve(t.p), resolve(t.o))
    }

    /// Iterates every stored triple in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = StoredTriple> + '_ {
        self.spo.scan_prefix(None, None).map(|(s_, p_, o_)| {
            let key = (TermId(s_), TermId(p_), TermId(o_));
            StoredTriple {
                s: key.0,
                p: key.1,
                o: key.2,
                weight: self.weights[&key],
            }
        })
    }

    /// Internal consistency check: all three indexes agree with the weight
    /// map. Used by tests and debug assertions.
    pub fn check_invariants(&self) -> bool {
        self.spo.len() == self.weights.len()
            && self.pos.len() == self.weights.len()
            && self.osp.len() == self.weights.len()
            && self
                .iter()
                .all(|t| self.weights.contains_key(&(t.s, t.p, t.o)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(triples: &[(&str, &str, &str, f64)]) -> TripleStore {
        let mut st = TripleStore::new();
        for &(s, p, o, w) in triples {
            st.insert(Term::iri(s), Term::iri(p), Term::iri(o), w).unwrap();
        }
        st
    }

    #[test]
    fn insert_and_lookup() {
        let mut st = TripleStore::new();
        assert!(st
            .insert(Term::iri("a"), Term::iri("p"), Term::iri("b"), 0.5)
            .unwrap());
        assert!(!st
            .insert(Term::iri("a"), Term::iri("p"), Term::iri("b"), 0.7)
            .unwrap());
        assert_eq!(st.len(), 1);
        assert_eq!(
            st.weight(&Term::iri("a"), &Term::iri("p"), &Term::iri("b")),
            Some(0.7)
        );
    }

    #[test]
    fn weight_validation() {
        let mut st = TripleStore::new();
        for bad in [0.0, -0.1, 1.5, f64::NAN] {
            let r = st.insert(Term::iri("a"), Term::iri("p"), Term::iri("b"), bad);
            assert!(r.is_err(), "weight {bad} should be rejected");
        }
    }

    #[test]
    fn position_validation() {
        let mut st = TripleStore::new();
        let r = st.insert(Term::str("lit"), Term::iri("p"), Term::iri("b"), 0.5);
        assert_eq!(r, Err(StoreError::InvalidPosition("subject")));
        let r = st.insert(Term::iri("a"), Term::str("lit"), Term::iri("b"), 0.5);
        assert_eq!(r, Err(StoreError::InvalidPosition("predicate")));
        // Literals are fine as objects.
        assert!(st
            .insert(Term::iri("a"), Term::iri("p"), Term::str("lit"), 0.5)
            .is_ok());
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut st = store_with(&[("a", "p", "b", 0.5), ("a", "q", "c", 0.6)]);
        assert!(st.remove(&Term::iri("a"), &Term::iri("p"), &Term::iri("b")));
        assert!(!st.remove(&Term::iri("a"), &Term::iri("p"), &Term::iri("b")));
        assert_eq!(st.len(), 1);
        assert!(st.check_invariants());
        assert_eq!(
            st.triples_matching(Some(&Term::iri("a")), None, None).count(),
            1
        );
    }

    #[test]
    fn pattern_scans_use_each_index() {
        let st = store_with(&[
            ("a", "p", "b", 0.5),
            ("a", "p", "c", 0.5),
            ("b", "p", "c", 0.5),
            ("a", "q", "c", 0.5),
        ]);
        let a = Term::iri("a");
        let p = Term::iri("p");
        let c = Term::iri("c");
        assert_eq!(st.triples_matching(Some(&a), None, None).count(), 3);
        assert_eq!(st.triples_matching(Some(&a), Some(&p), None).count(), 2);
        assert_eq!(st.triples_matching(None, Some(&p), None).count(), 3);
        assert_eq!(st.triples_matching(None, Some(&p), Some(&c)).count(), 2);
        assert_eq!(st.triples_matching(None, None, Some(&c)).count(), 3);
        assert_eq!(st.triples_matching(None, None, None).count(), 4);
        // Fully bound.
        assert_eq!(st.triples_matching(Some(&a), Some(&p), Some(&c)).count(), 1);
        // s and o bound, p free (exercises the post-filter path).
        assert_eq!(st.triples_matching(Some(&a), None, Some(&c)).count(), 2);
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let st = store_with(&[("a", "p", "b", 0.5)]);
        assert_eq!(
            st.triples_matching(Some(&Term::iri("zzz")), None, None).count(),
            0
        );
    }

    #[test]
    fn set_weight_in_place() {
        let mut st = store_with(&[("a", "p", "b", 0.5)]);
        assert!(st
            .set_weight(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"), 0.9)
            .unwrap());
        assert_eq!(
            st.weight(&Term::iri("a"), &Term::iri("p"), &Term::iri("b")),
            Some(0.9)
        );
        // Absent triple: no-op, not an error.
        assert!(!st
            .set_weight(&Term::iri("a"), &Term::iri("q"), &Term::iri("b"), 0.9)
            .unwrap());
        // Bad weight rejected.
        assert!(st
            .set_weight(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"), 1.5)
            .is_err());
        assert!(st.check_invariants());
    }

    #[test]
    fn remove_matching_patterns() {
        let mut st = store_with(&[
            ("a", "p", "b", 0.5),
            ("a", "p", "c", 0.5),
            ("a", "q", "c", 0.5),
            ("b", "p", "c", 0.5),
        ]);
        // Remove all of a's p-edges.
        let n = st.remove_matching(Some(&Term::iri("a")), Some(&Term::iri("p")), None);
        assert_eq!(n, 2);
        assert_eq!(st.len(), 2);
        assert!(st.check_invariants());
        // Wildcard-everything clears the store.
        assert_eq!(st.remove_matching(None, None, None), 2);
        assert!(st.is_empty());
        // Unknown terms remove nothing.
        assert_eq!(st.remove_matching(Some(&Term::iri("zzz")), None, None), 0);
    }

    #[test]
    fn fresh_blanks_are_unique() {
        let mut st = TripleStore::new();
        let b1 = st.fresh_blank();
        let b2 = st.fresh_blank();
        assert_ne!(b1, b2);
    }

    #[test]
    fn count_ids_matches_scan_for_every_binding_pattern() {
        let st = store_with(&[
            ("a", "p", "b", 0.5),
            ("a", "p", "c", 0.5),
            ("b", "p", "c", 0.5),
            ("a", "q", "c", 0.5),
        ]);
        let ids = |name: &str| st.dict().get(&Term::iri(name));
        let (a, p, c) = (ids("a"), ids("p"), ids("c"));
        let cases = [
            (a, p, c),
            (a, p, None),
            (a, None, c),
            (a, None, None),
            (None, p, c),
            (None, p, None),
            (None, None, c),
            (None, None, None),
        ];
        for (s, pp, o) in cases {
            assert_eq!(
                st.count_ids(s, pp, o),
                st.scan_ids(s, pp, o).len(),
                "pattern ({s:?}, {pp:?}, {o:?})"
            );
        }
        // Absent fully-bound triple counts zero.
        assert_eq!(st.count_ids(c, p, a), 0);
    }

    #[test]
    fn generation_bumps_on_every_mutation_kind() {
        let mut st = TripleStore::new();
        let g0 = st.generation();
        st.insert(Term::iri("a"), Term::iri("p"), Term::iri("b"), 0.5).unwrap();
        let g1 = st.generation();
        assert!(g1 > g0, "insert must bump");
        st.set_weight(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"), 0.9).unwrap();
        let g2 = st.generation();
        assert!(g2 > g1, "set_weight must bump");
        // A failed set_weight (absent triple) does not bump.
        st.set_weight(&Term::iri("a"), &Term::iri("q"), &Term::iri("b"), 0.9).unwrap();
        assert_eq!(st.generation(), g2);
        st.remove(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"));
        let g3 = st.generation();
        assert!(g3 > g2, "remove must bump");
        // Removing an absent triple does not bump.
        st.remove(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"));
        assert_eq!(st.generation(), g3);
        st.insert(Term::iri("x"), Term::iri("p"), Term::iri("y"), 0.5).unwrap();
        let g4 = st.generation();
        assert!(st.remove_matching(None, None, None) > 0);
        assert!(st.generation() > g4, "remove_matching must bump");
        let g5 = st.generation();
        assert_eq!(st.remove_matching(None, None, None), 0);
        assert_eq!(st.generation(), g5, "no-op remove_matching must not bump");
    }

    #[test]
    fn delta_log_mirrors_every_mutation() {
        let mut st = TripleStore::new();
        let g0 = st.generation();
        st.insert(Term::iri("a"), Term::iri("p"), Term::iri("b"), 0.5).unwrap();
        st.set_weight(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"), 0.9).unwrap();
        st.remove(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"));
        let ops = st.deltas_since(g0).expect("window retained");
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], DeltaOp::Upsert { weight, .. } if weight == 0.5));
        assert!(matches!(ops[1], DeltaOp::Upsert { weight, .. } if weight == 0.9));
        assert!(matches!(ops[2], DeltaOp::Remove { .. }));
        // The current generation has an empty suffix; the future has none.
        assert_eq!(st.deltas_since(st.generation()).map(<[DeltaOp]>::len), Some(0));
        assert!(st.deltas_since(st.generation() + 1).is_none());
        // Failed mutations log nothing.
        let g = st.generation();
        assert!(st.insert(Term::str("lit"), Term::iri("p"), Term::iri("b"), 0.5).is_err());
        assert!(!st.remove(&Term::iri("zzz"), &Term::iri("p"), &Term::iri("b")));
        assert_eq!(st.generation(), g);
    }

    #[test]
    fn delta_log_compacts_past_the_cap() {
        let mut st = TripleStore::new();
        let g0 = st.generation();
        for i in 0..(DELTA_LOG_CAP + 10) {
            st.insert(Term::iri(format!("n{i}")), Term::iri("p"), Term::iri("m"), 0.5).unwrap();
        }
        assert!(st.deltas_since(g0).is_none(), "compacted window must refuse");
        let recent = st.generation() - 5;
        assert_eq!(st.deltas_since(recent).map(<[DeltaOp]>::len), Some(5));
    }

    #[test]
    fn resolve_roundtrip() {
        let st = store_with(&[("a", "p", "b", 0.5)]);
        let t = st.iter().next().unwrap();
        let (s, p, o) = st.resolve_triple(&t);
        assert_eq!(s, Term::iri("a"));
        assert_eq!(p, Term::iri("p"));
        assert_eq!(o, Term::iri("b"));
    }
}
