//! Snapshot persistence: serialize a store to JSON and back.
//!
//! Hive persists knowledge-network layers between conference editions
//! ("same conference, different years" is one of the evidence types), so
//! the store supports full dump/restore. The snapshot format is a flat
//! list of term-level triples, which keeps it stable across dictionary
//! id assignment changes.

use crate::error::StoreError;
use crate::store::TripleStore;
use crate::term::Term;

/// Serializable form of a store: term-level triples with weights.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    /// All triples as `(s, p, o, weight)`.
    pub triples: Vec<(Term, Term, Term, f64)>,
}

hive_json::impl_json_struct!(Snapshot { version, triples });

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl TripleStore {
    /// Captures the full store contents.
    pub fn snapshot(&self) -> Snapshot {
        let triples = self
            .iter()
            .map(|t| {
                let (s, p, o) = self.resolve_triple(&t);
                (s, p, o, t.weight)
            })
            .collect();
        Snapshot { version: SNAPSHOT_VERSION, triples }
    }

    /// Restores a store from a snapshot.
    pub fn from_snapshot(snap: &Snapshot) -> Result<Self, StoreError> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(StoreError::SnapshotVersion {
                found: snap.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let mut st = TripleStore::new();
        for (s, p, o, w) in &snap.triples {
            st.insert(s.clone(), p.clone(), o.clone(), *w)?;
        }
        Ok(st)
    }

    /// Serializes the store to a JSON string.
    pub fn to_json(&self) -> Result<String, StoreError> {
        Ok(hive_json::to_string(&self.snapshot()))
    }

    /// Restores a store from a JSON string produced by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, StoreError> {
        let snap: Snapshot =
            hive_json::from_str(json).map_err(|e| StoreError::Snapshot(e.to_string()))?;
        Self::from_snapshot(&snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_contents() {
        let mut st = TripleStore::new();
        st.insert(Term::iri("a"), Term::iri("p"), Term::iri("b"), 0.5).unwrap();
        st.insert(Term::iri("a"), Term::iri("name"), Term::str("Ann"), 1.0).unwrap();
        st.insert(Term::iri("a"), Term::iri("age"), Term::int(30), 1.0).unwrap();
        st.insert(Term::iri("a"), Term::iri("score"), Term::float(0.75), 0.9).unwrap();
        let json = st.to_json().unwrap();
        let restored = TripleStore::from_json(&json).unwrap();
        assert_eq!(restored.len(), st.len());
        assert_eq!(
            restored.weight(&Term::iri("a"), &Term::iri("p"), &Term::iri("b")),
            Some(0.5)
        );
        assert_eq!(
            restored.weight(&Term::iri("a"), &Term::iri("score"), &Term::float(0.75)),
            Some(0.9)
        );
        assert!(restored.check_invariants());
    }

    #[test]
    fn bad_version_rejected_with_found_and_expected() {
        let snap = Snapshot { version: 99, triples: vec![] };
        assert_eq!(
            TripleStore::from_snapshot(&snap).err(),
            Some(StoreError::SnapshotVersion { found: 99, expected: SNAPSHOT_VERSION })
        );
        // The same typed error surfaces through the JSON load path.
        let mut json = TripleStore::new().to_json().unwrap();
        json = json.replace(
            &format!("\"version\":{SNAPSHOT_VERSION}"),
            &format!("\"version\":{}", SNAPSHOT_VERSION + 7),
        );
        assert_eq!(
            TripleStore::from_json(&json).err(),
            Some(StoreError::SnapshotVersion {
                found: SNAPSHOT_VERSION + 7,
                expected: SNAPSHOT_VERSION
            })
        );
    }

    #[test]
    fn bad_json_rejected() {
        assert!(TripleStore::from_json("not json").is_err());
    }

    #[test]
    fn empty_store_roundtrips() {
        let st = TripleStore::new();
        let restored = TripleStore::from_json(&st.to_json().unwrap()).unwrap();
        assert!(restored.is_empty());
    }
}
