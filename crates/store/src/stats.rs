//! Store statistics: per-predicate counts and degree summaries.
//!
//! Used by the Figure 3 harness to report layer inventories (each knowledge
//! layer is stored under its own predicate namespace) and by the BGP
//! optimizer's future cost model.

use crate::dict::TermId;
use crate::store::TripleStore;
use std::collections::{HashMap, HashSet};

/// Aggregate statistics over a store.
#[derive(Clone, Debug, Default)]
pub struct StoreStats {
    /// Total triples.
    pub triples: usize,
    /// Distinct terms in the dictionary.
    pub terms: usize,
    /// Distinct subjects.
    pub subjects: usize,
    /// Distinct objects.
    pub objects: usize,
    /// Triple count per predicate id.
    pub per_predicate: HashMap<TermId, usize>,
    /// Mean triple weight.
    pub mean_weight: f64,
}

impl StoreStats {
    /// Computes statistics with one pass over the store.
    pub fn compute(store: &TripleStore) -> Self {
        let mut subjects = HashSet::new();
        let mut objects = HashSet::new();
        let mut per_predicate: HashMap<TermId, usize> = HashMap::new();
        let mut weight_sum = 0.0;
        let mut n = 0usize;
        for t in store.iter() {
            subjects.insert(t.s);
            objects.insert(t.o);
            *per_predicate.entry(t.p).or_insert(0) += 1;
            weight_sum += t.weight;
            n += 1;
        }
        StoreStats {
            triples: n,
            terms: store.dict().len(),
            subjects: subjects.len(),
            objects: objects.len(),
            per_predicate,
            mean_weight: if n == 0 { 0.0 } else { weight_sum / n as f64 },
        }
    }

    /// Predicate counts resolved to display strings, sorted descending.
    pub fn predicate_table(&self, store: &TripleStore) -> Vec<(String, usize)> {
        let mut rows: Vec<(String, usize)> = self
            .per_predicate
            .iter()
            .map(|(id, n)| {
                let name = store
                    .dict()
                    .resolve(*id)
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| format!("#{}", id.0));
                (name, *n)
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn stats_counts() {
        let mut st = TripleStore::new();
        st.insert(Term::iri("a"), Term::iri("p"), Term::iri("b"), 0.4).unwrap();
        st.insert(Term::iri("a"), Term::iri("p"), Term::iri("c"), 0.6).unwrap();
        st.insert(Term::iri("b"), Term::iri("q"), Term::iri("c"), 1.0).unwrap();
        let stats = StoreStats::compute(&st);
        assert_eq!(stats.triples, 3);
        assert_eq!(stats.subjects, 2);
        assert_eq!(stats.objects, 2);
        assert_eq!(stats.per_predicate.len(), 2);
        assert!((stats.mean_weight - (0.4 + 0.6 + 1.0) / 3.0).abs() < 1e-12);
        let table = stats.predicate_table(&st);
        assert_eq!(table[0], ("<p>".to_string(), 2));
        assert_eq!(table[1], ("<q>".to_string(), 1));
    }

    #[test]
    fn empty_store_stats() {
        let stats = StoreStats::compute(&TripleStore::new());
        assert_eq!(stats.triples, 0);
        assert_eq!(stats.mean_weight, 0.0);
    }
}
