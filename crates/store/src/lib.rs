//! # hive-store — weighted RDF data management substrate
//!
//! A from-scratch stand-in for **R2DB**, the weighted RDF data management
//! system Hive relies on for "weighted graph data management" (paper §2.2,
//! refs \[11\]\[12\]). It stores *weighted triples* `(subject, predicate,
//! object, weight)` with:
//!
//! * a two-way interning dictionary mapping RDF terms to dense ids,
//! * three permutation indexes (SPO / POS / OSP) supporting any
//!   single-pattern scan without a full sweep,
//! * conjunctive basic-graph-pattern (BGP) queries with variable bindings
//!   and selectivity-ordered left-deep joins,
//! * **ranked path queries**: cheapest and top-k weighted paths between two
//!   terms (the primitive behind Hive's relationship discovery and
//!   explanation, Figure 2 of the paper),
//! * snapshot persistence via the in-tree `hive-json` serializer.
//!
//! Weights are probabilities/strengths in `(0, 1]`; path cost composes
//! multiplicatively (implemented additively over `-ln w`).
//!
//! ```
//! use hive_store::{TripleStore, Term};
//!
//! let mut store = TripleStore::new();
//! let a = Term::iri("user:ann");
//! let b = Term::iri("user:bob");
//! let coauth = Term::iri("rel:coauthor");
//! store.insert(a.clone(), coauth.clone(), b.clone(), 0.9).unwrap();
//! assert_eq!(store.len(), 1);
//! let hits: Vec<_> = store.triples_matching(Some(&a), None, None).collect();
//! assert_eq!(hits.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod dict;
pub mod error;
pub mod parse;
pub mod path;
pub mod pattern;
pub mod query;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod term;
pub mod view;

pub use batch::{BatchResult, Op};
pub use dict::{TermDict, TermId};
pub use error::StoreError;
pub use parse::{parse_query, run_query, ParsedQuery, QueryRow};
pub use path::{PathQuery, RankedPath};
pub use pattern::{Binding, Pattern, PatternTerm};
pub use query::{BgpQuery, Solution};
pub use stats::StoreStats;
pub use store::{DeltaOp, StoredTriple, TripleStore, DELTA_LOG_CAP};
pub use term::Term;
pub use view::{GraphView, ViewEdge};
