//! Error types for the store.

use std::fmt;

/// Errors produced by store operations.
#[derive(Clone, Debug, PartialEq)]
pub enum StoreError {
    /// A triple weight outside `(0, 1]` (or NaN) was supplied.
    InvalidWeight(f64),
    /// A literal appeared in subject or predicate position.
    InvalidPosition(&'static str),
    /// A term referenced by a query is not present in the store.
    UnknownTerm(String),
    /// Snapshot (de)serialization failure.
    Snapshot(String),
    /// A snapshot was written by an incompatible format version.
    SnapshotVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// A path query referenced identical or unknown endpoints.
    BadPathQuery(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::InvalidWeight(w) => {
                write!(f, "triple weight {w} outside (0, 1]")
            }
            StoreError::InvalidPosition(pos) => {
                write!(f, "literal term not allowed in {pos} position")
            }
            StoreError::UnknownTerm(t) => write!(f, "unknown term: {t}"),
            StoreError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            StoreError::SnapshotVersion { found, expected } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {expected})"
            ),
            StoreError::BadPathQuery(msg) => write!(f, "bad path query: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(StoreError::InvalidWeight(2.0).to_string().contains("2"));
        assert!(StoreError::InvalidPosition("predicate")
            .to_string()
            .contains("predicate"));
        assert!(StoreError::UnknownTerm("x".into()).to_string().contains('x'));
        let v = StoreError::SnapshotVersion { found: 9, expected: 1 };
        assert!(v.to_string().contains('9') && v.to_string().contains('1'));
    }
}
