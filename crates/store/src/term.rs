//! RDF-style terms: IRIs, literals, and blank nodes.
//!
//! Floats are stored bit-exact so `Term` can be `Eq + Hash + Ord` and used
//! as a dictionary key. NaN is rejected at construction.

use hive_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Bit-exact wrapper for an `f64` literal so terms are hashable/orderable.
///
/// Total order is the IEEE-754 total order restricted to non-NaN values
/// (NaN is rejected by [`Term::float`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FloatBits(u64);

impl FloatBits {
    /// Wraps a non-NaN float. Returns `None` for NaN.
    pub fn new(v: f64) -> Option<Self> {
        if v.is_nan() {
            None
        } else {
            // Flip the bit pattern of negatives so the u64 order matches
            // the numeric order (standard total-order trick).
            let bits = v.to_bits();
            let ordered = if bits >> 63 == 1 { !bits } else { bits ^ (1 << 63) };
            Some(FloatBits(ordered))
        }
    }

    /// Recovers the float value.
    pub fn value(self) -> f64 {
        let ordered = self.0;
        let bits = if ordered >> 63 == 1 { ordered ^ (1 << 63) } else { !ordered };
        f64::from_bits(bits)
    }
}

impl fmt::Debug for FloatBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value())
    }
}

/// An RDF-style term.
///
/// Hive encodes every knowledge-network node (users, papers, sessions,
/// concepts) as an IRI and attaches literals for names, scores, and
/// timestamps.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A named resource, e.g. `user:ann` or `rel:coauthor`.
    Iri(String),
    /// A string literal.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal (non-NaN, bit-exact).
    Float(FloatBits),
    /// A blank node with a store-local id.
    Blank(u64),
}

impl Term {
    /// Convenience constructor for an IRI term.
    pub fn iri(s: impl Into<String>) -> Self {
        Term::Iri(s.into())
    }

    /// Convenience constructor for a string literal.
    pub fn str(s: impl Into<String>) -> Self {
        Term::Str(s.into())
    }

    /// Convenience constructor for an integer literal.
    pub fn int(v: i64) -> Self {
        Term::Int(v)
    }

    /// Convenience constructor for a float literal. Panics on NaN
    /// (documented contract: NaN is not a valid RDF literal; use
    /// [`FloatBits::new`] directly for fallible construction).
    pub fn float(v: f64) -> Self {
        Term::Float(FloatBits::new(v).expect("NaN literal is not a valid RDF term")) // lint:allow(no-panic-paths)
    }

    /// True if this term may appear in subject position (IRI or blank).
    pub fn is_resource(&self) -> bool {
        matches!(self, Term::Iri(_) | Term::Blank(_))
    }

    /// The IRI string, if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }
}

// Serialized as the float *value*: hive-json's writer emits the
// shortest decimal that round-trips bit-exactly, so dump/load
// preserves the exact bits (NaN can never occur by construction).
impl ToJson for FloatBits {
    fn to_json(&self) -> Json {
        Json::Float(self.value())
    }
}

impl FromJson for FloatBits {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        FloatBits::new(v.as_f64()?).ok_or_else(|| JsonError::new("NaN is not a valid float term"))
    }
}

hive_json::impl_json_enum_payload!(Term { Iri, Str, Int, Float, Blank });

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Str(s) => write!(f, "\"{s}\""),
            Term::Int(v) => write!(f, "{v}"),
            Term::Float(v) => write!(f, "{}", v.value()),
            Term::Blank(id) => write!(f, "_:b{id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_bits_roundtrip() {
        for v in [0.0, -0.0, 1.5, -1.5, f64::MAX, f64::MIN, 1e-300, -1e-300] {
            let fb = FloatBits::new(v).unwrap();
            assert_eq!(fb.value().to_bits(), v.to_bits(), "roundtrip of {v}");
        }
    }

    #[test]
    fn float_bits_order_matches_numeric_order() {
        let vals = [-10.0, -1.0, -0.5, 0.0, 0.25, 1.0, 100.0];
        for w in vals.windows(2) {
            let a = FloatBits::new(w[0]).unwrap();
            let b = FloatBits::new(w[1]).unwrap();
            assert!(a < b, "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn nan_rejected() {
        assert!(FloatBits::new(f64::NAN).is_none());
    }

    #[test]
    fn term_display() {
        assert_eq!(Term::iri("user:ann").to_string(), "<user:ann>");
        assert_eq!(Term::str("hello").to_string(), "\"hello\"");
        assert_eq!(Term::int(-3).to_string(), "-3");
        assert_eq!(Term::Blank(7).to_string(), "_:b7");
    }

    #[test]
    fn resource_positions() {
        assert!(Term::iri("x").is_resource());
        assert!(Term::Blank(0).is_resource());
        assert!(!Term::str("x").is_resource());
        assert!(!Term::int(1).is_resource());
    }
}
