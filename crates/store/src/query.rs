//! Conjunctive basic-graph-pattern (BGP) evaluation.
//!
//! Hive's services express knowledge-network lookups ("papers by authors
//! who co-authored with X and were cited by Y") as conjunctions of triple
//! patterns. Evaluation is a left-deep nested-loop join; at each step the
//! remaining pattern with the smallest estimated cardinality *given the
//! current bindings* is evaluated next (greedy selectivity ordering).

use crate::pattern::{Binding, Pattern, PatternTerm};
use crate::store::TripleStore;
use crate::term::Term;
use crate::TermId;

/// A conjunctive query: all patterns must match simultaneously.
#[derive(Clone, Debug, Default)]
pub struct BgpQuery {
    patterns: Vec<Pattern>,
    limit: Option<usize>,
}

/// One query solution: a complete binding of the query's variables, plus
/// the product of the matched triple weights (a confidence score).
#[derive(Clone, Debug)]
pub struct Solution {
    /// The variable assignment.
    pub binding: Binding,
    /// Product of matched triple weights in `(0, 1]`.
    pub score: f64,
}

impl Solution {
    /// Resolves a variable to its term using the store dictionary.
    pub fn term<'a>(&self, store: &'a TripleStore, var: &str) -> Option<&'a Term> {
        self.binding.get(var).and_then(|id| store.dict().resolve(id))
    }
}

impl BgpQuery {
    /// An empty query (matches a single empty solution).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one triple pattern.
    pub fn pattern(mut self, p: Pattern) -> Self {
        self.patterns.push(p);
        self
    }

    /// Caps the number of returned solutions.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Number of patterns in the query.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if the query has no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    fn position_id(
        store: &TripleStore,
        t: &PatternTerm,
        binding: &Binding,
    ) -> Result<Option<TermId>, ()> {
        match t {
            PatternTerm::Bound(term) => match store.dict().get(term) {
                Some(id) => Ok(Some(id)),
                // Bound term unknown to the store: pattern can't match.
                None => Err(()),
            },
            PatternTerm::Var(v) => Ok(binding.get(v)),
        }
    }

    /// Estimated result cardinality for `pattern` under `binding`.
    fn estimate(store: &TripleStore, pattern: &Pattern, binding: &Binding) -> usize {
        let s = Self::position_id(store, &pattern.s, binding);
        let p = Self::position_id(store, &pattern.p, binding);
        let o = Self::position_id(store, &pattern.o, binding);
        match (s, p, o) {
            (Ok(s), Ok(p), Ok(o)) => store.count_ids(s, p, o),
            _ => 0,
        }
    }

    fn match_pattern(
        store: &TripleStore,
        pattern: &Pattern,
        binding: &Binding,
    ) -> Vec<(Binding, f64)> {
        let (Ok(s), Ok(p), Ok(o)) = (
            Self::position_id(store, &pattern.s, binding),
            Self::position_id(store, &pattern.p, binding),
            Self::position_id(store, &pattern.o, binding),
        ) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for t in store.scan_ids(s, p, o) {
            if t.weight < pattern.min_weight {
                continue;
            }
            let mut b = binding.clone();
            let mut ok = true;
            for (pt, id) in [(&pattern.s, t.s), (&pattern.p, t.p), (&pattern.o, t.o)] {
                if let PatternTerm::Var(v) = pt {
                    match b.extended(v, id) {
                        Some(nb) => b = nb,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                out.push((b, t.weight));
            }
        }
        out
    }

    /// Evaluates the query against `store`, returning all solutions sorted
    /// by descending score.
    pub fn evaluate(&self, store: &TripleStore) -> Vec<Solution> {
        hive_obs::count("store.bgp_query", 1);
        let all_patterns: Vec<usize> = (0..self.patterns.len()).collect();
        let mut frontier = vec![(Binding::new(), 1.0f64, all_patterns)];
        let mut results = Vec::new();
        while let Some((binding, score, remaining)) = frontier.pop() {
            if remaining.is_empty() {
                results.push(Solution { binding, score });
                if let Some(limit) = self.limit {
                    if results.len() >= limit * 4 {
                        // Over-collect a bit so the final sort can still
                        // surface the highest-scoring solutions.
                        break;
                    }
                }
                continue;
            }
            // Pick the remaining pattern with the smallest estimate.
            let Some((pos, &pat_idx)) = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, &i)| Self::estimate(store, &self.patterns[i], &binding))
            else {
                continue;
            };
            let mut rest = remaining.clone();
            rest.remove(pos);
            for (nb, w) in Self::match_pattern(store, &self.patterns[pat_idx], &binding) {
                frontier.push((nb, score * w, rest.clone()));
            }
        }
        results.sort_by(|a, b| b.score.total_cmp(&a.score));
        if let Some(limit) = self.limit {
            results.truncate(limit);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> TripleStore {
        let mut st = TripleStore::new();
        let ins = |st: &mut TripleStore, s: &str, p: &str, o: &str, w: f64| {
            st.insert(Term::iri(s), Term::iri(p), Term::iri(o), w).unwrap();
        };
        // Co-authorship triangle plus a citation.
        ins(&mut st, "ann", "coauthor", "bob", 0.9);
        ins(&mut st, "bob", "coauthor", "carol", 0.8);
        ins(&mut st, "ann", "coauthor", "carol", 0.7);
        ins(&mut st, "ann", "cites", "dave", 0.6);
        ins(&mut st, "carol", "cites", "dave", 0.5);
        st
    }

    #[test]
    fn single_pattern_query() {
        let st = sample_store();
        let q = BgpQuery::new().pattern(Pattern::new(
            PatternTerm::bound(Term::iri("ann")),
            PatternTerm::bound(Term::iri("coauthor")),
            PatternTerm::var("who"),
        ));
        let sols = q.evaluate(&st);
        assert_eq!(sols.len(), 2);
        // Sorted by score: bob (0.9) before carol (0.7).
        assert_eq!(sols[0].term(&st, "who"), Some(&Term::iri("bob")));
        assert_eq!(sols[1].term(&st, "who"), Some(&Term::iri("carol")));
    }

    #[test]
    fn join_two_patterns() {
        let st = sample_store();
        // Who co-authored with ann AND cites dave? -> carol.
        let q = BgpQuery::new()
            .pattern(Pattern::new(
                PatternTerm::bound(Term::iri("ann")),
                PatternTerm::bound(Term::iri("coauthor")),
                PatternTerm::var("x"),
            ))
            .pattern(Pattern::new(
                PatternTerm::var("x"),
                PatternTerm::bound(Term::iri("cites")),
                PatternTerm::bound(Term::iri("dave")),
            ));
        let sols = q.evaluate(&st);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].term(&st, "x"), Some(&Term::iri("carol")));
        let expected = 0.7 * 0.5;
        assert!((sols[0].score - expected).abs() < 1e-12);
    }

    #[test]
    fn shared_variable_across_positions() {
        let mut st = sample_store();
        st.insert(Term::iri("loop"), Term::iri("coauthor"), Term::iri("loop"), 0.3)
            .unwrap();
        // ?x coauthor ?x matches only the self-loop.
        let q = BgpQuery::new().pattern(Pattern::new(
            PatternTerm::var("x"),
            PatternTerm::bound(Term::iri("coauthor")),
            PatternTerm::var("x"),
        ));
        let sols = q.evaluate(&st);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].term(&st, "x"), Some(&Term::iri("loop")));
    }

    #[test]
    fn min_weight_filter() {
        let st = sample_store();
        let q = BgpQuery::new().pattern(
            Pattern::new(
                PatternTerm::bound(Term::iri("ann")),
                PatternTerm::bound(Term::iri("coauthor")),
                PatternTerm::var("who"),
            )
            .with_min_weight(0.8),
        );
        let sols = q.evaluate(&st);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].term(&st, "who"), Some(&Term::iri("bob")));
    }

    #[test]
    fn unknown_bound_term_yields_no_solutions() {
        let st = sample_store();
        let q = BgpQuery::new().pattern(Pattern::new(
            PatternTerm::bound(Term::iri("nobody")),
            PatternTerm::var("p"),
            PatternTerm::var("o"),
        ));
        assert!(q.evaluate(&st).is_empty());
    }

    #[test]
    fn limit_is_respected() {
        let st = sample_store();
        let q = BgpQuery::new()
            .pattern(Pattern::new(
                PatternTerm::var("s"),
                PatternTerm::var("p"),
                PatternTerm::var("o"),
            ))
            .limit(2);
        assert_eq!(q.evaluate(&st).len(), 2);
    }

    #[test]
    fn empty_query_yields_one_empty_solution() {
        let st = sample_store();
        let sols = BgpQuery::new().evaluate(&st);
        assert_eq!(sols.len(), 1);
        assert!(sols[0].binding.is_empty());
        assert_eq!(sols[0].score, 1.0);
    }
}
