//! All-or-nothing batch application of store operations.
//!
//! Knowledge-layer refreshes replace whole predicate families (drop every
//! `rel:checked_in`, re-insert the current set). A half-applied refresh
//! would leave path queries seeing a layer that never existed, so the
//! batch validates every operation up front and only then mutates —
//! failure before the mutation phase leaves the store untouched.

use crate::error::StoreError;
use crate::store::TripleStore;
use crate::term::Term;

/// One operation in a batch.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Insert (or re-weight) a triple.
    Insert {
        /// Subject (resource).
        s: Term,
        /// Predicate (IRI).
        p: Term,
        /// Object.
        o: Term,
        /// Weight in `(0, 1]`.
        weight: f64,
    },
    /// Remove one triple (no-op if absent).
    Remove {
        /// Subject.
        s: Term,
        /// Predicate.
        p: Term,
        /// Object.
        o: Term,
    },
    /// Remove everything matching a pattern (`None` = wildcard).
    RemoveMatching {
        /// Subject filter.
        s: Option<Term>,
        /// Predicate filter.
        p: Option<Term>,
        /// Object filter.
        o: Option<Term>,
    },
}

/// Summary of an applied batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// Triples newly inserted.
    pub inserted: usize,
    /// Existing triples re-weighted.
    pub reweighted: usize,
    /// Triples removed.
    pub removed: usize,
}

impl TripleStore {
    /// Applies `ops` atomically: every `Insert` is validated first; if
    /// any is invalid, the store is left untouched and the error names
    /// the offending operation index.
    pub fn apply_batch(&mut self, ops: &[Op]) -> Result<BatchResult, StoreError> {
        // Validation phase: surface the first invalid insert without
        // touching the store.
        for (i, op) in ops.iter().enumerate() {
            if let Op::Insert { s, p, weight, .. } = op {
                if !(*weight > 0.0 && *weight <= 1.0) {
                    return Err(StoreError::Snapshot(format!(
                        "batch op {i}: {}",
                        StoreError::InvalidWeight(*weight)
                    )));
                }
                if !s.is_resource() {
                    return Err(StoreError::Snapshot(format!(
                        "batch op {i}: {}",
                        StoreError::InvalidPosition("subject")
                    )));
                }
                if !matches!(p, Term::Iri(_)) {
                    return Err(StoreError::Snapshot(format!(
                        "batch op {i}: {}",
                        StoreError::InvalidPosition("predicate")
                    )));
                }
            }
        }
        // Mutation phase: infallible after validation.
        let mut result = BatchResult::default();
        for op in ops {
            match op {
                Op::Insert { s, p, o, weight } => {
                    // Already validated above; propagating (rather than
                    // panicking) keeps the path panic-free if the two
                    // phases ever drift apart.
                    let fresh = self.insert(s.clone(), p.clone(), o.clone(), *weight)?;
                    if fresh {
                        result.inserted += 1;
                    } else {
                        result.reweighted += 1;
                    }
                }
                Op::Remove { s, p, o } => {
                    if self.remove(s, p, o) {
                        result.removed += 1;
                    }
                }
                Op::RemoveMatching { s, p, o } => {
                    result.removed +=
                        self.remove_matching(s.as_ref(), p.as_ref(), o.as_ref());
                }
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }

    #[test]
    fn batch_applies_in_order() {
        let mut st = TripleStore::new();
        let result = st
            .apply_batch(&[
                Op::Insert { s: iri("a"), p: iri("p"), o: iri("b"), weight: 0.5 },
                Op::Insert { s: iri("a"), p: iri("p"), o: iri("c"), weight: 0.6 },
                // Re-weight the first.
                Op::Insert { s: iri("a"), p: iri("p"), o: iri("b"), weight: 0.9 },
                Op::Remove { s: iri("a"), p: iri("p"), o: iri("c") },
            ])
            .unwrap();
        assert_eq!(result, BatchResult { inserted: 2, reweighted: 1, removed: 1 });
        assert_eq!(st.len(), 1);
        assert_eq!(st.weight(&iri("a"), &iri("p"), &iri("b")), Some(0.9));
        assert!(st.check_invariants());
    }

    #[test]
    fn invalid_op_leaves_store_untouched() {
        let mut st = TripleStore::new();
        st.insert(iri("keep"), iri("p"), iri("x"), 0.5).unwrap();
        let err = st
            .apply_batch(&[
                Op::Insert { s: iri("a"), p: iri("p"), o: iri("b"), weight: 0.5 },
                Op::Insert { s: iri("a"), p: iri("p"), o: iri("c"), weight: 7.0 }, // bad
            ])
            .unwrap_err();
        assert!(err.to_string().contains("batch op 1"), "{err}");
        assert_eq!(st.len(), 1, "nothing from the failed batch applied");
        assert!(st.contains(&iri("keep"), &iri("p"), &iri("x")));
    }

    #[test]
    fn layer_refresh_pattern() {
        // The motivating use: drop a predicate family, re-insert fresh.
        let mut st = TripleStore::new();
        st.insert(iri("u1"), iri("rel:checked_in"), iri("s1"), 0.9).unwrap();
        st.insert(iri("u2"), iri("rel:checked_in"), iri("s1"), 0.9).unwrap();
        st.insert(iri("u1"), iri("rel:coauthor"), iri("u2"), 0.8).unwrap();
        let result = st
            .apply_batch(&[
                Op::RemoveMatching { s: None, p: Some(iri("rel:checked_in")), o: None },
                Op::Insert {
                    s: iri("u1"),
                    p: iri("rel:checked_in"),
                    o: iri("s2"),
                    weight: 0.9,
                },
            ])
            .unwrap();
        assert_eq!(result.removed, 2);
        assert_eq!(result.inserted, 1);
        assert_eq!(st.len(), 2);
        assert!(st.contains(&iri("u1"), &iri("rel:coauthor"), &iri("u2")), "other layers untouched");
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut st = TripleStore::new();
        let r = st.apply_batch(&[]).unwrap();
        assert_eq!(r, BatchResult::default());
        assert!(st.is_empty());
    }
}
