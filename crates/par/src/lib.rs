//! # hive-par — deterministic scoped worker pool
//!
//! All concurrency in the workspace flows through this crate (enforced
//! by lint rule R6): a small set of data-parallel primitives built on
//! `std::thread::scope`, designed so that **parallel output is
//! bit-identical to serial output**.
//!
//! The determinism contract:
//!
//! * Work is split into **fixed chunks whose layout depends only on the
//!   item count** (`chunk_len`), never on the worker count. Which
//!   worker executes a chunk is scheduling noise; what each chunk
//!   computes is not.
//! * [`par_map`] / [`par_for_each_chunk`] / [`par_map_chunks_mut`]
//!   write per-element / per-chunk results into pre-assigned slots, so
//!   reassembly order is fixed.
//! * [`par_reduce`] folds each chunk independently and merges the
//!   partials **in chunk order** — and the serial fallback performs the
//!   exact same chunked merge, so `HIVE_THREADS=1` and `HIVE_THREADS=64`
//!   produce the same bits (floating-point association included).
//! * [`par_rounds`] runs iterative algorithms (power iteration, ALS
//!   sweeps) with a pool of persistent workers synchronized by a
//!   barrier per round, avoiding per-iteration spawn cost; per-chunk
//!   scratch is merged in chunk order by the caller between rounds.
//! * [`par_tasks`] runs a handful of **coarse** independent tasks (file
//!   scans, reader loops) — one dispatch unit per task, no chunking and
//!   no item-count cutoff — returning results in input order.
//!
//! ## Adaptive execution policy
//!
//! Determinism makes the execution strategy a pure performance knob,
//! and the pool exploits that in three ways:
//!
//! * **Host clamp** — the effective worker count never exceeds
//!   [`host_parallelism`], even under [`with_threads`]: requesting four
//!   workers on a one-core box would serialize through the scheduler
//!   anyway and pay spawn + contention for nothing. Tests that must
//!   exercise the pool machinery regardless of the host use
//!   [`force_workers`].
//! * **Per-primitive serial cutoff** — each primitive falls back to
//!   its serial path below a profitability threshold (item counts too
//!   small to amortize a scope spawn). The serial paths perform the
//!   identical chunked merge, so the fallback is invisible in the
//!   output bits; it is visible to observability as the
//!   `par.serial_fallback` counter.
//! * **Work-aware chunk sizing** — [`chunk_len`] keeps chunks at or
//!   above [`MIN_CHUNK`] items (still a pure function of `n`), so
//!   mid-sized inputs dispatch a handful of substantial chunks instead
//!   of 64 slivers whose queue/lock traffic eats the speedup.
//!
//! Pool size comes from the `HIVE_THREADS` environment variable (read
//! once), defaulting to `min(available_parallelism, 8)` and clamped to
//! the host. Tests and benches use [`with_threads`] for a scoped,
//! thread-local override instead of mutating the environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, OnceLock};
use std::thread;

/// Hard ceiling on the pool size, to keep a typo'd `HIVE_THREADS` sane.
pub const MAX_THREADS: usize = 256;

/// Maximum number of chunks a slice is split into. Chunk layout is a
/// pure function of the item count so results never depend on the
/// worker count.
pub const MAX_CHUNKS: usize = 64;

/// Minimum items per chunk once an input is large enough to split.
/// Chunks below this size cost more in queue/lock traffic than their
/// work is worth; [`chunk_len`] never goes below `MIN_CHUNK.min(n)`.
pub const MIN_CHUNK: usize = 256;

/// Serial cutoffs: below these item counts the primitive's serial path
/// beats spawning a scope. Each is calibrated to the primitive's
/// per-item overhead profile (element closures for map, chunk folds
/// for reduce, barrier rounds for the round loop).
const MAP_SERIAL_CUTOFF: usize = 1_024;
const CHUNKED_SERIAL_CUTOFF: usize = 1_024;
const REDUCE_SERIAL_CUTOFF: usize = 2_048;
const ROUNDS_SERIAL_CUTOFF: usize = 1_024;

static POOL_SIZE: OnceLock<usize> = OnceLock::new();
static HOST: OnceLock<usize> = OnceLock::new();

/// A scoped worker-count override: `forced` distinguishes
/// [`force_workers`] (exact count, for pool-machinery tests) from
/// [`with_threads`] (a request, clamped to the host).
#[derive(Clone, Copy)]
struct Override {
    n: usize,
    forced: bool,
}

thread_local! {
    static OVERRIDE: Cell<Option<Override>> = const { Cell::new(None) };
}

/// The host's hardware thread count (cached; 1 if undetectable). The
/// ceiling for every non-forced worker request.
pub fn host_parallelism() -> usize {
    *HOST.get_or_init(|| thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

fn default_threads() -> usize {
    let configured = std::env::var("HIVE_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1);
    configured.unwrap_or(8).min(host_parallelism()).min(MAX_THREADS)
}

/// The effective worker count for parallel primitives on this thread:
/// the innermost [`with_threads`] / [`force_workers`] override if one
/// is active, else the process-wide pool size (`HIVE_THREADS`, read
/// once, defaulting to 8). Except under [`force_workers`], the count
/// is clamped to [`host_parallelism`] — oversubscribing a small host
/// only adds spawn and contention cost.
pub fn threads() -> usize {
    if let Some(o) = OVERRIDE.with(Cell::get) {
        return if o.forced { o.n } else { o.n.min(host_parallelism()) };
    }
    *POOL_SIZE.get_or_init(default_threads)
}

struct OverrideGuard {
    prev: Option<Override>,
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        OVERRIDE.with(|c| c.set(self.prev));
    }
}

fn with_override<R>(o: Override, f: impl FnOnce() -> R) -> R {
    let prev = OVERRIDE.with(|c| c.replace(Some(o)));
    let _guard = OverrideGuard { prev };
    f()
}

/// Runs `f` with the worker count pinned to at most `n` on this thread
/// (restored on exit, panic-safe). The request is clamped to the host
/// parallelism, so `with_threads(4, f)` on a one-core box runs serial
/// — which is safe precisely because parallel and serial results are
/// bit-identical. `with_threads(1, f)` is the canonical "force serial"
/// gate.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    with_override(Override { n: n.clamp(1, MAX_THREADS), forced: false }, f)
}

/// Runs `f` with **exactly** `n` workers, bypassing the host clamp.
/// For tests and calibration runs that must exercise the pool
/// machinery (chunk queues, counter harvest, barrier rounds) even on
/// hosts with fewer cores; production callers want [`with_threads`].
pub fn force_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
    with_override(Override { n: n.clamp(1, MAX_THREADS), forced: true }, f)
}

/// The fixed chunk length for `n` items — a pure function of `n`, so
/// results never depend on the worker count. `ceil(n / MAX_CHUNKS)`,
/// raised to [`MIN_CHUNK`] (or `n`, if smaller) so mid-sized inputs
/// split into a few substantial chunks rather than 64 slivers.
pub fn chunk_len(n: usize) -> usize {
    ((n + MAX_CHUNKS - 1) / MAX_CHUNKS).max(MIN_CHUNK.min(n)).max(1)
}

/// Number of chunks `n` items split into under [`chunk_len`].
pub fn chunk_count(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        (n + chunk_len(n) - 1) / chunk_len(n)
    }
}

fn lock_set<T>(slot: &Mutex<T>, value: T) {
    match slot.lock() {
        Ok(mut guard) => *guard = value,
        Err(poisoned) => *poisoned.into_inner() = value,
    }
}

fn unlock<T>(slot: Mutex<T>) -> T {
    match slot.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Pins nested parallel calls inside worker closures to serial, so a
/// mapped function that itself uses hive-par does not oversubscribe.
fn pin_serial() {
    OVERRIDE.with(|c| c.set(Some(Override { n: 1, forced: true })));
}

/// The per-primitive serial gate. True when the pool is already pinned
/// serial or the item count is below the primitive's profitability
/// cutoff; in the latter case (workers were available but declined)
/// the decision is recorded as `par.serial_fallback`. Serial paths
/// replicate the chunked merge, so this only moves time, never bits.
fn below_cutoff(t: usize, n: usize, cutoff: usize) -> bool {
    if t <= 1 {
        return true;
    }
    if n <= cutoff {
        hive_obs::count("par.serial_fallback", 1);
        return true;
    }
    false
}

/// Carries the caller's observability level into scoped workers and
/// collects the named counters and gauges they record, so
/// per-operation counts (store scans inside a `par_map` closure, say)
/// survive the scope join. Both harvested kinds merge commutatively —
/// counters by sum, gauges by max — so totals and peaks are identical
/// for any worker count or chunk scheduling; spans opened inside
/// workers stay worker-local and are deliberately dropped.
struct ObsHarvest {
    level: hive_obs::Level,
    sink: Mutex<Vec<(String, u64)>>,
    gauge_sink: Mutex<Vec<(String, u64)>>,
}

impl ObsHarvest {
    fn new() -> Self {
        ObsHarvest {
            level: hive_obs::level(),
            sink: Mutex::new(Vec::new()),
            gauge_sink: Mutex::new(Vec::new()),
        }
    }

    /// Called inside a fresh worker thread, after [`pin_serial`].
    fn enter_worker(&self) {
        hive_obs::set_level(self.level);
    }

    /// Called as the worker finishes: drains its thread-local counters
    /// and gauges into the shared sinks.
    fn exit_worker(&self) {
        if self.level == hive_obs::Level::Off {
            return;
        }
        let drained = hive_obs::drain_counters();
        if !drained.is_empty() {
            match self.sink.lock() {
                Ok(mut g) => g.extend(drained),
                Err(poisoned) => poisoned.into_inner().extend(drained),
            }
        }
        let gauges = hive_obs::drain_gauges();
        if !gauges.is_empty() {
            match self.gauge_sink.lock() {
                Ok(mut g) => g.extend(gauges),
                Err(poisoned) => poisoned.into_inner().extend(gauges),
            }
        }
    }

    /// Called on the caller thread after the scope join: folds every
    /// harvested counter and gauge back into the caller's registry.
    fn merge(self) {
        if self.level == hive_obs::Level::Off {
            return;
        }
        let pairs = unlock(self.sink);
        hive_obs::merge_counters(&pairs);
        let gauges = unlock(self.gauge_sink);
        hive_obs::merge_gauges(&gauges);
    }
}

/// Records the shared entry counters for one pool primitive: the call
/// itself, items submitted, fixed chunks dispatched, and the tail
/// slack (how many item slots the last chunk leaves idle — the
/// chunk-imbalance measure for a fixed layout).
fn count_dispatch(primitive: &str, n_items: usize) {
    hive_obs::count(&format!("par.{primitive}.calls"), 1);
    hive_obs::count(&format!("par.{primitive}.items"), n_items as u64);
    let chunks = chunk_count(n_items);
    hive_obs::count("par.chunks", chunks as u64);
    if chunks > 0 {
        let slack = chunks * chunk_len(n_items) - n_items;
        hive_obs::count("par.chunk_slack", slack as u64);
    }
}

/// Applies `f` to every element, in parallel over fixed chunks, and
/// returns the results in input order. Element results are independent,
/// so output is identical for any worker count.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    count_dispatch("map", items.len());
    let t = threads();
    if below_cutoff(t, items.len(), MAP_SERIAL_CUTOFF) {
        return items.iter().map(f).collect();
    }
    let chunks: Vec<&[T]> = items.chunks(chunk_len(items.len())).collect();
    let results: Vec<Mutex<Vec<U>>> = chunks.iter().map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    let harvest = ObsHarvest::new();
    let f = &f;
    let chunks_ref = &chunks;
    let results_ref = &results;
    let next_ref = &next;
    let harvest_ref = &harvest;
    thread::scope(|s| {
        for _ in 0..t.min(chunks.len()) {
            s.spawn(move || {
                pin_serial();
                harvest_ref.enter_worker();
                loop {
                    let ci = next_ref.fetch_add(1, Ordering::Relaxed);
                    if ci >= chunks_ref.len() {
                        break;
                    }
                    let out: Vec<U> = chunks_ref[ci].iter().map(f).collect();
                    lock_set(&results_ref[ci], out);
                }
                harvest_ref.exit_worker();
            });
        }
    });
    harvest.merge();
    let mut out = Vec::with_capacity(items.len());
    for slot in results {
        out.extend(unlock(slot));
    }
    out
}

/// Runs `f(index, &item)` once per item, in parallel, and returns the
/// results **in input order**. Unlike [`par_map`] there is no
/// item-count cutoff: tasks are coarse by contract — a whole file
/// scan, a reader loop, a writer loop — so even two of them are worth
/// a scope spawn. Each task is its own dispatch unit (no chunking),
/// pulled by workers from a shared index queue; results land in
/// pre-assigned slots so reassembly never depends on scheduling.
///
/// The serial path (one worker, or a single task) runs the tasks in
/// index order on the caller thread — identical output, by the same
/// argument as the other primitives.
pub fn par_tasks<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    hive_obs::count("par.tasks.calls", 1);
    hive_obs::count("par.tasks.items", n as u64);
    let t = threads();
    if t <= 1 || n <= 1 {
        if t > 1 && n <= 1 {
            hive_obs::count("par.serial_fallback", 1);
        }
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let harvest = ObsHarvest::new();
    let f = &f;
    let items_ref = items;
    let slots_ref = &slots;
    let next_ref = &next;
    let harvest_ref = &harvest;
    thread::scope(|s| {
        for _ in 0..t.min(n) {
            s.spawn(move || {
                pin_serial();
                harvest_ref.enter_worker();
                loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= items_ref.len() {
                        break;
                    }
                    let out = f(i, &items_ref[i]);
                    lock_set(&slots_ref[i], Some(out));
                }
                harvest_ref.exit_worker();
            });
        }
    });
    harvest.merge();
    slots.into_iter().filter_map(unlock).collect()
}

/// Runs `f(offset, chunk)` over fixed mutable chunks of `data`, in
/// parallel. Chunks are disjoint, so any worker count writes the same
/// bytes.
pub fn par_for_each_chunk<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    count_dispatch("for_each_chunk", n);
    if n == 0 {
        return;
    }
    let chunk = chunk_len(n);
    let t = threads();
    if below_cutoff(t, n, CHUNKED_SERIAL_CUTOFF) {
        for (ci, c) in data.chunks_mut(chunk).enumerate() {
            f(ci * chunk, c);
        }
        return;
    }
    let queue = Mutex::new(data.chunks_mut(chunk).enumerate());
    let harvest = ObsHarvest::new();
    let f = &f;
    let queue = &queue;
    let harvest_ref = &harvest;
    thread::scope(|s| {
        for _ in 0..t.min(chunk_count(n)) {
            s.spawn(move || {
                pin_serial();
                harvest_ref.enter_worker();
                loop {
                    let job = match queue.lock() {
                        Ok(mut q) => q.next(),
                        Err(poisoned) => poisoned.into_inner().next(),
                    };
                    match job {
                        Some((ci, c)) => f(ci * chunk, c),
                        None => break,
                    }
                }
                harvest_ref.exit_worker();
            });
        }
    });
    harvest.merge();
}

/// Like [`par_for_each_chunk`] but each chunk also produces a value;
/// the values come back **in chunk order**. This is the workhorse for
/// fused passes: write a disjoint output chunk and return the chunk's
/// partial statistics (delta, mass, ...) in one parallel region.
pub fn par_map_chunks_mut<T, U, F>(data: &mut [T], f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T]) -> U + Sync,
{
    let n = data.len();
    count_dispatch("map_chunks_mut", n);
    if n == 0 {
        return Vec::new();
    }
    let chunk = chunk_len(n);
    let t = threads();
    if below_cutoff(t, n, CHUNKED_SERIAL_CUTOFF) {
        return data.chunks_mut(chunk).enumerate().map(|(ci, c)| f(ci * chunk, c)).collect();
    }
    let slots: Vec<Mutex<Option<U>>> = (0..chunk_count(n)).map(|_| Mutex::new(None)).collect();
    let queue = Mutex::new(data.chunks_mut(chunk).enumerate());
    let harvest = ObsHarvest::new();
    let f = &f;
    let queue = &queue;
    let slots_ref = &slots;
    let harvest_ref = &harvest;
    thread::scope(|s| {
        for _ in 0..t.min(chunk_count(n)) {
            s.spawn(move || {
                pin_serial();
                harvest_ref.enter_worker();
                loop {
                    let job = match queue.lock() {
                        Ok(mut q) => q.next(),
                        Err(poisoned) => poisoned.into_inner().next(),
                    };
                    match job {
                        Some((ci, c)) => {
                            let out = f(ci * chunk, c);
                            lock_set(&slots_ref[ci], Some(out));
                        }
                        None => break,
                    }
                }
                harvest_ref.exit_worker();
            });
        }
    });
    harvest.merge();
    slots.into_iter().filter_map(unlock).collect()
}

/// Chunked reduction: folds each fixed chunk with `fold` starting from
/// `init()`, then merges the chunk partials **in chunk order** with
/// `merge`. The serial path performs the identical chunked merge, so
/// the result (floating-point association included) never depends on
/// the worker count. Returns `init()` for empty input.
pub fn par_reduce<T, A, I, F, M>(items: &[T], init: I, fold: F, merge: M) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, &T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let n = items.len();
    count_dispatch("reduce", n);
    if n == 0 {
        return init();
    }
    let chunk = chunk_len(n);
    let t = threads();
    let partials: Vec<A> = if below_cutoff(t, n, REDUCE_SERIAL_CUTOFF) {
        items.chunks(chunk).map(|c| c.iter().fold(init(), &fold)).collect()
    } else {
        let chunks: Vec<&[T]> = items.chunks(chunk).collect();
        let slots: Vec<Mutex<Option<A>>> = chunks.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let harvest = ObsHarvest::new();
        let init = &init;
        let fold = &fold;
        let chunks = &chunks;
        let slots_ref = &slots;
        let next_ref = &next;
        let harvest_ref = &harvest;
        thread::scope(|s| {
            for _ in 0..t.min(chunks.len()) {
                s.spawn(move || {
                    pin_serial();
                    harvest_ref.enter_worker();
                    loop {
                        let ci = next_ref.fetch_add(1, Ordering::Relaxed);
                        if ci >= chunks.len() {
                            break;
                        }
                        let acc = chunks[ci].iter().fold(init(), fold);
                        lock_set(&slots_ref[ci], Some(acc));
                    }
                    harvest_ref.exit_worker();
                });
            }
        });
        harvest.merge();
        slots.into_iter().filter_map(unlock).collect()
    };
    let mut iter = partials.into_iter();
    match iter.next() {
        Some(first) => iter.fold(first, merge),
        None => init(),
    }
}

/// Persistent-worker round loop for iterative algorithms.
///
/// Spawns the pool **once**, then repeats up to `max_rounds` rounds: in
/// each round every fixed chunk of `0..n_items` is processed exactly
/// once by `step(round, chunk_index, range)`, workers synchronize on a
/// barrier, and `after(round)` runs alone between rounds, returning
/// `true` to continue. Compared to re-spawning a scope per iteration
/// this costs two barrier waits per round instead of a pool spawn,
/// which is what makes parallel power iteration profitable.
///
/// `step` must confine its writes to state owned by its chunk (disjoint
/// slices expressed through [`AtomicF64`] cells, per-chunk scratch
/// slots, ...). `after` may read and fold the per-chunk scratch — in
/// chunk order, to preserve the determinism contract.
pub fn par_rounds<F, G>(n_items: usize, max_rounds: usize, step: F, mut after: G)
where
    F: Fn(usize, usize, Range<usize>) + Sync,
    G: FnMut(usize) -> bool,
{
    count_dispatch("rounds", n_items);
    if max_rounds == 0 {
        return;
    }
    let chunk = chunk_len(n_items);
    let n_chunks = chunk_count(n_items);
    let t = threads();
    let mut rounds_run: u64 = 0;
    if below_cutoff(t, n_items, ROUNDS_SERIAL_CUTOFF) || n_chunks <= 1 {
        for r in 0..max_rounds {
            for ci in 0..n_chunks {
                let start = ci * chunk;
                step(r, ci, start..(start + chunk).min(n_items));
            }
            rounds_run = r as u64 + 1;
            if !after(r) {
                break;
            }
        }
        hive_obs::count("par.rounds.rounds", rounds_run);
        return;
    }
    let workers = t.min(n_chunks);
    let barrier = Barrier::new(workers + 1);
    let stop = AtomicBool::new(false);
    let harvest = ObsHarvest::new();
    let step = &step;
    let barrier_ref = &barrier;
    let stop_ref = &stop;
    let harvest_ref = &harvest;
    thread::scope(|s| {
        for w in 0..workers {
            s.spawn(move || {
                pin_serial();
                harvest_ref.enter_worker();
                for r in 0..max_rounds {
                    barrier_ref.wait();
                    if stop_ref.load(Ordering::Acquire) {
                        break;
                    }
                    let mut ci = w;
                    while ci < n_chunks {
                        let start = ci * chunk;
                        step(r, ci, start..(start + chunk).min(n_items));
                        ci += workers;
                    }
                    barrier_ref.wait();
                }
                harvest_ref.exit_worker();
            });
        }
        let mut executed = 0;
        while executed < max_rounds {
            barrier_ref.wait(); // release workers into the round
            barrier_ref.wait(); // round complete
            executed += 1;
            let proceed = after(executed - 1) && executed < max_rounds;
            if !proceed {
                stop_ref.store(true, Ordering::Release);
                if executed < max_rounds {
                    barrier_ref.wait(); // wake workers so they observe stop
                }
                break;
            }
        }
        rounds_run = executed as u64;
    });
    harvest.merge();
    hive_obs::count("par.rounds.rounds", rounds_run);
}

/// An `f64` cell with atomic load/store (bit-preserving, relaxed
/// ordering — synchronization comes from the surrounding barrier or
/// scope join). Lets disjoint chunks of a shared vector be written
/// through `&self` without `unsafe`.
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// A new cell holding `v`.
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Reads the value (relaxed).
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Writes the value (relaxed).
    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }
}

/// Wraps a plain vector into atomic cells (for shared iterative state).
pub fn atomic_vec(values: &[f64]) -> Vec<AtomicF64> {
    values.iter().map(|&v| AtomicF64::new(v)).collect()
}

/// Unwraps atomic cells back into a plain vector.
pub fn plain_vec(values: &[AtomicF64]) -> Vec<f64> {
    values.iter().map(AtomicF64::load).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn chunk_layout_depends_only_on_n() {
        assert_eq!(chunk_len(0), 1);
        assert_eq!(chunk_len(1), 1);
        // Below MIN_CHUNK the whole input is one chunk...
        assert_eq!(chunk_len(64), 64);
        assert_eq!(chunk_len(MIN_CHUNK), MIN_CHUNK);
        assert_eq!(chunk_count(MIN_CHUNK), 1);
        // ...just past it the floor splits off a second chunk...
        assert_eq!(chunk_len(MIN_CHUNK + 1), MIN_CHUNK);
        assert_eq!(chunk_count(MIN_CHUNK + 1), 2);
        // ...and for large n the MAX_CHUNKS ceiling takes over.
        assert_eq!(chunk_len(MIN_CHUNK * MAX_CHUNKS), MIN_CHUNK);
        assert_eq!(chunk_count(MIN_CHUNK * MAX_CHUNKS), MAX_CHUNKS);
        assert_eq!(chunk_len(100_000), 1_563);
        assert_eq!(chunk_count(100_000), MAX_CHUNKS);
        assert_eq!(chunk_count(0), 0);
        assert_eq!(chunk_count(1), 1);
        for n in [0usize, 1, 7, 63, 64, 65, 255, 256, 257, 1000, 4097, 100_000] {
            let total: usize = (0..chunk_count(n))
                .map(|ci| (n - ci * chunk_len(n)).min(chunk_len(n)))
                .sum();
            assert_eq!(total, n, "chunks must tile exactly for n={n}");
        }
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = threads();
        force_workers(3, || {
            assert_eq!(threads(), 3);
            with_threads(1, || assert_eq!(threads(), 1));
            assert_eq!(threads(), 3);
        });
        assert_eq!(threads(), outer);
    }

    #[test]
    fn with_threads_clamps_to_the_host_but_force_workers_does_not() {
        let host = host_parallelism();
        with_threads(MAX_THREADS, || assert_eq!(threads(), host.min(MAX_THREADS)));
        force_workers(host + 3, || assert_eq!(threads(), host + 3));
        assert!(threads() <= host, "default pool must respect the host clamp");
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..4099).collect();
        let serial = with_threads(1, || par_map(&items, |&x| x * x + 1));
        let parallel = force_workers(4, || par_map(&items, |&x| x * x + 1));
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), items.len());
        assert_eq!(serial[10], 101);
    }

    #[test]
    fn par_reduce_is_bit_identical_across_thread_counts() {
        let xs = lcg(42, 10_001);
        let sum = |t: usize| {
            force_workers(t, || par_reduce(&xs, || 0.0f64, |a, &x| a + x.sin(), |a, b| a + b))
        };
        let s1 = sum(1);
        for t in [2, 3, 4, 8] {
            assert_eq!(s1.to_bits(), sum(t).to_bits(), "threads={t}");
        }
    }

    #[test]
    fn par_for_each_chunk_covers_every_element_once() {
        let mut data = vec![0u32; 4099];
        force_workers(4, || {
            par_for_each_chunk(&mut data, |offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += (offset + i) as u32;
                }
            });
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn par_map_chunks_mut_returns_partials_in_chunk_order() {
        let mut data: Vec<f64> = lcg(7, 2048);
        let expect = data.clone();
        let partials = force_workers(4, || {
            par_map_chunks_mut(&mut data, |offset, chunk| {
                let s: f64 = chunk.iter().sum();
                (offset, s)
            })
        });
        assert_eq!(partials.len(), chunk_count(expect.len()));
        let mut prev = None;
        for (offset, _) in &partials {
            assert!(prev.map_or(true, |p: usize| p < *offset));
            prev = Some(*offset);
        }
        let total: f64 = partials.iter().map(|&(_, s)| s).sum();
        let serial_total: f64 = expect
            .chunks(chunk_len(expect.len()))
            .map(|c| c.iter().sum::<f64>())
            .sum();
        assert_eq!(total.to_bits(), serial_total.to_bits());
    }

    #[test]
    fn par_rounds_matches_serial_and_stops_early() {
        // Jacobi-style smoothing: x'[i] = avg of neighbors; run until
        // the per-round movement (chunk-merged) is tiny.
        let run = |t: usize| {
            force_workers(t, || {
                let n = 2_048;
                let xs = atomic_vec(&lcg(9, n));
                let ys = atomic_vec(&vec![0.0; n]);
                let deltas = atomic_vec(&vec![0.0; chunk_count(n)]);
                let mut rounds = 0usize;
                par_rounds(
                    n,
                    50,
                    |r, ci, range| {
                        let (src, dst) = if r % 2 == 0 { (&xs, &ys) } else { (&ys, &xs) };
                        let mut delta = 0.0;
                        for i in range {
                            let left = src[i.saturating_sub(1)].load();
                            let right = src[(i + 1).min(n - 1)].load();
                            let v = 0.3 * src[i].load() + 0.1 * (left + right);
                            dst[i].store(v);
                            delta += (v - src[i].load()).abs();
                        }
                        deltas[ci].store(delta);
                    },
                    |_r| {
                        rounds += 1;
                        let total: f64 = deltas.iter().map(AtomicF64::load).sum();
                        total > 1e-3
                    },
                );
                let fin = if rounds % 2 == 0 { &xs } else { &ys };
                (rounds, plain_vec(fin))
            })
        };
        let (r1, v1) = run(1);
        let (r4, v4) = run(4);
        assert_eq!(r1, r4);
        assert!(r1 < 50, "must converge before the round cap");
        assert_eq!(v1.len(), v4.len());
        for (a, b) in v1.iter().zip(&v4) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn nested_parallel_calls_are_pinned_serial() {
        let items: Vec<u32> = (0..2_000).collect();
        let out = force_workers(4, || {
            par_map(&items, |&x| {
                // Inside a worker the pool pins nested calls to serial.
                let inner: Vec<u32> = par_map(&[x], |&y| y + threads() as u32);
                inner[0]
            })
        });
        assert_eq!(out, (1..2_001).collect::<Vec<u32>>());
    }

    #[test]
    fn worker_counters_are_harvested_across_thread_counts() {
        let items: Vec<u64> = (0..3_000).collect();
        let run = |t: usize| {
            hive_obs::with_level(hive_obs::Level::Counts, || {
                hive_obs::reset();
                force_workers(t, || {
                    par_map(&items, |&x| {
                        hive_obs::count("test.work", 1);
                        x
                    })
                });
                let snap = hive_obs::snapshot();
                let r = (snap.counter("test.work"), snap.counter("par.map.items"));
                hive_obs::reset();
                r
            })
        };
        // Worker-side counts survive the scope join and match serial.
        assert_eq!(run(1), (3_000, 3_000));
        assert_eq!(run(4), (3_000, 3_000));
    }

    #[test]
    fn small_inputs_fall_back_to_serial_and_count_it() {
        let items: Vec<u64> = (0..100).collect();
        hive_obs::with_level(hive_obs::Level::Counts, || {
            hive_obs::reset();
            // Workers available, but 100 items are below the map cutoff:
            // the pool declines them and records the decision.
            let out = force_workers(4, || par_map(&items, |&x| x + 1));
            assert_eq!(out, (1..101).collect::<Vec<u64>>());
            let snap = hive_obs::snapshot();
            assert_eq!(snap.counter("par.serial_fallback"), 1);
            hive_obs::reset();
            // With one worker the serial path is the only path — no
            // fallback is recorded because nothing was declined.
            with_threads(1, || par_map(&items, |&x| x + 1));
            let snap = hive_obs::snapshot();
            assert_eq!(snap.counter("par.serial_fallback"), 0);
            hive_obs::reset();
        });
    }

    #[test]
    fn par_tasks_preserves_input_order_even_for_tiny_inputs() {
        // Two items is below every chunked primitive's cutoff, but
        // par_tasks still dispatches them to real workers.
        let items: Vec<u64> = (0..4).collect();
        let serial = with_threads(1, || par_tasks(&items, |i, &x| (i, x * 10)));
        let parallel = force_workers(4, || par_tasks(&items, |i, &x| (i, x * 10)));
        assert_eq!(serial, parallel);
        assert_eq!(serial, vec![(0, 0), (1, 10), (2, 20), (3, 30)]);
        let empty: Vec<u64> = Vec::new();
        assert!(force_workers(2, || par_tasks(&empty, |i, &x| (i, x))).is_empty());
    }

    #[test]
    fn worker_gauges_are_harvested_by_max() {
        let items: Vec<u64> = (0..6).collect();
        hive_obs::with_level(hive_obs::Level::Counts, || {
            hive_obs::reset();
            force_workers(3, || {
                par_tasks(&items, |_, &x| {
                    hive_obs::gauge_max("test.peak", x);
                    x
                })
            });
            let snap = hive_obs::snapshot();
            assert_eq!(snap.gauge("test.peak"), 5, "peak survives the scope join");
            hive_obs::reset();
        });
    }

    #[test]
    fn atomic_f64_roundtrips_bits() {
        let cell = AtomicF64::new(-0.0);
        assert_eq!(cell.load().to_bits(), (-0.0f64).to_bits());
        cell.store(f64::MIN_POSITIVE);
        assert_eq!(cell.load(), f64::MIN_POSITIVE);
    }
}
