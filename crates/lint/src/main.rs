//! `hive-lint` — runs the workspace static-analysis pass and exits
//! non-zero on any violation. See the library docs for the rule list.
//!
//! Run: `cargo run -p hive-lint` (from anywhere inside the workspace).
//! Pass `--json <path>` to also write a machine-readable report (used
//! by `tools/ci.sh` to publish a CI artifact).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use hive_lint::Diagnostic;

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as JSON (hand-rolled: the workspace is
/// dependency-free by rule R1).
fn json_report(diags: &[Diagnostic], stats: hive_lint::ScanStats) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files\": {},\n  \"loc\": {},\n", stats.files, stats.loc));
    out.push_str(&format!("  \"violations\": {},\n  \"diagnostics\": [", diags.len()));
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"R{}\", \"name\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"col\": {}, \"message\": \"{}\"}}",
            d.num,
            d.rule,
            json_escape(&d.file),
            d.line,
            d.col,
            json_escape(&d.message)
        ));
    }
    out.push_str(if diags.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
    out
}

fn main() -> ExitCode {
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("hive-lint: --json requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("hive-lint: unknown argument `{other}` (usage: hive-lint [--json <path>])");
                return ExitCode::FAILURE;
            }
        }
    }
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = hive_lint::find_workspace_root(&start) else {
        eprintln!("hive-lint: no workspace root (Cargo.toml with [workspace]) above {start:?}");
        return ExitCode::FAILURE;
    };
    match hive_lint::scan_workspace_stats(&root) {
        Ok((diags, stats)) => {
            if let Some(path) = &json_path {
                if let Some(parent) = path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                if let Err(e) = std::fs::write(path, json_report(&diags, stats)) {
                    eprintln!("hive-lint: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            if diags.is_empty() {
                println!(
                    "hive-lint: workspace clean (R1-R13, {} files, {} LoC)",
                    stats.files, stats.loc
                );
                ExitCode::SUCCESS
            } else {
                for d in &diags {
                    println!("{d}");
                }
                println!("hive-lint: {} violation(s)", diags.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("hive-lint: scan failed: {e}");
            ExitCode::FAILURE
        }
    }
}
