//! `hive-lint` — runs the workspace static-analysis pass and exits
//! non-zero on any violation. See the library docs for the rule list.
//!
//! Run: `cargo run -p hive-lint` (from anywhere inside the workspace).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = hive_lint::find_workspace_root(&start) else {
        eprintln!("hive-lint: no workspace root (Cargo.toml with [workspace]) above {start:?}");
        return ExitCode::FAILURE;
    };
    match hive_lint::scan_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("hive-lint: workspace clean (R1-R8)");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("hive-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("hive-lint: scan failed: {e}");
            ExitCode::FAILURE
        }
    }
}
