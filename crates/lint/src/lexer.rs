//! Two lexers over Rust source.
//!
//! * The **masking lexer** ([`lex`]) blanks comments, string/char
//!   literals, and `#[cfg(test)]` / `#[test]` regions byte-for-byte —
//!   the fast substrate for the token-scan rules (R1, R3–R6).
//! * The **token lexer** ([`tokenize`]) produces a positioned token
//!   stream (identifiers, literals, lifetimes, punctuation) for the
//!   recursive-descent parser behind the AST rules (R2, R7–R12).
//!
//! Both harvest `lint:` markers from comments: `lint:allow(rule,…)`
//! waives a rule at a site, `lint:mutator(Type,…)` declares a function
//! a sanctioned snapshot-mutation choke point (R9), and
//! `lint:root(determinism)` marks a function as a determinism-taint
//! root (R12).

use std::fmt;

/// A `lint:` marker harvested from a comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Marker {
    /// 1-based line the marker's comment starts on.
    pub line: usize,
    /// Marker kind: `allow`, `mutator`, or `root`.
    pub kind: MarkerKind,
    /// One entry per comma-separated argument.
    pub args: Vec<String>,
}

/// Which `lint:` marker family a comment carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarkerKind {
    /// `lint:allow(rule)` — waive a rule at this site.
    Allow,
    /// `lint:mutator(Type)` — declared mutation choke point (R9).
    Mutator,
    /// `lint:root(determinism)` — taint-analysis root (R12).
    Root,
}

/// Lexed view of one source file: the original text with comments,
/// string/char literals, and test-only regions blanked (byte-for-byte,
/// newlines preserved, so line/column arithmetic still holds), plus the
/// `lint:` markers harvested from the comments before blanking.
pub struct LexedSource {
    /// The masked source text.
    pub masked: String,
    /// Every `lint:` marker, in file order.
    pub markers: Vec<Marker>,
}

impl LexedSource {
    /// True if `rule` is waived on `line` (marker on the same line or
    /// the line directly above).
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        self.markers.iter().any(|m| {
            m.kind == MarkerKind::Allow
                && (m.line == line || m.line + 1 == line)
                && m.args.iter().any(|a| a == rule)
        })
    }

    /// `(line, rule)` pairs for every allow marker — the shape the
    /// token-rule engine consumes.
    pub fn allow_pairs(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for m in &self.markers {
            if m.kind == MarkerKind::Allow {
                for a in &m.args {
                    out.push((m.line, a.clone()));
                }
            }
        }
        out
    }
}

/// Harvests every `lint:<kind>(args)` marker from a comment body.
pub(crate) fn harvest_markers(body: &str, line: usize, out: &mut Vec<Marker>) {
    for (needle, kind) in [
        ("lint:allow(", MarkerKind::Allow),
        ("lint:mutator(", MarkerKind::Mutator),
        ("lint:root(", MarkerKind::Root),
    ] {
        let mut rest = body;
        while let Some(at) = rest.find(needle) {
            rest = &rest[at + needle.len()..];
            let Some(close) = rest.find(')') else { break };
            let args: Vec<String> = rest[..close]
                .split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(str::to_string)
                .collect();
            if !args.is_empty() {
                out.push(Marker { line, kind, args });
            }
            rest = &rest[close..];
        }
    }
}

/// Runs the masking lexer: blanks comments and string/char literals,
/// then blanks `#[cfg(test)]` / `#[test]` regions.
pub fn lex(source: &str) -> LexedSource {
    let mut masked: Vec<char> = Vec::with_capacity(source.len());
    let mut markers = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    // Pushes a blank for `c`, preserving newlines and horizontal layout.
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < chars.len() {
        let c = chars[i];
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            // Line comment: harvest markers, blank to end of line.
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let body: String = chars[start..i].iter().collect();
            harvest_markers(&body, line, &mut markers);
            masked.extend(std::iter::repeat(' ').take(i - start));
        } else if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            // Block comment, nesting supported.
            let start_line = line;
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let body: String = chars[start..i].iter().collect();
            harvest_markers(&body, start_line, &mut markers);
            for &bc in &chars[start..i] {
                masked.push(blank(bc));
            }
        } else if c == '"' || (c == 'r' && is_raw_string_start(&chars, i)) {
            // String literal (plain or raw). Blank the contents.
            let (end, newlines) = skip_string(&chars, i);
            for &bc in &chars[i..end] {
                masked.push(blank(bc));
            }
            line += newlines;
            i = end;
        } else if c == '\'' && is_char_literal(&chars, i) {
            let end = skip_char_literal(&chars, i);
            masked.extend(std::iter::repeat(' ').take(end - i));
            i = end;
        } else {
            if c == '\n' {
                line += 1;
            }
            masked.push(c);
            i += 1;
        }
    }
    let mut lexed = LexedSource { masked: masked.into_iter().collect(), markers };
    blank_test_regions(&mut lexed.masked);
    lexed
}

/// `r"`, `r#"`, `r##"`, ... (also `br"` is handled via the `b` falling
/// through as a normal char before `r`).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i + 1;
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    j < chars.len() && chars[j] == '"'
}

/// Skips a string literal starting at `i`; returns (end index, newlines
/// crossed).
fn skip_string(chars: &[char], i: usize) -> (usize, usize) {
    let mut newlines = 0;
    if chars[i] == 'r' {
        let mut hashes = 0;
        let mut j = i + 1;
        while j < chars.len() && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        j += 1; // opening quote
        // Scan for `"` followed by `hashes` hashes.
        while j < chars.len() {
            if chars[j] == '\n' {
                newlines += 1;
            }
            if chars[j] == '"' && chars[j + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
            {
                return (j + 1 + hashes, newlines);
            }
            j += 1;
        }
        (j, newlines)
    } else {
        let mut j = i + 1;
        while j < chars.len() {
            match chars[j] {
                '\\' => j += 2,
                '"' => return (j + 1, newlines),
                c => {
                    if c == '\n' {
                        newlines += 1;
                    }
                    j += 1;
                }
            }
        }
        (j, newlines)
    }
}

/// Distinguishes `'a'` / `'\n'` char literals from `'a` lifetimes.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    if i + 2 >= chars.len() {
        return false;
    }
    if chars[i + 1] == '\\' {
        return true;
    }
    chars[i + 2] == '\'' && chars[i + 1] != '\''
}

fn skip_char_literal(chars: &[char], i: usize) -> usize {
    let mut j = i + 1;
    if j < chars.len() && chars[j] == '\\' {
        j += 2;
        // Escapes like \u{1F600} run until the closing quote.
        while j < chars.len() && chars[j] != '\'' {
            j += 1;
        }
        return (j + 1).min(chars.len());
    }
    while j < chars.len() && chars[j] != '\'' {
        j += 1;
    }
    (j + 1).min(chars.len())
}

/// Blanks `#[cfg(test)]` and `#[test]` items in already-masked source:
/// from the attribute through the matching close brace (or trailing
/// semicolon for brace-less items).
fn blank_test_regions(masked: &mut String) {
    let mut out: Vec<char> = masked.chars().collect();
    let mut from = 0;
    while let Some(at) = find_test_attr(&out, from) {
        // Find the end of the region: first `{` after the attribute,
        // matched to its closing brace; or a `;` that arrives first.
        let mut j = at;
        let mut end = out.len();
        while j < out.len() {
            match out[j] {
                '{' => {
                    let mut depth = 0;
                    while j < out.len() {
                        match out[j] {
                            '{' => depth += 1,
                            '}' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    end = (j + 1).min(out.len());
                    break;
                }
                ';' => {
                    end = j + 1;
                    break;
                }
                _ => j += 1,
            }
        }
        for cell in out.iter_mut().take(end).skip(at) {
            if *cell != '\n' {
                *cell = ' ';
            }
        }
        from = end.max(at + 1);
    }
    *masked = out.into_iter().collect();
}

/// Char offset of the next test attribute at or after `from`, if any.
fn find_test_attr(chars: &[char], from: usize) -> Option<usize> {
    let matches_at = |i: usize, pat: &str| -> bool {
        pat.chars().enumerate().all(|(k, pc)| chars.get(i + k) == Some(&pc))
    };
    (from..chars.len()).find(|&i| matches_at(i, "#[cfg(test)]") || matches_at(i, "#[test]"))
}

// ---------------------------------------------------------------------------
// Token lexer
// ---------------------------------------------------------------------------

/// Token classes produced by [`tokenize`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// `'a`-style lifetime.
    Lifetime,
    /// String, char, or numeric literal (contents opaque).
    Literal,
    /// Punctuation / operator (possibly multi-char, e.g. `::`, `=>`).
    Punct,
}

/// One positioned token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text of the token (for literals: the raw literal text).
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in chars).
    pub col: usize,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}:{}", self.text, self.line, self.col)
    }
}

impl Tok {
    /// True when the token is this exact punctuation text.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// True when the token is this exact identifier/keyword.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// Multi-char operators, longest first so greedy matching is correct.
const JOINED: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "..", "==", "!=", "<=", ">=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Runs the token lexer: comments skipped (markers harvested), string /
/// char / numeric literals kept as single opaque tokens, lifetimes
/// distinguished from char literals, multi-char operators joined.
pub fn tokenize(source: &str) -> (Vec<Tok>, Vec<Marker>) {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut markers = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    let bump = |c: char, line: &mut usize, col: &mut usize| {
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
    };
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            bump(c, &mut line, &mut col);
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let body: String = chars[start..i].iter().collect();
            harvest_markers(&body, line, &mut markers);
            // newline handled on next loop pass
            col += i - start;
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            bump(chars[i], &mut line, &mut col);
            bump(chars[i + 1], &mut line, &mut col);
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump(chars[i], &mut line, &mut col);
                    bump(chars[i + 1], &mut line, &mut col);
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump(chars[i], &mut line, &mut col);
                    bump(chars[i + 1], &mut line, &mut col);
                    i += 2;
                } else {
                    bump(chars[i], &mut line, &mut col);
                    i += 1;
                }
            }
            let body: String = chars[start..i.min(chars.len())].iter().collect();
            harvest_markers(&body, start_line, &mut markers);
        } else if c == '"' || (c == 'r' && is_raw_string_start(&chars, i)) {
            let (tl, tc) = (line, col);
            let (end, _) = skip_string(&chars, i);
            let text: String = chars[i..end].iter().collect();
            for &sc in &chars[i..end] {
                bump(sc, &mut line, &mut col);
            }
            i = end;
            toks.push(Tok { kind: TokKind::Literal, text, line: tl, col: tc });
        } else if c == '\'' && is_char_literal(&chars, i) {
            let (tl, tc) = (line, col);
            let end = skip_char_literal(&chars, i);
            let text: String = chars[i..end].iter().collect();
            col += end - i;
            i = end;
            toks.push(Tok { kind: TokKind::Literal, text, line: tl, col: tc });
        } else if c == '\'' {
            // Lifetime: `'` + ident chars.
            let (tl, tc) = (line, col);
            let start = i;
            i += 1;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            col += i - start;
            toks.push(Tok { kind: TokKind::Lifetime, text, line: tl, col: tc });
        } else if c.is_ascii_digit() {
            // Numeric literal (including float / suffix / underscores;
            // tolerant: consume ident chars and at most one mid-number
            // `.` followed by a digit).
            let (tl, tc) = (line, col);
            let start = i;
            while i < chars.len()
                && (is_ident_char(chars[i])
                    || (chars[i] == '.'
                        && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                        && !chars[start..i].contains(&'.')))
            {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            col += i - start;
            toks.push(Tok { kind: TokKind::Literal, text, line: tl, col: tc });
        } else if is_ident_start(c) {
            let (tl, tc) = (line, col);
            let start = i;
            // Raw identifiers: `r#match`.
            if c == 'r' && chars.get(i + 1) == Some(&'#') && chars.get(i + 2).copied().is_some_and(is_ident_start) {
                i += 2;
            }
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            // `b"..."` byte strings: the `b` arrived first; splice.
            if (text == "b" || text == "br") && chars.get(i).is_some_and(|&q| q == '"' || q == '#') {
                let (end, _) = skip_string(&chars, if chars[i] == '"' { i } else { i });
                let lit: String = chars[start..end].iter().collect();
                for &sc in &chars[i..end] {
                    bump(sc, &mut line, &mut col);
                }
                col += i - start;
                i = end;
                toks.push(Tok { kind: TokKind::Literal, text: lit, line: tl, col: tc });
                continue;
            }
            col += i - start;
            let text = text.strip_prefix("r#").unwrap_or(&text).to_string();
            toks.push(Tok { kind: TokKind::Ident, text, line: tl, col: tc });
        } else {
            // Punctuation, joining multi-char operators greedily.
            let (tl, tc) = (line, col);
            let mut matched = None;
            for op in JOINED {
                if op.chars().enumerate().all(|(k, oc)| chars.get(i + k) == Some(&oc)) {
                    matched = Some(*op);
                    break;
                }
            }
            let text = match matched {
                Some(op) => {
                    i += op.len();
                    col += op.len();
                    op.to_string()
                }
                None => {
                    i += 1;
                    col += 1;
                    c.to_string()
                }
            };
            toks.push(Tok { kind: TokKind::Punct, text, line: tl, col: tc });
        }
    }
    (toks, markers)
}

pub(crate) fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_idents_puncts_and_positions() {
        let (toks, _) = tokenize("fn f(a: u32) -> u32 {\n    a.g::<u8>()\n}");
        assert!(toks[0].is_ident("fn"));
        assert!(toks.iter().any(|t| t.is_punct("->")));
        assert!(toks.iter().any(|t| t.is_punct("::")));
        let a2 = toks.iter().find(|t| t.is_ident("a") && t.line == 2).expect("second a");
        assert_eq!(a2.col, 5);
    }

    #[test]
    fn tokenizer_skips_comments_and_harvests_markers() {
        let (toks, markers) =
            tokenize("x // lint:allow(no-panic-paths)\n/* lint:root(determinism) */ y");
        assert_eq!(toks.len(), 2);
        assert_eq!(markers.len(), 2);
        assert_eq!(markers[0].kind, MarkerKind::Allow);
        assert_eq!(markers[1].kind, MarkerKind::Root);
        assert_eq!(markers[1].line, 2);
    }

    #[test]
    fn tokenizer_handles_strings_chars_lifetimes() {
        let (toks, _) = tokenize("let s = \"a } b\"; let c = 'x'; fn g<'a>(x: &'a str) {}");
        assert!(toks.iter().any(|t| t.kind == TokKind::Literal && t.text.contains("a } b")));
        assert!(toks.iter().any(|t| t.kind == TokKind::Literal && t.text == "'x'"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
    }

    #[test]
    fn tokenizer_floats_and_ranges() {
        let (toks, _) = tokenize("1.5 + x[1..3] + 0..=9");
        assert!(toks.iter().any(|t| t.kind == TokKind::Literal && t.text == "1.5"));
        assert!(toks.iter().any(|t| t.is_punct("..")));
        assert!(toks.iter().any(|t| t.is_punct("..=")));
    }
}
