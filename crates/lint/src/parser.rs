//! Tolerant recursive-descent parser: token stream → [`crate::ast`].
//!
//! The parser never fails: unknown constructs are skipped token by
//! token or folded into [`Expr::Other`], and every loop is guaranteed
//! to advance. The goal is not fidelity to the grammar but a faithful
//! skeleton of items, calls, matches, and lock/loop structure for the
//! structural rules (R9–R12) and the AST versions of R2/R7/R8.

use crate::ast::*;
use crate::lexer::{Marker, MarkerKind, Tok, TokKind};

/// Parses one file's token stream into items. `markers` are the
/// `lint:` markers harvested by the lexer, used to attach
/// `lint:mutator(..)` / `lint:root(..)` declarations to functions.
pub fn parse(toks: &[Tok], markers: &[Marker]) -> Vec<Item> {
    let mut p = Parser { toks, pos: 0, markers, in_test_fn: false };
    p.items_until(None)
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    markers: &'a [Marker],
    /// True while parsing the body of a `#[test]` fn — nested items
    /// inherit test-ness.
    in_test_fn: bool,
}

struct Attrs {
    is_test: bool,
    is_cfg_test: bool,
    start_line: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + n)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(p))
    }

    fn at_ident(&self, id: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(id))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, id: &str) -> bool {
        if self.at_ident(id) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn line(&self) -> usize {
        self.peek().map_or(0, |t| t.line)
    }

    /// Skips a balanced `(..)` / `[..]` / `{..}` group; the opener is
    /// the current token.
    fn skip_group(&mut self) {
        let Some(open) = self.peek().map(|t| t.text.clone()) else { return };
        let close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => {
                self.pos += 1;
                return;
            }
        };
        let mut depth = 0;
        while let Some(t) = self.bump() {
            if t.is_punct(&open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Skips `<..>` generics; current token is `<`. Handles `>>`.
    fn skip_generics(&mut self) {
        let mut depth: i32 = 0;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "<" | "<<" if t.kind == TokKind::Punct => {
                    depth += if t.text == "<<" { 2 } else { 1 };
                    self.pos += 1;
                }
                ">" | ">>" if t.kind == TokKind::Punct => {
                    depth -= if t.text == ">>" { 2 } else { 1 };
                    self.pos += 1;
                    if depth <= 0 {
                        return;
                    }
                }
                "(" | "[" => self.skip_group(),
                ";" | "{" => return, // bail out — not generics after all
                _ => self.pos += 1,
            }
            if depth == 0 {
                return;
            }
        }
    }

    /// Consumes attributes; returns what the rules need from them.
    fn attrs(&mut self) -> Attrs {
        let mut a = Attrs { is_test: false, is_cfg_test: false, start_line: self.line() };
        while self.at_punct("#") {
            if a.start_line == 0 {
                a.start_line = self.line();
            }
            self.pos += 1;
            self.eat_punct("!");
            if !self.at_punct("[") {
                continue;
            }
            // Collect the attribute's tokens to classify it.
            let start = self.pos;
            self.skip_group();
            let body: Vec<&str> =
                self.toks[start..self.pos].iter().map(|t| t.text.as_str()).collect();
            let has = |id: &str| body.iter().any(|&t| t == id);
            if body.get(1) == Some(&"test") && body.len() == 3 {
                a.is_test = true;
            }
            if body.get(1) == Some(&"cfg") && has("test") {
                a.is_cfg_test = true;
            }
        }
        a
    }

    /// Consumes a visibility qualifier, returning true if present.
    /// Parses a visibility qualifier: `(is_pub, restricted)`, where
    /// `restricted` marks `pub(crate)` / `pub(super)` / `pub(in ..)`.
    fn vis(&mut self) -> (bool, bool) {
        if self.eat_ident("pub") {
            if self.at_punct("(") {
                self.skip_group();
                (true, true)
            } else {
                (true, false)
            }
        } else {
            (false, false)
        }
    }

    /// Parses items until `}` (inside a block) or EOF (`until` None).
    fn items_until(&mut self, until: Option<&str>) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if let Some(close) = until {
                if self.at_punct(close) {
                    self.pos += 1;
                    break;
                }
            }
            if self.peek().is_none() {
                break;
            }
            let before = self.pos;
            if let Some(item) = self.item() {
                items.push(item);
            }
            if self.pos == before {
                self.pos += 1; // always advance
            }
        }
        items
    }

    /// Parses one item, or skips tokens it does not recognize.
    fn item(&mut self) -> Option<Item> {
        let attrs = self.attrs();
        let (is_pub, vis_restricted) = self.vis();
        // `unsafe fn` / `const fn` / `async fn` / `extern "C" fn`.
        while self.at_ident("unsafe") || self.at_ident("async") || self.at_ident("extern") {
            self.pos += 1;
            if self.peek().is_some_and(|t| t.kind == TokKind::Literal) {
                self.pos += 1; // extern ABI string
            }
        }
        if self.at_ident("const") && self.peek_at(1).is_some_and(|t| t.is_ident("fn")) {
            self.pos += 1;
        }
        let t = self.peek()?;
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "fn") => Some(Item::Fn(self.fn_item(&attrs, is_pub, vis_restricted))),
            (TokKind::Ident, "struct") => Some(self.struct_item()),
            (TokKind::Ident, "enum") => Some(self.enum_item()),
            (TokKind::Ident, "impl") | (TokKind::Ident, "trait") => Some(self.impl_item()),
            (TokKind::Ident, "mod") => self.mod_item(&attrs),
            (TokKind::Ident, "use") => Some(self.use_item()),
            (TokKind::Ident, "const") | (TokKind::Ident, "static") => Some(self.const_item()),
            (TokKind::Ident, "type") | (TokKind::Ident, "macro_rules") => {
                self.skip_to_semi_or_block();
                None
            }
            _ => {
                self.pos += 1;
                None
            }
        }
    }

    /// Skips to past the next `;` or balanced `{..}` at depth 0.
    fn skip_to_semi_or_block(&mut self) {
        while let Some(t) = self.peek() {
            if t.is_punct(";") {
                self.pos += 1;
                return;
            }
            if t.is_punct("{") {
                self.skip_group();
                return;
            }
            if t.is_punct("(") || t.is_punct("[") {
                self.skip_group();
            } else {
                self.pos += 1;
            }
        }
    }

    /// Joins raw tokens into readable type text (`&mut TripleStore`,
    /// `Option<Arc<KnowledgeNetwork>>`).
    fn join_type(toks: &[Tok]) -> String {
        let mut out = String::new();
        let mut prev_word = false;
        for t in toks {
            let word = t.kind == TokKind::Ident || t.kind == TokKind::Lifetime;
            if word && prev_word {
                out.push(' ');
            }
            out.push_str(&t.text);
            prev_word = word;
        }
        out
    }

    /// Consumes type tokens until a `,` / `)` / `;` / `=` / `{` at
    /// depth 0, returning the joined text.
    fn type_text(&mut self, extra_stops: &[&str]) -> String {
        let start = self.pos;
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        if angle == 0 {
                            break;
                        }
                        angle -= 1;
                    }
                    ">>" => angle -= 2,
                    "(" | "[" => {
                        self.skip_group();
                        continue;
                    }
                    s if angle == 0
                        && (s == "," || s == ")" || s == ";" || s == "{" || s == "}"
                            || s == "=" || extra_stops.contains(&s)) =>
                    {
                        break;
                    }
                    _ => {}
                }
            } else if angle == 0 && extra_stops.contains(&t.text.as_str()) {
                break;
            }
            self.pos += 1;
        }
        Self::join_type(&self.toks[start..self.pos])
    }

    fn fn_item(&mut self, attrs: &Attrs, is_pub: bool, vis_restricted: bool) -> FnItem {
        let (line, col) = self.peek().map(|t| (t.line, t.col)).unwrap_or((0, 0));
        self.pos += 1; // fn
        let name = match self.peek() {
            Some(t) if t.kind == TokKind::Ident => self.bump().map(|t| t.text.clone()),
            _ => None,
        }
        .unwrap_or_default();
        if self.at_punct("<") {
            self.skip_generics();
        }
        let (self_kind, params) = self.fn_params();
        let ret = if self.eat_punct("->") {
            let text = self.type_text(&["where"]);
            Some(text)
        } else {
            None
        };
        // Skip a where-clause up to the body or `;`.
        if self.at_ident("where") {
            while let Some(t) = self.peek() {
                if t.is_punct("{") || t.is_punct(";") {
                    break;
                }
                if t.is_punct("(") || t.is_punct("[") {
                    self.skip_group();
                } else {
                    self.pos += 1;
                }
            }
        }
        let body_open_line = self.line();
        let was_test = self.in_test_fn;
        let is_test = attrs.is_test || was_test;
        self.in_test_fn = is_test;
        let body = if self.at_punct("{") { Some(self.block()) } else { self.eat_punct(";").then(Vec::new) };
        self.in_test_fn = was_test;
        // Attach lint:mutator / lint:root markers declared on or just
        // above the signature (doc comments included via the window).
        let lo = attrs.start_line.max(3).saturating_sub(2).min(line.saturating_sub(2).max(1));
        let hi = body_open_line.max(line);
        let mut mutator_of = Vec::new();
        let mut root_of = Vec::new();
        for m in self.markers {
            if m.line >= lo && m.line <= hi {
                match m.kind {
                    MarkerKind::Mutator => mutator_of.extend(m.args.iter().cloned()),
                    MarkerKind::Root => root_of.extend(m.args.iter().cloned()),
                    MarkerKind::Allow => {}
                }
            }
        }
        FnItem {
            name,
            is_pub,
            vis_restricted,
            line,
            col,
            self_kind,
            params,
            ret,
            body,
            is_test,
            mutator_of,
            root_of,
        }
    }

    fn fn_params(&mut self) -> (SelfKind, Vec<Param>) {
        let mut self_kind = SelfKind::None;
        let mut params = Vec::new();
        if !self.eat_punct("(") {
            return (self_kind, params);
        }
        loop {
            if self.eat_punct(")") || self.peek().is_none() {
                break;
            }
            // Receiver forms.
            if self.at_punct("&") {
                let mut k = 1;
                if self.peek_at(1).is_some_and(|t| t.kind == TokKind::Lifetime) {
                    k += 1;
                }
                let is_mut = self.peek_at(k).is_some_and(|t| t.is_ident("mut"));
                let at_self = self.peek_at(k + usize::from(is_mut)).is_some_and(|t| t.is_ident("self"));
                if at_self {
                    self.pos += k + usize::from(is_mut) + 1;
                    self_kind = if is_mut { SelfKind::RefMut } else { SelfKind::Ref };
                    self.eat_punct(",");
                    continue;
                }
            }
            if self.at_ident("self")
                || (self.at_ident("mut") && self.peek_at(1).is_some_and(|t| t.is_ident("self")))
            {
                self.eat_ident("mut");
                self.pos += 1;
                self_kind = SelfKind::Owned;
                self.eat_punct(",");
                continue;
            }
            // Ordinary param: pattern `:` type.
            self.eat_ident("mut");
            let name = match self.peek() {
                Some(t) if t.kind == TokKind::Ident => {
                    let n = t.text.clone();
                    self.pos += 1;
                    n
                }
                Some(t) if t.is_punct("(") || t.is_punct("[") => {
                    self.skip_group();
                    "_".to_string()
                }
                _ => {
                    self.pos += 1;
                    "_".to_string()
                }
            };
            let ty = if self.eat_punct(":") { self.type_text(&[]) } else { String::new() };
            params.push(Param { name, ty });
            if !self.eat_punct(",") && self.eat_punct(")") {
                break;
            }
        }
        (self_kind, params)
    }

    fn struct_item(&mut self) -> Item {
        self.pos += 1; // struct
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        if self.at_punct("<") {
            self.skip_generics();
        }
        let mut fields = Vec::new();
        if self.at_punct("(") {
            // Tuple struct: fields named by index.
            self.pos += 1;
            let mut idx = 0;
            while !self.eat_punct(")") && self.peek().is_some() {
                self.vis();
                let ty = self.type_text(&[]);
                if !ty.is_empty() {
                    fields.push((idx.to_string(), ty));
                }
                idx += 1;
                if !self.eat_punct(",") && self.at_punct(")") {
                    continue;
                }
            }
            self.eat_punct(";");
        } else if self.at_ident("where") {
            self.skip_to_semi_or_block();
        } else if self.at_punct("{") {
            self.pos += 1;
            while !self.eat_punct("}") && self.peek().is_some() {
                self.attrs();
                self.vis();
                let Some(t) = self.peek() else { break };
                if t.kind == TokKind::Ident {
                    let fname = t.text.clone();
                    self.pos += 1;
                    if self.eat_punct(":") {
                        let ty = self.type_text(&[]);
                        fields.push((fname, ty));
                    }
                }
                if !self.eat_punct(",") && !self.at_punct("}") {
                    self.pos += 1;
                }
            }
        } else {
            self.eat_punct(";");
        }
        Item::Struct(StructItem { name, fields })
    }

    fn enum_item(&mut self) -> Item {
        let line = self.line();
        self.pos += 1; // enum
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        if self.at_punct("<") {
            self.skip_generics();
        }
        let mut variants = Vec::new();
        if self.at_punct("{") {
            self.pos += 1;
            while !self.eat_punct("}") && self.peek().is_some() {
                self.attrs();
                let Some(t) = self.peek() else { break };
                if t.kind == TokKind::Ident {
                    variants.push(t.text.clone());
                    self.pos += 1;
                    if self.at_punct("(") || self.at_punct("{") {
                        self.skip_group();
                    }
                    if self.eat_punct("=") {
                        // Discriminant: skip to `,` / `}`.
                        while let Some(t) = self.peek() {
                            if t.is_punct(",") || t.is_punct("}") {
                                break;
                            }
                            self.pos += 1;
                        }
                    }
                }
                if !self.eat_punct(",") && !self.at_punct("}") {
                    self.pos += 1;
                }
            }
        }
        Item::Enum(EnumItem { name, variants, line })
    }

    /// `impl` blocks and `trait` definitions (default method bodies are
    /// analyzed like inherent methods).
    fn impl_item(&mut self) -> Item {
        let is_trait = self.at_ident("trait");
        self.pos += 1;
        if self.at_punct("<") {
            self.skip_generics();
        }
        // Self-type: last path-ish ident before the `{` (handles
        // `impl Trait for Type`, `impl Type`, generics stripped).
        let mut self_ty = String::new();
        while let Some(t) = self.peek() {
            if t.is_punct("{") {
                break;
            }
            if t.is_punct(";") {
                self.pos += 1;
                return Item::Impl(ImplBlock { self_ty, fns: Vec::new() });
            }
            if t.kind == TokKind::Ident && t.text != "for" && t.text != "where" && t.text != "dyn" {
                self_ty = t.text.clone();
            }
            if t.is_punct("<") {
                self.skip_generics();
            } else if t.is_punct("(") {
                self.skip_group();
            } else {
                self.pos += 1;
            }
        }
        if is_trait {
            // Keep trait name as the nominal self type.
        }
        let mut fns = Vec::new();
        if self.eat_punct("{") {
            loop {
                if self.eat_punct("}") || self.peek().is_none() {
                    break;
                }
                let before = self.pos;
                let attrs = self.attrs();
                let (is_pub, vis_restricted) = self.vis();
                while self.at_ident("unsafe") || self.at_ident("async") || self.at_ident("default")
                {
                    self.pos += 1;
                }
                if self.at_ident("const") && self.peek_at(1).is_some_and(|t| t.is_ident("fn")) {
                    self.pos += 1;
                }
                if self.at_ident("fn") {
                    fns.push(self.fn_item(&attrs, is_pub, vis_restricted));
                } else if self.at_ident("const") || self.at_ident("type") {
                    self.skip_to_semi_or_block();
                }
                if self.pos == before {
                    self.pos += 1;
                }
            }
        }
        Item::Impl(ImplBlock { self_ty, fns })
    }

    fn mod_item(&mut self, attrs: &Attrs) -> Option<Item> {
        self.pos += 1; // mod
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        if self.eat_punct(";") {
            return None; // out-of-line module — scanned as its own file
        }
        if !self.eat_punct("{") {
            return None;
        }
        let items = self.items_until(Some("}"));
        Some(Item::Mod(ModItem { name, is_test: attrs.is_cfg_test, items }))
    }

    fn use_item(&mut self) -> Item {
        self.pos += 1; // use
        let mut imports = Vec::new();
        self.use_tree(Vec::new(), &mut imports);
        self.eat_punct(";");
        Item::Use(UseItem { imports })
    }

    fn use_tree(&mut self, prefix: Vec<String>, out: &mut Vec<(String, Vec<String>)>) {
        let mut path = prefix;
        loop {
            let Some(t) = self.peek() else { return };
            if t.kind == TokKind::Ident {
                path.push(t.text.clone());
                self.pos += 1;
                if self.at_ident("as") {
                    self.pos += 1;
                    if let Some(alias) = self.peek().map(|t| t.text.clone()) {
                        self.pos += 1;
                        out.push((alias, path));
                    }
                    return;
                }
                if !self.eat_punct("::") {
                    let leaf = path.last().cloned().unwrap_or_default();
                    out.push((leaf, path));
                    return;
                }
            } else if t.is_punct("{") {
                self.pos += 1;
                loop {
                    if self.eat_punct("}") || self.peek().is_none() {
                        return;
                    }
                    let before = self.pos;
                    self.use_tree(path.clone(), out);
                    self.eat_punct(",");
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
            } else if t.is_punct("*") {
                self.pos += 1;
                return; // glob — unresolvable, ignored
            } else {
                return;
            }
        }
    }

    fn const_item(&mut self) -> Item {
        self.pos += 1; // const | static
        self.eat_ident("mut");
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        if self.eat_punct(":") {
            self.type_text(&[]);
        }
        let init = if self.eat_punct("=") { Some(self.expr(true)) } else { None };
        self.eat_punct(";");
        Item::Const(ConstItem { name, init })
    }

    // -- statements & expressions ---------------------------------------

    /// Parses a `{ .. }` block into its statements; current token is `{`.
    fn block(&mut self) -> Vec<Expr> {
        let mut stmts = Vec::new();
        if !self.eat_punct("{") {
            return stmts;
        }
        loop {
            if self.eat_punct("}") || self.peek().is_none() {
                break;
            }
            let before = self.pos;
            if self.eat_punct(";") {
                continue;
            }
            if self.at_punct("#") {
                self.attrs();
                continue;
            }
            let t = self.peek().map(|t| t.text.clone()).unwrap_or_default();
            let is_item_kw = matches!(
                t.as_str(),
                "fn" | "struct" | "enum" | "impl" | "trait" | "mod" | "use" | "macro_rules"
            ) || (t == "pub")
                || ((t == "const" || t == "static" || t == "type")
                    && self.peek_at(1).is_some_and(|n| n.kind == TokKind::Ident)
                    && self.peek_at(2).is_some_and(|n| n.is_punct(":") || n.is_ident("fn")));
            if is_item_kw && self.peek().is_some_and(|x| x.kind == TokKind::Ident) {
                // Nested item inside a body: keep its fns for R2 by
                // folding their statements into this block.
                if let Some(item) = self.item() {
                    match item {
                        Item::Fn(f) => {
                            if let Some(b) = f.body {
                                stmts.push(Expr::Block(b));
                            }
                        }
                        Item::Const(c) => {
                            if let Some(e) = c.init {
                                stmts.push(e);
                            }
                        }
                        _ => {}
                    }
                }
                if self.pos == before {
                    self.pos += 1;
                }
                continue;
            }
            if self.at_ident("let") {
                stmts.push(self.let_stmt());
            } else {
                stmts.push(self.expr(true));
                self.eat_punct(";");
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
        stmts
    }

    fn let_stmt(&mut self) -> Expr {
        let (line, col) = self.peek().map(|t| (t.line, t.col)).unwrap_or((0, 0));
        self.pos += 1; // let
        let pats = self.pattern_alts(&["=", ":", ";"]);
        let ty = if self.eat_punct(":") { Some(self.type_text(&[])) } else { None };
        let init = if self.eat_punct("=") { Some(Box::new(self.expr(true))) } else { None };
        let els = if self.at_ident("else") {
            self.pos += 1;
            Some(self.block())
        } else {
            None
        };
        self.eat_punct(";");
        Expr::Let { pats, ty, init, els, line, col }
    }

    /// `|`-separated pattern alternatives, stopping at any of `stops`
    /// (punct or ident text) at depth 0.
    fn pattern_alts(&mut self, stops: &[&str]) -> Vec<Pat> {
        let mut pats = vec![self.pattern(stops)];
        while self.at_punct("|") {
            self.pos += 1;
            pats.push(self.pattern(stops));
        }
        pats
    }

    fn pattern(&mut self, stops: &[&str]) -> Pat {
        let Some(t) = self.peek() else { return Pat::Other };
        if stops.contains(&t.text.as_str()) {
            return Pat::Other;
        }
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "_") | (TokKind::Ident, "_") => {
                self.pos += 1;
                Pat::Wild
            }
            (TokKind::Punct, "..") | (TokKind::Punct, "..=") => {
                self.pos += 1;
                // Open range pattern `..=N`: consume the bound.
                if self.peek().is_some_and(|t| t.kind == TokKind::Literal) {
                    self.pos += 1;
                    return Pat::Other;
                }
                Pat::Rest
            }
            (TokKind::Punct, "&") | (TokKind::Punct, "&&") => {
                self.pos += 1;
                self.eat_ident("mut");
                Pat::Ref(Box::new(self.pattern(stops)))
            }
            (TokKind::Punct, "(") => {
                self.pos += 1;
                let mut inner = Vec::new();
                while !self.eat_punct(")") && self.peek().is_some() {
                    let before = self.pos;
                    inner.push(self.pattern(&[",", ")"]));
                    self.eat_punct(",");
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
                Pat::Tuple(inner)
            }
            (TokKind::Punct, "[") => {
                self.skip_group();
                Pat::Other
            }
            (TokKind::Literal, _) | (TokKind::Punct, "-") => {
                self.pos += 1;
                if self.at_punct("..") || self.at_punct("..=") {
                    self.pos += 1;
                    if self.peek().is_some_and(|t| t.kind == TokKind::Literal) {
                        self.pos += 1;
                    }
                }
                Pat::Other
            }
            (TokKind::Ident, "ref") | (TokKind::Ident, "mut") => {
                self.pos += 1;
                self.eat_ident("mut");
                match self.peek() {
                    Some(t) if t.kind == TokKind::Ident => {
                        let name = t.text.clone();
                        self.pos += 1;
                        Pat::Binding(name)
                    }
                    _ => Pat::Other,
                }
            }
            (TokKind::Ident, "true") | (TokKind::Ident, "false") => {
                self.pos += 1;
                Pat::Other
            }
            (TokKind::Ident, _) => {
                let mut segs = vec![t.text.clone()];
                self.pos += 1;
                while self.at_punct("::") {
                    self.pos += 1;
                    match self.peek() {
                        Some(n) if n.kind == TokKind::Ident => {
                            segs.push(n.text.clone());
                            self.pos += 1;
                        }
                        _ => break,
                    }
                }
                let mut args = Vec::new();
                if self.at_punct("(") {
                    self.pos += 1;
                    while !self.eat_punct(")") && self.peek().is_some() {
                        let before = self.pos;
                        args.push(self.pattern(&[",", ")"]));
                        self.eat_punct(",");
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                } else if self.at_punct("{") {
                    self.pos += 1;
                    while !self.eat_punct("}") && self.peek().is_some() {
                        let before = self.pos;
                        if self.eat_punct("..") {
                            args.push(Pat::Rest);
                        } else if self.peek().is_some_and(|t| t.kind == TokKind::Ident) {
                            let fname = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                            if self.eat_punct(":") {
                                args.push(self.pattern(&[",", "}"]));
                            } else {
                                args.push(Pat::Binding(fname)); // shorthand
                            }
                        }
                        self.eat_punct(",");
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                } else if segs.len() == 1
                    && segs[0].chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                {
                    // Lone lowercase ident with no payload: a binding
                    // (possibly `x @ pat`).
                    let name = segs.pop().unwrap_or_default();
                    if self.eat_punct("@") {
                        self.pattern(stops);
                    }
                    return Pat::Binding(name);
                }
                Pat::Path { segs, args }
            }
            _ => {
                self.pos += 1;
                Pat::Other
            }
        }
    }

    /// Parses one expression. `allow_struct` gates `Path { .. }` struct
    /// literals (off in `if`/`while`/`for`/`match` headers).
    fn expr(&mut self, allow_struct: bool) -> Expr {
        let mut lhs = self.unary(allow_struct);
        loop {
            let Some(t) = self.peek() else { break };
            if t.kind != TokKind::Punct && !t.is_ident("as") {
                break;
            }
            match t.text.as_str() {
                "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => {
                    let op = t.text.clone();
                    let (line, col) = (t.line, t.col);
                    self.pos += 1;
                    let value = self.expr(allow_struct);
                    lhs = Expr::Assign {
                        target: Box::new(lhs),
                        op,
                        value: Box::new(value),
                        line,
                        col,
                    };
                }
                "+" | "-" | "*" | "/" | "%" | "^" | "&" | "|" | "&&" | "||" | "==" | "!=" | "<"
                | ">" | "<=" | ">=" | "<<" | ">>" => {
                    self.pos += 1;
                    let rhs = self.unary(allow_struct);
                    lhs = Expr::Other(vec![lhs, rhs]);
                }
                ".." | "..=" => {
                    self.pos += 1;
                    // Right side optional (`&v[1..]`).
                    if self.peek().is_some_and(|n| {
                        !matches!(n.text.as_str(), ")" | "]" | "}" | "," | ";" | "{")
                    }) {
                        let rhs = self.unary(allow_struct);
                        lhs = Expr::Other(vec![lhs, rhs]);
                    } else {
                        lhs = Expr::Other(vec![lhs]);
                    }
                }
                "as" => {
                    self.pos += 1;
                    self.type_text(&[
                        "+", "-", "*", "/", "%", "as", ">", "]", "}", "==", "!=", ">=", "<=",
                    ]);
                    // keep lhs
                }
                _ => break,
            }
        }
        lhs
    }

    /// Prefix operators + a primary + postfix chain.
    fn unary(&mut self, allow_struct: bool) -> Expr {
        let Some(t) = self.peek() else { return Expr::Other(Vec::new()) };
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "&") | (TokKind::Punct, "&&") => {
                let double = t.text == "&&";
                self.pos += 1;
                let is_mut = self.eat_ident("mut");
                let inner = self.unary(allow_struct);
                let once = Expr::Ref { is_mut, inner: Box::new(inner) };
                if double {
                    Expr::Ref { is_mut: false, inner: Box::new(once) }
                } else {
                    once
                }
            }
            (TokKind::Punct, "*") | (TokKind::Punct, "-") | (TokKind::Punct, "!") => {
                self.pos += 1;
                let inner = self.unary(allow_struct);
                self.postfix(Expr::Other(vec![inner]), allow_struct)
            }
            _ => {
                let prim = self.primary(allow_struct);
                self.postfix(prim, allow_struct)
            }
        }
    }

    fn primary(&mut self, allow_struct: bool) -> Expr {
        let Some(t) = self.peek() else { return Expr::Other(Vec::new()) };
        let (line, col) = (t.line, t.col);
        match (t.kind, t.text.as_str()) {
            (TokKind::Literal, _) => {
                self.pos += 1;
                Expr::Lit
            }
            (TokKind::Lifetime, _) => {
                // Loop label: `'outer: loop { .. }`.
                self.pos += 1;
                self.eat_punct(":");
                self.primary(allow_struct)
            }
            (TokKind::Punct, "|") | (TokKind::Punct, "||") => self.closure(),
            (TokKind::Punct, "(") => {
                self.pos += 1;
                let mut inner = Vec::new();
                while !self.eat_punct(")") && self.peek().is_some() {
                    let before = self.pos;
                    inner.push(self.expr(true));
                    self.eat_punct(",");
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
                if inner.len() == 1 {
                    inner.pop().unwrap_or(Expr::Other(Vec::new()))
                } else {
                    Expr::Other(inner)
                }
            }
            (TokKind::Punct, "[") => {
                self.pos += 1;
                let mut inner = Vec::new();
                while !self.eat_punct("]") && self.peek().is_some() {
                    let before = self.pos;
                    inner.push(self.expr(true));
                    if !self.eat_punct(",") {
                        self.eat_punct(";");
                    }
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
                Expr::Other(inner)
            }
            (TokKind::Punct, "{") => Expr::Block(self.block()),
            (TokKind::Ident, "if") => self.if_expr(),
            (TokKind::Ident, "match") => self.match_expr(),
            (TokKind::Ident, "for") => {
                let line = t.line;
                self.pos += 1;
                let pat = self.pattern_alts(&["in"]);
                self.eat_ident("in");
                let iter = self.expr(false);
                let body = self.block();
                Expr::ForLoop { pat, iter: Box::new(iter), body, line }
            }
            (TokKind::Ident, "while") => {
                self.pos += 1;
                let cond = if self.at_ident("let") {
                    self.let_cond()
                } else {
                    self.expr(false)
                };
                let body = self.block();
                Expr::While { cond: Some(Box::new(cond)), body }
            }
            (TokKind::Ident, "loop") => {
                self.pos += 1;
                Expr::While { cond: None, body: self.block() }
            }
            (TokKind::Ident, "unsafe") | (TokKind::Ident, "async") => {
                self.pos += 1;
                self.eat_ident("move");
                if self.at_punct("{") {
                    Expr::Block(self.block())
                } else {
                    self.primary(allow_struct)
                }
            }
            (TokKind::Ident, "move") => {
                self.pos += 1;
                self.closure()
            }
            (TokKind::Ident, "return") | (TokKind::Ident, "break") | (TokKind::Ident, "continue") => {
                self.pos += 1;
                if self.peek().is_some_and(|n| n.kind == TokKind::Lifetime) {
                    self.pos += 1; // labeled break
                }
                if self.peek().is_some_and(|n| {
                    !matches!(n.text.as_str(), ";" | ")" | "]" | "}" | ",")
                }) {
                    Expr::Other(vec![self.expr(allow_struct)])
                } else {
                    Expr::Other(Vec::new())
                }
            }
            (TokKind::Ident, _) => {
                // Path, macro call, or struct literal.
                let mut segs = vec![t.text.clone()];
                self.pos += 1;
                loop {
                    if self.at_punct("::") {
                        match self.peek_at(1) {
                            Some(n) if n.kind == TokKind::Ident => {
                                self.pos += 1;
                                segs.push(self.bump().map(|t| t.text.clone()).unwrap_or_default());
                            }
                            Some(n) if n.is_punct("<") => {
                                self.pos += 1;
                                self.skip_generics(); // turbofish
                            }
                            _ => break,
                        }
                    } else {
                        break;
                    }
                }
                if self.at_punct("!") {
                    // Macro invocation.
                    self.pos += 1;
                    let name = segs.pop().unwrap_or_default();
                    let args = self.macro_args();
                    return Expr::Macro { name, args, line, col };
                }
                if allow_struct && self.at_punct("{") && self.struct_lit_ahead() {
                    let path = Expr::Path { segs, line, col };
                    let mut children = vec![path];
                    self.pos += 1; // {
                    while !self.eat_punct("}") && self.peek().is_some() {
                        let before = self.pos;
                        if self.eat_punct("..") {
                            children.push(self.expr(true)); // base
                        } else if self.peek().is_some_and(|t| t.kind == TokKind::Ident) {
                            let fseg = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                            if self.eat_punct(":") {
                                children.push(self.expr(true));
                            } else {
                                // Shorthand `Foo { x }` — the field
                                // value is the local `x`.
                                children.push(Expr::Path {
                                    segs: vec![fseg],
                                    line: self.line(),
                                    col: 0,
                                });
                            }
                        }
                        self.eat_punct(",");
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                    return Expr::Other(children);
                }
                Expr::Path { segs, line, col }
            }
            _ => {
                self.pos += 1;
                Expr::Other(Vec::new())
            }
        }
    }

    /// After `Path {`: does this look like a struct literal (field
    /// syntax) rather than a stray block? Checks the first tokens.
    fn struct_lit_ahead(&self) -> bool {
        // `{ }`, `{ ident :`, `{ ident ,`, `{ ident }`, `{ .. }`.
        let Some(n1) = self.peek_at(1) else { return false };
        if n1.is_punct("}") || n1.is_punct("..") {
            return true;
        }
        if n1.kind != TokKind::Ident {
            return false;
        }
        match self.peek_at(2) {
            Some(n2) => n2.is_punct(":") || n2.is_punct(",") || n2.is_punct("}"),
            None => false,
        }
    }

    fn macro_args(&mut self) -> Vec<Expr> {
        let Some(open) = self.peek().map(|t| t.text.clone()) else { return Vec::new() };
        let close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return Vec::new(),
        };
        self.pos += 1;
        let mut args = Vec::new();
        while self.peek().is_some() && !self.at_punct(close) {
            let before = self.pos;
            args.push(self.expr(true));
            if !self.eat_punct(",") {
                self.eat_punct(";");
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
        self.eat_punct(close);
        args
    }

    fn closure(&mut self) -> Expr {
        // `|params| expr` or `|| expr`; params skipped.
        if self.eat_punct("||") {
            // no params
        } else if self.eat_punct("|") {
            let mut depth = 0;
            while let Some(t) = self.peek() {
                if depth == 0 && t.is_punct("|") {
                    self.pos += 1;
                    break;
                }
                match t.text.as_str() {
                    "(" | "[" | "{" => self.skip_group(),
                    "<" => self.skip_generics(),
                    _ => {
                        if t.is_punct("(") {
                            depth += 1;
                        }
                        self.pos += 1;
                    }
                }
            }
        }
        if self.eat_punct("->") {
            self.type_text(&[]);
        }
        let body = if self.at_punct("{") { Expr::Block(self.block()) } else { self.expr(true) };
        Expr::Closure { body: Box::new(body) }
    }

    fn let_cond(&mut self) -> Expr {
        let (line, col) = self.peek().map(|t| (t.line, t.col)).unwrap_or((0, 0));
        self.pos += 1; // let
        let pats = self.pattern_alts(&["="]);
        let init = if self.eat_punct("=") { Some(Box::new(self.expr(false))) } else { None };
        Expr::Let { pats, ty: None, init, els: None, line, col }
    }

    fn if_expr(&mut self) -> Expr {
        self.pos += 1; // if
        let cond = if self.at_ident("let") { self.let_cond() } else { self.expr(false) };
        let then = self.block();
        let els = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.if_expr()))
            } else {
                Some(Box::new(Expr::Block(self.block())))
            }
        } else {
            None
        };
        Expr::If { cond: Box::new(cond), then, els }
    }

    fn match_expr(&mut self) -> Expr {
        let (line, col) = self.peek().map(|t| (t.line, t.col)).unwrap_or((0, 0));
        self.pos += 1; // match
        let scrutinee = self.expr(false);
        let mut arms = Vec::new();
        if self.eat_punct("{") {
            loop {
                if self.eat_punct("}") || self.peek().is_none() {
                    break;
                }
                let before = self.pos;
                if self.at_punct("#") {
                    self.attrs();
                }
                let arm_line = self.line();
                let pats = self.pattern_alts(&["=>", "if"]);
                let guard = if self.eat_ident("if") {
                    Some(self.expr(false))
                } else {
                    None
                };
                self.eat_punct("=>");
                let body = self.expr(true);
                self.eat_punct(",");
                arms.push(Arm { pats, guard, body, line: arm_line });
                if self.pos == before {
                    self.pos += 1;
                }
            }
        }
        Expr::Match { scrutinee: Box::new(scrutinee), arms, line, col }
    }

    fn postfix(&mut self, mut e: Expr, allow_struct: bool) -> Expr {
        loop {
            let Some(t) = self.peek() else { break };
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, ".") => {
                    let Some(n) = self.peek_at(1) else { break };
                    if n.kind == TokKind::Ident {
                        let method = n.text.clone();
                        let (line, col) = (n.line, n.col);
                        self.pos += 2;
                        // Turbofish between name and args.
                        if self.at_punct("::") && self.peek_at(1).is_some_and(|x| x.is_punct("<"))
                        {
                            self.pos += 1;
                            self.skip_generics();
                        }
                        if self.at_punct("(") {
                            let args = self.call_args();
                            e = Expr::MethodCall { recv: Box::new(e), method, args, line, col };
                        } else {
                            e = Expr::Field { base: Box::new(e), name: method, line, col };
                        }
                    } else if n.kind == TokKind::Literal {
                        // Tuple field access `t.0` (also `t.0.1` lexed
                        // as the float `0.1` — take the text as-is).
                        let (line, col) = (n.line, n.col);
                        let name = n.text.clone();
                        self.pos += 2;
                        e = Expr::Field { base: Box::new(e), name, line, col };
                    } else {
                        break;
                    }
                }
                (TokKind::Punct, "(") => {
                    let (line, col) = (t.line, t.col);
                    let args = self.call_args();
                    e = Expr::Call { callee: Box::new(e), args, line, col };
                }
                (TokKind::Punct, "[") => {
                    self.pos += 1;
                    let mut idx = Vec::new();
                    while !self.eat_punct("]") && self.peek().is_some() {
                        let before = self.pos;
                        idx.push(self.expr(true));
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                    let mut children = vec![e];
                    children.extend(idx);
                    e = Expr::Other(children);
                }
                (TokKind::Punct, "?") => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let _ = allow_struct;
        e
    }

    fn call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct("(") {
            return args;
        }
        while !self.eat_punct(")") && self.peek().is_some() {
            let before = self.pos;
            args.push(self.expr(true));
            self.eat_punct(",");
            if self.pos == before {
                self.pos += 1;
            }
        }
        args
    }
}
