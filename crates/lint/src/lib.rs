//! # hive-lint — workspace static-analysis pass
//!
//! A dependency-free analyzer that turns the workspace's operational
//! conventions into machine-checked invariants (DESIGN.md, "Static
//! analysis & hermetic build policy"):
//!
//! * **R1 `hermetic-deps`** — every `[dependencies]` /
//!   `[dev-dependencies]` entry in every manifest is a workspace path
//!   dep (or `workspace = true` indirection to one); no registry crates,
//!   so the build never touches the network.
//! * **R2 `no-panic-paths`** — no `.unwrap()`, `.expect(`, `panic!`,
//!   `unreachable!`, or `todo!` in the non-test code of the library
//!   crates `store`, `graph`, `text`, `scent`, `concept`, and `core`;
//!   fallibility flows through the existing `Result` types.
//! * **R3 `deterministic-time`** — no `Instant::now` / `SystemTime::now`
//!   outside `crates/core/src/clock.rs`; simulation time is logical.
//! * **R4 `no-stray-io`** — no `println!` / `eprintln!` / `dbg!` in
//!   library crates (the `bench` harness bins and the lint binary
//!   itself are exempt — printing is their job).
//! * **R5 `forbid-unsafe`** — every library `lib.rs` carries
//!   `#![forbid(unsafe_code)]`.
//! * **R6 `no-raw-threads`** — no `thread::spawn` / `thread::scope` /
//!   `thread::Builder` outside `crates/par`; all concurrency goes
//!   through the deterministic `hive-par` pool so parallel output stays
//!   bit-identical to serial.
//! * **R7 `instrumented-facade`** — every `pub fn` of the service
//!   facade (`crates/core/src/api.rs`) routes through the instrumented
//!   `Hive::service(..)` / `Hive::service_mut(..)` choke point, so no
//!   Table-1 service can silently bypass the hive-obs span/counter
//!   layer; construction and cache plumbing (`new`, `db`, `db_mut`,
//!   `knowledge`, the choke points themselves) are exempt.
//! * **R8 `delta-log`** — no direct `generation +=` bumps anywhere but
//!   the delta-log APIs (`TripleStore::log_op`, `HiveDb::bump`), each
//!   marked with `lint:allow(delta-log)`. A generation bump that skips
//!   the journal silently breaks incremental cache maintenance: the
//!   stamp advances but no delta is recorded, so a patched cache would
//!   diverge from a rebuilt one.
//!
//! Matching runs on *lexed* source: a minimal Rust lexer first blanks
//! `//` and `/* */` comments, string and char literals, and
//! `#[cfg(test)]` / `#[test]` regions, so a forbidden token inside a
//! doc comment, a string, or a unit test never fires. Any rule can be
//! waived at a single site with a `// lint:allow(<rule>)` comment on
//! the same line or the line above (`# lint:allow(<rule>)` in TOML).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a file/line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `no-panic-paths`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Rule identifiers, shared by diagnostics and `lint:allow` markers.
pub mod rules {
    /// R1: registry dependencies are forbidden.
    pub const HERMETIC_DEPS: &str = "hermetic-deps";
    /// R2: panicking calls are forbidden in library code.
    pub const NO_PANIC_PATHS: &str = "no-panic-paths";
    /// R3: wall-clock reads are forbidden outside the clock module.
    pub const DETERMINISTIC_TIME: &str = "deterministic-time";
    /// R4: stray stdout/stderr output is forbidden in library code.
    pub const NO_STRAY_IO: &str = "no-stray-io";
    /// R5: library roots must forbid unsafe code.
    pub const FORBID_UNSAFE: &str = "forbid-unsafe";
    /// R6: raw thread primitives are forbidden outside `crates/par`.
    pub const NO_RAW_THREADS: &str = "no-raw-threads";
    /// R7: facade services must route through `Hive::service(..)`.
    pub const INSTRUMENTED_FACADE: &str = "instrumented-facade";
    /// R8: generation counters may only be bumped via the delta-log API.
    pub const DELTA_LOG: &str = "delta-log";
}

/// Lexed view of one source file: the original text with comments,
/// string/char literals, and test-only regions blanked (byte-for-byte,
/// newlines preserved, so line/column arithmetic still holds), plus the
/// `lint:allow` markers harvested from the comments before blanking.
pub struct LexedSource {
    /// The masked source text.
    pub masked: String,
    /// `(line, rule)` pairs for every `lint:allow(rule)` marker.
    pub allows: Vec<(usize, String)>,
}

impl LexedSource {
    /// True if `rule` is waived on `line` (marker on the same line or
    /// the line directly above).
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
    }
}

/// Harvests `lint:allow(rule)` / `lint:allow(rule1, rule2)` markers
/// from a comment (or TOML comment) body.
fn harvest_allows(body: &str, line: usize, out: &mut Vec<(usize, String)>) {
    let mut rest = body;
    while let Some(at) = rest.find("lint:allow(") {
        rest = &rest[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        for rule in rest[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                out.push((line, rule.to_string()));
            }
        }
        rest = &rest[close..];
    }
}

/// Runs the minimal lexer: blanks comments and string/char literals,
/// then blanks `#[cfg(test)]` / `#[test]` regions.
pub fn lex(source: &str) -> LexedSource {
    let mut masked: Vec<char> = Vec::with_capacity(source.len());
    let mut allows = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    // Pushes a blank for `c`, preserving newlines and horizontal layout.
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < chars.len() {
        let c = chars[i];
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            // Line comment: harvest allow markers, blank to end of line.
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let body: String = chars[start..i].iter().collect();
            harvest_allows(&body, line, &mut allows);
            masked.extend(std::iter::repeat(' ').take(i - start));
        } else if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            // Block comment, nesting supported.
            let start_line = line;
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let body: String = chars[start..i].iter().collect();
            harvest_allows(&body, start_line, &mut allows);
            for &bc in &chars[start..i] {
                masked.push(blank(bc));
            }
        } else if c == '"' || (c == 'r' && is_raw_string_start(&chars, i)) {
            // String literal (plain or raw). Blank the contents.
            let (end, newlines) = skip_string(&chars, i);
            for &bc in &chars[i..end] {
                masked.push(blank(bc));
            }
            line += newlines;
            i = end;
        } else if c == '\'' && is_char_literal(&chars, i) {
            let end = skip_char_literal(&chars, i);
            masked.extend(std::iter::repeat(' ').take(end - i));
            i = end;
        } else {
            if c == '\n' {
                line += 1;
            }
            masked.push(c);
            i += 1;
        }
    }
    let mut lexed = LexedSource { masked: masked.into_iter().collect(), allows };
    blank_test_regions(&mut lexed.masked);
    lexed
}

/// `r"`, `r#"`, `r##"`, ... (also `br"` is handled via the `b` falling
/// through as a normal char before `r`).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i + 1;
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    j < chars.len() && chars[j] == '"'
}

/// Skips a string literal starting at `i`; returns (end index, newlines
/// crossed).
fn skip_string(chars: &[char], i: usize) -> (usize, usize) {
    let mut newlines = 0;
    if chars[i] == 'r' {
        let mut hashes = 0;
        let mut j = i + 1;
        while j < chars.len() && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        j += 1; // opening quote
        // Scan for `"` followed by `hashes` hashes.
        while j < chars.len() {
            if chars[j] == '\n' {
                newlines += 1;
            }
            if chars[j] == '"' && chars[j + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
            {
                return (j + 1 + hashes, newlines);
            }
            j += 1;
        }
        (j, newlines)
    } else {
        let mut j = i + 1;
        while j < chars.len() {
            match chars[j] {
                '\\' => j += 2,
                '"' => return (j + 1, newlines),
                c => {
                    if c == '\n' {
                        newlines += 1;
                    }
                    j += 1;
                }
            }
        }
        (j, newlines)
    }
}

/// Distinguishes `'a'` / `'\n'` char literals from `'a` lifetimes.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    if i + 2 >= chars.len() {
        return false;
    }
    if chars[i + 1] == '\\' {
        return true;
    }
    chars[i + 2] == '\'' && chars[i + 1] != '\''
}

fn skip_char_literal(chars: &[char], i: usize) -> usize {
    let mut j = i + 1;
    if j < chars.len() && chars[j] == '\\' {
        j += 2;
        // Escapes like \u{1F600} run until the closing quote.
        while j < chars.len() && chars[j] != '\'' {
            j += 1;
        }
        return (j + 1).min(chars.len());
    }
    while j < chars.len() && chars[j] != '\'' {
        j += 1;
    }
    (j + 1).min(chars.len())
}

/// Blanks `#[cfg(test)]` and `#[test]` items in already-masked source:
/// from the attribute through the matching close brace (or trailing
/// semicolon for brace-less items).
fn blank_test_regions(masked: &mut String) {
    let mut out: Vec<char> = masked.chars().collect();
    let mut from = 0;
    while let Some(at) = find_test_attr(&out, from) {
        // Find the end of the region: first `{` after the attribute,
        // matched to its closing brace; or a `;` that arrives first.
        let mut j = at;
        let mut end = out.len();
        while j < out.len() {
            match out[j] {
                '{' => {
                    let mut depth = 0;
                    while j < out.len() {
                        match out[j] {
                            '{' => depth += 1,
                            '}' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    end = (j + 1).min(out.len());
                    break;
                }
                ';' => {
                    end = j + 1;
                    break;
                }
                _ => j += 1,
            }
        }
        for cell in out.iter_mut().take(end).skip(at) {
            if *cell != '\n' {
                *cell = ' ';
            }
        }
        from = end.max(at + 1);
    }
    *masked = out.into_iter().collect();
}

/// Char offset of the next test attribute at or after `from`, if any.
fn find_test_attr(chars: &[char], from: usize) -> Option<usize> {
    let matches_at = |i: usize, pat: &str| -> bool {
        pat.chars().enumerate().all(|(k, pc)| chars.get(i + k) == Some(&pc))
    };
    (from..chars.len()).find(|&i| matches_at(i, "#[cfg(test)]") || matches_at(i, "#[test]"))
}

/// Which source rules apply to a given file.
#[derive(Clone, Copy, Debug, Default)]
pub struct SourceRules {
    /// Apply R2 `no-panic-paths`.
    pub no_panic: bool,
    /// Apply R3 `deterministic-time`.
    pub deterministic_time: bool,
    /// Apply R4 `no-stray-io`.
    pub no_stray_io: bool,
    /// Apply R6 `no-raw-threads`.
    pub no_raw_threads: bool,
    /// Apply R8 `delta-log`.
    pub delta_log: bool,
}

/// Forbidden-token tables: (needle, needs ident-boundary before it).
const PANIC_TOKENS: &[(&str, bool)] = &[
    (".unwrap()", false),
    (".expect(", false),
    ("panic!", true),
    ("unreachable!", true),
    ("todo!", true),
];
const TIME_TOKENS: &[(&str, bool)] = &[("Instant::now", true), ("SystemTime::now", true)];
const IO_TOKENS: &[(&str, bool)] = &[("println!", true), ("eprintln!", true), ("dbg!", true)];
const THREAD_TOKENS: &[(&str, bool)] =
    &[("thread::spawn", true), ("thread::scope", true), ("thread::Builder", true)];
const DELTA_TOKENS: &[(&str, bool)] = &[("generation +=", true), ("generation+=", true)];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `needle` occurrences in `line`, honoring an identifier
/// boundary before the match when asked (so `dbg!` does not fire inside
/// `herbg!`, nor `panic!` inside `should_panic!`-like names).
fn token_hits(line: &str, needle: &str, boundary: bool) -> usize {
    let mut hits = 0;
    let mut from = 0;
    while let Some(at) = line[from..].find(needle) {
        let abs = from + at;
        let ok = !boundary
            || abs == 0
            || !line[..abs].chars().next_back().map(is_ident_char).unwrap_or(false);
        if ok {
            hits += 1;
        }
        from = abs + needle.len();
    }
    hits
}

/// Runs the source-level rules (R2/R3/R4) over one file.
pub fn check_source(file: &str, source: &str, which: SourceRules) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let mut out = Vec::new();
    let mut table: Vec<(&str, &[(&str, bool)], &str)> = Vec::new();
    if which.no_panic {
        table.push((rules::NO_PANIC_PATHS, PANIC_TOKENS, "panicking call in library code"));
    }
    if which.deterministic_time {
        table.push((
            rules::DETERMINISTIC_TIME,
            TIME_TOKENS,
            "wall-clock read outside crates/core/src/clock.rs",
        ));
    }
    if which.no_stray_io {
        table.push((rules::NO_STRAY_IO, IO_TOKENS, "stray console output in library code"));
    }
    if which.no_raw_threads {
        table.push((
            rules::NO_RAW_THREADS,
            THREAD_TOKENS,
            "raw thread primitive outside crates/par (use the hive-par pool)",
        ));
    }
    if which.delta_log {
        table.push((
            rules::DELTA_LOG,
            DELTA_TOKENS,
            "direct generation bump outside the delta-log API (record a delta instead)",
        ));
    }
    for (lineno, line) in lexed.masked.lines().enumerate() {
        let lineno = lineno + 1;
        for &(rule, tokens, what) in &table {
            for &(needle, boundary) in tokens {
                if token_hits(line, needle, boundary) > 0 && !lexed.allows(rule, lineno) {
                    out.push(Diagnostic {
                        rule,
                        file: file.to_string(),
                        line: lineno,
                        message: format!("{what}: `{needle}`"),
                    });
                }
            }
        }
    }
    out
}

/// Runs R5 over a library root: the file must open with
/// `#![forbid(unsafe_code)]`.
pub fn check_lib_root(file: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    if lexed.masked.contains("#![forbid(unsafe_code)]") {
        return Vec::new();
    }
    if lexed.allows(rules::FORBID_UNSAFE, 1) {
        return Vec::new();
    }
    vec![Diagnostic {
        rule: rules::FORBID_UNSAFE,
        file: file.to_string(),
        line: 1,
        message: "library root is missing `#![forbid(unsafe_code)]`".to_string(),
    }]
}

/// Char offset of `pat` in `chars` at or after `from`, if any.
fn find_sub(chars: &[char], from: usize, pat: &str) -> Option<usize> {
    let matches_at =
        |i: usize| pat.chars().enumerate().all(|(k, pc)| chars.get(i + k) == Some(&pc));
    (from..chars.len()).find(|&i| matches_at(i))
}

/// Facade functions exempt from R7: construction and cache plumbing
/// that runs no Table-1 service, plus the choke points themselves.
const FACADE_EXEMPT: &[&str] = &["new", "db", "db_mut", "knowledge", "service", "service_mut"];

/// Runs R7 over the service facade: every `pub fn` body (in masked
/// source, so tests and doc examples never fire) must contain a
/// `self.service(` or `self.service_mut(` call, unless the function is
/// named in [`FACADE_EXEMPT`] or waived with
/// `// lint:allow(instrumented-facade)`.
pub fn check_facade(file: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let chars: Vec<char> = lexed.masked.chars().collect();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = find_sub(&chars, from, "pub fn ") {
        // Ident boundary: don't fire inside e.g. `repub fn`-like text.
        if at > 0 && is_ident_char(chars[at - 1]) {
            from = at + 1;
            continue;
        }
        let line = chars[..at].iter().filter(|&&c| c == '\n').count() + 1;
        let mut j = at + "pub fn ".len();
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < chars.len() && is_ident_char(chars[j]) {
            j += 1;
        }
        let name: String = chars[name_start..j].iter().collect();
        // Body start: the first `{` of the item; a `;` first means a
        // body-less declaration (trait method), which R7 skips.
        let mut body_start = None;
        while j < chars.len() {
            match chars[j] {
                '{' => {
                    body_start = Some(j);
                    break;
                }
                ';' => break,
                _ => j += 1,
            }
        }
        let Some(open) = body_start else {
            from = j.max(at + 1);
            continue;
        };
        let mut depth = 0;
        let mut k = open;
        while k < chars.len() {
            match chars[k] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let body: String = chars[open..k.min(chars.len())].iter().collect();
        let routed = body.contains("self.service(") || body.contains("self.service_mut(");
        if !routed
            && !FACADE_EXEMPT.contains(&name.as_str())
            && !lexed.allows(rules::INSTRUMENTED_FACADE, line)
        {
            out.push(Diagnostic {
                rule: rules::INSTRUMENTED_FACADE,
                file: file.to_string(),
                line,
                message: format!(
                    "`pub fn {name}` does not route through `Hive::service(..)` / `Hive::service_mut(..)`"
                ),
            });
        }
        from = k.max(at + 1);
    }
    out
}

/// Runs R1 over a manifest: every entry of a dependency section must be
/// a workspace path dep (`path = ...` or `workspace = true`).
pub fn check_manifest(file: &str, contents: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    let mut dotted_dep_header: Option<usize> = None;
    let mut dotted_dep_hermetic = false;
    let mut allows: Vec<(usize, String)> = Vec::new();
    let flush_dotted = |header: &mut Option<usize>, hermetic: &mut bool,
                            out: &mut Vec<Diagnostic>| {
        if let Some(line) = header.take() {
            if !*hermetic {
                out.push(Diagnostic {
                    rule: rules::HERMETIC_DEPS,
                    file: file.to_string(),
                    line,
                    message: "dependency is not a workspace path dep".to_string(),
                });
            }
        }
        *hermetic = false;
    };
    for (lineno, raw) in contents.lines().enumerate() {
        let lineno = lineno + 1;
        if let Some(hash) = raw.find('#') {
            harvest_allows(&raw[hash..], lineno, &mut allows);
        }
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_dotted(&mut dotted_dep_header, &mut dotted_dep_hermetic, &mut out);
            let section = line.trim_matches(|c| c == '[' || c == ']');
            let is_dep_table = |s: &str| {
                s == "dependencies"
                    || s == "dev-dependencies"
                    || s == "build-dependencies"
                    || s == "workspace.dependencies"
                    || (s.starts_with("target.") && s.ends_with(".dependencies"))
            };
            if is_dep_table(section) {
                in_dep_section = true;
            } else if let Some(head) = section.rsplit_once('.').map(|(h, _)| h) {
                // `[dependencies.foo]`-style dotted section.
                if is_dep_table(head) {
                    in_dep_section = false;
                    dotted_dep_header = Some(lineno);
                    dotted_dep_hermetic = false;
                } else {
                    in_dep_section = false;
                }
            } else {
                in_dep_section = false;
            }
            continue;
        }
        if dotted_dep_header.is_some() {
            let key = line.split('=').next().unwrap_or("").trim();
            let value = line.split_once('=').map(|(_, v)| v.trim()).unwrap_or("");
            if key == "path" || (key == "workspace" && value == "true") {
                dotted_dep_hermetic = true;
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        let value = value.trim();
        let hermetic = value.contains("path")
            || value.contains("workspace = true")
            || value.contains("workspace=true")
            || key.ends_with(".workspace");
        let allowed = allows
            .iter()
            .any(|(l, r)| r == rules::HERMETIC_DEPS && (*l == lineno || *l + 1 == lineno));
        if !hermetic && !allowed {
            out.push(Diagnostic {
                rule: rules::HERMETIC_DEPS,
                file: file.to_string(),
                line: lineno,
                message: format!("`{key}` is not a workspace path dep (registry crates are forbidden)"),
            });
        }
    }
    flush_dotted(&mut dotted_dep_header, &mut dotted_dep_hermetic, &mut out);
    out
}

/// Crates whose non-test code must be panic-free (R2).
const PANIC_FREE_CRATES: &[&str] =
    &["store", "graph", "text", "scent", "concept", "core", "obs", "sim-harness"];
/// Crates exempt from R4 — printing is their purpose.
const IO_EXEMPT_CRATES: &[&str] = &["bench", "lint", "sim-harness"];
/// The one file allowed to read the wall clock.
const CLOCK_FILE: &str = "crates/core/src/clock.rs";
/// The one crate allowed to touch raw thread primitives (R6).
const THREAD_CRATE: &str = "par";
/// The service facade checked by R7.
const FACADE_FILE: &str = "crates/core/src/api.rs";

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans the whole workspace rooted at `root` and returns every
/// diagnostic, sorted by file then line.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    let rel = |p: &Path| -> String {
        p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/")
    };

    // R1 over the root manifest and every crate manifest.
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates_dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.join("Cargo.toml").is_file() {
                manifests.push(path.join("Cargo.toml"));
                crate_dirs.push(path);
            }
        }
    }
    for manifest in &manifests {
        let contents = fs::read_to_string(manifest)?;
        out.extend(check_manifest(&rel(manifest), &contents));
    }

    for crate_dir in &crate_dirs {
        let name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        let panic_free = PANIC_FREE_CRATES.contains(&name.as_str());
        let io_checked = !IO_EXEMPT_CRATES.contains(&name.as_str());
        let threads_checked = name != THREAD_CRATE;

        // R2/R3/R4/R6 over src/; R3+R6 also over benches/ (tests/ are
        // test code by definition and exempt from the panic/io rules).
        let mut sources = Vec::new();
        rust_files(&crate_dir.join("src"), &mut sources)?;
        for path in &sources {
            let file = rel(path);
            let source = fs::read_to_string(path)?;
            let which = SourceRules {
                no_panic: panic_free,
                deterministic_time: file != CLOCK_FILE,
                no_stray_io: io_checked,
                no_raw_threads: threads_checked,
                delta_log: true,
            };
            out.extend(check_source(&file, &source, which));
            if file == FACADE_FILE {
                out.extend(check_facade(&file, &source));
            }
        }
        let mut benches = Vec::new();
        rust_files(&crate_dir.join("benches"), &mut benches)?;
        for path in &benches {
            let source = fs::read_to_string(path)?;
            let which = SourceRules {
                deterministic_time: true,
                no_raw_threads: threads_checked,
                delta_log: true,
                ..Default::default()
            };
            out.extend(check_source(&rel(path), &source, which));
        }

        // R5 over the library root, if the crate has one.
        let lib_rs = crate_dir.join("src/lib.rs");
        if lib_rs.is_file() {
            let source = fs::read_to_string(&lib_rs)?;
            out.extend(check_lib_root(&rel(&lib_rs), &source));
        }
    }

    // R3+R6 over the workspace-level integration tests and examples.
    for extra in ["tests", "examples"] {
        let mut files = Vec::new();
        rust_files(&root.join(extra), &mut files)?;
        for path in &files {
            let source = fs::read_to_string(path)?;
            let which = SourceRules {
                deterministic_time: true,
                no_raw_threads: true,
                delta_log: true,
                ..Default::default()
            };
            out.extend(check_source(&rel(path), &source, which));
        }
    }

    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(out)
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(contents) = fs::read_to_string(&manifest) {
                if contents.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_blanks_comments_and_strings() {
        let src = "let a = \"panic!\"; // panic!\nlet b = 1; /* .unwrap() */\n";
        let lexed = lex(src);
        assert!(!lexed.masked.contains("panic!"));
        assert!(!lexed.masked.contains(".unwrap()"));
        assert_eq!(lexed.masked.lines().count(), src.lines().count());
    }

    #[test]
    fn lexer_keeps_lifetimes_but_blanks_chars() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        assert!(lexed.masked.contains("<'a>"));
        assert!(!lexed.masked.contains("'x'"));
    }

    #[test]
    fn lexer_blanks_test_regions() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap() }\n}\n";
        let lexed = lex(src);
        assert!(!lexed.masked.contains("unwrap"));
        assert!(lexed.masked.contains("fn ok()"));
    }

    #[test]
    fn allow_marker_suppresses_same_and_next_line() {
        let src = "let t = Instant::now(); // lint:allow(deterministic-time)\n";
        let d = check_source(
            "f.rs",
            src,
            SourceRules { deterministic_time: true, ..Default::default() },
        );
        assert!(d.is_empty(), "{d:?}");
        let src2 = "// lint:allow(deterministic-time)\nlet t = Instant::now();\n";
        assert!(check_source(
            "f.rs",
            src2,
            SourceRules { deterministic_time: true, ..Default::default() }
        )
        .is_empty());
    }

    #[test]
    fn boundary_guard_avoids_identifier_suffixes() {
        assert_eq!(token_hits("my_dbg!(x)", "dbg!", true), 0);
        assert_eq!(token_hits("dbg!(x)", "dbg!", true), 1);
        assert_eq!(token_hits("x.unwrap_or(1)", ".unwrap()", false), 0);
    }

    #[test]
    fn manifest_accepts_path_and_workspace_deps() {
        let toml = "[dependencies]\nhive-rng = { path = \"../rng\" }\nhive-core = { workspace = true }\n";
        assert!(check_manifest("Cargo.toml", toml).is_empty());
    }

    #[test]
    fn manifest_rejects_registry_deps() {
        let toml = "[dependencies]\nserde = \"1.0\"\n";
        let d = check_manifest("Cargo.toml", toml);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::HERMETIC_DEPS);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn dotted_dependency_sections_are_checked() {
        let bad = "[dependencies.serde]\nversion = \"1.0\"\n";
        let d = check_manifest("Cargo.toml", bad);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        let good = "[dependencies.hive-rng]\npath = \"../rng\"\n";
        assert!(check_manifest("Cargo.toml", good).is_empty());
    }

    #[test]
    fn lib_root_requires_forbid_unsafe() {
        assert!(check_lib_root("lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n").is_empty());
        let d = check_lib_root("lib.rs", "pub fn f() {}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::FORBID_UNSAFE);
    }
}
