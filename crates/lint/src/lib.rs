//! # hive-lint — workspace static-analysis pass
//!
//! An in-tree analyzer (its only dependency is the workspace's own
//! `hive-par` pool, which fans the per-file scan out across workers)
//! that turns the workspace's operational conventions into
//! machine-checked invariants (DESIGN.md, "Static analysis
//! architecture"). Thirteen rules run over two engines:
//!
//! **Token rules** match forbidden tokens in *lexed* source: a minimal
//! Rust lexer blanks `//` and `/* */` comments, string and char
//! literals, and `#[cfg(test)]` / `#[test]` regions first, so a
//! forbidden token inside a doc comment, a string, or a unit test never
//! fires.
//!
//! * **R1 `hermetic-deps`** — every `[dependencies]` /
//!   `[dev-dependencies]` entry in every manifest is a workspace path
//!   dep (or `workspace = true` indirection to one); no registry crates,
//!   so the build never touches the network.
//! * **R3 `deterministic-time`** — no `Instant::now` / `SystemTime::now`
//!   outside the declared clock file; simulation time is logical.
//! * **R4 `no-stray-io`** — no `println!` / `eprintln!` / `dbg!` in
//!   library crates (crates with binary targets are exempt — printing
//!   is their job).
//! * **R5 `forbid-unsafe`** — every library `lib.rs` carries
//!   `#![forbid(unsafe_code)]`.
//! * **R6 `no-raw-threads`** — no `thread::spawn` / `thread::scope` /
//!   `thread::Builder` outside the declared thread crate; all
//!   concurrency goes through the deterministic `hive-par` pool so
//!   parallel output stays bit-identical to serial.
//! * **R13 `no-full-scan`** — no full activity-log iteration
//!   (`activity_log().iter()`, `for .. in db.activity_log()`,
//!   `.activities_between(`) in hive-core service code outside the
//!   `db` arena layer and `db/index.rs`; services plan their event
//!   windows through the typed index queries instead.
//!
//! **AST rules** run over a tolerant in-tree parser ([`parser`]), a
//! workspace symbol table with receiver-type inference, and a call
//! graph ([`resolve`]) — they resolve *calls*, not text:
//!
//! * **R2 `no-panic-paths`** — no `.unwrap()`, `.expect(`, `panic!`,
//!   `unreachable!`, or `todo!` in the non-test code of panic-free
//!   crates; fallibility flows through the existing `Result` types.
//! * **R7 `instrumented-facade`** — every `pub fn` of the service
//!   facade routes through the instrumented `Hive::service(..)` /
//!   `Hive::service_mut(..)` choke point, so no Table-1 service can
//!   silently bypass the hive-obs span/counter layer.
//! * **R8 `delta-log`** — no direct `generation +=` bumps anywhere but
//!   the delta-log APIs. A bump that skips the journal silently breaks
//!   incremental cache maintenance.
//! * **R9 `snapshot-discipline`** — `&mut` access to a protected
//!   snapshot type (`TripleStore`, `HiveDb`, ...) only through its home
//!   crate, owners, or functions declared `lint:mutator(T)`.
//! * **R10 `exhaustive-delta`** — every `match` on a delta enum
//!   (`DeltaOp`, `DbDelta`) names all variants: no `_`, no catch-all
//!   binding, no `matches!`, so a new delta kind fails to compile
//!   instead of being silently dropped by a cache-patch path.
//! * **R11 `lock-scope`** — no call that can reach a `hive-par` pool
//!   entry, a facade service dispatch, or a snapshot rebuild while a
//!   `Mutex` guard from `.lock()` is live (latent deadlock / stall).
//! * **R12 `determinism-taint`** — functions reachable from a
//!   `lint:root(determinism)` root may not iterate `HashMap`/`HashSet`
//!   or touch wall-clock/entropy sources; fingerprints and oracles must
//!   be bit-stable.
//!
//! Any rule can be waived at a single site with a
//! `// lint:allow(<rule>)` comment on the same line or the line above
//! (`# lint:allow(<rule>)` in TOML). Crate coverage (panic-free,
//! io-exempt, thread crates, facade/clock files) is derived from the
//! workspace manifests — see [`config`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod config;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use lexer::{lex, tokenize, LexedSource, Marker, MarkerKind, Tok, TokKind};
pub use rules::AllowIndex;

use lexer::MarkerKind as MK;

/// One rule violation at a file/line/column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `no-panic-paths`.
    pub rule: &'static str,
    /// Stable rule number (the `N` in `R<N>`).
    pub num: u8,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token (1 when unknown).
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic, deriving the rule number from the name.
    pub fn new(rule: &'static str, file: &str, line: usize, col: usize, message: String) -> Self {
        Diagnostic { rule, num: rules::num(rule), file: file.to_string(), line, col, message }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: R{} {}: {}",
            self.file, self.line, self.col, self.num, self.rule, self.message
        )
    }
}

/// Sorts diagnostics into the stable report order:
/// (file, line, col, rule number, message).
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.col.cmp(&b.col))
            .then(a.num.cmp(&b.num))
            .then(a.message.cmp(&b.message))
    });
}

/// Which token-level source rules apply to a given file.
#[derive(Clone, Copy, Debug, Default)]
pub struct SourceRules {
    /// Apply R2 `no-panic-paths` (token engine; the workspace scan uses
    /// the AST engine for R2 — this stays for differential testing and
    /// for bench/test surfaces the AST pass does not cover).
    pub no_panic: bool,
    /// Apply R3 `deterministic-time`.
    pub deterministic_time: bool,
    /// Apply R4 `no-stray-io`.
    pub no_stray_io: bool,
    /// Apply R6 `no-raw-threads`.
    pub no_raw_threads: bool,
    /// Apply R8 `delta-log` (token engine; src/ uses the AST engine).
    pub delta_log: bool,
    /// Apply R13 `no-full-scan`.
    pub no_full_scan: bool,
}

/// Forbidden-token tables: (needle, needs ident-boundary before it).
const PANIC_TOKENS: &[(&str, bool)] = &[
    (".unwrap()", false),
    (".expect(", false),
    ("panic!", true),
    ("unreachable!", true),
    ("todo!", true),
];
const TIME_TOKENS: &[(&str, bool)] = &[("Instant::now", true), ("SystemTime::now", true)];
const IO_TOKENS: &[(&str, bool)] = &[("println!", true), ("eprintln!", true), ("dbg!", true)];
const THREAD_TOKENS: &[(&str, bool)] =
    &[("thread::spawn", true), ("thread::scope", true), ("thread::Builder", true)];
const DELTA_TOKENS: &[(&str, bool)] = &[("generation +=", true), ("generation+=", true)];
const FULL_SCAN_TOKENS: &[(&str, bool)] = &[
    ("activity_log().iter()", false),
    ("in db.activity_log()", false),
    (".activities_between(", false),
];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `needle` occurrences in `line`, honoring an identifier
/// boundary before the match when asked (so `dbg!` does not fire inside
/// `herbg!`, nor `panic!` inside `should_panic!`-like names). Returns
/// the 1-based columns of the hits.
fn token_cols(line: &str, needle: &str, boundary: bool) -> Vec<usize> {
    let mut cols = Vec::new();
    let mut from = 0;
    while let Some(at) = line[from..].find(needle) {
        let abs = from + at;
        let ok = !boundary
            || abs == 0
            || !line[..abs].chars().next_back().map(is_ident_char).unwrap_or(false);
        if ok {
            cols.push(line[..abs].chars().count() + 1);
        }
        from = abs + needle.len();
    }
    cols
}

/// Runs the token-level source rules over one file.
pub fn check_source(file: &str, source: &str, which: SourceRules) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let mut out = Vec::new();
    let mut table: Vec<(&str, &[(&str, bool)], &str)> = Vec::new();
    if which.no_panic {
        table.push((rules::NO_PANIC_PATHS, PANIC_TOKENS, "panicking call in library code"));
    }
    if which.deterministic_time {
        table.push((
            rules::DETERMINISTIC_TIME,
            TIME_TOKENS,
            "wall-clock read outside the declared clock file",
        ));
    }
    if which.no_stray_io {
        table.push((rules::NO_STRAY_IO, IO_TOKENS, "stray console output in library code"));
    }
    if which.no_raw_threads {
        table.push((
            rules::NO_RAW_THREADS,
            THREAD_TOKENS,
            "raw thread primitive outside crates/par (use the hive-par pool)",
        ));
    }
    if which.delta_log {
        table.push((
            rules::DELTA_LOG,
            DELTA_TOKENS,
            "direct generation bump outside the delta-log API (record a delta instead)",
        ));
    }
    if which.no_full_scan {
        table.push((
            rules::NO_FULL_SCAN,
            FULL_SCAN_TOKENS,
            "full activity-log scan in service code (plan through db::index instead)",
        ));
    }
    for (lineno, line) in lexed.masked.lines().enumerate() {
        let lineno = lineno + 1;
        for &(rule, tokens, what) in &table {
            for &(needle, boundary) in tokens {
                for col in token_cols(line, needle, boundary) {
                    if !lexed.allows(rule, lineno) {
                        out.push(Diagnostic::new(
                            rule,
                            file,
                            lineno,
                            col,
                            format!("{what}: `{needle}`"),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Runs R5 over a library root: the file must open with
/// `#![forbid(unsafe_code)]`.
pub fn check_lib_root(file: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    if lexed.masked.contains("#![forbid(unsafe_code)]") {
        return Vec::new();
    }
    if lexed.allows(rules::FORBID_UNSAFE, 1) {
        return Vec::new();
    }
    vec![Diagnostic::new(
        rules::FORBID_UNSAFE,
        file,
        1,
        1,
        "library root is missing `#![forbid(unsafe_code)]`".to_string(),
    )]
}

/// Char offset of `pat` in `chars` at or after `from`, if any.
fn find_sub(chars: &[char], from: usize, pat: &str) -> Option<usize> {
    let matches_at =
        |i: usize| pat.chars().enumerate().all(|(k, pc)| chars.get(i + k) == Some(&pc));
    (from..chars.len()).find(|&i| matches_at(i))
}

/// Runs R7 over the service facade with the *token* engine: every
/// `pub fn` body (in masked source, so tests and doc examples never
/// fire) must contain a `self.service(` or `self.service_mut(` call,
/// unless the function is named in [`rules::FACADE_EXEMPT`] or waived.
///
/// The workspace scan uses the AST engine
/// ([`rules::check_ast`]) for R7; this implementation is retained as
/// the reference for the token-vs-AST differential test.
pub fn check_facade(file: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let chars: Vec<char> = lexed.masked.chars().collect();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = find_sub(&chars, from, "pub fn ") {
        // Ident boundary: don't fire inside e.g. `repub fn`-like text.
        if at > 0 && is_ident_char(chars[at - 1]) {
            from = at + 1;
            continue;
        }
        let line = chars[..at].iter().filter(|&&c| c == '\n').count() + 1;
        let col = at - chars[..at].iter().rposition(|&c| c == '\n').map_or(0, |p| p + 1) + 1;
        let mut j = at + "pub fn ".len();
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < chars.len() && is_ident_char(chars[j]) {
            j += 1;
        }
        let name: String = chars[name_start..j].iter().collect();
        // Body start: the first `{` of the item; a `;` first means a
        // body-less declaration (trait method), which R7 skips.
        let mut body_start = None;
        while j < chars.len() {
            match chars[j] {
                '{' => {
                    body_start = Some(j);
                    break;
                }
                ';' => break,
                _ => j += 1,
            }
        }
        let Some(open) = body_start else {
            from = j.max(at + 1);
            continue;
        };
        let mut depth = 0;
        let mut k = open;
        while k < chars.len() {
            match chars[k] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let body: String = chars[open..k.min(chars.len())].iter().collect();
        let routed = body.contains("self.service(") || body.contains("self.service_mut(");
        if !routed
            && !rules::FACADE_EXEMPT.contains(&name.as_str())
            && !lexed.allows(rules::INSTRUMENTED_FACADE, line)
        {
            out.push(Diagnostic::new(
                rules::INSTRUMENTED_FACADE,
                file,
                line,
                col,
                format!(
                    "`pub fn {name}` does not route through `Hive::service(..)` / `Hive::service_mut(..)`"
                ),
            ));
        }
        from = k.max(at + 1);
    }
    out
}

/// Runs R1 over a manifest: every entry of a dependency section must be
/// a workspace path dep (`path = ...` or `workspace = true`).
pub fn check_manifest(file: &str, contents: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    let mut dotted_dep_header: Option<usize> = None;
    let mut dotted_dep_hermetic = false;
    let mut allows: Vec<Marker> = Vec::new();
    let flush_dotted = |header: &mut Option<usize>, hermetic: &mut bool,
                            out: &mut Vec<Diagnostic>| {
        if let Some(line) = header.take() {
            if !*hermetic {
                out.push(Diagnostic::new(
                    rules::HERMETIC_DEPS,
                    file,
                    line,
                    1,
                    "dependency is not a workspace path dep".to_string(),
                ));
            }
        }
        *hermetic = false;
    };
    let allowed_at = |allows: &[Marker], lineno: usize| {
        allows.iter().any(|m| {
            m.kind == MK::Allow
                && (m.line == lineno || m.line + 1 == lineno)
                && m.args.iter().any(|a| a == rules::HERMETIC_DEPS)
        })
    };
    for (lineno, raw) in contents.lines().enumerate() {
        let lineno = lineno + 1;
        if let Some(hash) = raw.find('#') {
            lexer::harvest_markers(&raw[hash..], lineno, &mut allows);
        }
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_dotted(&mut dotted_dep_header, &mut dotted_dep_hermetic, &mut out);
            let section = line.trim_matches(|c| c == '[' || c == ']');
            let is_dep_table = |s: &str| {
                s == "dependencies"
                    || s == "dev-dependencies"
                    || s == "build-dependencies"
                    || s == "workspace.dependencies"
                    || (s.starts_with("target.") && s.ends_with(".dependencies"))
            };
            if is_dep_table(section) {
                in_dep_section = true;
            } else if let Some(head) = section.rsplit_once('.').map(|(h, _)| h) {
                // `[dependencies.foo]`-style dotted section.
                if is_dep_table(head) {
                    in_dep_section = false;
                    dotted_dep_header = Some(lineno);
                    dotted_dep_hermetic = false;
                } else {
                    in_dep_section = false;
                }
            } else {
                in_dep_section = false;
            }
            continue;
        }
        if dotted_dep_header.is_some() {
            let key = line.split('=').next().unwrap_or("").trim();
            let value = line.split_once('=').map(|(_, v)| v.trim()).unwrap_or("");
            if key == "path" || (key == "workspace" && value == "true") {
                dotted_dep_hermetic = true;
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        let value = value.trim();
        let hermetic = value.contains("path")
            || value.contains("workspace = true")
            || value.contains("workspace=true")
            || key.ends_with(".workspace");
        if !hermetic && !allowed_at(&allows, lineno) {
            out.push(Diagnostic::new(
                rules::HERMETIC_DEPS,
                file,
                lineno,
                1,
                format!("`{key}` is not a workspace path dep (registry crates are forbidden)"),
            ));
        }
    }
    flush_dotted(&mut dotted_dep_header, &mut dotted_dep_hermetic, &mut out);
    out
}

/// Scan size counters, reported alongside the diagnostics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanStats {
    /// Number of `.rs` files analyzed.
    pub files: usize,
    /// Total source lines across those files.
    pub loc: usize,
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One file's worth of AST-engine front-end output, produced on a pool
/// worker and merged back on the caller in input order.
struct ParsedFile {
    loc: usize,
    allow_lines: Vec<(usize, String)>,
    file: ast::File,
}

/// Parses every `src/` file of every crate and runs the AST rules.
/// Exposed separately so benches can time the AST engine alone.
///
/// The per-file front end (read, lex, marker harvest, parse) fans out
/// over the [`hive_par`] pool; results are merged in input order, so
/// the symbol table, allow index, and diagnostics are byte-identical
/// to a serial scan regardless of worker count.
pub fn check_ast_workspace(
    root: &Path,
    cfg: &config::WorkspaceConfig,
) -> io::Result<(Vec<Diagnostic>, ScanStats)> {
    let rel = |p: &Path| -> String {
        p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/")
    };
    let mut jobs: Vec<(String, PathBuf)> = Vec::new();
    for (name, dir) in &cfg.crates {
        let mut sources = Vec::new();
        rust_files(&dir.join("src"), &mut sources)?;
        for path in sources {
            jobs.push((name.clone(), path));
        }
    }
    let parsed = hive_par::par_tasks(&jobs, |_, (name, path)| -> io::Result<ParsedFile> {
        let source = fs::read_to_string(path)?;
        let file_rel = rel(path);
        let loc = source.lines().count();
        let (toks, markers) = tokenize(&source);
        let mut allow_lines = Vec::new();
        for m in &markers {
            if m.kind == MK::Allow {
                for a in &m.args {
                    allow_lines.push((m.line, a.clone()));
                }
            }
        }
        let items = parser::parse(&toks, &markers);
        Ok(ParsedFile {
            loc,
            allow_lines,
            file: ast::File { path: file_rel, crate_name: name.clone(), items },
        })
    });
    let mut files = Vec::with_capacity(parsed.len());
    let mut allows = AllowIndex::default();
    let mut stats = ScanStats::default();
    for item in parsed {
        let p = item?;
        stats.files += 1;
        stats.loc += p.loc;
        for (line, rule) in &p.allow_lines {
            allows.insert(&p.file.path, *line, rule);
        }
        files.push(p.file);
    }
    let ws = resolve::Workspace::build(&files);
    Ok((rules::check_ast(&ws, cfg, &allows), stats))
}

/// Scans the whole workspace rooted at `root` and returns every
/// diagnostic in stable report order, plus scan-size counters.
///
/// Per-file token scanning and AST parsing run on the [`hive_par`]
/// pool; diagnostics are merged in file order and then sorted, so the
/// report is byte-identical at any worker count.
pub fn scan_workspace_stats(root: &Path) -> io::Result<(Vec<Diagnostic>, ScanStats)> {
    let cfg = config::load(root)?;
    let mut out = Vec::new();
    let rel = |p: &Path| -> String {
        p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/")
    };

    // R1 over the root manifest and every crate manifest.
    let mut manifests = vec![root.join("Cargo.toml")];
    for (_, dir) in &cfg.crates {
        manifests.push(dir.join("Cargo.toml"));
    }
    for manifest in &manifests {
        let contents = fs::read_to_string(manifest)?;
        out.extend(check_manifest(&rel(manifest), &contents));
    }

    // Token rules R3/R4/R6 over src/, R3/R6/R8 over benches/, R5 over
    // library roots. (R2/R7/R8 on src/ run on the AST engine below.)
    // Each file's scan is independent, so the jobs fan out over the
    // hive-par pool; `par_tasks` preserves input order, and the merge
    // below walks that order, so the report is byte-stable.
    struct TokenJob {
        path: PathBuf,
        file: String,
        which: SourceRules,
        counted: bool,
    }
    let mut jobs: Vec<TokenJob> = Vec::new();
    for (name, dir) in &cfg.crates {
        let io_checked = !cfg.io_exempt.contains(name);
        let threads_checked = !cfg.thread_crates.contains(name);

        let mut sources = Vec::new();
        rust_files(&dir.join("src"), &mut sources)?;
        for path in sources {
            let file = rel(&path);
            let which = SourceRules {
                no_panic: false,
                deterministic_time: !cfg.clock_files.contains(&file),
                no_stray_io: io_checked,
                no_raw_threads: threads_checked,
                delta_log: false,
                // R13 covers the platform's service code only: the
                // index module and the arena layer are the two places
                // allowed to walk the whole log. (Crate names here are
                // directory names — `core`, not `hive-core`.)
                no_full_scan: name == "core"
                    && !file.ends_with("/db.rs")
                    && !file.contains("/db/"),
            };
            jobs.push(TokenJob { path, file, which, counted: false });
        }
        let mut benches = Vec::new();
        rust_files(&dir.join("benches"), &mut benches)?;
        for path in benches {
            let file = rel(&path);
            let which = SourceRules {
                deterministic_time: true,
                no_raw_threads: threads_checked,
                delta_log: true,
                ..Default::default()
            };
            jobs.push(TokenJob { path, file, which, counted: true });
        }
    }

    // R3+R6+R8 over the workspace-level integration tests and examples.
    for extra in ["tests", "examples"] {
        let mut files = Vec::new();
        rust_files(&root.join(extra), &mut files)?;
        for path in files {
            let file = rel(&path);
            let which = SourceRules {
                deterministic_time: true,
                no_raw_threads: true,
                delta_log: true,
                ..Default::default()
            };
            jobs.push(TokenJob { path, file, which, counted: true });
        }
    }

    let mut stats = ScanStats::default();
    let scanned = hive_par::par_tasks(&jobs, |_, job| -> io::Result<(Vec<Diagnostic>, usize)> {
        let source = fs::read_to_string(&job.path)?;
        Ok((check_source(&job.file, &source, job.which), source.lines().count()))
    });
    for (job, result) in jobs.iter().zip(scanned) {
        let (diags, loc) = result?;
        if job.counted {
            stats.files += 1;
            stats.loc += loc;
        }
        out.extend(diags);
    }

    // R5 over each crate's library root, if it has one.
    for (_, dir) in &cfg.crates {
        let lib_rs = dir.join("src/lib.rs");
        if lib_rs.is_file() {
            let source = fs::read_to_string(&lib_rs)?;
            out.extend(check_lib_root(&rel(&lib_rs), &source));
        }
    }

    // AST rules R2/R7/R8/R9/R10/R11/R12 over every crate's src/.
    let (ast_diags, ast_stats) = check_ast_workspace(root, &cfg)?;
    out.extend(ast_diags);
    stats.files += ast_stats.files;
    stats.loc += ast_stats.loc;

    sort_diagnostics(&mut out);
    Ok((out, stats))
}

/// Scans the whole workspace rooted at `root` and returns every
/// diagnostic in stable report order.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    scan_workspace_stats(root).map(|(d, _)| d)
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(contents) = fs::read_to_string(&manifest) {
                if contents.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_marker_suppresses_same_and_next_line() {
        let src = "let t = Instant::now(); // lint:allow(deterministic-time)\n";
        let d = check_source(
            "f.rs",
            src,
            SourceRules { deterministic_time: true, ..Default::default() },
        );
        assert!(d.is_empty(), "{d:?}");
        let src2 = "// lint:allow(deterministic-time)\nlet t = Instant::now();\n";
        assert!(check_source(
            "f.rs",
            src2,
            SourceRules { deterministic_time: true, ..Default::default() }
        )
        .is_empty());
    }

    #[test]
    fn boundary_guard_avoids_identifier_suffixes() {
        assert!(token_cols("my_dbg!(x)", "dbg!", true).is_empty());
        assert_eq!(token_cols("dbg!(x)", "dbg!", true), vec![1]);
        assert!(token_cols("x.unwrap_or(1)", ".unwrap()", false).is_empty());
    }

    #[test]
    fn diagnostics_render_the_stable_format() {
        let d = Diagnostic::new(rules::NO_PANIC_PATHS, "crates/x/src/lib.rs", 7, 13, "boom".into());
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:7:13: R2 no-panic-paths: boom");
    }

    #[test]
    fn sort_is_deterministic() {
        let mut ds = vec![
            Diagnostic::new(rules::DELTA_LOG, "b.rs", 1, 1, "z".into()),
            Diagnostic::new(rules::NO_PANIC_PATHS, "a.rs", 9, 2, "y".into()),
            Diagnostic::new(rules::NO_PANIC_PATHS, "a.rs", 9, 1, "x".into()),
        ];
        sort_diagnostics(&mut ds);
        let order: Vec<_> = ds.iter().map(|d| (d.file.as_str(), d.line, d.col)).collect();
        assert_eq!(order, vec![("a.rs", 9, 1), ("a.rs", 9, 2), ("b.rs", 1, 1)]);
    }

    #[test]
    fn manifest_accepts_path_and_workspace_deps() {
        let toml = "[dependencies]\nhive-rng = { path = \"../rng\" }\nhive-core = { workspace = true }\n";
        assert!(check_manifest("Cargo.toml", toml).is_empty());
    }

    #[test]
    fn manifest_rejects_registry_deps() {
        let toml = "[dependencies]\nserde = \"1.0\"\n";
        let d = check_manifest("Cargo.toml", toml);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::HERMETIC_DEPS);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn dotted_dependency_sections_are_checked() {
        let bad = "[dependencies.serde]\nversion = \"1.0\"\n";
        let d = check_manifest("Cargo.toml", bad);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        let good = "[dependencies.hive-rng]\npath = \"../rng\"\n";
        assert!(check_manifest("Cargo.toml", good).is_empty());
    }

    #[test]
    fn lib_root_requires_forbid_unsafe() {
        assert!(check_lib_root("lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n").is_empty());
        let d = check_lib_root("lib.rs", "pub fn f() {}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::FORBID_UNSAFE);
    }
}
