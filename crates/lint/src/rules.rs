//! AST rule engine: R2/R7/R8 (migrated off the token path) and the
//! structural rules R9–R12 over the resolved [`Workspace`].
//!
//! Every rule here works on [`FnRecord`]s and the call graph — no text
//! matching. Waivers use the same `lint:allow(<rule>)` comment markers
//! as the token rules; the index is built from the tokenizing lexer's
//! marker harvest.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::SelfKind;
use crate::config::WorkspaceConfig;
use crate::resolve::{Callee, FnKey, FnRecord, Workspace};
use crate::Diagnostic;

/// R1: registry dependencies are forbidden.
pub const HERMETIC_DEPS: &str = "hermetic-deps";
/// R2: panicking calls are forbidden in library code.
pub const NO_PANIC_PATHS: &str = "no-panic-paths";
/// R3: wall-clock reads are forbidden outside the clock module.
pub const DETERMINISTIC_TIME: &str = "deterministic-time";
/// R4: stray stdout/stderr output is forbidden in library code.
pub const NO_STRAY_IO: &str = "no-stray-io";
/// R5: library roots must forbid unsafe code.
pub const FORBID_UNSAFE: &str = "forbid-unsafe";
/// R6: raw thread primitives are forbidden outside the thread crates.
pub const NO_RAW_THREADS: &str = "no-raw-threads";
/// R7: facade services must route through `Hive::service(..)`.
pub const INSTRUMENTED_FACADE: &str = "instrumented-facade";
/// R8: generation counters may only be bumped via the delta-log API.
pub const DELTA_LOG: &str = "delta-log";
/// R9: `&mut` access to snapshot types only through declared mutators.
pub const SNAPSHOT_DISCIPLINE: &str = "snapshot-discipline";
/// R10: matches on delta enums must stay exhaustive.
pub const EXHAUSTIVE_DELTA: &str = "exhaustive-delta";
/// R11: no service/rebuild/pool call while a Mutex guard is live.
pub const LOCK_SCOPE: &str = "lock-scope";
/// R12: determinism roots may not reach storage-order or clock sources.
pub const DETERMINISM_TAINT: &str = "determinism-taint";
/// R13: full activity-log scans are forbidden in service code.
pub const NO_FULL_SCAN: &str = "no-full-scan";

/// Stable rule number (the `R<n>` in diagnostics) for a rule name.
pub fn num(rule: &str) -> u8 {
    match rule {
        HERMETIC_DEPS => 1,
        NO_PANIC_PATHS => 2,
        DETERMINISTIC_TIME => 3,
        NO_STRAY_IO => 4,
        FORBID_UNSAFE => 5,
        NO_RAW_THREADS => 6,
        INSTRUMENTED_FACADE => 7,
        DELTA_LOG => 8,
        SNAPSHOT_DISCIPLINE => 9,
        EXHAUSTIVE_DELTA => 10,
        LOCK_SCOPE => 11,
        DETERMINISM_TAINT => 12,
        NO_FULL_SCAN => 13,
        _ => 0,
    }
}

/// `lint:allow` markers for the whole workspace: file → `(line, rule)`.
#[derive(Default)]
pub struct AllowIndex {
    map: BTreeMap<String, Vec<(usize, String)>>,
}

impl AllowIndex {
    /// Records a marker for `rule` at `file:line`.
    pub fn insert(&mut self, file: &str, line: usize, rule: &str) {
        self.map.entry(file.to_string()).or_default().push((line, rule.to_string()));
    }

    /// True if `rule` is waived at `file:line` (marker on the same line
    /// or the line directly above — the token rules' convention).
    pub fn allows(&self, file: &str, rule: &str, line: usize) -> bool {
        self.map.get(file).is_some_and(|v| {
            v.iter().any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
        })
    }
}

/// Facade functions exempt from R7: construction and cache plumbing
/// that runs no Table-1 service, plus the choke points themselves.
pub const FACADE_EXEMPT: &[&str] =
    &["new", "db", "db_mut", "indexes", "knowledge", "ppr", "service", "service_mut"];

/// Enum names whose matches R10 forces to stay exhaustive: the delta
/// vocabularies that grow as cache maintenance learns new operations.
fn is_delta_enum(name: &str) -> bool {
    name == "DeltaOp" || name.ends_with("Delta")
}

/// Method names that rebuild a derived snapshot from base state (R11).
const REBUILD_NAMES: &[&str] = &["build", "rebuild", "to_store"];

/// Runs all AST rules over the workspace.
pub fn check_ast(ws: &Workspace, cfg: &WorkspaceConfig, allows: &AllowIndex) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_panic_paths(ws, cfg, allows, &mut out);
    check_facade_routing(ws, cfg, allows, &mut out);
    check_delta_log(ws, allows, &mut out);
    check_snapshot_discipline(ws, allows, &mut out);
    check_exhaustive_delta(ws, allows, &mut out);
    check_lock_scope(ws, cfg, allows, &mut out);
    check_determinism_taint(ws, allows, &mut out);
    out
}

/// R2 `no-panic-paths` (AST): panic sites in the non-test code of
/// panic-free crates.
fn check_panic_paths(
    ws: &Workspace,
    cfg: &WorkspaceConfig,
    allows: &AllowIndex,
    out: &mut Vec<Diagnostic>,
) {
    for r in &ws.records {
        if r.is_test || !cfg.panic_free.contains(&r.crate_name) {
            continue;
        }
        for (line, col, what) in &r.panic_sites {
            if !allows.allows(&r.file, NO_PANIC_PATHS, *line) {
                out.push(Diagnostic::new(
                    NO_PANIC_PATHS,
                    &r.file,
                    *line,
                    *col,
                    format!("panicking call in library code: `{what}`"),
                ));
            }
        }
    }
}

/// R7 `instrumented-facade` (AST): every unrestricted `pub fn` of a
/// facade file must call `self.service(..)` / `self.service_mut(..)`
/// somewhere in its body, unless exempt by name. `pub(crate)` helpers
/// are crate-internal plumbing, not services, and are skipped — which
/// also matches the token reference engine, whose `pub fn ` needle
/// never matches a restricted visibility.
fn check_facade_routing(
    ws: &Workspace,
    cfg: &WorkspaceConfig,
    allows: &AllowIndex,
    out: &mut Vec<Diagnostic>,
) {
    for r in &ws.records {
        if r.is_test
            || !r.is_pub
            || r.vis_restricted
            || !cfg.facade_files.iter().any(|f| f == &r.file)
            || FACADE_EXEMPT.contains(&r.name.as_str())
            || r.routes_service
            || allows.allows(&r.file, INSTRUMENTED_FACADE, r.line)
        {
            continue;
        }
        out.push(Diagnostic::new(
            INSTRUMENTED_FACADE,
            &r.file,
            r.line,
            r.col,
            format!(
                "`pub fn {}` does not route through `Hive::service(..)` / `Hive::service_mut(..)`",
                r.name
            ),
        ));
    }
}

/// R8 `delta-log` (AST): direct `generation += ..` bumps outside the
/// journaling APIs (which carry `lint:allow(delta-log)` markers).
fn check_delta_log(ws: &Workspace, allows: &AllowIndex, out: &mut Vec<Diagnostic>) {
    for r in &ws.records {
        if r.is_test {
            continue;
        }
        for (line, col, what) in &r.generation_bumps {
            if !allows.allows(&r.file, DELTA_LOG, *line) {
                out.push(Diagnostic::new(
                    DELTA_LOG,
                    &r.file,
                    *line,
                    *col,
                    format!(
                        "direct generation bump outside the delta-log API (record a delta instead): `{what}`"
                    ),
                ));
            }
        }
    }
}

/// The set of protected snapshot types: every type some function
/// declares itself a mutation choke point for via `lint:mutator(T)`.
fn protected_types(ws: &Workspace) -> BTreeSet<String> {
    let mut tys = BTreeSet::new();
    for r in &ws.records {
        for t in &r.mutator_of {
            tys.insert(t.clone());
        }
    }
    tys
}

/// True if `r` may legitimately mutate protected type `ty`: it lives in
/// the type's home crate, is a declared choke point for it, or belongs
/// to a type that owns a `ty` field (a wrapper mutating its own state).
fn may_mutate(ws: &Workspace, r: &FnRecord, ty: &str) -> bool {
    if r.mutator_of.iter().any(|t| t == ty) {
        return true;
    }
    if ws.type_crate.get(ty).is_some_and(|home| home == &r.crate_name) {
        return true;
    }
    if let Some(self_ty) = &r.self_ty {
        if let Some(fields) = ws.structs.get(self_ty) {
            if fields.values().any(|ft| crate::resolve::type_head(ft) == ty) {
                return true;
            }
        }
    }
    false
}

/// R9 `snapshot-discipline`: `&mut` access to a protected type only
/// through its home crate, owners, or declared `lint:mutator(T)` choke
/// points. Two shapes:
///
/// * a function takes `&mut T` as a parameter without being a declared
///   mutator (handing out raw mutable access), and
/// * a call to a `&mut self` method of `T` on a *borrowed* receiver
///   (owned locals are scratch state and exempt).
fn check_snapshot_discipline(ws: &Workspace, allows: &AllowIndex, out: &mut Vec<Diagnostic>) {
    let protected = protected_types(ws);
    if protected.is_empty() {
        return;
    }
    for r in &ws.records {
        if r.is_test {
            continue;
        }
        // Shape 1: undeclared `&mut T` parameters.
        for (param, ty) in &r.mut_ref_params {
            if protected.contains(ty)
                && !may_mutate(ws, r, ty)
                && !allows.allows(&r.file, SNAPSHOT_DISCIPLINE, r.line)
            {
                out.push(Diagnostic::new(
                    SNAPSHOT_DISCIPLINE,
                    &r.file,
                    r.line,
                    r.col,
                    format!(
                        "`{}` takes `{param}: &mut {ty}` outside `{ty}`'s home crate; route the \
                         mutation through a `lint:mutator({ty})` choke point or return deltas",
                        r.name
                    ),
                ));
            }
        }
        // Shape 2: `&mut self` method calls on borrowed protected state.
        for e in &r.calls {
            let Callee::Fn(key) = &e.to else { continue };
            let Some(meta) = ws.meta.get(key) else { continue };
            if meta.self_kind != SelfKind::RefMut {
                continue;
            }
            let Some((ty, _)) = meta.display.split_once("::") else { continue };
            if !protected.contains(ty)
                || e.recv_owned != Some(false)
                || may_mutate(ws, r, ty)
                || allows.allows(&r.file, SNAPSHOT_DISCIPLINE, e.line)
            {
                continue;
            }
            out.push(Diagnostic::new(
                SNAPSHOT_DISCIPLINE,
                &r.file,
                e.line,
                e.col,
                format!(
                    "`{}` mutates a borrowed `{ty}` via `{}` outside a declared \
                     `lint:mutator({ty})` choke point",
                    r.name, meta.display
                ),
            ));
        }
    }
}

/// R10 `exhaustive-delta`: every `match` on a delta enum names all
/// variants explicitly — no `_`, no catch-all binding, no `matches!`.
/// A wildcard compiles fine when a variant is added, which is exactly
/// how a cache-patch path silently drops a new delta kind.
fn check_exhaustive_delta(ws: &Workspace, allows: &AllowIndex, out: &mut Vec<Diagnostic>) {
    for r in &ws.records {
        if r.is_test {
            continue;
        }
        for m in &r.matches {
            let enum_name = match &m.scrutinee_ty {
                Some(t) if is_delta_enum(t) && ws.enums.contains_key(t) => t.clone(),
                _ => {
                    let Some(n) = m
                        .arm_paths
                        .iter()
                        .flat_map(|p| p.iter())
                        .find(|s| is_delta_enum(s) && ws.enums.contains_key(s.as_str()))
                    else {
                        continue;
                    };
                    n.clone()
                }
            };
            if allows.allows(&r.file, EXHAUSTIVE_DELTA, m.line) {
                continue;
            }
            if m.has_wild || m.has_binding {
                let what = if m.has_wild { "wildcard `_`" } else { "catch-all binding" };
                out.push(Diagnostic::new(
                    EXHAUSTIVE_DELTA,
                    &r.file,
                    m.line,
                    m.col,
                    format!(
                        "match on `{enum_name}` has a {what} arm; name every variant so new \
                         delta kinds fail to compile instead of being silently dropped"
                    ),
                ));
                continue;
            }
            let declared: BTreeSet<&str> =
                ws.enums[&enum_name].iter().map(String::as_str).collect();
            let mut covered: BTreeSet<&str> = BTreeSet::new();
            for path in &m.arm_paths {
                if let Some(i) = path.iter().position(|s| s == &enum_name) {
                    if let Some(v) = path.get(i + 1) {
                        covered.insert(v.as_str());
                    }
                } else if path.len() == 1 && declared.contains(path[0].as_str()) {
                    // `use DeltaOp::*` style bare variant.
                    covered.insert(path[0].as_str());
                }
            }
            let missing: Vec<&str> =
                declared.iter().filter(|v| !covered.contains(**v)).copied().collect();
            if !missing.is_empty() {
                out.push(Diagnostic::new(
                    EXHAUSTIVE_DELTA,
                    &r.file,
                    m.line,
                    m.col,
                    format!(
                        "match on `{enum_name}` misses variant(s) {}",
                        missing.join(", ")
                    ),
                ));
            }
        }
        for mm in &r.matches_macros {
            if is_delta_enum(&mm.enum_name)
                && !allows.allows(&r.file, EXHAUSTIVE_DELTA, mm.line)
            {
                out.push(Diagnostic::new(
                    EXHAUSTIVE_DELTA,
                    &r.file,
                    mm.line,
                    mm.col,
                    format!(
                        "`matches!` on `{}` is not exhaustiveness-checked; use a dedicated \
                         predicate with a full match",
                        mm.enum_name
                    ),
                ));
            }
        }
    }
}

/// What a reachable R11 target does, for the diagnostic message.
struct LockTargets {
    pool: BTreeSet<FnKey>,
    service: BTreeSet<FnKey>,
    rebuild: BTreeSet<FnKey>,
}

fn lock_targets(ws: &Workspace, cfg: &WorkspaceConfig) -> LockTargets {
    let mut t = LockTargets {
        pool: BTreeSet::new(),
        service: BTreeSet::new(),
        rebuild: BTreeSet::new(),
    };
    for r in &ws.records {
        if cfg.thread_crates.contains(&r.crate_name) && r.is_pub {
            t.pool.insert(r.key.clone());
        }
        if r.self_ty.as_deref() == Some("Hive")
            && (r.name == "service" || r.name == "service_mut")
        {
            t.service.insert(r.key.clone());
        }
        if r.self_ty.is_some() && REBUILD_NAMES.contains(&r.name.as_str()) {
            t.rebuild.insert(r.key.clone());
        }
    }
    t
}

/// R11 `lock-scope`: no call that can reach a `hive-par` pool entry, a
/// facade service dispatch, or a snapshot rebuild while a `Mutex` guard
/// from `.lock()` is live. Any of the three under a held facade lock is
/// a latent deadlock or a multi-second stall inside a critical section.
fn check_lock_scope(
    ws: &Workspace,
    cfg: &WorkspaceConfig,
    allows: &AllowIndex,
    out: &mut Vec<Diagnostic>,
) {
    let targets = lock_targets(ws, cfg);
    let pool = ws.reach_reverse(&targets.pool);
    let service = ws.reach_reverse(&targets.service);
    let rebuild = ws.reach_reverse(&targets.rebuild);
    let mut seen = BTreeSet::new();
    for r in &ws.records {
        if r.is_test || cfg.thread_crates.contains(&r.crate_name) {
            continue;
        }
        for scope in &r.guard_scopes {
            for e in &scope.calls {
                let reason = match &e.to {
                    Callee::Fn(k) => {
                        if targets.pool.contains(k) || pool.contains(k) {
                            Some(("hive-par pool entry", display_of(ws, k)))
                        } else if targets.service.contains(k) || service.contains(k) {
                            Some(("service dispatch", display_of(ws, k)))
                        } else if targets.rebuild.contains(k) || rebuild.contains(k) {
                            Some(("snapshot rebuild", display_of(ws, k)))
                        } else {
                            None
                        }
                    }
                    Callee::Path(segs) => segs
                        .first()
                        .is_some_and(|s| s == "hive_par")
                        .then(|| ("hive-par pool entry", segs.join("::"))),
                    Callee::Method { .. } => None,
                };
                let Some((kind, what)) = reason else { continue };
                if allows.allows(&r.file, LOCK_SCOPE, e.line)
                    || !seen.insert((r.file.clone(), e.line, e.col))
                {
                    continue;
                }
                out.push(Diagnostic::new(
                    LOCK_SCOPE,
                    &r.file,
                    e.line,
                    e.col,
                    format!(
                        "`{}` calls `{what}` (reaches a {kind}) while a Mutex guard acquired \
                         at line {} is live; drop the guard first",
                        r.name, scope.line
                    ),
                ));
            }
        }
    }
}

fn display_of(ws: &Workspace, key: &str) -> String {
    ws.meta.get(key).map_or_else(|| key.to_string(), |m| m.display.clone())
}

/// R12 `determinism-taint`: no function reachable from a
/// `lint:root(determinism)` root may iterate a `HashMap`/`HashSet` or
/// touch wall-clock/entropy sources — fingerprints and oracles must be
/// bit-stable across runs.
fn check_determinism_taint(ws: &Workspace, allows: &AllowIndex, out: &mut Vec<Diagnostic>) {
    let roots: BTreeSet<FnKey> = ws
        .records
        .iter()
        .filter(|r| r.root_of.iter().any(|f| f == "determinism"))
        .map(|r| r.key.clone())
        .collect();
    if roots.is_empty() {
        return;
    }
    let (reached, parent) = ws.reach_forward(&roots);
    for r in &ws.records {
        if r.is_test || !reached.contains(&r.key) {
            continue;
        }
        for (line, col, what) in &r.taint_sinks {
            if allows.allows(&r.file, DETERMINISM_TAINT, *line) {
                continue;
            }
            out.push(Diagnostic::new(
                DETERMINISM_TAINT,
                &r.file,
                *line,
                *col,
                format!(
                    "{what} is reachable from a determinism root: {}",
                    ws.chain_to(&parent, &r.key)
                ),
            ));
        }
    }
}
