//! Workspace-derived lint configuration.
//!
//! The crate-coverage sets (which crates are panic-free, print-exempt,
//! allowed to touch raw threads, and where the facade/clock files
//! live) are derived from the workspace manifests instead of being
//! hardcoded, so a newly added crate is covered automatically:
//!
//! * **panic-free (R2)** — every workspace crate by default; a crate
//!   whose job requires panicking opts out with
//!   `[package.metadata.hive-lint] panic-free = false`.
//! * **print-exempt (R4)** — crates with binary targets
//!   (`src/main.rs`, `src/bin/`, or `[[bin]]`): printing is their job.
//!   Library crates may opt out explicitly with `io-exempt = true`.
//! * **thread-crate (R6, R11)** — declared with `thread-crate = true`;
//!   only the deterministic pool implementation qualifies.
//! * **facade / clock (R7, R3)** — declared by the owning crate with
//!   `facade = "src/api.rs"` / `clock = "src/clock.rs"`.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Derived coverage sets for the whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceConfig {
    /// `(crate dir name, crate dir path)`, sorted by name.
    pub crates: Vec<(String, PathBuf)>,
    /// Crates whose non-test code must be panic-free (R2).
    pub panic_free: BTreeSet<String>,
    /// Crates exempt from the stray-io rule (R4).
    pub io_exempt: BTreeSet<String>,
    /// Crates allowed to touch raw thread primitives (R6) — also the
    /// pool implementations exempt from the lock-scope rule (R11).
    pub thread_crates: BTreeSet<String>,
    /// Workspace-relative facade files checked by R7/R9.
    pub facade_files: Vec<String>,
    /// Workspace-relative files allowed to read the wall clock (R3).
    pub clock_files: Vec<String>,
}

/// Minimal per-crate manifest facts.
#[derive(Debug, Default)]
struct CrateManifest {
    panic_free: bool,
    io_exempt_meta: bool,
    thread_crate: bool,
    has_bin_section: bool,
    facade: Option<String>,
    clock: Option<String>,
}

/// Parses the few `[package.metadata.hive-lint]` keys and `[[bin]]`
/// presence out of a crate manifest. Line-oriented: good enough for
/// the workspace's hand-written TOML.
fn parse_crate_manifest(contents: &str) -> CrateManifest {
    let mut m = CrateManifest { panic_free: true, ..CrateManifest::default() };
    let mut in_lint_meta = false;
    for raw in contents.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            let section = line.trim_matches(|c| c == '[' || c == ']');
            in_lint_meta = section == "package.metadata.hive-lint";
            if line.starts_with("[[bin]]") {
                m.has_bin_section = true;
            }
            continue;
        }
        if !in_lint_meta {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        let value = value.trim().trim_matches('"');
        match key {
            "panic-free" => m.panic_free = value != "false",
            "io-exempt" => m.io_exempt_meta = value == "true",
            "thread-crate" => m.thread_crate = value == "true",
            "facade" => m.facade = Some(value.to_string()),
            "clock" => m.clock = Some(value.to_string()),
            _ => {}
        }
    }
    m
}

/// Loads the derived configuration for the workspace rooted at `root`.
pub fn load(root: &Path) -> io::Result<WorkspaceConfig> {
    let mut cfg = WorkspaceConfig::default();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates_dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let dir = entry.path();
            if dir.join("Cargo.toml").is_file() {
                let name = dir.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
                cfg.crates.push((name, dir));
            }
        }
    }
    for (name, dir) in &cfg.crates {
        let contents = fs::read_to_string(dir.join("Cargo.toml"))?;
        let m = parse_crate_manifest(&contents);
        if m.panic_free {
            cfg.panic_free.insert(name.clone());
        }
        let has_bins = dir.join("src/main.rs").is_file()
            || dir.join("src/bin").is_dir()
            || m.has_bin_section;
        if has_bins || m.io_exempt_meta {
            cfg.io_exempt.insert(name.clone());
        }
        if m.thread_crate {
            cfg.thread_crates.insert(name.clone());
        }
        if let Some(f) = m.facade {
            cfg.facade_files.push(format!("crates/{name}/{f}"));
        }
        if let Some(c) = m.clock {
            cfg.clock_files.push(format!("crates/{name}/{c}"));
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_keys_are_parsed() {
        let m = parse_crate_manifest(
            "[package]\nname = \"x\"\n[package.metadata.hive-lint]\npanic-free = false\nthread-crate = true\nfacade = \"src/api.rs\"\n",
        );
        assert!(!m.panic_free);
        assert!(m.thread_crate);
        assert_eq!(m.facade.as_deref(), Some("src/api.rs"));
    }

    #[test]
    fn bin_sections_are_detected() {
        let m = parse_crate_manifest("[package]\nname = \"x\"\n\n[[bin]]\nname = \"tool\"\n");
        assert!(m.has_bin_section);
        assert!(m.panic_free);
    }
}
