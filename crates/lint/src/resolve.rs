//! Symbol table, receiver-type inference, and call graph over the
//! parsed workspace.
//!
//! [`Workspace::build`] digests every parsed file into per-function
//! [`FnRecord`]s: resolved call edges, match shapes, lock-guard scopes,
//! panic/assignment sites, and taint sinks. The rule pass
//! (`rules_ast`) then works purely on these records plus the symbol
//! tables — it never re-walks the AST.
//!
//! Resolution is heuristic by design: a method call resolves through
//! the inferred receiver type when possible, then through a
//! workspace-unique method name; everything else stays an unresolved
//! [`Callee::Method`] / [`Callee::Path`], which the rules treat
//! leniently (no false positives from unresolved code).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::*;

/// Stable function identifier: `crate/Type::name` for methods,
/// `crate/file.rs/name` for free functions.
pub type FnKey = String;

/// What a call site resolved to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Callee {
    /// A workspace function.
    Fn(FnKey),
    /// An unresolved method call (receiver type, when inferred).
    Method {
        /// Method name.
        name: String,
        /// Inferred receiver base type, if any.
        recv_ty: Option<String>,
    },
    /// An unresolved path call (normalized segments).
    Path(Vec<String>),
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Resolution result.
    pub to: Callee,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// For method calls: whether the receiver is an owned local
    /// (`Some(true)`), a borrow — field, `self`, `&` param —
    /// (`Some(false)`), or not a method call (`None`). Unknown
    /// receivers default to owned (lenient).
    pub recv_owned: Option<bool>,
}

/// Shape of one `match` over a workspace enum.
#[derive(Clone, Debug)]
pub struct MatchRecord {
    /// Source position of the `match` keyword.
    pub line: usize,
    /// Column of the `match` keyword.
    pub col: usize,
    /// Inferred base type of the scrutinee, if any.
    pub scrutinee_ty: Option<String>,
    /// Qualified variant paths referenced by the arms (raw segments).
    pub arm_paths: Vec<Vec<String>>,
    /// True if any top-level arm pattern is `_`.
    pub has_wild: bool,
    /// True if any top-level arm pattern is a bare binding.
    pub has_binding: bool,
}

/// A `matches!(..)` invocation naming a workspace enum variant.
#[derive(Clone, Debug)]
pub struct MatchesMacroSite {
    /// Source line.
    pub line: usize,
    /// Source column.
    pub col: usize,
    /// The enum named in the pattern.
    pub enum_name: String,
}

/// Call edges made while a `Mutex` guard from `.lock()` is live.
#[derive(Clone, Debug)]
pub struct GuardScope {
    /// Line of the lock acquisition.
    pub line: usize,
    /// Calls made with the guard live.
    pub calls: Vec<Edge>,
}

/// A site relevant to a specific rule: (line, col, description).
pub type Site = (usize, usize, String);

/// Everything the rules need to know about one function.
#[derive(Debug)]
pub struct FnRecord {
    /// Stable identifier.
    pub key: FnKey,
    /// Workspace-relative file path.
    pub file: String,
    /// Owning crate directory name.
    pub crate_name: String,
    /// Impl self-type, when a method.
    pub self_ty: Option<String>,
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Column of the `fn` keyword.
    pub col: usize,
    /// Declared `pub` (with or without a restriction).
    pub is_pub: bool,
    /// Restricted visibility (`pub(crate)` / `pub(super)` / `pub(in ..)`).
    pub vis_restricted: bool,
    /// Receiver kind.
    pub self_kind: SelfKind,
    /// `&mut` params: `(param name, base type)`.
    pub mut_ref_params: Vec<(String, String)>,
    /// Test code (attribute or `#[cfg(test)]` nesting).
    pub is_test: bool,
    /// Types this fn is a declared mutation choke point for.
    pub mutator_of: Vec<String>,
    /// Taint families this fn roots (`lint:root(..)`).
    pub root_of: Vec<String>,
    /// All resolved call sites.
    pub calls: Vec<Edge>,
    /// Matches over workspace enums.
    pub matches: Vec<MatchRecord>,
    /// `matches!` sites naming delta enums.
    pub matches_macros: Vec<MatchesMacroSite>,
    /// Lock-guard scopes with the calls made inside them.
    pub guard_scopes: Vec<GuardScope>,
    /// `.unwrap()` / `.expect(..)` / panic-macro sites.
    pub panic_sites: Vec<Site>,
    /// `generation += ..` assignment sites.
    pub generation_bumps: Vec<Site>,
    /// HashMap/HashSet iteration and clock/RNG sites (R12 sinks).
    pub taint_sinks: Vec<Site>,
    /// True if the body calls `self.service(..)` / `self.service_mut(..)`.
    pub routes_service: bool,
}

/// Per-function metadata the reachability rules look up by key.
#[derive(Clone, Debug)]
pub struct FnMeta {
    /// Receiver kind.
    pub self_kind: SelfKind,
    /// Declared mutation choke point types.
    pub mutator_of: Vec<String>,
    /// File for diagnostics.
    pub file: String,
    /// Line for diagnostics.
    pub line: usize,
    /// Owning crate.
    pub crate_name: String,
    /// Function display name (`Type::name` or `name`).
    pub display: String,
}

/// The resolved workspace: symbol tables + one record per function.
#[derive(Default)]
pub struct Workspace {
    /// Enum name → declared variants.
    pub enums: BTreeMap<String, Vec<String>>,
    /// Struct name → field name → raw type text.
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
    /// Type name → crate that defines it.
    pub type_crate: BTreeMap<String, String>,
    /// All function records, in scan order.
    pub records: Vec<FnRecord>,
    /// Key → metadata for reachability rules.
    pub meta: BTreeMap<FnKey, FnMeta>,
    /// (type, method) → key.
    method_index: BTreeMap<(String, String), FnKey>,
    /// method name → keys (for unique-name fallback).
    method_by_name: BTreeMap<String, Vec<FnKey>>,
    /// (crate, fn name) → keys.
    free_index: BTreeMap<(String, String), Vec<FnKey>>,
    /// fn name → keys (for unique-name fallback).
    free_by_name: BTreeMap<String, Vec<FnKey>>,
    /// (type, method) → return type text.
    method_ret: BTreeMap<(String, String), String>,
    /// (crate, fn name) → return type text (first wins).
    free_ret: BTreeMap<(String, String), String>,
}

/// Methods whose result is "the same value" for inference purposes.
const PASS_THROUGH: &[&str] = &["clone", "as_ref", "as_mut", "borrow", "borrow_mut"];

/// Ubiquitous std method names excluded from the unique-name fallback:
/// even with one workspace definition, an unknown receiver is far more
/// likely to be a std container than the workspace type.
const COMMON_STD_METHODS: &[&str] = &[
    "new", "default", "insert", "get", "get_mut", "remove", "len", "is_empty", "push", "pop",
    "iter", "iter_mut", "into_iter", "clone", "contains", "contains_key", "clear", "sort",
    "sort_by", "sort_by_key", "join", "next", "lock", "unwrap", "expect", "map", "and_then",
    "entry", "extend", "drain", "retain", "keys", "values", "split", "trim", "to_string",
    "as_str", "as_ref", "take", "replace", "push_str", "starts_with", "ends_with", "write",
    "read", "flush", "send", "recv", "first", "last", "min", "max", "sum", "count", "collect",
    "filter", "chain", "rev", "zip", "fold", "any", "all", "find", "position", "binary_search",
];
/// Methods that unwrap one `Option`/`Result` layer.
const UNWRAPPING: &[&str] = &["unwrap", "expect", "unwrap_or_else", "unwrap_or_default", "into_inner"];
/// Constructor-shaped associated functions: `T::new(..) : T`.
const CONSTRUCTORS: &[&str] = &["new", "default", "build", "empty", "load", "open"];
/// Iteration methods that expose storage order (R12 sinks on
/// `HashMap`/`HashSet` receivers).
const ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "into_keys",
    "into_values", "retain",
];

/// Strips references and transparent wrappers (`Arc`/`Rc`/`Box`) from
/// a type text, returning the remaining text (`Option<..>`, `HashMap<..>`
/// and the like stay intact — their name is the interesting part).
pub fn peel_type(ty: &str) -> String {
    let mut t = ty.trim();
    loop {
        t = t.trim_start_matches('&').trim_start();
        for kw in ["mut ", "dyn ", "'"] {
            if let Some(rest) = t.strip_prefix(kw) {
                // Lifetimes: drop the whole `'a ` token.
                t = if kw == "'" {
                    rest.split_once(' ').map(|(_, r)| r).unwrap_or("")
                } else {
                    rest
                };
            }
        }
        let mut peeled = false;
        for w in ["Arc", "Rc", "Box"] {
            if let Some(rest) = t.strip_prefix(w) {
                if let Some(inner) = rest.strip_prefix('<') {
                    t = inner.strip_suffix('>').unwrap_or(inner);
                    peeled = true;
                }
            }
        }
        if !peeled {
            return t.trim().to_string();
        }
    }
}

/// The head name of a peeled type (`HashMap<K,V>` → `HashMap`).
pub fn type_head(ty: &str) -> String {
    let t = peel_type(ty);
    let end = t
        .char_indices()
        .find(|&(_, c)| !(c.is_alphanumeric() || c == '_' || c == ':'))
        .map_or(t.len(), |(i, _)| i);
    t[..end].rsplit("::").next().unwrap_or("").to_string()
}

/// First generic argument of a type text (`Option<Arc<T>>` → `Arc<T>`).
fn generic_inner(ty: &str) -> Option<String> {
    let t = peel_type(ty);
    let open = t.find('<')?;
    let inner = t.get(open + 1..t.len().checked_sub(1)?)?;
    // First top-level comma-separated argument.
    let mut depth = 0;
    for (i, c) in inner.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => return Some(inner[..i].trim().to_string()),
            _ => {}
        }
    }
    Some(inner.trim().to_string())
}

/// Unwraps one `Option`/`Result` layer if present.
fn unwrap_once(ty: &str) -> String {
    let head = type_head(ty);
    if head == "Option" || head == "Result" {
        generic_inner(ty).unwrap_or_default()
    } else {
        ty.to_string()
    }
}

/// Maps a `hive_foo_bar` path segment to the crate directory `foo-bar`.
fn crate_of_seg(seg: &str) -> Option<String> {
    seg.strip_prefix("hive_").map(|rest| rest.replace('_', "-"))
}

impl Workspace {
    /// Builds the full workspace model from parsed files.
    pub fn build(files: &[File]) -> Workspace {
        let mut ws = Workspace::default();
        // Pass 1: symbol tables.
        for file in files {
            collect_symbols(&mut ws, file, &file.items);
        }
        // Pass 2: function records with resolution.
        for file in files {
            let imports = collect_imports(&file.items);
            let mut ctx = FileCtx { ws: &ws, file, imports };
            let mut records = Vec::new();
            file.for_each_fn(&mut |self_ty, f, is_test| {
                records.push(ctx.digest_fn(self_ty, f, is_test));
            });
            // Const/static initializers: panic sites count for R2.
            collect_const_panics(&file.path, &file.items, &mut records, file);
            ws.records.extend(records);
        }
        for r in &ws.records {
            let display = match &r.self_ty {
                Some(t) => format!("{t}::{}", r.name),
                None => r.name.clone(),
            };
            ws.meta.insert(
                r.key.clone(),
                FnMeta {
                    self_kind: r.self_kind,
                    mutator_of: r.mutator_of.clone(),
                    file: r.file.clone(),
                    line: r.line,
                    crate_name: r.crate_name.clone(),
                    display,
                },
            );
        }
        ws
    }

    /// Key for a function in `file` (methods by type, free fns by file).
    pub fn key_for(file: &File, self_ty: Option<&str>, name: &str) -> FnKey {
        match self_ty {
            Some(t) => format!("{}/{}::{}", file.crate_name, t, name),
            None => format!("{}/{}/{}", file.crate_name, file.path, name),
        }
    }

    /// Functions from which any `targets` member is reachable
    /// (reverse closure; includes the targets).
    pub fn reach_reverse(&self, targets: &BTreeSet<FnKey>) -> BTreeSet<FnKey> {
        // callee → callers
        let mut callers: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for r in &self.records {
            for e in &r.calls {
                if let Callee::Fn(k) = &e.to {
                    callers.entry(k.as_str()).or_default().push(r.key.as_str());
                }
            }
        }
        let mut seen: BTreeSet<FnKey> = targets.clone();
        let mut work: Vec<&str> = targets.iter().map(String::as_str).collect();
        while let Some(k) = work.pop() {
            if let Some(cs) = callers.get(k) {
                for &c in cs {
                    if seen.insert(c.to_string()) {
                        work.push(c);
                    }
                }
            }
        }
        seen
    }

    /// Functions reachable from `roots` (forward closure, including the
    /// roots), with a parent map for path reconstruction.
    pub fn reach_forward(
        &self,
        roots: &BTreeSet<FnKey>,
    ) -> (BTreeSet<FnKey>, BTreeMap<FnKey, FnKey>) {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for r in &self.records {
            let slot = adj.entry(r.key.as_str()).or_default();
            for e in &r.calls {
                if let Callee::Fn(k) = &e.to {
                    slot.push(k.as_str());
                }
            }
        }
        let mut seen: BTreeSet<FnKey> = roots.clone();
        let mut parent: BTreeMap<FnKey, FnKey> = BTreeMap::new();
        let mut queue: Vec<&str> = roots.iter().map(String::as_str).collect();
        let mut qi = 0;
        while qi < queue.len() {
            let k = queue[qi];
            qi += 1;
            if let Some(outs) = adj.get(k) {
                for &n in outs {
                    if seen.insert(n.to_string()) {
                        parent.insert(n.to_string(), k.to_string());
                        queue.push(n);
                    }
                }
            }
        }
        (seen, parent)
    }

    /// Human-readable call chain from a root down to `key`.
    pub fn chain_to(&self, parent: &BTreeMap<FnKey, FnKey>, key: &str) -> String {
        let mut chain = vec![key.to_string()];
        let mut cur = key.to_string();
        while let Some(p) = parent.get(&cur) {
            chain.push(p.clone());
            cur = p.clone();
            if chain.len() > 24 {
                break;
            }
        }
        chain.reverse();
        let names: Vec<String> = chain
            .iter()
            .map(|k| self.meta.get(k).map_or_else(|| k.clone(), |m| m.display.clone()))
            .collect();
        names.join(" -> ")
    }
}

fn collect_symbols(ws: &mut Workspace, file: &File, items: &[Item]) {
    for item in items {
        match item {
            Item::Struct(s) => {
                ws.structs
                    .entry(s.name.clone())
                    .or_default()
                    .extend(s.fields.iter().cloned());
                ws.type_crate.insert(s.name.clone(), file.crate_name.clone());
            }
            Item::Enum(e) => {
                ws.enums.insert(e.name.clone(), e.variants.clone());
                ws.type_crate.insert(e.name.clone(), file.crate_name.clone());
            }
            Item::Impl(imp) => {
                ws.type_crate.entry(imp.self_ty.clone()).or_insert_with(|| file.crate_name.clone());
                for f in &imp.fns {
                    let key = Workspace::key_for(file, Some(&imp.self_ty), &f.name);
                    ws.method_index.insert((imp.self_ty.clone(), f.name.clone()), key.clone());
                    ws.method_by_name.entry(f.name.clone()).or_default().push(key);
                    if let Some(ret) = &f.ret {
                        ws.method_ret.insert((imp.self_ty.clone(), f.name.clone()), ret.clone());
                    }
                }
            }
            Item::Fn(f) => {
                let key = Workspace::key_for(file, None, &f.name);
                ws.free_index
                    .entry((file.crate_name.clone(), f.name.clone()))
                    .or_default()
                    .push(key.clone());
                ws.free_by_name.entry(f.name.clone()).or_default().push(key);
                if let Some(ret) = &f.ret {
                    ws.free_ret
                        .entry((file.crate_name.clone(), f.name.clone()))
                        .or_insert_with(|| ret.clone());
                }
            }
            Item::Mod(m) => collect_symbols(ws, file, &m.items),
            _ => {}
        }
    }
}

/// `alias → full path` from every `use` in the file (modules included).
fn collect_imports(items: &[Item]) -> BTreeMap<String, Vec<String>> {
    let mut map = BTreeMap::new();
    fn rec(items: &[Item], map: &mut BTreeMap<String, Vec<String>>) {
        for item in items {
            match item {
                Item::Use(u) => {
                    for (alias, path) in &u.imports {
                        map.insert(alias.clone(), path.clone());
                    }
                }
                Item::Mod(m) => rec(&m.items, map),
                _ => {}
            }
        }
    }
    rec(items, &mut map);
    map
}

/// R2 must also cover const/static initializers, which live outside any
/// fn: collect their panic sites into a synthetic record per item.
fn collect_const_panics(path: &str, items: &[Item], out: &mut Vec<FnRecord>, file: &File) {
    for item in items {
        match item {
            Item::Const(c) => {
                if let Some(init) = &c.init {
                    let mut sites = Vec::new();
                    init.walk(&mut |e| record_panic_site(e, &mut sites));
                    if !sites.is_empty() {
                        out.push(FnRecord {
                            key: format!("{}/{}/const {}", file.crate_name, path, c.name),
                            file: path.to_string(),
                            crate_name: file.crate_name.clone(),
                            self_ty: None,
                            name: c.name.clone(),
                            line: sites[0].0,
                            col: sites[0].1,
                            is_pub: false,
                            vis_restricted: false,
                            self_kind: SelfKind::None,
                            mut_ref_params: Vec::new(),
                            is_test: false,
                            mutator_of: Vec::new(),
                            root_of: Vec::new(),
                            calls: Vec::new(),
                            matches: Vec::new(),
                            matches_macros: Vec::new(),
                            guard_scopes: Vec::new(),
                            panic_sites: sites,
                            generation_bumps: Vec::new(),
                            taint_sinks: Vec::new(),
                            routes_service: false,
                        });
                    }
                }
            }
            Item::Mod(m) if !m.is_test => collect_const_panics(path, &m.items, out, file),
            _ => {}
        }
    }
}

fn record_panic_site(e: &Expr, out: &mut Vec<Site>) {
    match e {
        Expr::MethodCall { method, line, col, .. } if method == "unwrap" || method == "expect" => {
            out.push((*line, *col, format!(".{method}(..)")));
        }
        Expr::Macro { name, line, col, .. }
            if name == "panic" || name == "unreachable" || name == "todo" =>
        {
            out.push((*line, *col, format!("{name}!(..)")));
        }
        _ => {}
    }
}

/// Per-file digestion context.
struct FileCtx<'a> {
    ws: &'a Workspace,
    file: &'a File,
    imports: BTreeMap<String, Vec<String>>,
}

/// Local name → type text, seeded from params and grown across `let`s.
type TypeEnv = BTreeMap<String, String>;

impl<'a> FileCtx<'a> {
    fn digest_fn(&mut self, self_ty: Option<&str>, f: &FnItem, is_test: bool) -> FnRecord {
        let mut rec = FnRecord {
            key: Workspace::key_for(self.file, self_ty, &f.name),
            file: self.file.path.clone(),
            crate_name: self.file.crate_name.clone(),
            self_ty: self_ty.map(str::to_string),
            name: f.name.clone(),
            line: f.line,
            col: f.col,
            is_pub: f.is_pub,
            vis_restricted: f.vis_restricted,
            self_kind: f.self_kind,
            mut_ref_params: f
                .params
                .iter()
                .filter(|p| p.ty.trim_start().starts_with("&mut"))
                .map(|p| (p.name.clone(), type_head(&p.ty)))
                .collect(),
            is_test,
            mutator_of: f.mutator_of.clone(),
            root_of: f.root_of.clone(),
            calls: Vec::new(),
            matches: Vec::new(),
            matches_macros: Vec::new(),
            guard_scopes: Vec::new(),
            panic_sites: Vec::new(),
            generation_bumps: Vec::new(),
            taint_sinks: Vec::new(),
            routes_service: false,
        };
        let mut env: TypeEnv = BTreeMap::new();
        if let Some(t) = self_ty {
            env.insert("self".to_string(), t.to_string());
        }
        for p in &f.params {
            if !p.ty.is_empty() {
                env.insert(p.name.clone(), p.ty.clone());
            }
        }
        if let Some(body) = &f.body {
            let mut guards: Vec<GuardScope> = Vec::new();
            self.stmts(body, &mut env, &mut rec, &mut guards, 0);
            rec.guard_scopes.extend(guards.into_iter().filter(|g| !g.calls.is_empty()));
        }
        rec
    }

    /// Walks a top-level statement list (fn body) with a fresh
    /// live-guard stack.
    fn stmts(
        &self,
        list: &[Expr],
        env: &mut TypeEnv,
        rec: &mut FnRecord,
        guards: &mut Vec<GuardScope>,
        _live_from: usize,
    ) {
        let mut live: Vec<usize> = Vec::new();
        self.stmts_with_live(list, env, rec, guards, &mut live);
    }

    /// Digests one statement/expression with guard tracking. `live`
    /// indexes the guards currently held in this scope.
    fn expr_in_scope(
        &self,
        e: &Expr,
        env: &mut TypeEnv,
        rec: &mut FnRecord,
        guards: &mut Vec<GuardScope>,
        live: &mut Vec<usize>,
    ) {
        match e {
            Expr::Let { pats, ty, init, els, line, .. } => {
                if let Some(init) = init {
                    self.expr_in_scope(init, env, rec, guards, live);
                    // Guard acquisition?
                    if lock_guard_init(init) {
                        let gi = guards.len();
                        guards.push(GuardScope { line: *line, calls: Vec::new() });
                        live.push(gi);
                        for p in pats {
                            for name in pat_bindings(p) {
                                env.insert(name, "#guard".to_string());
                            }
                        }
                        if let Some(els) = els {
                            self.stmts(els, env, rec, guards, 0);
                        }
                        return;
                    }
                    // Bind inferred types.
                    let it = ty.clone().or_else(|| self.infer(env, init));
                    if let Some(t) = it {
                        bind_pats(pats, &t, env);
                    }
                } else if let Some(t) = ty {
                    bind_pats(pats, t, env);
                }
                if let Some(els) = els {
                    self.stmts(els, env, rec, guards, 0);
                }
            }
            Expr::Block(stmts) => {
                let depth = live.len();
                let mut inner_env = env.clone();
                self.stmts_with_live(stmts, &mut inner_env, rec, guards, live);
                live.truncate(depth);
            }
            Expr::If { cond, then, els } => {
                let depth = live.len();
                let mut then_env = env.clone();
                self.let_cond_scope(cond, env, &mut then_env, rec, guards, live);
                self.stmts_with_live(then, &mut then_env, rec, guards, live);
                live.truncate(depth);
                if let Some(els) = els {
                    self.expr_in_scope(els, env, rec, guards, live);
                }
            }
            Expr::ForLoop { pat, iter, body, line } => {
                self.expr_in_scope(iter, env, rec, guards, live);
                // R12 sink: iterating a HashMap/HashSet directly.
                if let Some(t) = self.infer(env, deref(iter)) {
                    let head = type_head(&t);
                    if head == "HashMap" || head == "HashSet" {
                        rec.taint_sinks.push((
                            *line,
                            1,
                            format!("for-loop over {head} (storage order)"),
                        ));
                    }
                }
                let _ = pat;
                let depth = live.len();
                let mut benv = env.clone();
                self.stmts_with_live(body, &mut benv, rec, guards, live);
                live.truncate(depth);
            }
            Expr::While { cond, body } => {
                let depth = live.len();
                let mut benv = env.clone();
                if let Some(c) = cond {
                    self.let_cond_scope(c, env, &mut benv, rec, guards, live);
                }
                self.stmts_with_live(body, &mut benv, rec, guards, live);
                live.truncate(depth);
            }
            Expr::Match { scrutinee, arms, line, col } => {
                self.expr_in_scope(scrutinee, env, rec, guards, live);
                self.record_match(scrutinee, arms, *line, *col, env, rec);
                // Guard-yielding match (the poisoned-lock pattern) is
                // handled at the Let level; arms here are just walked.
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        self.expr_in_scope(g, env, rec, guards, live);
                    }
                    let depth = live.len();
                    let mut aenv = env.clone();
                    if let Some(t) = self.infer(env, deref(scrutinee)) {
                        let unwrapped = unwrap_once(&t);
                        for p in &arm.pats {
                            bind_pats(std::slice::from_ref(p), &unwrapped, &mut aenv);
                        }
                    }
                    self.expr_in_scope(&arm.body, &mut aenv, rec, guards, live);
                    live.truncate(depth);
                }
            }
            Expr::Closure { body } => {
                let mut cenv = env.clone();
                self.expr_in_scope(body, &mut cenv, rec, guards, live);
            }
            Expr::Call { callee, args, line, col } => {
                record_panic_site(e, &mut rec.panic_sites);
                let edge = Edge {
                    to: self.resolve_path_call(callee, env),
                    line: *line,
                    col: *col,
                    recv_owned: None,
                };
                self.note_taint_for_edge(&edge, rec);
                for gi in live.iter() {
                    if let Some(g) = guards.get_mut(*gi) {
                        g.calls.push(edge.clone());
                    }
                }
                rec.calls.push(edge);
                self.expr_in_scope(callee, env, rec, guards, live);
                for a in args {
                    self.expr_in_scope(a, env, rec, guards, live);
                }
            }
            Expr::MethodCall { recv, method, args, line, col } => {
                let recv_ty = self.infer(env, deref(recv));
                let head = recv_ty.as_deref().map(type_head);
                // R7: facade routing.
                if (method == "service" || method == "service_mut") && is_self(recv) {
                    rec.routes_service = true;
                }
                // R12 sinks: storage-order iteration.
                if ITER_METHODS.contains(&method.as_str()) {
                    if let Some(h) = &head {
                        if h == "HashMap" || h == "HashSet" {
                            rec.taint_sinks.push((
                                *line,
                                *col,
                                format!(".{method}() on {h} (storage order)"),
                            ));
                        }
                    }
                }
                // Unique-name fallback only when the receiver type is
                // unknown: a *known* external type (HashMap, Vec, ...)
                // must not hijack a workspace method of the same name.
                let to = match head
                    .as_ref()
                    .and_then(|h| self.ws.method_index.get(&(h.clone(), method.clone())))
                {
                    Some(k) => Callee::Fn(k.clone()),
                    None if head.is_none() && !COMMON_STD_METHODS.contains(&method.as_str()) => {
                        match self.ws.method_by_name.get(method.as_str()) {
                            Some(ks) if ks.len() == 1 => Callee::Fn(ks[0].clone()),
                            _ => Callee::Method { name: method.clone(), recv_ty: None },
                        }
                    }
                    None => Callee::Method { name: method.clone(), recv_ty: head.clone() },
                };
                // `.unwrap()` / `.expect(..)` are panic sites only when
                // they do NOT resolve to a workspace method of that
                // name (e.g. a parser's own `expect`).
                if (method == "unwrap" || method == "expect") && !matches!(to, Callee::Fn(_)) {
                    rec.panic_sites.push((*line, *col, format!(".{method}(..)")));
                }
                let edge =
                    Edge { to, line: *line, col: *col, recv_owned: Some(self.recv_owned(recv, env)) };
                self.note_taint_for_edge(&edge, rec);
                for gi in live.iter() {
                    if let Some(g) = guards.get_mut(*gi) {
                        g.calls.push(edge.clone());
                    }
                }
                rec.calls.push(edge);
                // Calls inside args of a locked chain run under the
                // temporary guard: treat `x.lock().map(|g| ..)` args as
                // guarded.
                let chain_locked = chain_has_lock(recv);
                if chain_locked {
                    let gi = guards.len();
                    guards.push(GuardScope { line: *line, calls: Vec::new() });
                    live.push(gi);
                }
                self.expr_in_scope(recv, env, rec, guards, live);
                for a in args {
                    self.expr_in_scope(a, env, rec, guards, live);
                }
                if chain_locked {
                    live.pop();
                }
            }
            Expr::Macro { name, args, line, col } => {
                record_panic_site(e, &mut rec.panic_sites);
                if name == "matches" {
                    // Any pattern path naming a *declared* delta enum
                    // (`DeltaOp` or `*Delta`, resolved against the
                    // workspace enum table — not a hardcoded list).
                    let mut named: Option<String> = None;
                    for a in args {
                        a.walk(&mut |x| {
                            if let Expr::Path { segs, .. } = x {
                                for s in segs {
                                    if named.is_none()
                                        && (s == "DeltaOp" || s.ends_with("Delta"))
                                        && self.ws.enums.contains_key(s.as_str())
                                    {
                                        named = Some(s.clone());
                                    }
                                }
                            }
                        });
                    }
                    if let Some(enum_name) = named {
                        rec.matches_macros.push(MatchesMacroSite {
                            line: *line,
                            col: *col,
                            enum_name,
                        });
                    }
                }
                for a in args {
                    self.expr_in_scope(a, env, rec, guards, live);
                }
            }
            Expr::Assign { target, op, value, line, col } => {
                if op == "+=" && place_is_generation(target) {
                    rec.generation_bumps.push((*line, *col, "generation += ..".to_string()));
                }
                self.expr_in_scope(target, env, rec, guards, live);
                self.expr_in_scope(value, env, rec, guards, live);
            }
            Expr::Path { segs, line, col } => {
                // Bare path taint sinks (unseeded RNG constructors).
                if segs.last().is_some_and(|s| s == "thread_rng" || s == "from_entropy") {
                    rec.taint_sinks.push((*line, *col, format!("{}", segs.join("::"))));
                }
            }
            Expr::Ref { inner, .. } => self.expr_in_scope(inner, env, rec, guards, live),
            Expr::Field { base, .. } => self.expr_in_scope(base, env, rec, guards, live),
            Expr::Other(children) => {
                for c in children {
                    self.expr_in_scope(c, env, rec, guards, live);
                }
            }
            Expr::Lit => {}
        }
    }

    /// Walks a statement list sharing the caller's live-guard stack.
    /// A `drop(g)` statement on a guard binding releases the most
    /// recently acquired live guard.
    fn stmts_with_live(
        &self,
        list: &[Expr],
        env: &mut TypeEnv,
        rec: &mut FnRecord,
        guards: &mut Vec<GuardScope>,
        live: &mut Vec<usize>,
    ) {
        for stmt in list {
            if let Expr::Call { callee, args, .. } = stmt {
                let is_drop = matches!(
                    &**callee,
                    Expr::Path { segs, .. } if segs.len() == 1 && segs[0] == "drop"
                );
                if is_drop {
                    if let Some(Expr::Path { segs, .. }) = args.first() {
                        if segs.len() == 1
                            && env.get(segs[0].as_str()).is_some_and(|t| t == "#guard")
                            && !live.is_empty()
                        {
                            live.pop();
                            env.remove(segs[0].as_str());
                            continue;
                        }
                    }
                }
            }
            self.expr_in_scope(stmt, env, rec, guards, live);
        }
    }

    /// Handles an `if`/`while` condition: a `let` condition binds its
    /// pattern (and any lock guard) into the branch env only; a plain
    /// condition is walked normally.
    fn let_cond_scope(
        &self,
        cond: &Expr,
        env: &mut TypeEnv,
        branch_env: &mut TypeEnv,
        rec: &mut FnRecord,
        guards: &mut Vec<GuardScope>,
        live: &mut Vec<usize>,
    ) {
        if let Expr::Let { pats, init: Some(init), line, .. } = cond {
            self.expr_in_scope(init, env, rec, guards, live);
            if lock_guard_init(init) {
                let gi = guards.len();
                guards.push(GuardScope { line: *line, calls: Vec::new() });
                live.push(gi);
                for p in pats {
                    for name in pat_bindings(p) {
                        branch_env.insert(name, "#guard".to_string());
                    }
                }
            } else if let Some(t) = self.infer(env, init) {
                let unwrapped = unwrap_once(&t);
                bind_pats(pats, &peel_type(&unwrapped), branch_env);
            }
        } else {
            self.expr_in_scope(cond, env, rec, guards, live);
        }
    }

    fn record_match(
        &self,
        scrutinee: &Expr,
        arms: &[Arm],
        line: usize,
        col: usize,
        env: &TypeEnv,
        rec: &mut FnRecord,
    ) {
        let scrutinee_ty = self.infer(env, deref(scrutinee)).map(|t| type_head(&t));
        let mut arm_paths = Vec::new();
        let mut has_wild = false;
        let mut has_binding = false;
        for arm in arms {
            for p in &arm.pats {
                classify_pat(p, &mut arm_paths, &mut has_wild, &mut has_binding);
            }
        }
        // Only record matches that plausibly concern a workspace enum.
        let concerns_enum = scrutinee_ty.as_ref().is_some_and(|t| self.ws.enums.contains_key(t))
            || arm_paths
                .iter()
                .any(|p| p.iter().any(|s| self.ws.enums.contains_key(s)));
        if concerns_enum {
            rec.matches.push(MatchRecord { line, col, scrutinee_ty, arm_paths, has_wild, has_binding });
        }
    }

    /// Is the receiver an owned local (true) or a borrow (false)?
    /// Unknown names default to owned (lenient).
    fn recv_owned(&self, recv: &Expr, env: &TypeEnv) -> bool {
        match recv {
            Expr::Field { .. } => false,
            Expr::Ref { inner, .. } => self.recv_owned(inner, env),
            Expr::Path { segs, .. } if segs.len() == 1 => {
                if segs[0] == "self" {
                    return false;
                }
                match env.get(segs[0].as_str()) {
                    Some(t) => !t.trim_start().starts_with('&') && t != "#guard",
                    None => true,
                }
            }
            Expr::MethodCall { method, recv, .. } => {
                // A `&mut`-returning accessor chain is still a borrow.
                if let Some(t) = self.infer(env, deref(recv)) {
                    let head = type_head(&t);
                    if let Some(ret) = self.ws.method_ret.get(&(head, method.clone())) {
                        return !ret.trim_start().starts_with('&');
                    }
                }
                true
            }
            _ => true,
        }
    }

    /// Resolves a `Call` callee path to a workspace fn where possible.
    fn resolve_path_call(&self, callee: &Expr, _env: &TypeEnv) -> Callee {
        let Expr::Path { segs, .. } = callee else {
            return Callee::Path(Vec::new());
        };
        let mut segs: Vec<String> = segs.clone();
        // Normalize leading `crate`/`self`/`super` and import aliases.
        while segs
            .first()
            .is_some_and(|s| s == "crate" || s == "self" || s == "super")
        {
            segs.remove(0);
        }
        if let Some(first) = segs.first().cloned() {
            if let Some(full) = self.imports.get(&first) {
                let mut merged = full.clone();
                merged.extend(segs.into_iter().skip(1));
                segs = merged;
            }
        }
        while segs
            .first()
            .is_some_and(|s| s == "crate" || s == "self" || s == "super")
        {
            segs.remove(0);
        }
        if segs.is_empty() {
            return Callee::Path(segs);
        }
        // `Type::method(..)`.
        if segs.len() >= 2 {
            let ty = &segs[segs.len() - 2];
            let name = &segs[segs.len() - 1];
            if let Some(k) = self.ws.method_index.get(&(ty.clone(), name.clone())) {
                return Callee::Fn(k.clone());
            }
        }
        // `hive_other::path::f(..)` → free fn in that crate.
        let target_crate = segs
            .first()
            .and_then(|s| crate_of_seg(s))
            .unwrap_or_else(|| self.file.crate_name.clone());
        if let Some(name) = segs.last() {
            if let Some(ks) = self.ws.free_index.get(&(target_crate.clone(), name.clone())) {
                if ks.len() == 1 {
                    return Callee::Fn(ks[0].clone());
                }
                // Prefer the caller's own file on ambiguity.
                if let Some(k) = ks.iter().find(|k| k.contains(&self.file.path)) {
                    return Callee::Fn(k.clone());
                }
            }
            if segs.len() == 1 {
                if let Some(ks) = self.ws.free_by_name.get(name.as_str()) {
                    if ks.len() == 1 {
                        return Callee::Fn(ks[0].clone());
                    }
                }
            }
        }
        Callee::Path(segs)
    }

    /// Wall-clock and entropy sinks that live in unresolved call paths.
    fn note_taint_for_edge(&self, edge: &Edge, rec: &mut FnRecord) {
        if let Callee::Path(segs) = &edge.to {
            let flat = segs.join("::");
            for bad in ["Instant::now", "SystemTime::now", "RandomState::new", "thread_rng"] {
                if flat.ends_with(bad) || flat == *bad {
                    rec.taint_sinks.push((edge.line, edge.col, flat.clone()));
                    break;
                }
            }
        }
    }

    /// Infers the (peeled) type text of an expression, best-effort.
    fn infer(&self, env: &TypeEnv, e: &Expr) -> Option<String> {
        match e {
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    if let Some(t) = env.get(segs[0].as_str()) {
                        return Some(peel_type(t));
                    }
                }
                // Unit struct / enum constant path.
                let last = segs.last()?;
                if self.ws.structs.contains_key(last.as_str()) {
                    return Some(last.clone());
                }
                if segs.len() >= 2 {
                    let ty = &segs[segs.len() - 2];
                    if self.ws.enums.contains_key(ty.as_str()) {
                        return Some(ty.clone());
                    }
                }
                None
            }
            Expr::Ref { inner, .. } => self.infer(env, inner),
            Expr::Field { base, name, .. } => {
                let bt = self.infer(env, base)?;
                let head = type_head(&bt);
                let field_ty = self.ws.structs.get(&head)?.get(name.as_str())?;
                Some(peel_type(field_ty))
            }
            Expr::Call { callee, .. } => {
                let Expr::Path { segs, .. } = &**callee else { return None };
                if segs.len() >= 2 {
                    let ty = &segs[segs.len() - 2];
                    let name = &segs[segs.len() - 1];
                    if let Some(ret) = self.ws.method_ret.get(&(ty.clone(), name.clone())) {
                        return Some(peel_type(ret));
                    }
                    if (self.ws.structs.contains_key(ty.as_str())
                        || self.ws.type_crate.contains_key(ty.as_str()))
                        && (CONSTRUCTORS.contains(&name.as_str())
                            || name.starts_with("from_")
                            || name.starts_with("with_"))
                    {
                        return Some(ty.clone());
                    }
                    if self.ws.enums.contains_key(ty.as_str()) {
                        return Some(ty.clone()); // tuple-variant constructor
                    }
                }
                if segs.len() == 1 {
                    if let Some(ret) =
                        self.ws.free_ret.get(&(self.file.crate_name.clone(), segs[0].clone()))
                    {
                        return Some(peel_type(ret));
                    }
                }
                None
            }
            Expr::MethodCall { recv, method, .. } => {
                let rt = self.infer(env, deref(recv))?;
                if PASS_THROUGH.contains(&method.as_str()) {
                    return Some(rt);
                }
                if UNWRAPPING.contains(&method.as_str()) {
                    return Some(peel_type(&unwrap_once(&rt)));
                }
                let head = type_head(&rt);
                let ret = self.ws.method_ret.get(&(head, method.clone()))?;
                Some(peel_type(ret))
            }
            Expr::Other(children) => {
                // Struct literal: first child is the type path.
                if let Some(Expr::Path { segs, .. }) = children.first() {
                    let last = segs.last()?;
                    if self.ws.structs.contains_key(last.as_str()) {
                        return Some(last.clone());
                    }
                }
                None
            }
            Expr::If { then, .. } => then.last().and_then(|t| self.infer(env, t)),
            Expr::Block(stmts) => stmts.last().and_then(|t| self.infer(env, t)),
            _ => None,
        }
    }
}

/// Strips `&`/`*` layers to the underlying place expression.
fn deref(e: &Expr) -> &Expr {
    match e {
        Expr::Ref { inner, .. } => deref(inner),
        _ => e,
    }
}

fn is_self(e: &Expr) -> bool {
    matches!(deref(e), Expr::Path { segs, .. } if segs.len() == 1 && segs[0] == "self")
}

/// Does this initializer yield a live lock guard? Covers
/// `x.lock().unwrap()`-style chains (pass-through methods only) and
/// `match x.lock() { .. }` (the poisoned-guard recovery pattern).
fn lock_guard_init(e: &Expr) -> bool {
    fn chain_yields_guard(e: &Expr) -> bool {
        match e {
            Expr::MethodCall { method, recv, .. } => {
                if method == "lock" {
                    return true;
                }
                if UNWRAPPING.contains(&method.as_str()) {
                    return chain_yields_guard(recv);
                }
                false
            }
            _ => false,
        }
    }
    match e {
        Expr::Match { scrutinee, .. } => chain_yields_guard(scrutinee),
        _ => chain_yields_guard(e),
    }
}

/// Does any receiver link of this chain call `.lock()`?
fn chain_has_lock(e: &Expr) -> bool {
    match e {
        Expr::MethodCall { method, recv, .. } => method == "lock" || chain_has_lock(recv),
        _ => false,
    }
}

/// All binding names introduced by a pattern.
fn pat_bindings(p: &Pat) -> Vec<String> {
    let mut out = Vec::new();
    fn rec(p: &Pat, out: &mut Vec<String>) {
        match p {
            Pat::Binding(n) => out.push(n.clone()),
            Pat::Path { args, .. } => {
                for a in args {
                    rec(a, out);
                }
            }
            Pat::Tuple(ps) => {
                for a in ps {
                    rec(a, out);
                }
            }
            Pat::Ref(inner) => rec(inner, out),
            _ => {}
        }
    }
    rec(p, &mut out);
    out
}

/// Binds pattern names against an inferred initializer type: plain
/// bindings get the type; `Some(x)` / `Ok(x)` bindings get the type
/// with one `Option`/`Result` layer removed.
fn bind_pats(pats: &[Pat], ty: &str, env: &mut TypeEnv) {
    for p in pats {
        match p {
            Pat::Binding(n) => {
                env.insert(n.clone(), ty.to_string());
            }
            Pat::Ref(inner) => bind_pats(std::slice::from_ref(&**inner), ty, env),
            Pat::Path { segs, args } => {
                let unwraps = segs
                    .last()
                    .is_some_and(|s| s == "Some" || s == "Ok");
                if unwraps && args.len() == 1 {
                    if let Pat::Binding(n) = &args[0] {
                        env.insert(n.clone(), peel_type(&unwrap_once(ty)));
                    }
                }
            }
            _ => {}
        }
    }
}

/// Is the assignment target `..generation`?
fn place_is_generation(e: &Expr) -> bool {
    match e {
        Expr::Field { name, .. } => name == "generation",
        Expr::Path { segs, .. } => segs.last().is_some_and(|s| s == "generation"),
        Expr::Other(children) => children.first().is_some_and(place_is_generation),
        _ => false,
    }
}

fn classify_pat(
    p: &Pat,
    arm_paths: &mut Vec<Vec<String>>,
    has_wild: &mut bool,
    has_binding: &mut bool,
) {
    match p {
        Pat::Wild => *has_wild = true,
        Pat::Binding(_) => *has_binding = true,
        Pat::Path { segs, .. } => arm_paths.push(segs.clone()),
        Pat::Ref(inner) => classify_pat(inner, arm_paths, has_wild, has_binding),
        _ => {}
    }
}
