//! Item/expression-level AST for the workspace analyzer.
//!
//! Deliberately smaller than the language: the parser is tolerant and
//! folds everything the rules don't inspect (operator soup, generics,
//! trait bounds) into [`Expr::Other`] nodes that still carry their
//! sub-expressions, so call/match/lock structure survives even where
//! the grammar is approximated.

/// One parsed source file.
#[derive(Debug, Default)]
pub struct File {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Directory name of the owning crate under `crates/` (e.g. `core`).
    pub crate_name: String,
    /// Top-level (and recursively, module-level) items.
    pub items: Vec<Item>,
}

/// A top-level or module-level item.
#[derive(Debug)]
pub enum Item {
    /// Free function or method (when inside [`Item::Impl`]).
    Fn(FnItem),
    /// Struct definition with named-field types.
    Struct(StructItem),
    /// Enum definition with variant names.
    Enum(EnumItem),
    /// `impl Type { .. }` / `impl Trait for Type { .. }` block.
    Impl(ImplBlock),
    /// Inline `mod name { .. }`.
    Mod(ModItem),
    /// `use path::to::Thing as Alias;`
    Use(UseItem),
    /// `const` / `static` with a parsed initializer (R2 coverage).
    Const(ConstItem),
}

/// How a method takes `self`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelfKind {
    /// Free function, no receiver.
    None,
    /// `&self`
    Ref,
    /// `&mut self`
    RefMut,
    /// `self` / `mut self`
    Owned,
}

/// One function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Binding name (pattern params are flattened to `_`).
    pub name: String,
    /// Raw type text, tokens joined (e.g. `&mut TripleStore`).
    pub ty: String,
}

/// A function item (free or method).
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// `pub` (any visibility restriction counts as pub for the rules).
    pub is_pub: bool,
    /// Restricted visibility: `pub(crate)` / `pub(super)` / `pub(in ..)`.
    /// R7 skips these — a crate-internal helper is not part of the
    /// externally callable service surface.
    pub vis_restricted: bool,
    /// 1-based position of the `fn` keyword.
    pub line: usize,
    /// 1-based column of the `fn` keyword.
    pub col: usize,
    /// Receiver kind.
    pub self_kind: SelfKind,
    /// Non-self parameters.
    pub params: Vec<Param>,
    /// Raw return-type text, if any.
    pub ret: Option<String>,
    /// Body statements; `None` for body-less trait methods.
    pub body: Option<Vec<Expr>>,
    /// True when carrying `#[test]` or nested under `#[cfg(test)]`.
    pub is_test: bool,
    /// Types named in a `lint:mutator(..)` marker on this function.
    pub mutator_of: Vec<String>,
    /// Taint families from a `lint:root(..)` marker on this function.
    pub root_of: Vec<String>,
}

/// A struct definition (named fields only; tuple structs keep indices
/// as field names `"0"`, `"1"`, …).
#[derive(Debug)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// `(field name, raw type text)` pairs.
    pub fields: Vec<(String, String)>,
}

/// An enum definition.
#[derive(Debug)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
    /// Source line of the `enum` keyword.
    pub line: usize,
}

/// An `impl` block.
#[derive(Debug)]
pub struct ImplBlock {
    /// Base name of the self type (`Hive` from `impl Hive`, also from
    /// `impl Trait for Hive`).
    pub self_ty: String,
    /// Methods and associated functions.
    pub fns: Vec<FnItem>,
}

/// An inline module.
#[derive(Debug)]
pub struct ModItem {
    /// Module name.
    pub name: String,
    /// True for `#[cfg(test)]` modules — their fns are test code.
    pub is_test: bool,
    /// Items inside the module.
    pub items: Vec<Item>,
}

/// A `use` declaration, flattened: one entry per imported leaf.
#[derive(Debug)]
pub struct UseItem {
    /// `(alias-or-leaf-name, full path segments)` pairs.
    pub imports: Vec<(String, Vec<String>)>,
}

/// A `const` / `static` item.
#[derive(Debug)]
pub struct ConstItem {
    /// Item name.
    pub name: String,
    /// Parsed initializer, when present.
    pub init: Option<Expr>,
}

/// An expression (statements are expressions too — `let` included).
#[derive(Debug)]
pub enum Expr {
    /// `a::b::c` path (single idents included).
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Source line.
        line: usize,
        /// Source column.
        col: usize,
    },
    /// `callee(args)` where callee is usually a path.
    Call {
        /// Called expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
        /// Source column.
        col: usize,
    },
    /// `recv.method(args)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line of the method name.
        line: usize,
        /// Source column of the method name.
        col: usize,
    },
    /// `base.field` / `base.0`.
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name (tuple indices as digits).
        name: String,
        /// Source line.
        line: usize,
        /// Source column.
        col: usize,
    },
    /// `name!(args)` macro invocation (args parsed best-effort).
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Best-effort parsed argument expressions.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
        /// Source column.
        col: usize,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Matched expression.
        scrutinee: Box<Expr>,
        /// Arms in order.
        arms: Vec<Arm>,
        /// Source line of `match`.
        line: usize,
        /// Source column of `match`.
        col: usize,
    },
    /// `&expr` / `&mut expr`.
    Ref {
        /// True for `&mut`.
        is_mut: bool,
        /// Referenced expression.
        inner: Box<Expr>,
    },
    /// `let pat(:ty)? = init;` statement or `if let` condition.
    Let {
        /// Top-level pattern alternatives.
        pats: Vec<Pat>,
        /// Explicit type annotation text.
        ty: Option<String>,
        /// Initializer.
        init: Option<Box<Expr>>,
        /// `let .. else { }` — diverging fallback block.
        els: Option<Vec<Expr>>,
        /// Source line of `let`.
        line: usize,
        /// Source column of `let`.
        col: usize,
    },
    /// `{ stmts }`.
    Block(Vec<Expr>),
    /// `if cond { then } else { els }` (cond may be a `Let`).
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then-block statements.
        then: Vec<Expr>,
        /// Else branch (a `Block` or nested `If`).
        els: Option<Box<Expr>>,
    },
    /// `for pat in iter { body }`.
    ForLoop {
        /// Loop pattern (flattened).
        pat: Vec<Pat>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body statements.
        body: Vec<Expr>,
        /// Source line of `for`.
        line: usize,
    },
    /// `while cond { body }` / `loop { body }` (cond None for `loop`).
    While {
        /// Condition, if any.
        cond: Option<Box<Expr>>,
        /// Body statements.
        body: Vec<Expr>,
    },
    /// `|args| body` closure (body attributed to the enclosing fn).
    Closure {
        /// Closure body.
        body: Box<Expr>,
    },
    /// `lhs op= rhs` assignment; `op` is `=` or a compound op text.
    Assign {
        /// Assignment target.
        target: Box<Expr>,
        /// Operator text (`=`, `+=`, …).
        op: String,
        /// Assigned value.
        value: Box<Expr>,
        /// Source line of the operator.
        line: usize,
        /// Source column of the operator.
        col: usize,
    },
    /// Literal (contents opaque).
    Lit,
    /// Anything else, with child expressions preserved for traversal.
    Other(Vec<Expr>),
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// `|`-separated top-level pattern alternatives.
    pub pats: Vec<Pat>,
    /// Guard expression after `if`, when present.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
    /// Source line of the arm's first pattern token.
    pub line: usize,
}

/// A (top-level) pattern, structure kept only as deep as the rules need.
#[derive(Debug)]
pub enum Pat {
    /// `_`
    Wild,
    /// `..`
    Rest,
    /// Plain binding (`x`, `mut x`, `ref x`).
    Binding(String),
    /// Path pattern, optionally with payload sub-patterns
    /// (`Ok(g)`, `DbDelta::Follow { .. }`).
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Payload sub-patterns (tuple/struct fields, flattened).
        args: Vec<Pat>,
    },
    /// `(a, b)` tuple pattern.
    Tuple(Vec<Pat>),
    /// `&pat` / `&mut pat`.
    Ref(Box<Pat>),
    /// Literal or anything unmodeled.
    Other,
}

impl Expr {
    /// Source position of this node, when it carries one.
    pub fn pos(&self) -> Option<(usize, usize)> {
        match self {
            Expr::Path { line, col, .. }
            | Expr::Call { line, col, .. }
            | Expr::MethodCall { line, col, .. }
            | Expr::Field { line, col, .. }
            | Expr::Macro { line, col, .. }
            | Expr::Match { line, col, .. }
            | Expr::Let { line, col, .. }
            | Expr::Assign { line, col, .. } => Some((*line, *col)),
            Expr::ForLoop { line, .. } => Some((*line, 1)),
            _ => None,
        }
    }

    /// Visits this expression and all descendants, pre-order.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        let mut kids: Vec<&Expr> = Vec::new();
        match self {
            Expr::Path { .. } | Expr::Lit => {}
            Expr::Call { callee, args, .. } => {
                kids.push(callee);
                kids.extend(args.iter());
            }
            Expr::MethodCall { recv, args, .. } => {
                kids.push(recv);
                kids.extend(args.iter());
            }
            Expr::Field { base, .. } => kids.push(base),
            Expr::Macro { args, .. } => kids.extend(args.iter()),
            Expr::Match { scrutinee, arms, .. } => {
                kids.push(scrutinee);
                for a in arms {
                    if let Some(g) = &a.guard {
                        kids.push(g);
                    }
                    kids.push(&a.body);
                }
            }
            Expr::Ref { inner, .. } => kids.push(inner),
            Expr::Let { init, els, .. } => {
                if let Some(i) = init {
                    kids.push(i);
                }
                if let Some(e) = els {
                    kids.extend(e.iter());
                }
            }
            Expr::Block(stmts) => kids.extend(stmts.iter()),
            Expr::If { cond, then, els } => {
                kids.push(cond);
                kids.extend(then.iter());
                if let Some(e) = els {
                    kids.push(e);
                }
            }
            Expr::ForLoop { iter, body, .. } => {
                kids.push(iter);
                kids.extend(body.iter());
            }
            Expr::While { cond, body } => {
                if let Some(c) = cond {
                    kids.push(c);
                }
                kids.extend(body.iter());
            }
            Expr::Closure { body } => kids.push(body),
            Expr::Assign { target, value, .. } => {
                kids.push(target);
                kids.push(value);
            }
            Expr::Other(children) => kids.extend(children.iter()),
        }
        for k in kids {
            k.walk(f);
        }
    }
}

impl File {
    /// Visits every function in the file (free, impl, and nested in
    /// modules), with the impl self-type (if any) and an is-test flag
    /// that accounts for `#[cfg(test)]` module nesting.
    pub fn for_each_fn<'a>(&'a self, f: &mut dyn FnMut(Option<&'a str>, &'a FnItem, bool)) {
        fn items<'a>(
            list: &'a [Item],
            in_test: bool,
            f: &mut dyn FnMut(Option<&'a str>, &'a FnItem, bool),
        ) {
            for item in list {
                match item {
                    Item::Fn(func) => f(None, func, in_test || func.is_test),
                    Item::Impl(imp) => {
                        for func in &imp.fns {
                            f(Some(&imp.self_ty), func, in_test || func.is_test);
                        }
                    }
                    Item::Mod(m) => items(&m.items, in_test || m.is_test, f),
                    _ => {}
                }
            }
        }
        items(&self.items, false, f)
    }
}
