// Fixture: R2 no-panic-paths must flag the unwrap on line 6 and the
// panic! on line 7, but nothing in the comment, string, or test module.
pub fn read(map: &std::collections::HashMap<u32, u32>) -> u32 {
    // .unwrap() in a comment is fine
    let s = "panic! in a string is fine";
    let v = map.get(&1).unwrap();
    panic!("boom {s} {v}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
