// Fixture: R6 no-raw-threads must flag the spawn on line 5 and the
// scope on line 10; "thread::spawn" in this comment stays silent.
pub fn fan_out(n: u32) -> u32 {
    let handle =
        std::thread::spawn(move || n);
    let base = match handle.join() {
        Ok(v) => v,
        Err(_) => 0,
    };
    std::thread::scope(|_s| base + 1)
}
