//! R7 fixture (fail): service entries that bypass the instrumented
//! choke point and hit the substrate directly.
impl Hive {
    pub fn search(&self, user: UserId, query: &str) -> Vec<SearchHit> {
        discover::search(&self.db, query)
    }

    pub fn check_in(&mut self, user: UserId, session: SessionId) -> Result<()> {
        self.db.check_in(user, session)
    }
}
