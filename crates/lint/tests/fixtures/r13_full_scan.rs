//! R13 fixture: service code iterating the whole activity log instead
//! of planning the window through the typed index queries.

pub fn trending(db: &HiveDb) -> usize {
    db.activity_log().iter().filter(|r| r.user.0 > 0).count()
}

pub fn digest(db: &HiveDb) -> usize {
    let mut n = 0;
    for rec in db.activity_log() {
        n += rec.user.0 as usize;
    }
    n
}

pub fn window(db: &HiveDb, from: Timestamp, to: Timestamp) -> usize {
    db.activities_between(from, to).len()
}

pub fn folded(db: &HiveDb) -> usize {
    // lint:allow(no-full-scan) -- fixture's one sanctioned fold
    db.activity_log().iter().count()
}

pub fn catalogued(db: &HiveDb) -> usize {
    // A string mention of "in db.activity_log()" must not fire.
    let label = "scan in db.activity_log() retired";
    label.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_never_fire() {
        let db = HiveDb::new();
        assert_eq!(db.activity_log().iter().count(), 0);
    }
}
