// Fixture: every forbidden token below carries a lint:allow escape
// hatch, so the file must produce zero diagnostics.
pub fn waived(v: Option<u32>) -> u32 {
    let t = std::time::Instant::now(); // lint:allow(deterministic-time)
    // lint:allow(no-stray-io)
    println!("{t:?}");
    let h = std::thread::spawn(|| 0u32); // lint:allow(no-raw-threads)
    drop(h);
    v.unwrap() // lint:allow(no-panic-paths)
}
