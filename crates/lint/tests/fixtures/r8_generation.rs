//! R8 fixture: a generation counter bumped outside the delta-log API.

pub struct Cache {
    generation: u64,
}

impl Cache {
    pub fn touch(&mut self) {
        self.generation += 1;
    }

    pub fn touch_compact(&mut self) {
        self.generation+=1;
    }

    pub fn bump_logged(&mut self) {
        self.generation += 1; // lint:allow(delta-log) -- fixture's one legal bump
    }

    pub fn regenerate(&mut self) {
        // An identifier merely *ending* in "generation" must not fire.
        let mut regeneration = 0u64;
        regeneration += 1;
        self.generation = regeneration; // assignment, not a bump: no delta skipped
    }
}
