//! Fixture: a library root without `#![forbid(unsafe_code)]` — R5
//! forbid-unsafe must flag line 1.

pub fn noop() {}
