// Fixture: R3 deterministic-time must flag the wall-clock read on
// line 4.
pub fn now_ms() -> u128 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).map(|d| d.as_millis()).unwrap_or(0)
}
