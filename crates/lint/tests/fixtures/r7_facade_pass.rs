//! R7 fixture (pass): every service entry routes through the
//! instrumented choke point; plumbing names and a `lint:allow` waiver
//! stay silent.
impl Hive {
    pub fn new(db: HiveDb) -> Self {
        Hive { db }
    }

    pub fn db(&self) -> &HiveDb {
        &self.db
    }

    pub fn search(&self, user: UserId, query: &str) -> Vec<SearchHit> {
        self.service(ServiceKind::Search, |h| discover::search(&h.db, query))
    }

    pub fn check_in(&mut self, user: UserId, session: SessionId) -> Result<()> {
        self.service_mut(ServiceKind::CheckIn, |h| h.db.check_in(user, session))
    }

    // lint:allow(instrumented-facade)
    pub fn raw_probe(&self) -> usize {
        self.db.user_ids().len()
    }
}
