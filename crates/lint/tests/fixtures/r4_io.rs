// Fixture: R4 no-stray-io must flag the println! on line 4 only —
// write!() into a buffer is fine.
pub fn report(total: usize) {
    println!("total = {total}");
    let mut buf = String::new();
    let _ = std::fmt::Write::write_str(&mut buf, "ok");
}
