//! AST-engine fixture tests: pass/fail source pairs for the
//! resolution-based rules (R2/R7/R8 on the AST path, R9-R12), plus a
//! token-vs-AST differential showing where the AST engine is more
//! precise than the masked-token heuristics.
//!
//! Each test builds a tiny synthetic workspace in memory — tokenize,
//! parse, resolve, check — so the fixtures exercise the exact pipeline
//! `scan_workspace` runs, without touching the filesystem.

use hive_lint::config::WorkspaceConfig;
use hive_lint::rules::{self, AllowIndex};
use hive_lint::{ast, check_source, parser, resolve, tokenize, Diagnostic, MarkerKind, SourceRules};

/// Parses `(path, crate, source)` triples into a resolved workspace and
/// runs the AST rules under `cfg`.
fn analyze(cfg: &WorkspaceConfig, files: &[(&str, &str, &str)]) -> Vec<Diagnostic> {
    let mut parsed = Vec::new();
    let mut allows = AllowIndex::default();
    for (path, krate, src) in files {
        let (toks, markers) = tokenize(src);
        for m in &markers {
            if m.kind == MarkerKind::Allow {
                for a in &m.args {
                    allows.insert(path, m.line, a);
                }
            }
        }
        let items = parser::parse(&toks, &markers);
        parsed.push(ast::File {
            path: path.to_string(),
            crate_name: krate.to_string(),
            items,
        });
    }
    let ws = resolve::Workspace::build(&parsed);
    rules::check_ast(&ws, cfg, &allows)
}

fn only(diags: &[Diagnostic], rule: &str) -> Vec<Diagnostic> {
    diags.iter().filter(|d| d.rule == rule).cloned().collect()
}

// ---------------------------------------------------------------- R2

#[test]
fn r2_ast_fires_on_unwrap_but_not_on_workspace_expect_methods() {
    let mut cfg = WorkspaceConfig::default();
    cfg.panic_free.insert("a".to_string());
    let src = "\
pub struct Parser;
impl Parser {
    pub fn expect(&self, b: u8) -> u8 { b }
}
pub fn fine(p: &Parser) -> u8 { p.expect(1) }
pub fn broken(x: Option<u8>) -> u8 { x.unwrap() }
";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", src)]);
    let panics = only(&diags, rules::NO_PANIC_PATHS);
    assert_eq!(panics.len(), 1, "{diags:?}");
    assert_eq!(panics[0].line, 6, "only the Option::unwrap, not Parser::expect");
}

#[test]
fn r2_ast_ignores_crates_outside_the_panic_free_set_and_tests() {
    let cfg = WorkspaceConfig::default(); // empty panic_free set
    let src = "\
pub fn broken(x: Option<u8>) -> u8 { x.unwrap() }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1u8).unwrap(); }
}
";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", src)]);
    assert!(only(&diags, rules::NO_PANIC_PATHS).is_empty(), "{diags:?}");
}

/// The differential the AST migration buys: the token engine flags any
/// `.expect(` textually, the AST engine resolves the receiver and
/// exempts calls to the workspace's own `expect` methods. Both engines
/// agree on the true positive.
#[test]
fn r2_token_vs_ast_differential() {
    let src = "\
pub struct Parser;
impl Parser {
    pub fn expect(&self, b: u8) -> u8 { b }
}
pub fn fine(p: &Parser) -> u8 { p.expect(1) }
pub fn broken(x: Option<u8>) -> u8 { x.unwrap() }
";
    let token = check_source(
        "a/lib.rs",
        src,
        SourceRules { no_panic: true, ..SourceRules::default() },
    );
    let token_panics = only(&token, rules::NO_PANIC_PATHS);
    let mut cfg = WorkspaceConfig::default();
    cfg.panic_free.insert("a".to_string());
    let ast_panics = only(&analyze(&cfg, &[("a/lib.rs", "a", src)]), rules::NO_PANIC_PATHS);
    // Token path: 2 hits (the parser's own expect + the unwrap).
    // AST path: 1 hit (the unwrap only) — strictly fewer false positives.
    assert_eq!(token_panics.len(), 2, "{token_panics:?}");
    assert_eq!(ast_panics.len(), 1, "{ast_panics:?}");
    assert!(
        token_panics.iter().any(|d| d.line == ast_panics[0].line),
        "both engines agree on the true positive"
    );
}

// ---------------------------------------------------------------- R7

#[test]
fn r7_ast_facade_requires_service_routing() {
    let mut cfg = WorkspaceConfig::default();
    cfg.facade_files.push("a/api.rs".to_string());
    let src = "\
pub struct Hive;
impl Hive {
    pub fn service(&self, name: &str) -> u32 { name.len() as u32 }
    pub fn good(&self) -> u32 { self.service(\"good\") }
    pub fn bad(&self) -> u32 { 7 }
}
";
    let diags = analyze(&cfg, &[("a/api.rs", "a", src)]);
    let facade = only(&diags, rules::INSTRUMENTED_FACADE);
    assert_eq!(facade.len(), 1, "{diags:?}");
    assert_eq!(facade[0].line, 5, "only `bad` skips the choke point");
    assert!(facade[0].message.contains("bad"));
}

#[test]
fn r7_ast_facade_skips_restricted_visibility_helpers() {
    // `pub(crate)` plumbing in a facade file is not part of the service
    // surface: neither the token engine (whose needle is the literal
    // `pub fn `) nor the AST engine may flag it.
    let mut cfg = WorkspaceConfig::default();
    cfg.facade_files.push("a/api.rs".to_string());
    let src = "\
pub struct Hive;
impl Hive {
    pub fn service(&self, name: &str) -> u32 { name.len() as u32 }
    pub(crate) fn helper(&self) -> u32 { 7 }
    pub fn good(&self) -> u32 { self.service(\"good\") + self.helper() }
}
";
    let diags = analyze(&cfg, &[("a/api.rs", "a", src)]);
    assert!(only(&diags, rules::INSTRUMENTED_FACADE).is_empty(), "{diags:?}");
}

#[test]
fn r7_ast_facade_only_applies_to_configured_files() {
    let cfg = WorkspaceConfig::default(); // no facade files
    let src = "\
pub struct Hive;
impl Hive {
    pub fn bad(&self) -> u32 { 7 }
}
";
    let diags = analyze(&cfg, &[("a/api.rs", "a", src)]);
    assert!(only(&diags, rules::INSTRUMENTED_FACADE).is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- R8

#[test]
fn r8_ast_fires_on_direct_generation_bumps_unless_allowed() {
    let cfg = WorkspaceConfig::default();
    let src = "\
pub struct Db { generation: u64 }
impl Db {
    pub fn rogue(&mut self) { self.generation += 1; }
    pub fn journal(&mut self) {
        // lint:allow(delta-log)
        self.generation += 1;
    }
}
";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", src)]);
    let bumps = only(&diags, rules::DELTA_LOG);
    assert_eq!(bumps.len(), 1, "{diags:?}");
    assert_eq!(bumps[0].line, 3, "only the unwaived bump");
}

// ---------------------------------------------------------------- R9

/// Declaring a mutator for `Snap` protects the type workspace-wide: a
/// foreign crate taking `&mut Snap` without the marker is flagged.
#[test]
fn r9_fires_on_undeclared_mut_access_to_protected_types() {
    let cfg = WorkspaceConfig::default();
    let home = "\
pub struct Snap { v: u64 }
impl Snap {
    pub fn set(&mut self, v: u64) { self.v = v; }
}
// lint:mutator(Snap)
pub fn patch(s: &mut Snap, v: u64) { s.set(v); }
";
    let rogue = "pub fn rogue(s: &mut Snap, v: u64) { s.set(v); }\n";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", home), ("b/lib.rs", "b", rogue)]);
    let snaps = only(&diags, rules::SNAPSHOT_DISCIPLINE);
    assert!(!snaps.is_empty(), "{diags:?}");
    assert!(snaps.iter().all(|d| d.file == "b/lib.rs"), "home crate is exempt: {snaps:?}");
}

#[test]
fn r9_passes_declared_mutators_home_crate_and_owned_locals() {
    let cfg = WorkspaceConfig::default();
    let home = "\
pub struct Snap { v: u64 }
impl Snap {
    pub fn new() -> Snap { Snap { v: 0 } }
    pub fn set(&mut self, v: u64) { self.v = v; }
}
// lint:mutator(Snap)
pub fn patch(s: &mut Snap, v: u64) { s.set(v); }
";
    let foreign = "\
// lint:mutator(Snap)
pub fn sanctioned(s: &mut Snap, v: u64) { s.set(v); }
pub fn scratch(v: u64) -> u64 {
    let mut s = Snap::new();
    s.set(v);
    v
}
";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", home), ("b/lib.rs", "b", foreign)]);
    assert!(only(&diags, rules::SNAPSHOT_DISCIPLINE).is_empty(), "{diags:?}");
}

// --------------------------------------------------------------- R10

#[test]
fn r10_fires_on_wildcard_and_missing_variants_of_delta_enums() {
    let cfg = WorkspaceConfig::default();
    let src = "\
pub enum FooDelta { Add, Del }
pub fn wild(d: &FooDelta) -> u32 {
    match d {
        FooDelta::Add => 1,
        _ => 0,
    }
}
pub fn partial(d: &FooDelta) -> u32 {
    match d {
        FooDelta::Add => 1,
    }
}
";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", src)]);
    let deltas = only(&diags, rules::EXHAUSTIVE_DELTA);
    assert_eq!(deltas.len(), 2, "{diags:?}");
    assert_eq!(deltas[0].line, 3, "the wildcard match");
    assert_eq!(deltas[1].line, 9, "the missing-variant match");
    assert!(deltas[1].message.contains("Del"), "names the missing variant: {deltas:?}");
}

#[test]
fn r10_fires_on_matches_macro_over_delta_enums() {
    let cfg = WorkspaceConfig::default();
    let src = "\
pub enum FooDelta { Add, Del }
pub fn probe(d: &FooDelta) -> bool { matches!(d, FooDelta::Add) }
";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", src)]);
    let deltas = only(&diags, rules::EXHAUSTIVE_DELTA);
    assert_eq!(deltas.len(), 1, "{diags:?}");
    assert_eq!(deltas[0].line, 2);
}

#[test]
fn r10_passes_exhaustive_matches_and_ignores_non_delta_enums() {
    let cfg = WorkspaceConfig::default();
    let src = "\
pub enum FooDelta { Add, Del }
pub enum Color { Red, Green }
pub fn full(d: &FooDelta) -> u32 {
    match d {
        FooDelta::Add => 1,
        FooDelta::Del => 0,
    }
}
pub fn hue(c: &Color) -> u32 {
    match c {
        Color::Red => 1,
        _ => 0,
    }
}
";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", src)]);
    assert!(only(&diags, rules::EXHAUSTIVE_DELTA).is_empty(), "{diags:?}");
}

// --------------------------------------------------------------- R11

#[test]
fn r11_fires_on_rebuild_calls_under_a_live_guard() {
    let cfg = WorkspaceConfig::default();
    let src = "\
pub struct View { n: usize }
impl View {
    pub fn build(n: usize) -> View { View { n } }
}
pub struct Cache { m: Mutex<u32> }
pub fn bad(c: &Cache) -> View {
    let g = c.m.lock();
    let v = View::build(1);
    drop(g);
    v
}
";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", src)]);
    let locks = only(&diags, rules::LOCK_SCOPE);
    assert_eq!(locks.len(), 1, "{diags:?}");
    assert_eq!(locks[0].line, 8, "the rebuild while `g` is live");
    assert!(locks[0].message.contains("build"), "{locks:?}");
}

#[test]
fn r11_fires_on_pool_entry_under_a_live_guard() {
    let mut cfg = WorkspaceConfig::default();
    cfg.thread_crates.insert("par".to_string());
    let pool = "pub fn install(n: usize) -> usize { n }\n";
    let src = "\
pub struct Cache { m: Mutex<u32> }
pub fn bad(c: &Cache) -> usize {
    let g = c.m.lock();
    install(4)
}
";
    let diags = analyze(&cfg, &[("par/lib.rs", "par", pool), ("a/lib.rs", "a", src)]);
    let locks = only(&diags, rules::LOCK_SCOPE);
    assert_eq!(locks.len(), 1, "{diags:?}");
    assert_eq!(locks[0].file, "a/lib.rs");
    assert_eq!(locks[0].line, 4);
}

#[test]
fn r11_passes_when_the_guard_is_dropped_first() {
    let cfg = WorkspaceConfig::default();
    let src = "\
pub struct View { n: usize }
impl View {
    pub fn build(n: usize) -> View { View { n } }
}
pub struct Cache { m: Mutex<u32> }
pub fn good(c: &Cache) -> View {
    let g = c.m.lock();
    drop(g);
    View::build(1)
}
";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", src)]);
    assert!(only(&diags, rules::LOCK_SCOPE).is_empty(), "{diags:?}");
}

// --------------------------------------------------------------- R12

#[test]
fn r12_fires_on_hashmap_iteration_reachable_from_a_root() {
    let cfg = WorkspaceConfig::default();
    let src = "\
// lint:root(determinism)
pub fn fingerprint(m: &HashMap<String, u64>) -> u64 {
    tally(m)
}

pub fn tally(m: &HashMap<String, u64>) -> u64 {
    let mut t = 0;
    for v in m.values() {
        t += v;
    }
    t
}
";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", src)]);
    let taints = only(&diags, rules::DETERMINISM_TAINT);
    assert_eq!(taints.len(), 1, "{diags:?}");
    assert_eq!(taints[0].line, 8, "the .values() iteration");
    assert!(
        taints[0].message.contains("fingerprint"),
        "the chain names the root: {taints:?}"
    );
}

#[test]
fn r12_is_silent_without_roots_and_honors_allows() {
    let cfg = WorkspaceConfig::default();
    // Same sink, no root: unreachable from any determinism fingerprint.
    let unrooted = "\
pub fn tally(m: &HashMap<String, u64>) -> u64 {
    let mut t = 0;
    for v in m.values() {
        t += v;
    }
    t
}
";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", unrooted)]);
    assert!(only(&diags, rules::DETERMINISM_TAINT).is_empty(), "{diags:?}");
    // Rooted, but the sink carries a justification waiver.
    let waived = "\
// lint:root(determinism)
pub fn fingerprint(m: &HashMap<String, u64>) -> u64 {
    let mut t = 0;
    // lint:allow(determinism-taint) -- commutative integer sum
    for v in m.values() {
        t += v;
    }
    t
}
";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", waived)]);
    assert!(only(&diags, rules::DETERMINISM_TAINT).is_empty(), "{diags:?}");
}

/// A clean multi-crate workspace produces zero diagnostics across every
/// AST rule at once (the no-false-positive floor for the engine).
#[test]
fn clean_synthetic_workspace_has_no_findings() {
    let mut cfg = WorkspaceConfig::default();
    cfg.panic_free.insert("a".to_string());
    cfg.panic_free.insert("b".to_string());
    let a = "\
pub enum FooDelta { Add, Del }
pub struct Snap { v: u64 }
impl Snap {
    pub fn apply(&mut self, d: &FooDelta) {
        match d {
            FooDelta::Add => self.v += 1,
            FooDelta::Del => self.v -= 1,
        }
    }
}
";
    let b = "\
pub fn run(d: &FooDelta) -> u64 {
    let mut s = Snap { v: 1 };
    s.apply(d);
    s.v
}
";
    let diags = analyze(&cfg, &[("a/lib.rs", "a", a), ("b/lib.rs", "b", b)]);
    assert!(diags.is_empty(), "{diags:?}");
}
