//! Fixture tests: one deliberate violation per rule R1-R8, asserting
//! the exact rule id, file label, and line of each diagnostic, plus a
//! `lint:allow` escape-hatch case that must stay silent.

use hive_lint::{check_facade, check_lib_root, check_manifest, check_source, rules, SourceRules};

const ALL_SOURCE_RULES: SourceRules = SourceRules {
    no_panic: true,
    deterministic_time: true,
    no_stray_io: true,
    no_raw_threads: true,
    delta_log: true,
    no_full_scan: true,
};

#[test]
fn r1_hermetic_deps_fires_on_registry_dep() {
    let toml = include_str!("fixtures/r1_registry_dep.toml");
    let diags = check_manifest("fixtures/r1_registry_dep.toml", toml);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, rules::HERMETIC_DEPS);
    assert_eq!(diags[0].file, "fixtures/r1_registry_dep.toml");
    assert_eq!(diags[0].line, 4);
    assert!(diags[0].message.contains("serde"));
}

#[test]
fn r2_no_panic_paths_fires_outside_tests_only() {
    let src = include_str!("fixtures/r2_panic.rs");
    let diags = check_source("fixtures/r2_panic.rs", src, ALL_SOURCE_RULES);
    let panics: Vec<_> = diags.iter().filter(|d| d.rule == rules::NO_PANIC_PATHS).collect();
    assert_eq!(panics.len(), 2, "{diags:?}");
    assert_eq!(panics[0].file, "fixtures/r2_panic.rs");
    assert_eq!(panics[0].line, 6, "the .unwrap() call");
    assert_eq!(panics[1].line, 7, "the panic! call");
    // The commented/string/test-module tokens never fire any rule.
    assert_eq!(diags.len(), 2, "{diags:?}");
}

#[test]
fn r3_deterministic_time_fires_on_wall_clock() {
    let src = include_str!("fixtures/r3_time.rs");
    let diags = check_source("fixtures/r3_time.rs", src, ALL_SOURCE_RULES);
    let time: Vec<_> = diags.iter().filter(|d| d.rule == rules::DETERMINISTIC_TIME).collect();
    assert_eq!(time.len(), 1, "{diags:?}");
    assert_eq!(time[0].file, "fixtures/r3_time.rs");
    assert_eq!(time[0].line, 4);
    assert!(time[0].message.contains("SystemTime::now"));
}

#[test]
fn r4_no_stray_io_fires_on_println() {
    let src = include_str!("fixtures/r4_io.rs");
    let diags = check_source("fixtures/r4_io.rs", src, ALL_SOURCE_RULES);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, rules::NO_STRAY_IO);
    assert_eq!(diags[0].file, "fixtures/r4_io.rs");
    assert_eq!(diags[0].line, 4);
    assert!(diags[0].message.contains("println!"));
}

#[test]
fn r5_forbid_unsafe_fires_on_bare_lib_root() {
    let src = include_str!("fixtures/r5_missing_forbid.rs");
    let diags = check_lib_root("fixtures/r5_missing_forbid.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, rules::FORBID_UNSAFE);
    assert_eq!(diags[0].file, "fixtures/r5_missing_forbid.rs");
    assert_eq!(diags[0].line, 1);
}

#[test]
fn r6_no_raw_threads_fires_on_spawn_and_scope() {
    let src = include_str!("fixtures/r6_thread.rs");
    let diags = check_source("fixtures/r6_thread.rs", src, ALL_SOURCE_RULES);
    let threads: Vec<_> = diags.iter().filter(|d| d.rule == rules::NO_RAW_THREADS).collect();
    assert_eq!(threads.len(), 2, "{diags:?}");
    assert_eq!(threads[0].file, "fixtures/r6_thread.rs");
    assert_eq!(threads[0].line, 5, "the thread::spawn call");
    assert_eq!(threads[1].line, 10, "the thread::scope call");
    assert!(threads[0].message.contains("hive-par"));
    assert_eq!(diags.len(), 2, "{diags:?}");
}

#[test]
fn r7_instrumented_facade_fires_on_unrouted_services() {
    let src = include_str!("fixtures/r7_facade_fail.rs");
    let diags = check_facade("fixtures/r7_facade_fail.rs", src);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!(diags[0].rule, rules::INSTRUMENTED_FACADE);
    assert_eq!(diags[0].file, "fixtures/r7_facade_fail.rs");
    assert_eq!(diags[0].line, 4, "the direct-search entry");
    assert!(diags[0].message.contains("search"));
    assert_eq!(diags[1].line, 8, "the direct-check-in entry");
    assert!(diags[1].message.contains("check_in"));
}

#[test]
fn r7_instrumented_facade_passes_routed_exempt_and_waived_fns() {
    let src = include_str!("fixtures/r7_facade_pass.rs");
    let diags = check_facade("fixtures/r7_facade_pass.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r8_delta_log_fires_on_direct_generation_bumps() {
    let src = include_str!("fixtures/r8_generation.rs");
    let diags = check_source("fixtures/r8_generation.rs", src, ALL_SOURCE_RULES);
    let bumps: Vec<_> = diags.iter().filter(|d| d.rule == rules::DELTA_LOG).collect();
    assert_eq!(bumps.len(), 2, "{diags:?}");
    assert_eq!(bumps[0].file, "fixtures/r8_generation.rs");
    assert_eq!(bumps[0].line, 9, "the spaced bump");
    assert_eq!(bumps[1].line, 13, "the compact bump");
    assert!(bumps[0].message.contains("delta-log API"));
    // The lint:allow'd bump, the plain assignment, and the
    // `regeneration` identifier stay silent.
    assert_eq!(diags.len(), 2, "{diags:?}");
}

#[test]
fn r13_no_full_scan_fires_on_log_iteration_in_service_code() {
    let src = include_str!("fixtures/r13_full_scan.rs");
    let diags = check_source("fixtures/r13_full_scan.rs", src, ALL_SOURCE_RULES);
    let scans: Vec<_> = diags.iter().filter(|d| d.rule == rules::NO_FULL_SCAN).collect();
    assert_eq!(scans.len(), 3, "{diags:?}");
    assert_eq!(scans[0].file, "fixtures/r13_full_scan.rs");
    assert_eq!(scans[0].line, 5, "the .iter() pipeline");
    assert_eq!(scans[1].line, 10, "the for-loop over the log");
    assert_eq!(scans[2].line, 17, "the activities_between call");
    assert!(scans[0].message.contains("db::index"));
    // The waived fold, the string mention, and the test module stay
    // silent.
    assert_eq!(diags.len(), 3, "{diags:?}");
}

#[test]
fn lint_allow_waives_every_rule_at_the_marked_site() {
    let src = include_str!("fixtures/allowed.rs");
    let diags = check_source("fixtures/allowed.rs", src, ALL_SOURCE_RULES);
    assert!(diags.is_empty(), "allow markers must silence all sites: {diags:?}");
}

#[test]
fn the_workspace_itself_is_clean() {
    let root = hive_lint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let diags = hive_lint::scan_workspace(&root).expect("scan succeeds");
    assert!(diags.is_empty(), "workspace must pass its own lint: {diags:#?}");
}
