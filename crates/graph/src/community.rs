//! Community discovery: label propagation and Louvain-style greedy
//! modularity optimization, plus quality measures (modularity, NMI).
//!
//! Backs Table 1's "Community discovery and tracking" service. All
//! functions treat the graph as *undirected* by symmetrizing adjacency
//! (`A_ij = w(i->j) + w(j->i)`), which matches how Hive's social and
//! co-authorship layers are built.

use crate::graph::{Graph, NodeId};
use hive_rng::{Rng, SliceRandom};
use std::collections::HashMap;

/// A community label per node, with labels densely renumbered from 0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommunityAssignment {
    labels: Vec<usize>,
    count: usize,
}

impl CommunityAssignment {
    /// Builds an assignment from raw labels (renumbering densely).
    pub fn from_labels(raw: Vec<usize>) -> Self {
        let mut remap: HashMap<usize, usize> = HashMap::new();
        let mut labels = Vec::with_capacity(raw.len());
        for l in raw {
            let next = remap.len();
            let id = *remap.entry(l).or_insert(next);
            labels.push(id);
        }
        let count = remap.len();
        CommunityAssignment { labels, count }
    }

    /// The community of node `n`.
    pub fn label(&self, n: NodeId) -> usize {
        self.labels[n.index()]
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.count
    }

    /// Raw label slice (index = node index).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Members of each community.
    pub fn communities(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count];
        for (i, &l) in self.labels.iter().enumerate() {
            out[l].push(NodeId(i as u32));
        }
        out
    }
}

fn symmetric_neighbors(g: &Graph, u: NodeId) -> HashMap<NodeId, f64> {
    let mut nbrs: HashMap<NodeId, f64> = HashMap::new();
    for e in g.out_edges(u) {
        *nbrs.entry(e.neighbor).or_insert(0.0) += e.weight;
    }
    for e in g.in_edges(u) {
        *nbrs.entry(e.neighbor).or_insert(0.0) += e.weight;
    }
    nbrs
}

/// Newman modularity of an assignment over the symmetrized graph.
pub fn modularity(g: &Graph, assignment: &CommunityAssignment) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    // Symmetrized degree k_i and total 2m.
    let mut degree = vec![0.0f64; n];
    let mut two_m = 0.0;
    for (u, v, w) in g.edges() {
        degree[u.index()] += w;
        degree[v.index()] += w;
        two_m += 2.0 * w;
    }
    if two_m == 0.0 {
        return 0.0;
    }
    // Sum over intra-community edges of A_ij, and per-community degree sums.
    let mut intra = vec![0.0f64; assignment.community_count()];
    let mut deg_sum = vec![0.0f64; assignment.community_count()];
    for (u, v, w) in g.edges() {
        if assignment.label(u) == assignment.label(v) {
            // Each directed edge contributes w to A_uv and w to A_vu.
            intra[assignment.label(u)] += 2.0 * w;
        }
    }
    for u in g.nodes() {
        deg_sum[assignment.label(u)] += degree[u.index()];
    }
    intra
        .iter()
        .zip(&deg_sum)
        .map(|(&e_in, &d)| e_in / two_m - (d / two_m).powi(2))
        .sum()
}

/// Weighted label propagation with a seeded RNG for deterministic runs.
///
/// Each node repeatedly adopts the label carrying the largest total
/// incident (symmetrized) weight among its neighbors; ties break toward
/// the smaller label. Converges when no label changes or `max_iters` hits.
pub fn label_propagation(g: &Graph, seed: u64, max_iters: usize) -> CommunityAssignment {
    let n = g.node_count();
    let mut labels: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = Rng::seed_from_u64(seed);
    for _ in 0..max_iters {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &i in &order {
            let u = NodeId(i as u32);
            let nbrs = symmetric_neighbors(g, u);
            if nbrs.is_empty() {
                continue;
            }
            let mut tally: HashMap<usize, f64> = HashMap::new();
            for (v, w) in nbrs {
                if v != u {
                    *tally.entry(labels[v.index()]).or_insert(0.0) += w;
                }
            }
            if tally.is_empty() {
                continue;
            }
            let Some(best) = tally
                .into_iter()
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(l, _)| l)
            else {
                continue;
            };
            if best != labels[i] {
                labels[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    CommunityAssignment::from_labels(labels)
}

/// Louvain-style greedy modularity optimization.
///
/// Runs local-move passes (each node greedily joins the neighboring
/// community with the best modularity gain) followed by graph aggregation,
/// until no pass improves modularity.
pub fn louvain(g: &Graph) -> CommunityAssignment {
    // Work on a symmetrized edge list at each level.
    let n0 = g.node_count();
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for (u, v, w) in g.edges() {
        edges.push((u.index(), v.index(), w));
    }
    // node-at-level -> community-at-level mapping chain.
    let mut membership: Vec<usize> = (0..n0).collect();
    let mut level_nodes = n0;
    loop {
        let (labels, improved) = louvain_one_level(level_nodes, &edges);
        if !improved {
            break;
        }
        // Compose the mapping.
        for m in membership.iter_mut() {
            *m = labels[*m];
        }
        // Aggregate.
        let comm_count = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut agg: HashMap<(usize, usize), f64> = HashMap::new();
        for &(u, v, w) in &edges {
            let key = (labels[u], labels[v]);
            *agg.entry(key).or_insert(0.0) += w;
        }
        edges = agg.into_iter().map(|((u, v), w)| (u, v, w)).collect();
        edges.sort_by_key(|a| (a.0, a.1));
        if comm_count == level_nodes {
            break;
        }
        level_nodes = comm_count;
    }
    CommunityAssignment::from_labels(membership)
}

/// One local-move pass over an edge list; returns (labels, improved).
fn louvain_one_level(n: usize, edges: &[(usize, usize, f64)]) -> (Vec<usize>, bool) {
    // Symmetrized adjacency lists and degrees.
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let mut self_loops = vec![0.0f64; n];
    let mut degree = vec![0.0f64; n];
    let mut two_m = 0.0;
    for &(u, v, w) in edges {
        if u == v {
            self_loops[u] += 2.0 * w;
            degree[u] += 2.0 * w;
            two_m += 2.0 * w;
        } else {
            adj[u].push((v, w));
            adj[v].push((u, w));
            degree[u] += w;
            degree[v] += w;
            two_m += 2.0 * w;
        }
    }
    let mut labels: Vec<usize> = (0..n).collect();
    if two_m == 0.0 {
        return (labels, false);
    }
    // Sum of degrees per community.
    let mut comm_deg = degree.clone();
    let mut improved = false;
    let mut moved = true;
    let mut rounds = 0;
    while moved && rounds < 32 {
        moved = false;
        rounds += 1;
        for u in 0..n {
            let current = labels[u];
            // Weight from u to each neighboring community.
            let mut to_comm: HashMap<usize, f64> = HashMap::new();
            for &(v, w) in &adj[u] {
                *to_comm.entry(labels[v]).or_insert(0.0) += w;
            }
            // Remove u from its community, then pick the community c
            // maximizing the standard Louvain gain criterion
            // `w_uc - k_u * sum_tot(c) / 2m` (constant terms dropped).
            comm_deg[current] -= degree[u];
            let base = to_comm.get(&current).copied().unwrap_or(0.0);
            let mut best_comm = current;
            let mut best_score = base - degree[u] * comm_deg[current] / two_m;
            for (&c, &w_uc) in &to_comm {
                if c == current {
                    continue;
                }
                let s = w_uc - degree[u] * comm_deg[c] / two_m;
                if s > best_score + 1e-12 {
                    best_score = s;
                    best_comm = c;
                }
            }
            comm_deg[best_comm] += degree[u];
            if best_comm != current {
                labels[u] = best_comm;
                moved = true;
                improved = true;
            }
        }
    }
    // Renumber densely.
    let assignment = CommunityAssignment::from_labels(labels);
    (assignment.labels().to_vec(), improved)
}

/// Normalized mutual information between two assignments (0..=1).
///
/// Used by experiment E5 to compare discovered communities against the
/// simulator's planted topic communities.
pub fn nmi(a: &CommunityAssignment, b: &CommunityAssignment) -> f64 {
    assert_eq!(a.labels().len(), b.labels().len(), "assignments over different node sets");
    let n = a.labels().len();
    if n == 0 {
        return 1.0;
    }
    let ka = a.community_count();
    let kb = b.community_count();
    let mut joint = vec![vec![0usize; kb]; ka];
    let mut ca = vec![0usize; ka];
    let mut cb = vec![0usize; kb];
    for i in 0..n {
        let (x, y) = (a.labels()[i], b.labels()[i]);
        joint[x][y] += 1;
        ca[x] += 1;
        cb[y] += 1;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for x in 0..ka {
        for y in 0..kb {
            let nxy = joint[x][y] as f64;
            if nxy > 0.0 {
                mi += (nxy / nf) * ((nxy * nf) / (ca[x] as f64 * cb[y] as f64)).ln();
            }
        }
    }
    let ha: f64 = ca
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / nf;
            -p * p.ln()
        })
        .sum();
    let hb: f64 = cb
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / nf;
            -p * p.ln()
        })
        .sum();
    if ha == 0.0 && hb == 0.0 {
        return 1.0; // both trivial single-community assignments
    }
    let denom = (ha * hb).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// NMI between two partitions given as membership lists over item
/// indexes `0..n`. Items missing from a partition go into a catch-all
/// community. Convenience wrapper over [`nmi`] for experiment code.
pub fn nmi_of_partitions(a: &[Vec<usize>], b: &[Vec<usize>], n: usize) -> f64 {
    let to_assignment = |parts: &[Vec<usize>]| -> CommunityAssignment {
        let mut labels = vec![parts.len(); n]; // catch-all label
        for (c, members) in parts.iter().enumerate() {
            for &m in members {
                if m < n {
                    labels[m] = c;
                }
            }
        }
        CommunityAssignment::from_labels(labels)
    };
    nmi(&to_assignment(a), &to_assignment(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense cliques with a single weak bridge.
    fn two_cliques() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..10).map(|i| g.add_node(format!("n{i}"))).collect();
        for group in [&ids[..5], &ids[5..]] {
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    g.add_undirected_edge(group[i], group[j], 1.0);
                }
            }
        }
        g.add_undirected_edge(ids[4], ids[5], 0.1);
        (g, ids)
    }

    #[test]
    fn label_propagation_finds_cliques() {
        let (g, ids) = two_cliques();
        let asg = label_propagation(&g, 7, 50);
        assert_eq!(asg.community_count(), 2);
        let first = asg.label(ids[0]);
        for &n in &ids[..5] {
            assert_eq!(asg.label(n), first);
        }
        let second = asg.label(ids[5]);
        assert_ne!(first, second);
        for &n in &ids[5..] {
            assert_eq!(asg.label(n), second);
        }
    }

    #[test]
    fn louvain_finds_cliques() {
        let (g, ids) = two_cliques();
        let asg = louvain(&g);
        assert_eq!(asg.community_count(), 2);
        assert_eq!(asg.label(ids[0]), asg.label(ids[4]));
        assert_ne!(asg.label(ids[0]), asg.label(ids[9]));
    }

    #[test]
    fn modularity_prefers_true_partition() {
        let (g, _) = two_cliques();
        let good = louvain(&g);
        let trivial = CommunityAssignment::from_labels(vec![0; 10]);
        let singletons = CommunityAssignment::from_labels((0..10).collect());
        let q_good = modularity(&g, &good);
        let q_trivial = modularity(&g, &trivial);
        let q_single = modularity(&g, &singletons);
        assert!(q_good > q_trivial, "{q_good} > {q_trivial}");
        assert!(q_good > q_single, "{q_good} > {q_single}");
        assert!(q_good > 0.3);
    }

    #[test]
    fn nmi_identity_and_permutation_invariance() {
        let a = CommunityAssignment::from_labels(vec![0, 0, 1, 1, 2, 2]);
        let b = CommunityAssignment::from_labels(vec![5, 5, 9, 9, 1, 1]);
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_detects_disagreement() {
        let a = CommunityAssignment::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let shuffled = CommunityAssignment::from_labels(vec![0, 1, 0, 1, 0, 1]);
        let score = nmi(&a, &shuffled);
        assert!(score < 0.2, "disagreeing partitions should score low, got {score}");
    }

    #[test]
    fn nmi_trivial_assignments() {
        let a = CommunityAssignment::from_labels(vec![0, 0, 0]);
        assert_eq!(nmi(&a, &a), 1.0);
    }

    #[test]
    fn empty_graph_handled() {
        let g = Graph::new();
        let asg = louvain(&g);
        assert_eq!(asg.community_count(), 0);
        assert_eq!(modularity(&g, &asg), 0.0);
    }

    #[test]
    fn assignment_communities_listing() {
        let asg = CommunityAssignment::from_labels(vec![0, 1, 0]);
        let comms = asg.communities();
        assert_eq!(comms.len(), 2);
        assert_eq!(comms[0], vec![NodeId(0), NodeId(2)]);
        assert_eq!(comms[1], vec![NodeId(1)]);
    }
}
