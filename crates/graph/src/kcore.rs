//! k-core decomposition over the symmetrized graph.
//!
//! Hive uses core numbers to find the *active core* of a community (the
//! researchers who keep the exchanges going) and to rank peers by
//! engagement robustness: a node's core number is the largest k such
//! that it survives in the subgraph where everyone has degree >= k.

use crate::graph::{Graph, NodeId};
use std::collections::HashSet;

/// Core number per node (unweighted degrees over the symmetrized graph;
/// parallel directions count once).
pub fn core_numbers(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    // Symmetrized simple adjacency.
    let mut adj: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (u, v, _) in g.edges() {
        if u != v {
            adj[u.index()].insert(v.index());
            adj[v.index()].insert(u.index());
        }
    }
    let mut degree: Vec<usize> = adj.iter().map(HashSet::len).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket queue (standard O(V + E) peeling).
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].push(v);
    }
    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    let mut k = 0usize;
    for d in 0..=max_deg {
        let mut queue = std::mem::take(&mut buckets[d]);
        while let Some(v) = queue.pop() {
            if removed[v] || degree[v] > d {
                // Stale bucket entry (degree changed since insertion).
                if !removed[v] && degree[v] > d {
                    buckets[degree[v]].push(v);
                }
                continue;
            }
            k = k.max(d);
            core[v] = k;
            removed[v] = true;
            let nbrs: Vec<usize> = adj[v].iter().copied().collect();
            for u in nbrs {
                if !removed[u] && degree[u] > d {
                    degree[u] -= 1;
                    if degree[u] == d {
                        queue.push(u);
                    } else {
                        buckets[degree[u]].push(u);
                    }
                }
            }
        }
    }
    core
}

/// Nodes whose core number is at least `k` (the k-core).
pub fn k_core(g: &Graph, k: usize) -> Vec<NodeId> {
    core_numbers(g)
        .into_iter()
        .enumerate()
        .filter(|(_, c)| *c >= k)
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-clique with two pendant chains hanging off it.
    fn clique_with_tails() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..8).map(|i| g.add_node(format!("n{i}"))).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_undirected_edge(ids[i], ids[j], 1.0);
            }
        }
        g.add_undirected_edge(ids[3], ids[4], 1.0);
        g.add_undirected_edge(ids[4], ids[5], 1.0);
        g.add_undirected_edge(ids[0], ids[6], 1.0);
        g.add_undirected_edge(ids[6], ids[7], 1.0);
        (g, ids)
    }

    #[test]
    fn clique_members_have_core_three() {
        let (g, ids) = clique_with_tails();
        let core = core_numbers(&g);
        for &v in &ids[..4] {
            assert_eq!(core[v.index()], 3, "clique node {v:?}");
        }
        for &v in &ids[4..] {
            assert_eq!(core[v.index()], 1, "tail node {v:?}");
        }
    }

    #[test]
    fn k_core_extraction() {
        let (g, ids) = clique_with_tails();
        let core3 = k_core(&g, 3);
        assert_eq!(core3, ids[..4].to_vec());
        assert_eq!(k_core(&g, 1).len(), 8);
        assert!(k_core(&g, 4).is_empty());
    }

    #[test]
    fn isolated_nodes_have_core_zero() {
        let mut g = Graph::new();
        g.add_node("lonely");
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_undirected_edge(a, b, 1.0);
        let core = core_numbers(&g);
        assert_eq!(core[0], 0);
        assert_eq!(core[1], 1);
        assert_eq!(core[2], 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert!(core_numbers(&g).is_empty());
        assert!(k_core(&g, 1).is_empty());
    }

    #[test]
    fn core_numbers_monotone_under_edge_addition() {
        let (mut g, ids) = clique_with_tails();
        let before = core_numbers(&g);
        g.add_undirected_edge(ids[4], ids[6], 1.0);
        let after = core_numbers(&g);
        for (b, a) in before.iter().zip(&after) {
            assert!(a >= b, "core numbers never decrease when edges are added");
        }
    }
}
